// Reproduces Fig. 14(a): maximal latency of shared vs non-shared execution
// while varying the number of overlapping context windows. The defaults
// follow the paper's setup (windows of 15 "minutes" overlapping by 10, 4
// queries each), scaled to ticks. The paper reports a ~10x gain at 45
// overlapping windows; the gain growing with the overlap count is the
// shape under test.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Timestamp length = flags.Int("win_len", 150);
  Timestamp overlap = flags.Int("overlap", 100);
  int queries = static_cast<int>(flags.Int("queries", 4));
  int events_per_tick = static_cast<int>(flags.Int("events_per_tick", 3));
  int max_windows = static_cast<int>(flags.Int("max_windows", 45));
  double accel = flags.Double("accel", 2000.0);
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig14a_overlap_count", metrics_out);

  bench::Banner("Sharing across overlapping context windows",
                "Fig. 14(a): max latency, shared vs non-shared, over the "
                "number of overlapping windows; paper: ~10x at 45");

  bench::Table table({"windows", "shared_s", "nonshared_s", "gain", "cpu_gain",
                      "sh_ops", "ns_ops"});
  for (int count = 5; count <= max_windows; count += 10) {
    SyntheticConfig config;
    config.windows = LayOutWindows(count, length, overlap, 50);
    config.duration = config.windows.back().end + 100;
    config.events_per_tick = events_per_tick;
    config.queries_per_window = queries;
    config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
    TypeRegistry registry;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    CAESAR_CHECK_OK(model.status());
    StatisticsReport shared_report, nonshared_report;
    RunStats shared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink.enabled() ? &shared_report : nullptr);
    RunStats nonshared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kNonShared, accel, 1, 3, 0.2,
        sink.enabled() ? &nonshared_report : nullptr);
    sink.Add("windows=" + std::to_string(count) + "/shared", shared_report);
    sink.Add("windows=" + std::to_string(count) + "/nonshared",
             nonshared_report);
    table.Row({bench::FmtInt(count), bench::Fmt(shared.max_latency),
               bench::Fmt(nonshared.max_latency),
               bench::Fmt(nonshared.max_latency / shared.max_latency, 1),
               bench::Fmt(nonshared.cpu_seconds / shared.cpu_seconds, 1),
               bench::FmtInt(static_cast<int64_t>(shared.ops_executed)),
               bench::FmtInt(static_cast<int64_t>(nonshared.ops_executed))});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
