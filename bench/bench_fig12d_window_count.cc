// Reproduces Fig. 12(d): win ratio of context-aware over
// context-independent processing while varying the number of context
// windows (fixed length). More windows cover more of the stream, shrinking
// the suspendable share; the paper's shape: win ratio above ~2 while the
// suspendable share exceeds 80%, negligible below 50%.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Timestamp duration = flags.Int("duration", 1500);
  Timestamp length = flags.Int("win_len", 60);
  int queries = static_cast<int>(flags.Int("queries", 6));
  int events_per_tick = static_cast<int>(flags.Int("events_per_tick", 2));
  double accel = flags.Double("accel", 400.0);
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig12d_window_count", metrics_out);

  bench::Banner("Varying the number of context windows",
                "Fig. 12(d): CA-over-CI win ratio with the % of the stream "
                "allowing suspension annotated per row");

  bench::Table table({"windows", "suspend_pct", "ca_lat_s", "ci_lat_s",
                      "win_ratio", "cpu_ratio"});
  for (int count : {1, 4, 8, 12, 16, 20}) {
    SyntheticConfig config;
    config.duration = duration;
    config.events_per_tick = events_per_tick;
    config.windows = PlaceWindows(count, length, duration, 0);
    config.assignment = SyntheticConfig::QueryAssignment::kAllWindows;
    config.queries_per_window = queries;
    config.query_within = 30;
    TypeRegistry registry;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    CAESAR_CHECK_OK(model.status());
    StatisticsReport ca_report, ci_report;
    RunStats ca = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink.enabled() ? &ca_report : nullptr);
    RunStats ci = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kContextIndependent, accel, 1,
        3, 0.2, sink.enabled() ? &ci_report : nullptr);
    sink.Add("windows=" + std::to_string(count) + "/ca", ca_report);
    sink.Add("windows=" + std::to_string(count) + "/ci", ci_report);
    double suspendable = 1.0 - WindowCoverage(config);
    table.Row({bench::FmtInt(count),
               bench::Fmt(100.0 * suspendable, 0) + "%",
               bench::Fmt(ca.max_latency), bench::Fmt(ci.max_latency),
               bench::Fmt(ci.max_latency / ca.max_latency, 1),
               bench::Fmt(ci.cpu_seconds / ca.cpu_seconds, 1)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
