// Reproduces Fig. 11(b): the L-factor experiment. The input stream rate
// grows with the number of expressways ("roads"); maximal latency of the
// optimized (context-window push-down) plan stays under the benchmark's
// 5-second constraint for more roads than the non-optimized plan.
// The paper reports L-factors 7 (optimized) vs 5 (non-optimized) on its
// testbed; the crossover positions depend on hardware and the `accel`
// load-scaling flag, the optimized >= non-optimized ordering is the result.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int max_roads = static_cast<int>(flags.Int("max_roads", 8));
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  int replicas = static_cast<int>(flags.Int("replicas", 3));
  double accel = flags.Double("accel", 3000.0);
  double constraint = flags.Double("constraint", 5.0);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig11b_lfactor", metrics_out);

  bench::Banner(
      "L-factor: optimized vs non-optimized query plan",
      "Fig. 11(b): max latency over the number of roads; L-factor = most "
      "roads within the 5 s constraint");

  LinearRoadModelConfig model_config;
  model_config.processing_replicas = replicas;

  bench::Table table({"roads", "events", "opt_lat_s", "nonopt_lat_s",
                      "opt_ok", "nonopt_ok"});
  int l_factor_optimized = 0;
  int l_factor_nonoptimized = 0;
  for (int roads = 1; roads <= max_roads; ++roads) {
    LinearRoadConfig config;
    config.num_xways = roads;
    config.num_segments = segments;
    config.duration = duration;
    config.seed = seed;
    TypeRegistry registry;
    EventBatch stream = GenerateLinearRoadStream(config, &registry);
    auto model = MakeLinearRoadModel(model_config, &registry);
    CAESAR_CHECK_OK(model.status());

    StatisticsReport opt_report, nonopt_report;
    RunStats optimized = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink.enabled() ? &opt_report : nullptr);
    RunStats nonoptimized = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kNonOptimized, accel, 1, 3,
        0.2, sink.enabled() ? &nonopt_report : nullptr);
    sink.Add("roads=" + std::to_string(roads) + "/opt", opt_report);
    sink.Add("roads=" + std::to_string(roads) + "/nonopt", nonopt_report);

    bool opt_ok = optimized.max_latency <= constraint;
    bool nonopt_ok = nonoptimized.max_latency <= constraint;
    if (opt_ok && l_factor_optimized == roads - 1) l_factor_optimized = roads;
    if (nonopt_ok && l_factor_nonoptimized == roads - 1) {
      l_factor_nonoptimized = roads;
    }
    table.Row({bench::FmtInt(roads),
               bench::FmtInt(static_cast<int64_t>(stream.size())),
               bench::Fmt(optimized.max_latency),
               bench::Fmt(nonoptimized.max_latency), opt_ok ? "yes" : "NO",
               nonopt_ok ? "yes" : "NO"});
  }
  std::printf("\nL-factor: optimized plan = %d roads, "
              "non-optimized plan = %d roads (paper: 7 vs 5)\n",
              l_factor_optimized, l_factor_nonoptimized);
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
