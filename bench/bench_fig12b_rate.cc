// Reproduces Fig. 12(b): maximal latency of context-aware vs
// context-independent processing while scaling the input event stream rate
// (number of roads). The paper reports ~9x at 7 roads.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int max_roads = static_cast<int>(flags.Int("max_roads", 7));
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  int replicas = static_cast<int>(flags.Int("replicas", 3));
  double accel = flags.Double("accel", 2000.0);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig12b_rate", metrics_out);

  bench::Banner("Scaling the event stream rate",
                "Fig. 12(b): max latency over the number of roads, "
                "context-aware (CA) vs context-independent (CI); paper: ~9x "
                "at 7 roads");

  LinearRoadModelConfig model_config;
  model_config.processing_replicas = replicas;

  bench::Table table(
      {"roads", "events", "ca_lat_s", "ci_lat_s", "win_ratio", "cpu_ratio"});
  for (int roads = 2; roads <= max_roads; ++roads) {
    LinearRoadConfig config;
    config.num_xways = roads;
    config.num_segments = segments;
    config.duration = duration;
    config.seed = seed;
    TypeRegistry registry;
    EventBatch stream = GenerateLinearRoadStream(config, &registry);
    auto model = MakeLinearRoadModel(model_config, &registry);
    CAESAR_CHECK_OK(model.status());
    StatisticsReport ca_report, ci_report;
    RunStats ca = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink.enabled() ? &ca_report : nullptr);
    RunStats ci = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kContextIndependent, accel, 1,
        3, 0.2, sink.enabled() ? &ci_report : nullptr);
    sink.Add("roads=" + std::to_string(roads) + "/ca", ca_report);
    sink.Add("roads=" + std::to_string(roads) + "/ci", ci_report);
    table.Row({bench::FmtInt(roads),
               bench::FmtInt(static_cast<int64_t>(stream.size())),
               bench::Fmt(ca.max_latency), bench::Fmt(ci.max_latency),
               bench::Fmt(ci.max_latency / ca.max_latency, 1),
               bench::Fmt(ci.cpu_seconds / ca.cpu_seconds, 1)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
