// Ingest-policy overhead: what graceful degradation costs on the hot path.
// Replays a Linear Road stream (pristine, and perturbed by bounded per-tick
// delay) under each IngestPolicy and reports throughput plus the
// degradation counters. Expectations: kStrict and kDrop on pristine input
// add only a validation scan; kReorder pays one heap push/pop per event and
// still derives the identical output from the delayed stream.

#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "tests/fault_injection.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

struct Sample {
  double seconds = 0.0;
  RunStats stats;
};

Sample Replay(const ExecutablePlan& plan, const EventBatch& stream,
              IngestPolicy policy, Timestamp slack,
              StatisticsReport* report_out) {
  EngineOptions options;
  options.collect_outputs = false;
  options.ingest_policy = policy;
  options.reorder_slack = slack;
  if (report_out != nullptr) {
    options.gather_statistics = true;
    options.metrics = MetricsGranularity::kOperator;
  }
  Engine engine(plan.Clone(), options);
  Stopwatch watch;
  Sample sample;
  auto run = engine.Run(stream);
  CAESAR_CHECK_OK(run.status());
  sample.stats = run.value();
  sample.seconds = watch.ElapsedSeconds();
  if (report_out != nullptr) *report_out = engine.CollectStatistics();
  return sample;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  Timestamp max_delay = flags.Int("max_delay", 4);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_ingest_reorder", metrics_out);

  bench::Banner("Ingest policies: strict vs drop vs reorder",
                "graceful-degradation overhead of the bounded reorder "
                "buffer and the quarantine sink");

  LinearRoadConfig config;
  config.num_segments = segments;
  config.duration = duration;
  config.seed = seed;
  TypeRegistry registry;
  EventBatch pristine = GenerateLinearRoadStream(config, &registry);
  testing::FaultInjector injector(seed);
  EventBatch delayed = injector.DelayTicks(pristine, max_delay);
  auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());

  struct Leg {
    const char* label;
    const EventBatch* stream;
    IngestPolicy policy;
    Timestamp slack;
  };
  const Leg legs[] = {
      {"strict/pristine", &pristine, IngestPolicy::kStrict, 0},
      {"drop/pristine", &pristine, IngestPolicy::kDrop, 0},
      {"reorder/pristine", &pristine, IngestPolicy::kReorder, max_delay},
      {"drop/delayed", &delayed, IngestPolicy::kDrop, 0},
      {"reorder/delayed", &delayed, IngestPolicy::kReorder, max_delay},
  };

  bench::Table table({"policy/stream", "events", "kev_s", "derived",
                      "reordered", "dropped", "quarantined"});
  for (const Leg& leg : legs) {
    StatisticsReport report;
    Sample sample = Replay(plan.value(), *leg.stream, leg.policy, leg.slack,
                           sink.enabled() ? &report : nullptr);
    sink.Add(leg.label, report);
    double kev_s = sample.seconds > 0.0
                       ? static_cast<double>(sample.stats.input_events) /
                             sample.seconds / 1e3
                       : 0.0;
    table.Row({leg.label, bench::FmtInt(sample.stats.input_events),
               bench::Fmt(kev_s, 1), bench::FmtInt(sample.stats.derived_events),
               bench::FmtInt(sample.stats.events_reordered),
               bench::FmtInt(sample.stats.events_dropped_late),
               bench::FmtInt(sample.stats.events_quarantined)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
