// Durability overhead: what crash safety costs on the hot path. Replays a
// Linear Road stream in tick-aligned batches (one Run = one WAL batch =
// one group commit) with durability off, WAL-only under each fsync policy,
// and WAL+checkpoint, and reports throughput plus the durability counters.
// Expectations: fsync=none costs only the serialization and buffered
// writes (single-digit percent), fsync=batch adds one sync per Run,
// fsync=always pays one sync per tick record and dominates, and the
// checkpoint cadence adds state serialization on top of fsync=batch.

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

struct Sample {
  double seconds = 0.0;
  RunStats stats;  // summed over all Run calls
};

// Splits the stream at tick boundaries so each Run seals one WAL batch.
std::vector<EventBatch> SplitByTicks(const EventBatch& stream,
                                     int num_batches) {
  int distinct = 0;
  Timestamp prev = 0;
  bool any = false;
  for (const EventPtr& event : stream) {
    if (!any || event->time() != prev) {
      ++distinct;
      prev = event->time();
      any = true;
    }
  }
  const int per_batch = distinct < num_batches ? 1 : distinct / num_batches;
  std::vector<EventBatch> batches;
  EventBatch current;
  int in_batch = 0;
  any = false;
  for (const EventPtr& event : stream) {
    if (!any || event->time() != prev) {
      if (in_batch == per_batch) {
        batches.push_back(std::move(current));
        current.clear();
        in_batch = 0;
      }
      ++in_batch;
      prev = event->time();
      any = true;
    }
    current.push_back(event);
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

Sample Replay(const ExecutablePlan& plan,
              const std::vector<EventBatch>& batches, DurabilityMode mode,
              FsyncPolicy fsync, Timestamp checkpoint_interval,
              StatisticsReport* report_out) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("caesar_bench_durability_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  EngineOptions options;
  options.collect_outputs = false;
  options.durability.mode = mode;
  options.durability.dir = dir.string();
  options.durability.fsync = fsync;
  options.durability.checkpoint_interval_ticks = checkpoint_interval;
  if (report_out != nullptr) options.gather_statistics = true;
  Engine engine(plan.Clone(), options);
  Stopwatch watch;
  Sample sample;
  for (const EventBatch& batch : batches) {
    auto run = engine.Run(batch);
    CAESAR_CHECK_OK(run.status());
    sample.stats.input_events += run.value().input_events;
    sample.stats.derived_events += run.value().derived_events;
    sample.stats.wal_records += run.value().wal_records;
    sample.stats.wal_bytes += run.value().wal_bytes;
    sample.stats.fsyncs += run.value().fsyncs;
    sample.stats.checkpoints_written += run.value().checkpoints_written;
  }
  sample.seconds = watch.ElapsedSeconds();
  if (report_out != nullptr) *report_out = engine.CollectStatistics();
  std::filesystem::remove_all(dir);
  return sample;
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  int num_batches = static_cast<int>(flags.Int("batches", 16));
  Timestamp checkpoint_interval = flags.Int("checkpoint_interval", 64);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_durability", metrics_out);

  bench::Banner("Durability: WAL and checkpoint overhead vs off",
                "crash-safety cost of the write-ahead log across fsync "
                "policies, and of the checkpoint cadence on top");

  LinearRoadConfig config;
  config.num_segments = segments;
  config.duration = duration;
  config.seed = seed;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  std::vector<EventBatch> batches = SplitByTicks(stream, num_batches);
  auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());

  struct Leg {
    const char* label;
    DurabilityMode mode;
    FsyncPolicy fsync;
  };
  const Leg legs[] = {
      {"off", DurabilityMode::kOff, FsyncPolicy::kNone},
      {"wal/fsync=none", DurabilityMode::kWal, FsyncPolicy::kNone},
      {"wal/fsync=batch", DurabilityMode::kWal, FsyncPolicy::kBatch},
      {"wal/fsync=always", DurabilityMode::kWal, FsyncPolicy::kAlways},
      {"wal+ckpt/fsync=batch", DurabilityMode::kWalCheckpoint,
       FsyncPolicy::kBatch},
  };

  double baseline_kev_s = 0.0;
  bench::Table table({"mode", "events", "kev_s", "vs_off", "wal_mb",
                      "fsyncs", "ckpts"});
  for (const Leg& leg : legs) {
    StatisticsReport report;
    Sample sample = Replay(plan.value(), batches, leg.mode, leg.fsync,
                           checkpoint_interval,
                           sink.enabled() ? &report : nullptr);
    sink.Add(leg.label, report);
    const double kev_s = sample.seconds > 0.0
                             ? static_cast<double>(sample.stats.input_events) /
                                   sample.seconds / 1e3
                             : 0.0;
    if (leg.mode == DurabilityMode::kOff) baseline_kev_s = kev_s;
    const double vs_off = baseline_kev_s > 0.0 ? kev_s / baseline_kev_s : 0.0;
    table.Row({leg.label, bench::FmtInt(sample.stats.input_events),
               bench::Fmt(kev_s, 1), bench::Fmt(vs_off, 3),
               bench::Fmt(static_cast<double>(sample.stats.wal_bytes) / 1e6,
                          2),
               bench::FmtInt(sample.stats.fsyncs),
               bench::FmtInt(sample.stats.checkpoints_written)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
