// Reproduces Fig. 10 of the paper: characterization of the Linear Road
// event streams.
//   (a) events per road segment — processed position reports and derived
//       zero-toll / toll / accident-warning events vary across segments;
//   (b) events per minute for one unidirectional road segment — the input
//       rate ramps up over the run, accident warnings appear only during
//       the accident episode, real toll only during congestion, zero toll
//       otherwise.

#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

using bench::Fmt;
using bench::FmtInt;

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  LinearRoadConfig config;
  config.num_xways = static_cast<int>(flags.Int("xways", 1));
  config.num_segments = static_cast<int>(flags.Int("segments", 20));
  config.duration = flags.Int("duration", 3600);
  config.accident_episodes_per_segment =
      flags.Double("accident_rate", 0.5);
  config.seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig10_streams", metrics_out);

  bench::Banner("Linear Road event streams",
                "Fig. 10(a) events per road segment; Fig. 10(b) events per "
                "minute (paper: 100 segments / 180 min; scaled by flags)");

  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "model: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto plan = OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  EngineOptions engine_options;
  if (sink.enabled()) {
    engine_options.gather_statistics = true;
    engine_options.metrics = MetricsGranularity::kOperator;
  }
  Engine engine(std::move(plan).value(), engine_options);

  // Per-segment and per-minute tallies. Derived types carry a "seg"
  // attribute; position reports are tallied from the input.
  struct Counts {
    int64_t reports = 0;
    int64_t zero_toll = 0;
    int64_t toll = 0;
    int64_t warnings = 0;
  };
  std::map<int64_t, Counts> per_segment;
  std::map<int64_t, Counts> per_minute;  // for segment `focus`

  // Focus on the segment with the most accidents: tally after the run.
  EventBatch outputs;
  RunStats stats = engine.Run(stream, &outputs).value();

  auto attr = [&](const EventPtr& event, const char* name) -> int64_t {
    const Schema& schema = registry.type(event->type_id()).schema;
    int index = schema.IndexOf(name);
    return index < 0 ? -1 : event->value(index).AsInt();
  };

  // Pick the focus segment: most accident warnings (dir 0).
  std::map<int64_t, int64_t> warnings_per_segment;
  for (const EventPtr& event : outputs) {
    if (registry.type(event->type_id()).name == "AccidentWarning") {
      warnings_per_segment[attr(event, "seg")] += 1;
    }
  }
  int64_t focus = warnings_per_segment.empty()
                      ? 0
                      : std::max_element(warnings_per_segment.begin(),
                                         warnings_per_segment.end(),
                                         [](const auto& a, const auto& b) {
                                           return a.second < b.second;
                                         })
                            ->first;

  for (const EventPtr& event : stream) {
    int64_t seg = attr(event, "seg");
    per_segment[seg].reports += 1;
    if (seg == focus) per_minute[event->time() / 60].reports += 1;
  }
  for (const EventPtr& event : outputs) {
    const std::string& type = registry.type(event->type_id()).name;
    int64_t seg = attr(event, "seg");
    Counts* by_seg = &per_segment[seg];
    Counts* by_min =
        seg == focus ? &per_minute[event->time() / 60] : nullptr;
    auto bump = [&](int64_t Counts::*field) {
      (*by_seg).*field += 1;
      if (by_min != nullptr) (*by_min).*field += 1;
    };
    if (type == "ZeroToll") bump(&Counts::zero_toll);
    if (type == "TollNotification") bump(&Counts::toll);
    if (type == "AccidentWarning") bump(&Counts::warnings);
  }

  std::printf("--- Fig. 10(a): events per road segment ---\n");
  bench::Table table_a(
      {"segment", "pos_reports", "zero_toll", "real_toll", "warnings"});
  for (const auto& [seg, counts] : per_segment) {
    table_a.Row({FmtInt(seg), FmtInt(counts.reports),
                 FmtInt(counts.zero_toll), FmtInt(counts.toll),
                 FmtInt(counts.warnings)});
  }

  std::printf("\n--- Fig. 10(b): events per minute, segment %lld ---\n",
              static_cast<long long>(focus));
  bench::Table table_b(
      {"minute", "pos_reports", "zero_toll", "real_toll", "warnings"});
  for (const auto& [minute, counts] : per_minute) {
    table_b.Row({FmtInt(minute), FmtInt(counts.reports),
                 FmtInt(counts.zero_toll), FmtInt(counts.toll),
                 FmtInt(counts.warnings)});
  }

  std::printf("\nrun summary: %s\n", stats.ToString().c_str());
  if (sink.enabled()) sink.Add("stream", engine.CollectStatistics());
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
