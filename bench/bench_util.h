// Shared helpers for the figure-reproduction benchmark binaries: a minimal
// --key=value flag parser and fixed-width table printing, so every binary
// prints the same rows/series the paper's figures plot.

#ifndef CAESAR_BENCH_BENCH_UTIL_H_
#define CAESAR_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "runtime/observability.h"
#include "runtime/statistics.h"

namespace caesar {
namespace bench {

// Parses --key=value arguments. Unknown keys abort with a usage message
// listing the defaults the binary registered.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
        std::exit(2);
      }
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        values_[arg.substr(2)] = "1";
      } else {
        values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    }
  }

  int64_t Int(const std::string& name, int64_t default_value) {
    defaults_[name] = std::to_string(default_value);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    used_.insert(*it);
    return std::stoll(it->second);
  }

  double Double(const std::string& name, double default_value) {
    defaults_[name] = std::to_string(default_value);
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    used_.insert(*it);
    return std::stod(it->second);
  }

  std::string Str(const std::string& name, const std::string& default_value) {
    defaults_[name] = default_value.empty() ? "\"\"" : default_value;
    auto it = values_.find(name);
    if (it == values_.end()) return default_value;
    used_.insert(*it);
    return it->second;
  }

  // Call after reading all flags: rejects unknown ones.
  void Validate() const {
    bool bad = false;
    for (const auto& [key, value] : values_) {
      if (defaults_.count(key) == 0) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        bad = true;
      }
    }
    if (bad) {
      std::fprintf(stderr, "known flags:\n");
      for (const auto& [key, value] : defaults_) {
        std::fprintf(stderr, "  --%s=%s\n", key.c_str(), value.c_str());
      }
      std::exit(2);
    }
  }

 private:
  std::map<std::string, std::string> values_;
  std::map<std::string, std::string> defaults_;
  std::map<std::string, std::string> used_;
};

// Collects one StatisticsReport per benchmark run (a table row / series
// point) and writes them as one JSON file for the --metrics-out flag:
//   {"benchmark": "...", "schema_version": 1,
//    "runs": [{"label": "...", "report": {...}}, ...]}
// Inactive (all methods no-ops) when constructed with an empty path, so
// benches can call it unconditionally.
class MetricsSink {
 public:
  MetricsSink(std::string benchmark, std::string path)
      : benchmark_(std::move(benchmark)), path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }

  void Add(const std::string& label, const StatisticsReport& report) {
    if (!enabled()) return;
    runs_.emplace_back(label, StatisticsToJson(report));
  }

  // Writes the collected runs; aborts on I/O failure (a benchmark whose
  // requested output cannot be written should not look like a success).
  void Write() const {
    if (!enabled()) return;
    std::ofstream out(path_, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "cannot open --metrics-out file %s\n",
                   path_.c_str());
      std::exit(1);
    }
    out << "{\"benchmark\":\"" << EscapeJson(benchmark_)
        << "\",\"schema_version\":1,\"runs\":[";
    for (size_t i = 0; i < runs_.size(); ++i) {
      if (i > 0) out << ",";
      out << "{\"label\":\"" << EscapeJson(runs_[i].first)
          << "\",\"report\":" << runs_[i].second << "}";
    }
    out << "]}\n";
    out.close();
    if (!out) {
      std::fprintf(stderr, "failed writing --metrics-out file %s\n",
                   path_.c_str());
      std::exit(1);
    }
    std::printf("metrics written to %s (%zu runs)\n", path_.c_str(),
                runs_.size());
  }

 private:
  static std::string EscapeJson(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are flat
      out += c;
    }
    return out;
  }

  std::string benchmark_;
  std::string path_;
  std::vector<std::pair<std::string, std::string>> runs_;  // label, json
};

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const std::string& header : headers_) {
      std::printf("%14s", header.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) std::printf("%14s", "----");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const std::string& cell : cells) {
      std::printf("%14s", cell.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(double value, int precision = 3) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

inline std::string FmtInt(int64_t value) { return std::to_string(value); }

inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace bench
}  // namespace caesar

#endif  // CAESAR_BENCH_BENCH_UTIL_H_
