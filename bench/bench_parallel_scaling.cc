// Parallel scaling of the persistent sharded executor (Section 6 / Fig. 8:
// the runtime is partition-parallel — each road segment owns its context
// vector and plan instance). Two workloads:
//
//  --workload=lr (default): a multi-partition Linear Road stream through
//    the optimized plan at growing worker counts; reports throughput,
//    speedup over serial, and the pool's own metrics.
//
//  --workload=skewed: the deliberately skewed synthetic stream
//    (SyntheticConfig::hot_partition_share — one hot partition carries
//    most of every tick's events and far more SEQ pairing work), run under
//    BOTH scheduler modes at every thread count. This is the scheduler
//    A/B: static pinning leaves the hot partition's worker saturated while
//    the rest idle at the barrier; work stealing spreads the queue. The
//    --skew-out JSON records the comparison for BENCH_baseline.json; the
//    per-tick imbalance and steal counters are the hardware-independent
//    gate signal (see tools/check_metrics_schema.py) — wall-clock speedup
//    from stealing additionally needs real hardware parallelism, so the
//    throughput gate applies only when hardware_threads >= 2 at recording
//    time.
//
// Derived-event counts are checked to be identical across all thread
// counts and scheduler modes (the determinism guarantee).
//
// Speedup depends on the hardware parallelism actually available: on an
// N-core machine the curve should approach min(threads, N, partitions per
// tick); on a single core it stays flat at ~1x.

#include <cstdio>
#include <fstream>
#include <thread>

#include "bench_util.h"
#include "harness.h"
#include "workloads/linear_road.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

// One measured (mode, threads) point of the skewed-workload comparison.
struct SkewRow {
  const char* mode;
  int threads;
  RunStats stats;
};

void WriteSkewJson(const std::string& path, double hot_share, int partitions,
                   Timestamp duration, const std::vector<SkewRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open --skew-out file %s\n", path.c_str());
    std::exit(1);
  }
  out << "{\"benchmark\":\"bench_parallel_scaling\",\"skew_schema_version\":1"
      << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
      << ",\"hot_share\":" << hot_share << ",\"partitions\":" << partitions
      << ",\"duration\":" << duration << ",\"rows\":[";
  for (size_t i = 0; i < rows.size(); ++i) {
    const RunStats& s = rows[i].stats;
    double events_per_s =
        s.cpu_seconds > 0
            ? static_cast<double>(s.input_events) / s.cpu_seconds
            : 0.0;
    if (i > 0) out << ",";
    out << "{\"mode\":\"" << rows[i].mode << "\",\"threads\":"
        << rows[i].threads << ",\"wall_s\":" << s.cpu_seconds
        << ",\"events_per_s\":" << events_per_s << ",\"events\":"
        << s.input_events << ",\"derived\":" << s.derived_events
        << ",\"ticks\":" << s.parallel_ticks << ",\"tasks\":"
        << s.parallel_tasks << ",\"imbalance\":" << s.shard_imbalance
        << ",\"steals\":" << s.tasks_stolen << "}";
  }
  out << "]}\n";
  out.close();
  if (!out) {
    std::fprintf(stderr, "failed writing --skew-out file %s\n", path.c_str());
    std::exit(1);
  }
  std::printf("skew comparison written to %s (%zu rows)\n", path.c_str(),
              rows.size());
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  std::string workload = flags.Str("workload", "lr");
  int roads = static_cast<int>(flags.Int("roads", 4));
  int segments = static_cast<int>(flags.Int("segments", 12));
  Timestamp duration = flags.Int("duration", 600);
  int replicas = static_cast<int>(flags.Int("replicas", 3));
  int max_threads = static_cast<int>(flags.Int("max_threads", 8));
  int repetitions = static_cast<int>(flags.Int("repetitions", 2));
  double accel = flags.Double("accel", 1000.0);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  int partitions = static_cast<int>(flags.Int("partitions", 16));
  int events_per_tick = static_cast<int>(flags.Int("events-per-tick", 4));
  double hot_share = flags.Double("hot-share", 0.9);
  std::string skew_out = flags.Str("skew-out", "");
  std::string metrics_name = flags.Str("metrics", "off");
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();

  // --metrics=off|engine|operator: telemetry granularity of the measured
  // engines, for quantifying the observability overhead (run off vs
  // operator and compare wall_s).
  MetricsGranularity granularity;
  if (!ParseMetricsGranularity(metrics_name, &granularity)) {
    std::fprintf(stderr, "unknown --metrics granularity: %s\n",
                 metrics_name.c_str());
    return 2;
  }
  bench::MetricsSink sink("bench_parallel_scaling", metrics_out);

  if (workload == "skewed") {
    bench::Banner(
        "Parallel scaling under partition skew: pinned vs stealing",
        "Section 6/Fig. 8 + Fig. 10a's hot segments: one partition owns "
        "most of the per-tick work; the scheduler A/B shows what work "
        "stealing buys back");
    std::printf("hardware threads: %u, partitions: %d (hot share %.2f)\n\n",
                std::thread::hardware_concurrency(), partitions, hot_share);

    SyntheticConfig config;
    config.duration = duration;
    config.num_partitions = partitions;
    config.events_per_tick = events_per_tick;
    config.hot_partition_share = hot_share;
    config.seed = seed;
    // One window spanning the run: the workload queries stay active, so
    // every tick carries the hot partition's full SEQ pairing cost. A
    // short `within` keeps the quadratic pairing cost bounded while still
    // concentrating work on the hot partition.
    config.windows = {{1, duration + 1}};
    config.assignment = SyntheticConfig::QueryAssignment::kAllWindows;
    config.queries_per_window = 2;
    config.query_within = 10;
    TypeRegistry registry;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    CAESAR_CHECK_OK(model.status());

    bench::Table table({"mode", "threads", "wall_s", "events_per_s",
                        "speedup", "imb_per_tick", "steals", "derived"});
    std::vector<SkewRow> rows;
    double serial_seconds = 0.0;
    int64_t serial_derived = -1;
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      for (SchedulerMode mode :
           {SchedulerMode::kPinned, SchedulerMode::kStealing}) {
        // A 1-thread engine has no pool; measure it once as the serial
        // baseline instead of twice under two names.
        if (threads == 1 && mode == SchedulerMode::kStealing) continue;
        const char* mode_name =
            threads == 1 ? "serial" : SchedulerModeName(mode);
        EngineOptions options;
        options.accel = accel;
        options.num_threads = threads;
        options.scheduler = mode;
        options.collect_outputs = false;
        options.metrics = granularity;
        StatisticsReport report;
        RunStats stats = bench::RunExperimentWithOptions(
            model.value(), stream, bench::PlanMode::kOptimized, options,
            repetitions, 0.2, sink.enabled() ? &report : nullptr);
        sink.Add(std::string(mode_name) + " threads=" +
                     std::to_string(threads),
                 report);
        if (serial_derived < 0) {
          serial_seconds = stats.cpu_seconds;
          serial_derived = stats.derived_events;
        } else {
          // Determinism guarantee: neither the thread count nor the
          // scheduler mode may change results.
          CAESAR_CHECK_EQ(stats.derived_events, serial_derived)
              << mode_name << " run diverged from serial at " << threads
              << " threads";
        }
        double events_per_s =
            stats.cpu_seconds > 0
                ? static_cast<double>(stats.input_events) / stats.cpu_seconds
                : 0.0;
        double speedup =
            stats.cpu_seconds > 0 ? serial_seconds / stats.cpu_seconds : 0.0;
        double imb_per_tick =
            stats.parallel_ticks > 0
                ? static_cast<double>(stats.shard_imbalance) /
                      static_cast<double>(stats.parallel_ticks)
                : 0.0;
        table.Row({mode_name, bench::FmtInt(threads),
                   bench::Fmt(stats.cpu_seconds), bench::Fmt(events_per_s, 0),
                   bench::Fmt(speedup, 2), bench::Fmt(imb_per_tick, 1),
                   bench::FmtInt(stats.tasks_stolen),
                   bench::FmtInt(stats.derived_events)});
        rows.push_back({mode_name, threads, stats});
      }
    }
    if (!skew_out.empty()) {
      WriteSkewJson(skew_out, hot_share, partitions, duration, rows);
    }
    sink.Write();
    return 0;
  }
  if (workload != "lr") {
    std::fprintf(stderr, "unknown --workload: %s (want lr|skewed)\n",
                 workload.c_str());
    return 2;
  }

  bench::Banner(
      "Parallel scaling: persistent sharded executor",
      "Section 6/Fig. 8: partition-parallel runtime; throughput over worker "
      "count on a multi-partition Linear Road run");
  std::printf("hardware threads: %u, partitions: %d roads x %d segments x 2 "
              "directions\n\n",
              std::thread::hardware_concurrency(), roads, segments);

  LinearRoadConfig config;
  config.num_xways = roads;
  config.num_segments = segments;
  config.duration = duration;
  config.seed = seed;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  LinearRoadModelConfig model_config;
  model_config.processing_replicas = replicas;
  auto model = MakeLinearRoadModel(model_config, &registry);
  CAESAR_CHECK_OK(model.status());

  bench::Table table({"threads", "events", "derived", "wall_s", "events_per_s",
                      "speedup", "pool_ticks", "imbalance", "barrier_s"});
  double serial_seconds = 0.0;
  int64_t serial_derived = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    EngineOptions options;
    options.accel = accel;
    options.num_threads = threads;
    options.collect_outputs = false;
    options.metrics = granularity;
    StatisticsReport report;
    RunStats stats = bench::RunExperimentWithOptions(
        model.value(), stream, bench::PlanMode::kOptimized, options,
        repetitions, 0.2, sink.enabled() ? &report : nullptr);
    sink.Add("threads=" + std::to_string(threads), report);
    if (threads == 1) {
      serial_seconds = stats.cpu_seconds;
      serial_derived = stats.derived_events;
    } else {
      // Determinism guarantee: the parallel merge must not change results.
      CAESAR_CHECK_EQ(stats.derived_events, serial_derived)
          << "parallel run diverged from serial at " << threads << " threads";
    }
    double throughput =
        stats.cpu_seconds > 0
            ? static_cast<double>(stats.input_events) / stats.cpu_seconds
            : 0.0;
    double speedup =
        stats.cpu_seconds > 0 ? serial_seconds / stats.cpu_seconds : 0.0;
    table.Row({bench::FmtInt(threads), bench::FmtInt(stats.input_events),
               bench::FmtInt(stats.derived_events),
               bench::Fmt(stats.cpu_seconds), bench::Fmt(throughput, 0),
               bench::Fmt(speedup, 2), bench::FmtInt(stats.parallel_ticks),
               bench::FmtInt(stats.shard_imbalance),
               bench::Fmt(stats.barrier_wait_seconds)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
