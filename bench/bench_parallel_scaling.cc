// Parallel scaling of the persistent sharded executor (Section 6 / Fig. 8:
// the runtime is partition-parallel — each road segment owns its context
// vector and plan instance). Runs a multi-partition Linear Road stream
// through the optimized plan at growing worker counts and reports
// throughput, speedup over serial, and the pool's own metrics (ticks,
// shard imbalance, barrier wait). Workers are created once per engine;
// there is no per-tick thread spawn/join. Derived-event counts are checked
// to be identical across all thread counts (the determinism guarantee).
//
// Speedup depends on the hardware parallelism actually available: on an
// N-core machine the curve should approach min(threads, N, partitions per
// tick); on a single core it stays flat at ~1x.

#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "harness.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int roads = static_cast<int>(flags.Int("roads", 4));
  int segments = static_cast<int>(flags.Int("segments", 12));
  Timestamp duration = flags.Int("duration", 600);
  int replicas = static_cast<int>(flags.Int("replicas", 3));
  int max_threads = static_cast<int>(flags.Int("max_threads", 8));
  int repetitions = static_cast<int>(flags.Int("repetitions", 2));
  double accel = flags.Double("accel", 1000.0);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_name = flags.Str("metrics", "off");
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();

  // --metrics=off|engine|operator: telemetry granularity of the measured
  // engines, for quantifying the observability overhead (run off vs
  // operator and compare wall_s).
  MetricsGranularity granularity;
  if (!ParseMetricsGranularity(metrics_name, &granularity)) {
    std::fprintf(stderr, "unknown --metrics granularity: %s\n",
                 metrics_name.c_str());
    return 2;
  }
  bench::MetricsSink sink("bench_parallel_scaling", metrics_out);

  bench::Banner(
      "Parallel scaling: persistent sharded executor",
      "Section 6/Fig. 8: partition-parallel runtime; throughput over worker "
      "count on a multi-partition Linear Road run");
  std::printf("hardware threads: %u, partitions: %d roads x %d segments x 2 "
              "directions\n\n",
              std::thread::hardware_concurrency(), roads, segments);

  LinearRoadConfig config;
  config.num_xways = roads;
  config.num_segments = segments;
  config.duration = duration;
  config.seed = seed;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  LinearRoadModelConfig model_config;
  model_config.processing_replicas = replicas;
  auto model = MakeLinearRoadModel(model_config, &registry);
  CAESAR_CHECK_OK(model.status());

  bench::Table table({"threads", "events", "derived", "wall_s", "events_per_s",
                      "speedup", "pool_ticks", "imbalance", "barrier_s"});
  double serial_seconds = 0.0;
  int64_t serial_derived = 0;
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    EngineOptions options;
    options.accel = accel;
    options.num_threads = threads;
    options.collect_outputs = false;
    options.metrics = granularity;
    StatisticsReport report;
    RunStats stats = bench::RunExperimentWithOptions(
        model.value(), stream, bench::PlanMode::kOptimized, options,
        repetitions, 0.2, sink.enabled() ? &report : nullptr);
    sink.Add("threads=" + std::to_string(threads), report);
    if (threads == 1) {
      serial_seconds = stats.cpu_seconds;
      serial_derived = stats.derived_events;
    } else {
      // Determinism guarantee: the parallel merge must not change results.
      CAESAR_CHECK_EQ(stats.derived_events, serial_derived)
          << "parallel run diverged from serial at " << threads << " threads";
    }
    double throughput =
        stats.cpu_seconds > 0
            ? static_cast<double>(stats.input_events) / stats.cpu_seconds
            : 0.0;
    double speedup =
        stats.cpu_seconds > 0 ? serial_seconds / stats.cpu_seconds : 0.0;
    table.Row({bench::FmtInt(threads), bench::FmtInt(stats.input_events),
               bench::FmtInt(stats.derived_events),
               bench::Fmt(stats.cpu_seconds), bench::Fmt(throughput, 0),
               bench::Fmt(speedup, 2), bench::FmtInt(stats.parallel_ticks),
               bench::FmtInt(stats.shard_imbalance),
               bench::Fmt(stats.barrier_wait_seconds)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
