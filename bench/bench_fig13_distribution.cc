// Reproduces Fig. 13: maximal latency over a growing event query workload
// for three context window placements, on a stream whose rate ramps up over
// the run (as in Linear Road): windows clustered in the low-rate prefix,
// uniformly spread, and clustered in the high-rate tail.
//
// The paper's qualitative result: the placement determines how much of the
// (rate-weighted) stream the workload can be suspended for, so one
// placement stays nearly flat in the number of queries while the others
// grow linearly; the paper then standardizes on the uniform placement for
// all following experiments. Note on direction: with time-defined windows
// the flat curve is the one whose windows sit in the *low-rate* region
// (little active work at the peak); see EXPERIMENTS.md for the mapping to
// the paper's skew labels.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Timestamp duration = flags.Int("duration", 1500);
  Timestamp length = flags.Int("win_len", 150);
  int num_windows = static_cast<int>(flags.Int("windows", 2));
  int events_per_tick = static_cast<int>(flags.Int("events_per_tick", 3));
  double accel = flags.Double("accel", 600.0);
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig13_distribution", metrics_out);

  bench::Banner("Context window distribution",
                "Fig. 13: max latency over #queries for start-skewed / "
                "uniform / end-skewed window placement on a ramping stream");

  bench::Table table({"queries", "start_skew_s", "uniform_s", "end_skew_s"});
  for (int queries = 4; queries <= 20; queries += 4) {
    double latency[3];
    for (int placement : {-1, 0, 1}) {
      SyntheticConfig config;
      config.duration = duration;
      config.events_per_tick = events_per_tick;
      config.ramp_start_fraction = 0.2;  // rate grows 5x over the run
      config.windows = PlaceWindows(num_windows, length, duration, placement);
      config.query_within = 30;
      config.assignment = SyntheticConfig::QueryAssignment::kAllWindows;
    config.queries_per_window = queries;
      TypeRegistry registry;
      EventBatch stream = GenerateSyntheticStream(config, &registry);
      auto model = MakeSyntheticModel(config, &registry);
      CAESAR_CHECK_OK(model.status());
      StatisticsReport report;
      RunStats stats = bench::RunExperiment(
          model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3,
          0.2, sink.enabled() ? &report : nullptr);
      sink.Add("queries=" + std::to_string(queries) +
                   "/placement=" + std::to_string(placement),
               report);
      latency[placement + 1] = stats.max_latency;
    }
    table.Row({bench::FmtInt(queries), bench::Fmt(latency[0]),
               bench::Fmt(latency[1]), bench::Fmt(latency[2])});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
