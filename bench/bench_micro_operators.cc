// Micro-benchmarks of the CAESAR algebra operators and runtime primitives
// (google-benchmark): per-event costs of filter, projection, sequence
// matching (with and without pushed predicates), sliding aggregation, the
// context bit vector, and expression evaluation. These numbers ground the
// cost model's relative unit costs.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "bench_util.h"

#include "algebra/aggregate_op.h"
#include "algebra/basic_ops.h"
#include "algebra/context_ops.h"
#include "algebra/pattern_op.h"
#include "common/rng.h"
#include "expr/compiled.h"
#include "expr/parser.h"
#include "runtime/context_vector.h"

namespace caesar {
namespace {

// Shared fixture data: a Reading(seg, value, sec) stream.
class OperatorBench {
 public:
  OperatorBench() : contexts_(4, 0) {
    type_ = registry_.RegisterOrGet("R", {{"seg", ValueType::kInt},
                                          {"value", ValueType::kInt},
                                          {"sec", ValueType::kInt}});
    ctx_.contexts = &contexts_;
    ctx_.registry = &registry_;
    ctx_.ops_counter = &ops_;
    Rng rng(7);
    for (Timestamp t = 0; t < 4096; ++t) {
      batch_.push_back(MakeEvent(
          type_, t, {Value(int64_t{1}), Value(rng.Uniform(0, 9)), Value(t)}));
    }
  }

  std::shared_ptr<const CompiledExpr> Predicate(const std::string& text,
                                                const BindingSet& bindings) {
    auto expr = ParseExpr(text);
    auto compiled = Compile(expr.value(), bindings);
    return std::shared_ptr<const CompiledExpr>(std::move(compiled).value());
  }

  BindingSet OneVar(const char* name) {
    BindingSet bindings;
    bindings.Add({name, type_, &registry_.type(type_).schema});
    return bindings;
  }

  TypeRegistry registry_;
  TypeId type_;
  ContextBitVector contexts_;
  uint64_t ops_ = 0;
  OpExecContext ctx_;
  EventBatch batch_;
};

OperatorBench& Fixture() {
  static OperatorBench* fixture = new OperatorBench();
  return *fixture;
}

void BM_FilterOp(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  FilterOp filter(fx.Predicate("r.value > 4", fx.OneVar("r")));
  for (auto _ : state) {
    EventBatch out;
    filter.Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_FilterOp);

void BM_ProjectionOp(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  TypeId out_type = fx.registry_.RegisterOrGet(
      "Out", {{"value", ValueType::kInt}});
  ProjectionOp projection(out_type, {fx.Predicate("r.value", fx.OneVar("r"))});
  for (auto _ : state) {
    EventBatch out;
    projection.Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_ProjectionOp);

std::unique_ptr<PatternOp> MakeSeq(OperatorBench& fx, bool pushed) {
  BindingSet bindings;
  bindings.Add({"a", fx.type_, &fx.registry_.type(fx.type_).schema});
  bindings.Add({"b", fx.type_, &fx.registry_.type(fx.type_).schema});
  auto config = std::make_shared<PatternOpConfig>();
  config->positions.push_back({fx.type_, false, {}});
  PatternOpConfig::Position second;
  second.type_id = fx.type_;
  if (pushed) {
    second.predicates.push_back(fx.Predicate("a.value = b.value", bindings));
  }
  config->positions.push_back(std::move(second));
  config->within = 32;
  config->output_type = fx.registry_.RegisterOrGet(
      "$bench_seq", {{"a.seg", ValueType::kInt},
                     {"a.value", ValueType::kInt},
                     {"a.sec", ValueType::kInt},
                     {"b.seg", ValueType::kInt},
                     {"b.value", ValueType::kInt},
                     {"b.sec", ValueType::kInt}});
  config->description = "SEQ(R a, R b)";
  return std::make_unique<PatternOp>(config);
}

void BM_SeqPatternPushedPredicates(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  for (auto _ : state) {
    auto seq = MakeSeq(fx, /*pushed=*/true);
    EventBatch out;
    seq->Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_SeqPatternPushedPredicates);

void BM_SeqPatternUnpushed(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  for (auto _ : state) {
    auto seq = MakeSeq(fx, /*pushed=*/false);
    EventBatch out;
    seq->Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_SeqPatternUnpushed);

void BM_AggregateOp(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = fx.type_;
  config->group_by = {0};
  config->aggregates = {{AggregateFunc::kCount, -1}, {AggregateFunc::kAvg, 1}};
  config->window_length = 64;
  config->output_type = fx.registry_.RegisterOrGet(
      "$bench_agg", {{"seg", ValueType::kInt},
                     {"cnt", ValueType::kInt},
                     {"avg", ValueType::kDouble}});
  config->description = "bench";
  for (auto _ : state) {
    AggregateOp agg(config);
    EventBatch out;
    agg.Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_AggregateOp);

void BM_ContextWindowProbe(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  ContextWindowOp window({1}, "bench");
  fx.contexts_.Initiate(1, 0);
  for (auto _ : state) {
    EventBatch out;
    window.Process(fx.batch_, &out, &fx.ctx_);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * fx.batch_.size());
}
BENCHMARK(BM_ContextWindowProbe);

void BM_ContextBitVectorTransitions(benchmark::State& state) {
  ContextBitVector vector(16, 0);
  Timestamp t = 0;
  for (auto _ : state) {
    vector.Initiate(3, ++t);
    vector.Initiate(5, ++t);
    benchmark::DoNotOptimize(vector.IsActive(5));
    vector.Terminate(3, ++t);
    vector.Terminate(5, ++t);
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ContextBitVectorTransitions);

void BM_ExpressionEval(benchmark::State& state) {
  OperatorBench& fx = Fixture();
  auto predicate =
      fx.Predicate("r.value * 2 + 1 > 5 AND r.seg = 1", fx.OneVar("r"));
  EventPtr event = fx.batch_[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(predicate->EvalBool(&event));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExpressionEval);

}  // namespace
}  // namespace caesar

// Custom main instead of BENCHMARK_MAIN(): peel off --metrics-out before
// google-benchmark sees the (unrecognized) flag. The micro-benchmarks call
// operators directly without an Engine, so the emitted metrics file carries
// an empty runs array — schema-valid, like bench_fig11a_optimizer.
int main(int argc, char** argv) {
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const std::string prefix = "--metrics-out=";
    if (arg.rfind(prefix, 0) == 0) {
      metrics_out = arg.substr(prefix.size());
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  caesar::bench::MetricsSink sink("bench_micro_operators", metrics_out);
  sink.Write();
  return 0;
}
