// Reproduces Fig. 11(a): CPU time of multi-query plan search, varying the
// number of operators in the query plan. The context-independent exhaustive
// search (set partitions x subset-DP ordering) grows exponentially; the
// context-aware greedy search (grouping given by the grouped context
// windows) stays flat. The paper reports a 2712x gap at 24 operators; the
// absolute gap depends on hardware, the exponential-vs-flat shape is the
// result.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "optimizer/mqo.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int min_ops = static_cast<int>(flags.Int("min_ops", 8));
  int max_ops = static_cast<int>(flags.Int("max_ops", 24));
  int ops_per_query = static_cast<int>(flags.Int("ops_per_query", 4));
  int num_contexts = static_cast<int>(flags.Int("contexts", 3));
  double sharing = flags.Double("sharing", 0.5);
  int repetitions = static_cast<int>(flags.Int("reps", 3));
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 5));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  // Plan search runs no engine; the sink still emits a schema-valid file
  // with an empty runs array so callers can treat all benches uniformly.
  bench::MetricsSink sink("bench_fig11a_optimizer", metrics_out);

  bench::Banner("CAESAR optimizer vs exhaustive search",
                "Fig. 11(a): plan-search CPU time (log2 seconds) over the "
                "number of operators in a query plan");

  bench::Table table({"operators", "exh_sec", "greedy_sec", "speedup",
                      "log2_exh", "log2_greedy", "exh_cands", "grd_cands"});
  for (int ops = min_ops; ops <= max_ops; ops += ops_per_query) {
    double exhaustive_sec = 0.0, greedy_sec = 0.0;
    uint64_t exhaustive_cands = 0, greedy_cands = 0;
    for (int rep = 0; rep < repetitions; ++rep) {
      Rng rng(seed + rep);
      MqoWorkload workload = MakeSyntheticWorkload(
          ops, ops_per_query, num_contexts, sharing, &rng);
      MqoSearchResult exhaustive = ExhaustiveSearch(workload);
      MqoSearchResult greedy = GreedySearch(workload);
      exhaustive_sec += exhaustive.seconds;
      greedy_sec += greedy.seconds;
      exhaustive_cands += exhaustive.candidates;
      greedy_cands += greedy.candidates;
    }
    exhaustive_sec /= repetitions;
    greedy_sec = std::max(greedy_sec / repetitions, 1e-9);
    table.Row({bench::FmtInt(ops), bench::Fmt(exhaustive_sec, 6),
               bench::Fmt(greedy_sec, 9),
               bench::Fmt(exhaustive_sec / greedy_sec, 1),
               bench::Fmt(std::log2(std::max(exhaustive_sec, 1e-9)), 2),
               bench::Fmt(std::log2(greedy_sec), 2),
               bench::FmtInt(static_cast<int64_t>(exhaustive_cands /
                                                  repetitions)),
               bench::FmtInt(static_cast<int64_t>(greedy_cands /
                                                  repetitions))});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
