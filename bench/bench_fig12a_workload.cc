// Reproduces Fig. 12(a): maximal latency of context-aware vs
// context-independent processing while scaling the event query workload.
// Linear Road series: the number of context processing queries grows by
// replicating the benchmark queries (4 per replica). PAM series: the number
// of heart-rate queries attached to the active context grows.
// The paper reports an ~8x win at 10 LR queries and a comparable win on the
// PAM data set at 20 queries.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/linear_road.h"
#include "workloads/pamap.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int max_replicas = static_cast<int>(flags.Int("max_replicas", 5));
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  double accel = flags.Double("accel", 2000.0);
  int pam_subjects = static_cast<int>(flags.Int("pam_subjects", 10));
  Timestamp pam_duration = flags.Int("pam_duration", 1500);
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig12a_workload", metrics_out);

  bench::Banner("Scaling the event query workload",
                "Fig. 12(a): max latency, context-aware (CA) vs "
                "context-independent (CI); paper: ~8x at 10 LR queries");

  {
    std::printf("--- Linear Road ---\n");
    LinearRoadConfig config;
    config.num_xways = 1;
    config.num_segments = segments;
    config.duration = duration;
    config.seed = seed;
    TypeRegistry registry;
    EventBatch stream = GenerateLinearRoadStream(config, &registry);

    bench::Table table(
        {"queries", "ca_lat_s", "ci_lat_s", "win_ratio", "cpu_ratio", "ca_ops", "ci_ops"});
    for (int replicas = 1; replicas <= max_replicas; ++replicas) {
      LinearRoadModelConfig model_config;
      model_config.processing_replicas = replicas;
      auto model = MakeLinearRoadModel(model_config, &registry);
      CAESAR_CHECK_OK(model.status());
      StatisticsReport ca_report, ci_report;
      RunStats ca = bench::RunExperiment(
          model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3,
          0.2, sink.enabled() ? &ca_report : nullptr);
      RunStats ci = bench::RunExperiment(
          model.value(), stream, bench::PlanMode::kContextIndependent, accel,
          1, 3, 0.2, sink.enabled() ? &ci_report : nullptr);
      sink.Add("lr_queries=" + std::to_string(replicas * 4) + "/ca",
               ca_report);
      sink.Add("lr_queries=" + std::to_string(replicas * 4) + "/ci",
               ci_report);
      table.Row({bench::FmtInt(replicas * 4), bench::Fmt(ca.max_latency),
                 bench::Fmt(ci.max_latency),
                 bench::Fmt(ci.max_latency / ca.max_latency, 1),
                 bench::Fmt(ci.cpu_seconds / ca.cpu_seconds, 1),
                 bench::FmtInt(static_cast<int64_t>(ca.ops_executed)),
                 bench::FmtInt(static_cast<int64_t>(ci.ops_executed))});
    }
  }

  {
    std::printf("\n--- Physical Activity Monitoring ---\n");
    PamapConfig config;
    config.num_subjects = pam_subjects;
    config.duration = pam_duration;
    // Keep the exercise phases covering ~20% of the (scaled-down) run, as
    // in the full-length data set.
    config.exercise_phases_per_subject = 2.0;
    config.exercise_duration = pam_duration / 10;
    config.seed = seed;
    TypeRegistry registry;
    EventBatch stream = GeneratePamapStream(config, &registry);

    bench::Table table(
        {"queries", "ca_lat_s", "ci_lat_s", "win_ratio", "cpu_ratio", "ca_ops", "ci_ops"});
    for (int queries = 4; queries <= max_replicas * 4; queries += 4) {
      PamapModelConfig model_config;
      model_config.active_queries = queries;
      auto model = MakePamapModel(model_config, &registry);
      CAESAR_CHECK_OK(model.status());
      StatisticsReport ca_report, ci_report;
      RunStats ca = bench::RunExperiment(
          model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3,
          0.2, sink.enabled() ? &ca_report : nullptr);
      RunStats ci = bench::RunExperiment(
          model.value(), stream, bench::PlanMode::kContextIndependent, accel,
          1, 3, 0.2, sink.enabled() ? &ci_report : nullptr);
      sink.Add("pam_queries=" + std::to_string(queries) + "/ca", ca_report);
      sink.Add("pam_queries=" + std::to_string(queries) + "/ci", ci_report);
      table.Row({bench::FmtInt(queries), bench::Fmt(ca.max_latency),
                 bench::Fmt(ci.max_latency),
                 bench::Fmt(ci.max_latency / ca.max_latency, 1),
                 bench::Fmt(ci.cpu_seconds / ca.cpu_seconds, 1),
                 bench::FmtInt(static_cast<int64_t>(ca.ops_executed)),
                 bench::FmtInt(static_cast<int64_t>(ci.ops_executed))});
    }
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
