// Interpreted-vs-compiled pattern engine ablation on the SEQ hot path.
//
// For each SEQ depth 1..max_depth the workload is a chained sequence query
// (SEQ(S0, S1, ..., Sd-1) WITHIN w, consecutive positions joined on x,
// PARTITION BY seg) plus a heavy stream of Noise events no position
// awaits. The interpreted matcher pays O(live partials) for every noise
// event (it scans the partials deque before discovering the type matches
// nothing); the compiled automaton dispatches on type and pays O(1). The
// gap therefore widens with depth — depth 1 compiles to the pass-through
// form where both engines do the same work.
//
// Derived-event counts are checked identical between the engines (the
// automaton is a semantics-preserving rewrite; the full byte-level
// guarantee lives in the differential harness and
// parallel_determinism_test).
//
// --ablation-out writes the per-depth comparison as a JSON array, which
// tools/update_bench_baseline.py folds into BENCH_baseline.json.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness.h"
#include "query/parser.h"

namespace caesar {
namespace {

// Model text for depth d: types S0..S{d-1} + Noise, one chain query.
std::string ChainModelText(int depth) {
  std::string text;
  for (int i = 0; i < depth; ++i) {
    text += "TYPE S" + std::to_string(i) + "(seg int, x int);\n";
  }
  text += "TYPE Noise(seg int, x int);\n";
  text += "TYPE Out(seg int, x int);\n";
  text += "CONTEXTS run DEFAULT run;\n";
  text += "PARTITION BY seg;\n";
  text += "QUERY chain\n";
  const std::string last = "a" + std::to_string(depth - 1);
  text += "DERIVE Out(a0.seg AS seg, " + last + ".x AS x)\n";
  if (depth == 1) {
    text += "PATTERN S0 a0\nWHERE a0.x >= 0;\n";
    return text;
  }
  text += "PATTERN SEQ(";
  for (int i = 0; i < depth; ++i) {
    if (i > 0) text += ", ";
    text += "S" + std::to_string(i) + " a" + std::to_string(i);
  }
  text += ") WITHIN 40\nWHERE ";
  // Consecutive positions join on x: each chain cohort matches exactly
  // once, so the match count stays linear in the stream length.
  for (int i = 1; i < depth; ++i) {
    if (i > 1) text += " AND ";
    text += "a" + std::to_string(i) + ".x = a" + std::to_string(i - 1) + ".x";
  }
  text += ";\n";
  return text;
}

// Per tick and segment: one signal event (cycling S0..S{d-1}, x = the
// cohort id t/d so only aligned chains join) and `noise` Noise events.
EventBatch ChainStream(int depth, Timestamp duration, int segments, int noise,
                       const TypeRegistry& registry) {
  std::vector<TypeId> signal_types;
  for (int i = 0; i < depth; ++i) {
    signal_types.push_back(registry.Lookup("S" + std::to_string(i)));
  }
  const TypeId noise_type = registry.Lookup("Noise");
  EventBatch stream;
  for (Timestamp t = 0; t < duration; ++t) {
    for (int seg = 0; seg < segments; ++seg) {
      const int64_t cohort = static_cast<int64_t>(t) / depth;
      stream.push_back(MakeEvent(signal_types[t % depth], t,
                                 {Value(int64_t{seg}), Value(cohort)}));
      for (int n = 0; n < noise; ++n) {
        stream.push_back(MakeEvent(noise_type, t,
                                   {Value(int64_t{seg}), Value(int64_t{n})}));
      }
    }
  }
  return stream;
}

struct AblationRow {
  int depth = 0;
  int64_t derived = 0;
  double interpreted_wall_s = 0.0;
  double compiled_wall_s = 0.0;
  uint64_t interpreted_ops = 0;
  uint64_t compiled_ops = 0;
  double speedup = 0.0;
};

void WriteAblation(const std::string& path,
                   const std::vector<AblationRow>& rows) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot open --ablation-out file %s\n", path.c_str());
    std::exit(1);
  }
  out << "[\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const AblationRow& row = rows[i];
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "  {\"depth\": %d, \"derived\": %lld, "
                  "\"interpreted_wall_s\": %.6f, \"compiled_wall_s\": %.6f, "
                  "\"interpreted_ops\": %llu, \"compiled_ops\": %llu, "
                  "\"speedup\": %.4f}%s\n",
                  row.depth, static_cast<long long>(row.derived),
                  row.interpreted_wall_s, row.compiled_wall_s,
                  static_cast<unsigned long long>(row.interpreted_ops),
                  static_cast<unsigned long long>(row.compiled_ops),
                  row.speedup, i + 1 < rows.size() ? "," : "");
    out << buffer;
  }
  out << "]\n";
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int max_depth = static_cast<int>(flags.Int("max_depth", 4));
  Timestamp duration = flags.Int("duration", 400);
  int segments = static_cast<int>(flags.Int("segments", 8));
  int noise = static_cast<int>(flags.Int("noise", 6));
  int repetitions = static_cast<int>(flags.Int("repetitions", 3));
  std::string metrics_name = flags.Str("metrics", "off");
  std::string metrics_out = flags.Str("metrics-out", "");
  std::string ablation_out = flags.Str("ablation-out", "");
  flags.Validate();

  MetricsGranularity granularity;
  if (!ParseMetricsGranularity(metrics_name, &granularity)) {
    std::fprintf(stderr, "unknown --metrics granularity: %s\n",
                 metrics_name.c_str());
    return 2;
  }
  bench::MetricsSink sink("bench_pattern_compile", metrics_out);

  bench::Banner(
      "Pattern engine ablation: interpreted vs compiled automata",
      "SEQ chain + noise events per depth; compiled dispatch skips the "
      "partial-match scan for types no transition awaits");

  bench::Table table({"depth", "events", "derived", "interp_s", "compiled_s",
                      "interp_ops", "compiled_ops", "speedup"});
  std::vector<AblationRow> rows;
  for (int depth = 1; depth <= max_depth; ++depth) {
    TypeRegistry registry;
    auto model = ParseModel(ChainModelText(depth), &registry);
    CAESAR_CHECK_OK(model.status());
    EventBatch stream =
        ChainStream(depth, duration, segments, noise, registry);

    AblationRow row;
    row.depth = depth;
    RunStats interpreted;
    RunStats compiled;
    for (PatternEngine engine :
         {PatternEngine::kInterpreted, PatternEngine::kCompiled}) {
      EngineOptions options;
      options.collect_outputs = false;
      options.metrics = granularity;
      options.pattern_engine = engine;
      StatisticsReport report;
      RunStats stats = bench::RunExperimentWithOptions(
          model.value(), stream, bench::PlanMode::kOptimized, options,
          repetitions, 0.2, sink.enabled() ? &report : nullptr);
      sink.Add("depth=" + std::to_string(depth) +
                   "/engine=" + PatternEngineName(engine),
               report);
      if (engine == PatternEngine::kInterpreted) {
        interpreted = stats;
      } else {
        compiled = stats;
      }
    }
    CAESAR_CHECK_EQ(interpreted.derived_events, compiled.derived_events)
        << "engines diverged at depth " << depth;
    row.derived = compiled.derived_events;
    row.interpreted_wall_s = interpreted.cpu_seconds;
    row.compiled_wall_s = compiled.cpu_seconds;
    row.interpreted_ops = interpreted.ops_executed;
    row.compiled_ops = compiled.ops_executed;
    row.speedup = compiled.cpu_seconds > 0
                      ? interpreted.cpu_seconds / compiled.cpu_seconds
                      : 0.0;
    rows.push_back(row);
    table.Row({bench::FmtInt(depth), bench::FmtInt(interpreted.input_events),
               bench::FmtInt(row.derived), bench::Fmt(row.interpreted_wall_s),
               bench::Fmt(row.compiled_wall_s),
               bench::FmtInt(static_cast<int64_t>(row.interpreted_ops)),
               bench::FmtInt(static_cast<int64_t>(row.compiled_ops)),
               bench::Fmt(row.speedup, 2)});
  }
  sink.Write();
  if (!ablation_out.empty()) WriteAblation(ablation_out, rows);
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
