// Ablation: context-window position in the query chains (Theorem 1
// empirically). Position 0 is full push-down (Fig. 6b); higher positions
// slide the context window up the chain towards the Fig. 6a shape. Work
// and CPU must be monotone non-decreasing in the position; derived events
// must not change.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "plan/translator.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int segments = static_cast<int>(flags.Int("segments", 10));
  Timestamp duration = flags.Int("duration", 900);
  int replicas = static_cast<int>(flags.Int("replicas", 3));
  uint64_t seed = static_cast<uint64_t>(flags.Int("seed", 42));
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_ablation_pushdown", metrics_out);

  bench::Banner("Ablation: context window push-down position",
                "Theorem 1: expected cost is minimal with the context "
                "window at the bottom of the chain");

  LinearRoadConfig config;
  config.num_segments = segments;
  config.duration = duration;
  config.seed = seed;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  LinearRoadModelConfig model_config;
  model_config.processing_replicas = replicas;
  auto model = MakeLinearRoadModel(model_config, &registry);
  CAESAR_CHECK_OK(model.status());

  bench::Table table(
      {"cw_position", "ops", "cpu_s", "derived", "suspended"});
  for (int position = 0; position <= 3; ++position) {
    PlanOptions options;
    options.force_cw_position = position;
    options.push_predicates_into_pattern = false;
    auto plan = TranslateModel(model.value(), options);
    CAESAR_CHECK_OK(plan.status());
    EngineOptions engine_options;
    engine_options.collect_outputs = false;
    if (sink.enabled()) {
      engine_options.gather_statistics = true;
      engine_options.metrics = MetricsGranularity::kOperator;
    }
    Engine engine(std::move(plan).value(), engine_options);
    RunStats stats = engine.Run(stream).value();
    if (sink.enabled()) {
      sink.Add("cw_position=" + std::to_string(position),
               engine.CollectStatistics());
    }
    table.Row({bench::FmtInt(position),
               bench::FmtInt(static_cast<int64_t>(stats.ops_executed)),
               bench::Fmt(stats.cpu_seconds, 4),
               bench::FmtInt(stats.derived_events),
               bench::FmtInt(stats.suspended_chains)});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
