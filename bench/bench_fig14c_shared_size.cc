// Reproduces Fig. 14(c): maximal latency of shared vs non-shared execution
// while varying the shared workload size (queries per context window). Two
// stream profiles stand in for the paper's two data sets: an LR-like
// profile (few partitions, high per-partition rate) and a PAM-like profile
// (many partitions — subjects — at a lower per-partition rate). The paper
// reports a ~9x gain at 10 shared queries on Linear Road, with a similar
// trend on the PAM data set.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "harness.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

void RunProfile(const std::string& label, int partitions, int events_per_tick,
                int windows, Timestamp length, Timestamp overlap, double accel,
                bench::MetricsSink* sink) {
  std::printf("--- %s profile ---\n", label.c_str());
  bench::Table table(
      {"queries", "shared_s", "nonshared_s", "gain", "cpu_gain", "sh_ops", "ns_ops"});
  for (int queries = 2; queries <= 10; queries += 2) {
    SyntheticConfig config;
    config.windows = LayOutWindows(windows, length, overlap, 50);
    config.duration = config.windows.back().end + 100;
    config.num_partitions = partitions;
    config.events_per_tick = events_per_tick;
    config.query_within = 30;
    config.queries_per_window = queries;
    config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
    TypeRegistry registry;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    CAESAR_CHECK_OK(model.status());
    StatisticsReport shared_report, nonshared_report;
    RunStats shared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink->enabled() ? &shared_report : nullptr);
    RunStats nonshared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kNonShared, accel, 1, 3, 0.2,
        sink->enabled() ? &nonshared_report : nullptr);
    sink->Add(label + "/queries=" + std::to_string(queries) + "/shared",
              shared_report);
    sink->Add(label + "/queries=" + std::to_string(queries) + "/nonshared",
              nonshared_report);
    table.Row({bench::FmtInt(queries), bench::Fmt(shared.max_latency),
               bench::Fmt(nonshared.max_latency),
               bench::Fmt(nonshared.max_latency / shared.max_latency, 1),
               bench::Fmt(nonshared.cpu_seconds / shared.cpu_seconds, 1),
               bench::FmtInt(static_cast<int64_t>(shared.ops_executed)),
               bench::FmtInt(static_cast<int64_t>(nonshared.ops_executed))});
  }
  std::printf("\n");
}

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  int windows = static_cast<int>(flags.Int("windows", 12));
  Timestamp length = flags.Int("win_len", 150);
  Timestamp overlap = flags.Int("overlap", 100);
  double accel = flags.Double("accel", 2000.0);
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig14c_shared_size", metrics_out);

  bench::Banner("Varying the shared workload size",
                "Fig. 14(c): max latency, shared vs non-shared, over the "
                "number of shareable queries per window; paper: ~9x at 10 "
                "(LR), similar trend on PAM");

  RunProfile("lr", /*partitions=*/2, /*events_per_tick=*/2, windows, length,
             overlap, accel, &sink);
  RunProfile("pam", /*partitions=*/6, /*events_per_tick=*/1, windows, length,
             overlap, accel, &sink);
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
