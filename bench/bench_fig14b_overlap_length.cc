// Reproduces Fig. 14(b): maximal latency of shared vs non-shared execution
// while varying the length of the context-window overlap (0..16 "minutes"
// in the paper, here ticks). Longer overlaps mean more duplicated work for
// the non-shared execution; the paper reports a ~6x gain at 15 minutes of
// overlap, growing linearly with the overlap length.

#include <cstdio>

#include "bench_util.h"
#include "harness.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

int Main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  Timestamp length = flags.Int("win_len", 150);
  int windows = static_cast<int>(flags.Int("windows", 30));
  int queries = static_cast<int>(flags.Int("queries", 4));
  int events_per_tick = static_cast<int>(flags.Int("events_per_tick", 3));
  double accel = flags.Double("accel", 2000.0);
  std::string metrics_out = flags.Str("metrics-out", "");
  flags.Validate();
  bench::MetricsSink sink("bench_fig14b_overlap_length", metrics_out);

  bench::Banner("Varying the context window overlap length",
                "Fig. 14(b): max latency, shared vs non-shared, over the "
                "overlap length; paper: ~6x at 15 min overlap");

  bench::Table table(
      {"overlap", "shared_s", "nonshared_s", "gain", "cpu_gain", "sh_ops", "ns_ops"});
  for (Timestamp overlap : {0, 20, 40, 60, 80, 100, 120, 140}) {
    SyntheticConfig config;
    config.windows = LayOutWindows(windows, length, overlap, 50);
    config.duration = config.windows.back().end + 100;
    config.events_per_tick = events_per_tick;
    config.queries_per_window = queries;
    config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
    TypeRegistry registry;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    CAESAR_CHECK_OK(model.status());
    StatisticsReport shared_report, nonshared_report;
    RunStats shared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kOptimized, accel, 1, 3, 0.2,
        sink.enabled() ? &shared_report : nullptr);
    RunStats nonshared = bench::RunExperiment(
        model.value(), stream, bench::PlanMode::kNonShared, accel, 1, 3, 0.2,
        sink.enabled() ? &nonshared_report : nullptr);
    sink.Add("overlap=" + std::to_string(overlap) + "/shared", shared_report);
    sink.Add("overlap=" + std::to_string(overlap) + "/nonshared",
             nonshared_report);
    table.Row({bench::FmtInt(overlap), bench::Fmt(shared.max_latency),
               bench::Fmt(nonshared.max_latency),
               bench::Fmt(nonshared.max_latency / shared.max_latency, 1),
               bench::Fmt(nonshared.cpu_seconds / shared.cpu_seconds, 1),
               bench::FmtInt(static_cast<int64_t>(shared.ops_executed)),
               bench::FmtInt(static_cast<int64_t>(nonshared.ops_executed))});
  }
  sink.Write();
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
