// Common experiment harness for the figure benches: builds a plan in one of
// the compared modes and runs a stream through a fresh engine.

#ifndef CAESAR_BENCH_HARNESS_H_
#define CAESAR_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "query/model.h"
#include "runtime/engine.h"

namespace caesar {
namespace bench {

// The execution strategies the paper compares.
enum class PlanMode {
  kOptimized,           // CAESAR: push-down + predicate push-down + sharing
  kNonOptimized,        // context-aware but un-optimized plan (Fig. 6a)
  kNonShared,           // push-down on, workload sharing off
  kContextIndependent,  // state-of-the-art baseline (private guards)
};

inline const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kOptimized:
      return "context-aware";
    case PlanMode::kNonOptimized:
      return "non-optimized";
    case PlanMode::kNonShared:
      return "non-shared";
    case PlanMode::kContextIndependent:
      return "context-independent";
  }
  return "?";
}

inline Result<ExecutablePlan> BuildPlan(const CaesarModel& model,
                                        PlanMode mode) {
  switch (mode) {
    case PlanMode::kOptimized: {
      OptimizerOptions options;
      return OptimizeModel(model, options);
    }
    case PlanMode::kNonOptimized: {
      PlanOptions options;
      options.push_down_context_windows = false;
      options.push_predicates_into_pattern = false;
      return TranslateModel(model, options);
    }
    case PlanMode::kNonShared: {
      OptimizerOptions options;
      options.share_overlapping = false;
      return OptimizeModel(model, options);
    }
    case PlanMode::kContextIndependent:
      return BaselinePlan(model);
  }
  return Status::Internal("unreachable");
}

// Builds the plan, runs `stream` through a fresh engine, returns the stats
// of the measured portion. Aborts on plan errors (benchmark configuration
// bugs).
//
// Measurement methodology:
//  - the first `warmup_fraction` of the stream's time span is processed but
//    not measured (partition/plan instantiation happens there, as in any
//    long-running deployment);
//  - the experiment repeats `repetitions` times on fresh engines and the
//    run with the smallest max latency is reported, filtering OS scheduling
//    noise (the paper averages three runs on a dedicated testbed; on a
//    shared machine the minimum is the robust estimator of the true cost).
//
// When `report_out` is non-null, full statistics gathering at operator
// granularity is forced on and the report of the best repetition is stored
// there (for --metrics-out; note the added bookkeeping cost).
inline RunStats RunExperimentWithOptions(const CaesarModel& model,
                                         const EventBatch& stream,
                                         PlanMode mode, EngineOptions options,
                                         int repetitions = 3,
                                         double warmup_fraction = 0.2,
                                         StatisticsReport* report_out =
                                             nullptr) {
  Result<ExecutablePlan> plan = BuildPlan(model, mode);
  if (!plan.ok()) {
    std::fprintf(stderr, "plan (%s): %s\n", PlanModeName(mode),
                 plan.status().ToString().c_str());
    std::exit(1);
  }

  // Split the stream at the warmup boundary (by time, not index).
  size_t split = 0;
  if (!stream.empty()) {
    Timestamp first = stream.front()->time();
    Timestamp last = stream.back()->time();
    Timestamp boundary =
        first + static_cast<Timestamp>((last - first) * warmup_fraction);
    while (split < stream.size() && stream[split]->time() <= boundary) {
      ++split;
    }
  }
  EventBatch warmup(stream.begin(), stream.begin() + split);
  EventBatch measured(stream.begin() + split, stream.end());

  if (report_out != nullptr) {
    options.gather_statistics = true;
    if (options.metrics < MetricsGranularity::kOperator) {
      options.metrics = MetricsGranularity::kOperator;
    }
  }

  RunStats best;
  for (int rep = 0; rep < repetitions; ++rep) {
    Engine engine(plan.value().Clone(), options);
    engine.Run(warmup).value();
    RunStats stats = engine.Run(measured).value();
    if (rep == 0 || stats.max_latency < best.max_latency) {
      best = stats;
      if (report_out != nullptr) *report_out = engine.CollectStatistics();
    }
  }
  return best;
}

inline RunStats RunExperiment(const CaesarModel& model,
                              const EventBatch& stream, PlanMode mode,
                              double accel, int num_threads = 1,
                              int repetitions = 3,
                              double warmup_fraction = 0.2,
                              StatisticsReport* report_out = nullptr) {
  EngineOptions options;
  options.accel = accel;
  options.num_threads = num_threads;
  options.collect_outputs = false;
  return RunExperimentWithOptions(model, stream, mode, options, repetitions,
                                  warmup_fraction, report_out);
}

}  // namespace bench
}  // namespace caesar

#endif  // CAESAR_BENCH_HARNESS_H_
