#!/usr/bin/env python3
"""Drift check for the diagnostic-code vocabulary.

Cross-checks three sources of truth that historically rot apart:

  1. the DiagCode enum in src/analysis/diagnostics.h (the vocabulary),
  2. the code table in DESIGN.md (the documentation),
  3. the golden corpus in tests/lint_corpus/ (the behaviour pins).

Checks:
  * enum codes are unique (no constant reuses a code number);
  * every enum code appears in DESIGN.md's code table (single rows like
    `| W204 |` or ranges like `| E101–E109 |`);
  * every code the DESIGN.md table mentions exists in the enum (stale
    docs fail too);
  * every analyzer-emitted code appears in at least one
    tests/lint_corpus/*.expected golden. Codes the analyzer cannot emit
    on a source file (runtime/ingest/server codes, and shapes the parser
    rejects before analysis) are listed in EXEMPT with a reason.

Run from the repository root (CI runs it in the lint-smoke job):
    python3 tools/check_diag_codes.py
"""

import glob
import os
import re
import sys

# Codes with no lint-corpus fixture, each with the reason the analyzer
# cannot produce it from a model file. Adding a code here is a reviewed
# decision, not a silent skip.
EXEMPT = {
    "E107": "parser rejects a query without PATTERN before analysis",
    "E108": "parser rejects a processing query without DERIVE first",
    "P301": "needs > context-bitvector-width contexts; corpus keeps "
            "fixtures human-readable (covered by analysis_test)",
    "P304": "catch-all for translator failures with no stable message",
    "I401": "runtime ingest quarantine code (fault-injection suite)",
    "I402": "runtime ingest quarantine code (fault-injection suite)",
    "I403": "runtime ingest quarantine code (fault-injection suite)",
    "I404": "runtime ingest quarantine code (fault-injection suite)",
    "I405": "runtime ingest quarantine code (fault-injection suite)",
    "I406": "runtime ingest quarantine code (fault-injection suite)",
    "I420": "server backpressure code (caesard_test)",
    "I421": "server unknown-tenant code (caesard_test)",
    "I422": "server duplicate-tenant code (caesard_test)",
    "I423": "server bad-frame code (caesard_test)",
    "I424": "server admission code (caesard_test)",
}

CODE_RE = re.compile(r"\bk([CEWPI]\d{3})[A-Z]")
# `| W204 |` single row, or `| E101–E109 |` range row (en dash or ASCII -).
TABLE_RE = re.compile(
    r"^\|\s*([CEWPI])(\d{3})(?:\s*[–-]\s*(?:[CEWPI])?(\d{3}))?\s*\|")


def fail(errors):
    for e in errors:
        print(f"check_diag_codes: {e}", file=sys.stderr)
    print(f"check_diag_codes: FAILED ({len(errors)} problem(s))",
          file=sys.stderr)
    return 1


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    errors = []

    header = os.path.join(root, "src", "analysis", "diagnostics.h")
    with open(header, encoding="utf-8") as f:
        header_text = f.read()
    # Only the enum body: mentions elsewhere (default initializers,
    # comments) are uses, not declarations.
    enum_match = re.search(r"enum class DiagCode[^{]*\{(.*?)\};",
                           header_text, re.DOTALL)
    if not enum_match:
        return fail([f"no DiagCode enum found in {header}"])
    enum_codes = CODE_RE.findall(enum_match.group(1))
    if not enum_codes:
        return fail([f"no diagnostic codes found in {header}"])

    seen = set()
    duplicates = set()
    for code in enum_codes:
        if code in seen:
            duplicates.add(code)
        seen.add(code)
    for code in sorted(duplicates):
        errors.append(f"code {code} is declared more than once in "
                      f"src/analysis/diagnostics.h")
    codes = sorted(seen)

    design = os.path.join(root, "DESIGN.md")
    documented = set()
    with open(design, encoding="utf-8") as f:
        for line in f:
            m = TABLE_RE.match(line.strip())
            if not m:
                continue
            prefix, lo, hi = m.group(1), int(m.group(2)), m.group(3)
            hi = int(hi) if hi else lo
            for n in range(lo, hi + 1):
                documented.add(f"{prefix}{n:03d}")
    if not documented:
        return fail([f"no code table found in {design}"])

    for code in codes:
        if code not in documented:
            errors.append(f"code {code} is missing from the DESIGN.md "
                          f"code table")
    for code in sorted(documented - seen):
        errors.append(f"DESIGN.md documents {code}, which is not in the "
                      f"DiagCode enum (stale row?)")

    corpus = glob.glob(os.path.join(root, "tests", "lint_corpus",
                                    "*.expected"))
    if not corpus:
        return fail(["no goldens under tests/lint_corpus/"])
    pinned = set()
    for path in corpus:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        for code in codes:
            if f"[{code}]" in text:
                pinned.add(code)

    for code in codes:
        if code in pinned and code in EXEMPT:
            errors.append(f"code {code} is EXEMPT but has a lint_corpus "
                          f"golden — remove the exemption")
        elif code not in pinned and code not in EXEMPT:
            errors.append(f"code {code} has no tests/lint_corpus/*.expected "
                          f"golden (add a fixture or an EXEMPT entry)")

    if errors:
        return fail(errors)
    print(f"check_diag_codes: OK ({len(codes)} codes, "
          f"{len(pinned)} pinned by goldens, {len(EXEMPT)} exempt)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
