#!/usr/bin/env python3
"""Offline greedy minimizer for differential repro files.

Re-shrinks a `.repro` spec (see src/oracle/differential.h) by shelling
out to the fuzz_differential CLI for every candidate: drops queries to a
fixpoint, then removes clean-stream events in halving chunk sizes,
keeping each candidate that still diverges. Useful when the in-process
shrinker was interrupted, or to re-minimize a hand-edited spec.

Stdlib only. Example:

    tools/minimize_repro.py repro_seed42.repro \
        --bin build/tools/fuzz_differential -o repro_seed42.min.repro

Caveat: on window-grouping legs (leg = shared/... or leg = *) arbitrary
event drops can break the grouping soundness precondition (every window
bound present per partition) and manufacture a "divergence" that is not
the original bug. There the tool only trims whole suffixes of the
time-ordered stream, which preserves prefix bound coverage; pass
--unsafe to force full ddmin anyway.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

SPEC_KEYS = (
    "seed", "min_segments", "max_segments", "min_duration", "max_duration",
    "max_delay", "duplicate_rate", "malformed_rate", "late_rate",
    "force_negation", "leg", "queries", "events", "expect", "bug",
)


def parse_spec(path):
    spec = {}
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                sys.exit(f"{path}:{lineno}: expected key = value")
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if key not in SPEC_KEYS:
                sys.exit(f"{path}:{lineno}: unknown key '{key}'")
            spec[key] = value
    if "seed" not in spec:
        sys.exit(f"{path}: missing seed")
    return spec


def format_spec(spec):
    lines = ["# minimized by tools/minimize_repro.py"]
    for key in SPEC_KEYS:
        if key in spec:
            lines.append(f"{key} = {spec[key]}")
    return "\n".join(lines) + "\n"


def parse_indices(value):
    """'0,3-7' -> [0, 3, 4, 5, 6, 7]; '*' -> None (all)."""
    if value == "*":
        return None
    out = []
    for item in value.split(","):
        item = item.strip()
        if "-" in item:
            lo, hi = item.split("-", 1)
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(item))
    return sorted(set(out))


def format_indices(indices):
    parts = []
    run = [indices[0], indices[0]]
    for i in indices[1:]:
        if i == run[1] + 1:
            run[1] = i
        else:
            parts.append(run)
            run = [i, i]
    parts.append(run)
    return ",".join(f"{a}-{b}" if a != b else f"{a}" for a, b in parts)


class Replayer:
    def __init__(self, binary, matrix):
        self.binary = binary
        self.matrix = matrix
        self.runs = 0

    def _invoke(self, spec, extra):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".repro", delete=False) as tmp:
            tmp.write(format_spec(spec))
            path = tmp.name
        try:
            return subprocess.run(
                [self.binary, "--replay", path, "--matrix", self.matrix]
                + extra,
                capture_output=True, text=True)
        finally:
            os.unlink(path)

    def diverges(self, spec):
        """True iff the spec still reproduces the divergence."""
        self.runs += 1
        probe = dict(spec, expect="diverge")
        proc = self._invoke(probe, [])
        if proc.returncode == 2:
            # Candidate does not even materialize (e.g. a kept consumer
            # lost its producer): treat as an invalid shrink, not an error.
            return False
        return proc.returncode == 0

    def dump(self, spec):
        proc = self._invoke(spec, ["--dump"])
        if proc.returncode != 0:
            sys.exit(f"--dump failed:\n{proc.stderr}{proc.stdout}")
        return proc.stdout


def case_shape(replayer, spec):
    """(num_queries, num_events) of the *unmasked* generated case."""
    base = {k: v for k, v in spec.items() if k not in ("queries", "events")}
    text = replayer.dump(base)
    # The dump prints the base model and then the grouped model; count
    # queries in the base section only.
    model = text.split("== model ==", 1)[-1].split("== grouped model", 1)[0]
    queries = len(re.findall(r"^QUERY ", model, re.MULTILINE))
    match = re.search(r"== kept clean events \((\d+)\) ==", text)
    if not queries or not match:
        sys.exit("could not parse --dump output")
    return queries, int(match.group(1))


def ddmin(replayer, spec, key, kept):
    """Remove chunks of `kept` indices in halving sizes while the spec
    still diverges. Divergence is not monotone in the kept set (dropping
    a context-machinery query can mask or unmask a failure), so chunked
    removal escapes local minima that one-at-a-time greedy gets stuck in.
    """
    chunk = max(1, len(kept) // 2)
    while chunk >= 1:
        pos = 0
        while pos < len(kept):
            candidate = kept[:pos] + kept[pos + chunk:]
            if not candidate:
                pos += chunk
                continue
            trial = dict(spec, **{key: format_indices(candidate)})
            if replayer.diverges(trial):
                kept = candidate
                spec = trial
            else:
                pos += chunk
        chunk //= 2
    return spec, kept


def shrink_queries(replayer, spec, num_queries):
    kept = parse_indices(spec.get("queries", "*"))
    if kept is None:
        kept = list(range(num_queries))
    return ddmin(replayer, spec, "queries", kept)


def shrink_events(replayer, spec, num_events, suffix_only):
    kept = parse_indices(spec.get("events", "*"))
    if kept is None:
        kept = list(range(num_events))
    if not suffix_only:
        return ddmin(replayer, spec, "events", kept)

    chunk = max(1, len(kept) // 2)
    while chunk >= 1:
        while len(kept) > chunk:
            candidate = kept[:-chunk]
            trial = dict(spec, events=format_indices(candidate))
            if not replayer.diverges(trial):
                break
            kept = candidate
            spec = trial
        chunk //= 2
    return spec, kept


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("repro", help="input .repro file")
    parser.add_argument("--bin", default="build/tools/fuzz_differential",
                        help="path to the fuzz_differential binary")
    parser.add_argument("--matrix", choices=("full", "quick"), default="full")
    parser.add_argument("-o", "--out",
                        help="output path (default: <input>.min.repro)")
    parser.add_argument("--unsafe", action="store_true",
                        help="full ddmin even on window-grouping legs")
    args = parser.parse_args()

    if not os.path.exists(args.bin):
        sys.exit(f"binary not found: {args.bin} (pass --bin)")
    spec = parse_spec(args.repro)
    replayer = Replayer(args.bin, args.matrix)

    if not replayer.diverges(spec):
        sys.exit("input spec does not diverge; nothing to minimize")

    num_queries, num_events = case_shape(replayer, spec)
    leg = spec.get("leg", "*")
    grouping_leg = leg == "*" or leg.startswith("shared")
    suffix_only = grouping_leg and not args.unsafe
    if suffix_only:
        print(f"leg '{leg}' includes window grouping: "
              "suffix-only event trimming (--unsafe overrides)")

    spec, queries = shrink_queries(replayer, spec, num_queries)
    print(f"queries: {num_queries} -> {len(queries)}")
    spec, events = shrink_events(replayer, spec, num_events, suffix_only)
    print(f"events:  {num_events} -> {len(events)}")

    if not replayer.diverges(spec):
        sys.exit("internal error: minimized spec no longer diverges")

    out = args.out or re.sub(r"(\.repro)?$", ".min.repro", args.repro, count=1)
    with open(out, "w") as f:
        f.write(format_spec(spec))
    print(f"wrote {out} ({replayer.runs} replay runs)")


if __name__ == "__main__":
    main()
