#!/usr/bin/env python3
"""Minimal caesard wire client (stdlib only), used by the CI server-smoke
job and handy for manual poking.

Each --cmd argument is one JSON request document, sent in order over one
connection; every response prints as one JSON line on stdout. Exits 0 only
if every response had "ok": true (--allow-errors disables that check).

    caesard_client.py --port 7007 \
      --cmd '{"cmd":"ping"}' \
      --cmd '{"cmd":"register","tenant":"t1","model":"..."}'

By default requests travel as binary frames (0xC5 + u32 LE length);
--newline switches to the newline-JSON debug framing. Responses are read
in whichever framing the server replied with (it mirrors the request).
"""

import argparse
import json
import socket
import struct
import sys

MAGIC = 0xC5


def send_request(sock, payload: bytes, newline: bool) -> None:
    if newline:
        sock.sendall(payload + b"\n")
    else:
        sock.sendall(struct.pack("<BI", MAGIC, len(payload)) + payload)


def recv_exactly(sock, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("connection closed mid-message")
        buf += chunk
    return buf


def recv_response(sock) -> bytes:
    first = recv_exactly(sock, 1)
    if first[0] == MAGIC:
        (length,) = struct.unpack("<I", recv_exactly(sock, 4))
        return recv_exactly(sock, length)
    line = first
    while not line.endswith(b"\n"):
        chunk = sock.recv(4096)
        if not chunk:
            raise ConnectionError("connection closed mid-line")
        line += chunk
    return line.rstrip(b"\r\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--newline", action="store_true",
                        help="use newline-JSON framing instead of binary")
    parser.add_argument("--allow-errors", action="store_true",
                        help="exit 0 even when a response has ok=false")
    parser.add_argument("--cmd", action="append", default=[],
                        metavar="JSON", help="request document (repeatable)")
    args = parser.parse_args()

    ok = True
    with socket.create_connection((args.host, args.port), timeout=30) as sock:
        for raw in args.cmd:
            request = json.loads(raw)  # fail fast on operator typos
            send_request(sock, json.dumps(request).encode(), args.newline)
            response = json.loads(recv_response(sock))
            # Canonical separators: matches the server's own Dump form, so
            # smoke checks can grep for exact wire fragments.
            print(json.dumps(response, separators=(",", ":")))
            if response.get("ok") is not True:
                ok = False
    return 0 if (ok or args.allow_errors) else 1


if __name__ == "__main__":
    sys.exit(main())
