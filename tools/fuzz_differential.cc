// Differential fuzzer CLI: generates seeded (model, stream) cases and
// compares the reference interpreter against the engine across the full
// configuration matrix (see src/oracle/differential.h).
//
// Modes:
//   fuzz_differential --seed N --iters M [--budget-seconds S]
//       [--matrix full|quick] [--inject-bug NAME] [--write-repro DIR]
//     Fuzz loop. Exit 0 = no divergence, 1 = divergence (repro written),
//     2 = usage or harness error.
//   fuzz_differential --replay FILE [--matrix full|quick]
//     Replays a repro file and checks its `expect` line. Exit 0 when the
//     outcome matches the expectation, 1 otherwise.
//   fuzz_differential --describe --seed N --iters M
//     Prints the generator summary for each seed without running anything.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "oracle/differential.h"
#include "oracle/generator.h"
#include "optimizer/window_grouping.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed N] [--iters M] [--budget-seconds S]\n"
      "          [--matrix full|quick] [--engines all|interpreted|compiled]\n"
      "          [--inject-bug NAME] [--inject-model-bug NAME] [--no-lint]\n"
      "          [--crash-recovery]\n"
      "          [--write-repro DIR] [--force-negation]\n"
      "          [--replay FILE] [--describe]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = 1;
  int iters = 100;
  double budget_seconds = 0;
  bool full_matrix = true;
  bool describe = false;
  bool dump = false;
  bool force_negation = false;
  bool lint = true;
  bool crash_recovery = false;
  std::string bug;
  std::string model_bug;
  std::string replay_path;
  std::string write_repro_dir = ".";
  std::string engines;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--iters") {
      iters = std::atoi(next());
    } else if (arg == "--budget-seconds") {
      budget_seconds = std::atof(next());
    } else if (arg == "--matrix") {
      const std::string m = next();
      if (m == "full") {
        full_matrix = true;
      } else if (m == "quick") {
        full_matrix = false;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--engines") {
      const std::string e = next();
      if (e == "all") {
        engines.clear();
      } else if (e == "interpreted" || e == "compiled") {
        engines = e;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--inject-bug") {
      bug = next();
    } else if (arg == "--inject-model-bug") {
      model_bug = next();
    } else if (arg == "--no-lint") {
      lint = false;
    } else if (arg == "--crash-recovery") {
      crash_recovery = true;
    } else if (arg == "--write-repro") {
      write_repro_dir = next();
    } else if (arg == "--replay") {
      replay_path = next();
    } else if (arg == "--describe") {
      describe = true;
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--force-negation") {
      force_negation = true;
    } else {
      return Usage(argv[0]);
    }
  }

  caesar::GeneratorOptions generator;
  generator.force_negation = force_negation;

  if (describe) {
    for (int i = 0; i < iters; ++i) {
      caesar::TypeRegistry registry;
      auto generated = caesar::GenerateCase(seed + i, &registry, generator);
      if (!generated.ok()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(seed + i),
                     generated.status().ToString().c_str());
        return 2;
      }
      std::printf("%s\n", generated.value().summary.c_str());
    }
    return 0;
  }

  if (!replay_path.empty()) {
    auto spec = caesar::ReadRepro(replay_path);
    if (!spec.ok()) {
      std::fprintf(stderr, "%s\n", spec.status().ToString().c_str());
      return 2;
    }
    if (dump) {
      caesar::TypeRegistry registry;
      auto materialized = caesar::Materialize(spec.value(), &registry);
      if (!materialized.ok()) {
        std::fprintf(stderr, "%s\n",
                     materialized.status().ToString().c_str());
        return 2;
      }
      const caesar::MaterializedCase& c = materialized.value();
      std::printf("== case ==\n%s\n== model ==\n%s\n", c.summary.c_str(),
                  c.model.ToString().c_str());
      auto grouped = caesar::ApplyWindowGrouping(c.model);
      if (grouped.ok()) {
        std::printf("== grouped model ==\n%s\n",
                    grouped.value().ToString().c_str());
      } else {
        std::printf("== grouped model: %s ==\n",
                    grouped.status().ToString().c_str());
      }
      std::printf("== kept clean events (%d) ==\n", c.num_events);
      for (const caesar::EventPtr& e : c.clean) {
        std::printf("  %s\n", e->ToString(registry).c_str());
      }
      return 0;
    }
    auto report = caesar::ReplayRepro(spec.value(), full_matrix, engines);
    if (!report.ok()) {
      std::fprintf(stderr, "replay failed: %s\n",
                   report.status().ToString().c_str());
      return 2;
    }
    const bool diverged = report.value().diverged;
    const bool expected_divergence = spec.value().expect == "diverge";
    if (diverged) {
      std::printf("divergence on leg %s\n%s\n", report.value().leg.c_str(),
                  report.value().detail.c_str());
    } else {
      std::printf("no divergence\n");
    }
    if (diverged == expected_divergence) {
      std::printf("outcome matches expect = %s\n",
                  spec.value().expect.c_str());
      return 0;
    }
    std::printf("outcome does NOT match expect = %s\n",
                spec.value().expect.c_str());
    return 1;
  }

  caesar::FuzzOptions options;
  options.seed = seed;
  options.iters = iters;
  options.budget_seconds = budget_seconds;
  options.full_matrix = full_matrix;
  options.bug = bug;
  options.engines = engines;
  options.generator = generator;
  options.lint = lint;
  options.model_mutation = model_bug;
  options.crash_recovery = crash_recovery;

  auto result = caesar::RunFuzz(options);
  if (!result.ok()) {
    std::fprintf(stderr, "fuzz harness error: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  const caesar::FuzzResult& fuzz = result.value();
  if (!fuzz.diverged) {
    std::printf("OK: %d iteration(s), no divergence (%s matrix, %zu legs)\n",
                fuzz.iterations_run, full_matrix ? "full" : "quick",
                (full_matrix ? caesar::FullMatrix() : caesar::QuickMatrix())
                    .size());
    return 0;
  }
  std::printf("DIVERGENCE after %d iteration(s) on leg %s\n%s\n",
              fuzz.iterations_run, fuzz.report.leg.c_str(),
              fuzz.report.detail.c_str());
  const std::string path = write_repro_dir + "/repro_seed" +
                           std::to_string(fuzz.repro.seed) + ".repro";
  auto written = caesar::WriteRepro(fuzz.repro, path);
  if (written.ok()) {
    std::printf("shrunken repro written to %s\n%s", path.c_str(),
                caesar::FormatRepro(fuzz.repro).c_str());
  } else {
    std::fprintf(stderr, "could not write repro: %s\n",
                 written.ToString().c_str());
  }
  return 1;
}
