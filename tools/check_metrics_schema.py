#!/usr/bin/env python3
"""Validates the JSON emitted by the benches' --metrics-out flag.

Stdlib only (runs in CI without installing anything). Checks the sink
envelope {benchmark, schema_version, runs[]} and, for every run, the
StatisticsReport JSON produced by StatisticsToJson: required keys, types,
and internal consistency of the power-of-2 histogram blocks.

Files carrying a top-level "baseline_version" key (BENCH_baseline.json,
written by tools/update_bench_baseline.py) are validated as a baseline
wrapper instead: every contained envelope is checked as above, and the
pattern-compile ablation rows must show the compiled engine beating the
interpreted one (speedup > 1 and fewer work units) at SEQ depth >= 2.

Files carrying a top-level "skew_schema_version" key (--skew-out from
bench_parallel_scaling --workload=skewed) are validated as the scheduler
A/B: identical derived counts across all rows, pinned rows proving the
workload skew via event-weighted imbalance, the stealing scheduler
actually stealing, and (only on multi-core recording machines) stealing
beating pinned wall-clock at the widest thread count.

Usage: check_metrics_schema.py FILE [FILE ...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import sys

SCHEMA_VERSION = 1


class SchemaError(Exception):
    pass


def expect(cond, message):
    if not cond:
        raise SchemaError(message)


def check_histogram(hist, where):
    expect(isinstance(hist, dict), f"{where}: histogram must be an object")
    for key in ("count", "sum", "max", "buckets"):
        expect(key in hist, f"{where}: histogram missing '{key}'")
    expect(isinstance(hist["buckets"], list), f"{where}: buckets must be a list")
    total = 0
    for entry in hist["buckets"]:
        expect(
            isinstance(entry, list) and len(entry) == 2,
            f"{where}: each bucket is a [lower_bound, count] pair",
        )
        lower, count = entry
        expect(
            isinstance(lower, int) and isinstance(count, int) and count > 0,
            f"{where}: bucket entries are positive integer counts",
        )
        total += count
    expect(
        total == hist["count"],
        f"{where}: bucket counts sum to {total}, header says {hist['count']}",
    )


def check_durability(block, where):
    expect(isinstance(block, dict), f"{where}: durability must be an object")
    for key in ("mode", "wal_records", "wal_bytes", "fsyncs",
                "checkpoints_written", "recovered",
                "recovery_replayed_events", "torn_tail_truncations",
                "recovery_diagnostics"):
        expect(key in block, f"{where}: durability missing '{key}'")
    expect(block["mode"] in ("wal", "wal+checkpoint"),
           f"{where}: unknown durability mode {block['mode']!r} "
           "(mode 'off' must omit the block entirely)")
    expect(block["recovered"] in ("true", "false"),
           f"{where}: recovered must be 'true'/'false'")
    for key in ("wal_records", "wal_bytes", "fsyncs", "checkpoints_written",
                "recovery_replayed_events", "torn_tail_truncations"):
        expect(isinstance(block[key], int) and block[key] >= 0,
               f"{where}: durability.{key} must be a non-negative integer")
    expect(isinstance(block["recovery_diagnostics"], list),
           f"{where}: recovery_diagnostics must be a list")
    if block["recovered"] == "false":
        expect(block["recovery_replayed_events"] == 0,
               f"{where}: non-recovered run cannot have replayed events")


def check_executor(block, where):
    expect(isinstance(block, dict), f"{where}: executor must be an object")
    for key in ("workers", "ticks", "tasks", "imbalance", "steals",
                "barrier_wait", "tasks_per_tick", "imbalance_per_tick"):
        expect(key in block, f"{where}: executor missing '{key}'")
    for key in ("workers", "ticks", "tasks", "imbalance", "steals"):
        expect(isinstance(block[key], int) and block[key] >= 0,
               f"{where}: executor.{key} must be a non-negative integer")
    check_histogram(block["tasks_per_tick"],
                    f"{where}: executor.tasks_per_tick")
    check_histogram(block["imbalance_per_tick"],
                    f"{where}: executor.imbalance_per_tick")
    # The per-tick imbalance histogram records every tick (including
    # balanced ones) so skew is readable independently of run length.
    expect(block["imbalance_per_tick"]["count"] == block["ticks"],
           f"{where}: executor.imbalance_per_tick counted "
           f"{block['imbalance_per_tick']['count']} ticks, "
           f"header says {block['ticks']}")
    expect(block["imbalance_per_tick"]["sum"] == block["imbalance"],
           f"{where}: executor.imbalance_per_tick sums to "
           f"{block['imbalance_per_tick']['sum']}, "
           f"counter says {block['imbalance']}")


def check_skew(doc):
    """Validates a --skew-out file from bench_parallel_scaling --workload=skewed.

    Gates (hardware-independent unless noted):
      - every row derives the identical event count (determinism);
      - pinned rows at >1 thread show per-event imbalance > 0.3 — the
        workload's skew actually materialized;
      - the widest stealing row stole at least one task;
      - stealing beats pinned wall-clock at the widest thread count, but
        only when the recording machine had >= 2 hardware threads (on one
        core both modes serialize the same work).
    """
    for key in ("benchmark", "skew_schema_version", "hardware_threads",
                "hot_share", "rows"):
        expect(key in doc, f"skew file missing '{key}'")
    expect(doc["skew_schema_version"] == 1,
           f"unknown skew_schema_version {doc['skew_schema_version']}")
    rows = doc["rows"]
    expect(isinstance(rows, list) and rows, "'rows' must be a non-empty list")
    for i, row in enumerate(rows):
        for key in ("mode", "threads", "wall_s", "events_per_s", "events",
                    "derived", "ticks", "tasks", "imbalance", "steals"):
            expect(key in row, f"rows[{i}] missing '{key}'")
        expect(row["mode"] in ("serial", "pinned", "stealing"),
               f"rows[{i}]: unknown mode {row['mode']!r}")
    derived = {row["derived"] for row in rows}
    expect(len(derived) == 1,
           f"derived counts differ across rows: {sorted(derived)} "
           "(scheduler or thread count changed the output)")
    pinned = [r for r in rows if r["mode"] == "pinned"]
    stealing = [r for r in rows if r["mode"] == "stealing"]
    expect(pinned and stealing, "need both pinned and stealing rows")
    for row in pinned:
        expect(row["steals"] == 0,
               f"pinned row at {row['threads']} threads reports steals")
        share = row["imbalance"] / max(1, row["events"])
        expect(share > 0.3,
               f"pinned row at {row['threads']} threads shows per-event "
               f"imbalance {share:.2f} <= 0.3 — the workload is not skewed")
    widest = max(stealing, key=lambda r: r["threads"])
    expect(widest["steals"] > 0,
           f"stealing row at {widest['threads']} threads stole nothing")
    if doc["hardware_threads"] >= 2:
        pinned_widest = max(pinned, key=lambda r: r["threads"])
        expect(pinned_widest["wall_s"] > 0 and widest["wall_s"] > 0,
               "skew rows carry no wall-clock time")
        speedup = pinned_widest["wall_s"] / widest["wall_s"]
        expect(speedup > 1.0,
               f"stealing-vs-pinned speedup {speedup:.2f} at "
               f"{widest['threads']} threads is not > 1.0 on a "
               f"{doc['hardware_threads']}-thread machine")
    return len(rows)


def check_report(report, where):
    expect(isinstance(report, dict), f"{where}: report must be an object")
    for key in ("schema_version", "granularity", "deterministic", "ingest",
                "operators"):
        expect(key in report, f"{where}: report missing '{key}'")
    expect(
        report["schema_version"] == SCHEMA_VERSION,
        f"{where}: schema_version {report['schema_version']} != {SCHEMA_VERSION}",
    )
    expect(
        report["granularity"] in ("off", "engine", "operator"),
        f"{where}: unknown granularity {report['granularity']!r}",
    )
    # The tenant dimension (caesard per-tenant scrapes) is optional and,
    # when present, a non-empty string: library engines omit the key
    # entirely rather than emitting tenant="".
    if "tenant" in report:
        expect(
            isinstance(report["tenant"], str) and report["tenant"],
            f"{where}: tenant must be a non-empty string when present",
        )

    ingest = report["ingest"]
    for key in ("admitted", "reordered", "dropped_late", "quarantined",
                "quarantine_rate", "reorder_rate"):
        expect(key in ingest, f"{where}: ingest missing '{key}'")

    if "durability" in report:
        check_durability(report["durability"], where)
    if "executor" in report:
        check_executor(report["executor"], where)

    expect(isinstance(report["operators"], list),
           f"{where}: operators must be a list")
    for i, op in enumerate(report["operators"]):
        op_where = f"{where}: operators[{i}]"
        for key in ("query", "op", "kind", "invocations", "input_events",
                    "output_events", "selectivity", "unit_cost"):
            expect(key in op, f"{op_where} missing '{key}'")
        # Rows with no observed input carry null estimates, never 0/0.
        if op["input_events"] == 0:
            expect(op["selectivity"] is None,
                   f"{op_where}: selectivity must be null with no input")
            expect(op["unit_cost"] is None,
                   f"{op_where}: unit_cost must be null with no input")
        for hist_name in ("input_batch", "output_batch",
                          "work_per_invocation"):
            if hist_name in op:
                check_histogram(op[hist_name], f"{op_where}.{hist_name}")

    if "ticks" in report:
        ticks = report["ticks"]
        expect("ticks" in ticks, f"{where}: ticks missing 'ticks'")
        expect("gc_runs" in ticks, f"{where}: ticks missing 'gc_runs'")
        for name in ("events_per_tick", "partitions_per_tick",
                     "derived_per_tick", "context_switches_per_tick"):
            if name in ticks:
                check_histogram(ticks[name], f"{where}: ticks.{name}")
    if "histograms" in report:
        expect(isinstance(report["histograms"], list),
               f"{where}: histograms must be a list")
        for entry in report["histograms"]:
            expect("name" in entry and "histogram" in entry,
                   f"{where}: histogram entries are {{name, help, histogram}}")
            check_histogram(entry["histogram"],
                            f"{where}: histograms[{entry['name']}]")
    if "counters" in report:
        expect(isinstance(report["counters"], list),
               f"{where}: counters must be a list")
        for entry in report["counters"]:
            expect("name" in entry and "total" in entry,
                   f"{where}: counter entries carry name and total")
    if "timeline" in report:
        timeline = report["timeline"]
        expect(isinstance(timeline, dict), f"{where}: timeline is an object")
        expect("points" in timeline and "dropped" in timeline,
               f"{where}: timeline missing 'points'/'dropped'")
        for j, point in enumerate(timeline["points"]):
            for key in ("t", "events", "derived", "partitions",
                        "executed_chains", "suspended_chains", "activity"):
                expect(key in point,
                       f"{where}: timeline.points[{j}] missing '{key}'")


def check_ablation(rows, where):
    expect(isinstance(rows, list) and rows, f"{where}: non-empty list required")
    for i, row in enumerate(rows):
        row_where = f"{where}[{i}]"
        for key in ("depth", "derived", "interpreted_wall_s",
                    "compiled_wall_s", "interpreted_ops", "compiled_ops",
                    "speedup"):
            expect(key in row, f"{row_where} missing '{key}'")
        if row["depth"] >= 2:
            # The point of the compiled engine: it must win on real chains.
            expect(
                row["speedup"] > 1.0,
                f"{row_where}: depth {row['depth']} speedup "
                f"{row['speedup']} is not > 1.0",
            )
            expect(
                row["compiled_ops"] < row["interpreted_ops"],
                f"{row_where}: depth {row['depth']} compiled work "
                f"{row['compiled_ops']} not below interpreted "
                f"{row['interpreted_ops']}",
            )


def check_baseline(doc):
    for key in ("baseline_version", "generated", "benches"):
        expect(key in doc, f"baseline missing '{key}'")
    expect(doc["baseline_version"] == 1,
           f"unknown baseline_version {doc['baseline_version']}")
    expect(isinstance(doc["benches"], dict) and doc["benches"],
           "'benches' must be a non-empty object")
    runs = 0
    for name, entry in doc["benches"].items():
        expect(isinstance(entry, dict) and "envelope" in entry,
               f"benches[{name}] must carry an 'envelope'")
        envelope = entry["envelope"]
        for key in ("benchmark", "schema_version", "runs"):
            expect(key in envelope, f"benches[{name}] envelope missing '{key}'")
        for i, run in enumerate(envelope["runs"]):
            check_report(run["report"], f"benches[{name}] runs[{i}]")
        runs += len(envelope["runs"])
        if "ablation" in entry:
            check_ablation(entry["ablation"], f"benches[{name}].ablation")
        if "skew" in entry:
            check_skew(entry["skew"])
    expect("bench_parallel_scaling" in doc["benches"]
           and "skew" in doc["benches"]["bench_parallel_scaling"],
           "baseline must carry the bench_parallel_scaling skew comparison "
           "(pinned vs stealing)")
    expect("bench_pattern_compile" in doc["benches"]
           and "ablation" in doc["benches"]["bench_pattern_compile"],
           "baseline must carry the bench_pattern_compile ablation")
    expect("bench_durability" in doc["benches"],
           "baseline must carry bench_durability (WAL overhead vs off)")
    durability_runs = doc["benches"]["bench_durability"]["envelope"]["runs"]
    expect(any("durability" in run["report"] for run in durability_runs),
           "bench_durability baseline has no run with a durability block")
    expect(any("durability" not in run["report"] for run in durability_runs),
           "bench_durability baseline has no durability-off control run")
    return runs


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    expect(isinstance(doc, dict), "top level must be an object")
    if "baseline_version" in doc:
        return check_baseline(doc)
    if "skew_schema_version" in doc:
        return check_skew(doc)
    for key in ("benchmark", "schema_version", "runs"):
        expect(key in doc, f"top level missing '{key}'")
    expect(
        doc["schema_version"] == SCHEMA_VERSION,
        f"envelope schema_version {doc['schema_version']} != {SCHEMA_VERSION}",
    )
    expect(isinstance(doc["runs"], list), "'runs' must be a list")
    for i, run in enumerate(doc["runs"]):
        expect(isinstance(run, dict) and "label" in run and "report" in run,
               f"runs[{i}] must be {{label, report}}")
        check_report(run["report"], f"runs[{i}] ({run.get('label')})")
    return len(doc["runs"])


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            runs = check_file(path)
            print(f"{path}: OK ({runs} runs)")
        except (SchemaError, OSError, json.JSONDecodeError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
