// caesar_lint: static semantic analyzer CLI for CAESAR models.
//
// Modes:
//   caesar_lint [options] FILE...
//     Lints textual model files (with inline TYPE declarations; see
//     src/query/parser.h). Syntax errors are reported with the
//     "<file>:<line>:<col>:" prefix and exit 2.
//   caesar_lint --builtin linear_road|pamap|synthetic|all
//     Lints the in-repo workload models.
//   caesar_lint --seed N [--iters M]
//     Lints generated fuzz models (oracle/generator.h). Well-formed
//     generated models must be clean.
//   caesar_lint --seed N --inject-bug NAME
//     Applies the named model mutation (see --list-bugs) to each generated
//     model; the mutated model must NOT lint clean, and the report carries
//     the mutation's paired diagnostic code.
//   caesar_lint --selfcheck [--seed N] [--iters M]
//     Sweeps every mutation over the seeds and verifies (a) base models
//     lint clean and (b) each mutation is flagged with its paired code.
//   caesar_lint --dump-automaton FILE...
//     Prints the compiled pattern automaton (compile/compiler.h) for every
//     pattern query in each model, in the deterministic text form the
//     compile_corpus goldens pin. Patterns past the compiler's position
//     limit print a "fallback: interpreted" line instead. With
//     --no-absint the abstract-interpretation pass is skipped, matching a
//     compiler without it byte for byte.
//   caesar_lint --dump-facts FILE...
//     Prints the abstract interpreter's per-state interval facts
//     (analysis/absint.h) for every pattern query in each model —
//     deterministic, like --dump-automaton.
//
// Options:
//   --format=human|json|sarif   output format (default human). JSON and
//                               SARIF are deterministic: byte-identical
//                               across repeat runs on the same input.
//   --no-notes                  drop note-severity diagnostics
//   --no-absint                 disable absint pruning in --dump-automaton
//   --list-bugs                 print the model mutation names and exit
//
// Exit codes: 0 = clean (no errors or warnings; notes allowed),
// 1 = diagnostics at warning severity or above (or selfcheck failure),
// 2 = usage, I/O, or syntax error.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.h"
#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "compile/compiler.h"
#include "oracle/generator.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "workloads/linear_road.h"
#include "workloads/pamap.h"
#include "workloads/synthetic.h"

namespace {

using caesar::AnalyzeModel;
using caesar::AnalyzerOptions;
using caesar::CaesarModel;
using caesar::Diagnostic;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--format=human|json|sarif] [--no-notes] FILE...\n"
      "       %s --builtin linear_road|pamap|synthetic|all\n"
      "       %s --seed N [--iters M] [--inject-bug NAME]\n"
      "       %s --selfcheck [--seed N] [--iters M]\n"
      "       %s --dump-automaton [--no-absint] FILE...\n"
      "       %s --dump-facts FILE...\n"
      "       %s --list-bugs\n",
      argv0, argv0, argv0, argv0, argv0, argv0, argv0);
  return 2;
}

struct LintRun {
  AnalyzerOptions analyzer;
  std::vector<Diagnostic> diagnostics;

  // Analyzes `model`, stamping `source` into the diagnostics.
  void Lint(const CaesarModel& model, const std::string& source) {
    AnalyzerOptions options = analyzer;
    options.source_name = source;
    for (Diagnostic& diag : AnalyzeModel(model, options)) {
      diagnostics.push_back(std::move(diag));
    }
  }
};

// Renders and prints the merged report; returns the process exit code.
int Report(LintRun* run, const std::string& format) {
  caesar::SortDiagnostics(&run->diagnostics);
  if (format == "json") {
    std::fputs(caesar::DiagnosticsToJson(run->diagnostics).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(caesar::DiagnosticsToSarif(run->diagnostics).c_str(), stdout);
  } else {
    for (const Diagnostic& diag : run->diagnostics) {
      std::printf("%s\n", caesar::FormatDiagnostic(diag).c_str());
    }
  }
  return caesar::HasErrorsOrWarnings(run->diagnostics) ? 1 : 0;
}

bool HasCode(const std::vector<Diagnostic>& diags, const std::string& code) {
  for (const Diagnostic& diag : diags) {
    if (caesar::DiagCodeName(diag.code) == code) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "human";
  bool include_notes = true;
  bool selfcheck = false;
  bool list_bugs = false;
  bool dump_automaton = false;
  bool dump_facts = false;
  bool absint = true;
  bool have_seed = false;
  uint64_t seed = 1;
  int iters = 1;
  std::string builtin;
  std::string inject_bug;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0],
                     arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "human" && format != "json" && format != "sarif") {
        return Usage(argv[0]);
      }
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--no-notes") {
      include_notes = false;
    } else if (arg == "--builtin") {
      builtin = next();
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
      have_seed = true;
    } else if (arg == "--iters") {
      iters = std::atoi(next());
    } else if (arg == "--inject-bug") {
      inject_bug = next();
    } else if (arg == "--selfcheck") {
      selfcheck = true;
    } else if (arg == "--list-bugs") {
      list_bugs = true;
    } else if (arg == "--dump-automaton") {
      dump_automaton = true;
    } else if (arg == "--dump-facts") {
      dump_facts = true;
    } else if (arg == "--no-absint") {
      absint = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else {
      files.push_back(arg);
    }
  }

  if (list_bugs) {
    for (const std::string& name : caesar::ModelMutationNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  LintRun run;
  run.analyzer.include_notes = include_notes;

  // ---- Selfcheck: mutation sensitivity sweep --------------------------
  if (selfcheck) {
    int failures = 0;
    int checked = 0;
    for (int i = 0; i < iters; ++i) {
      const uint64_t s = seed + static_cast<uint64_t>(i);
      caesar::TypeRegistry registry;
      auto generated = caesar::GenerateCase(s, &registry);
      if (!generated.ok()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(s),
                     generated.status().ToString().c_str());
        return 2;
      }
      AnalyzerOptions options;
      options.source_name = "<seed " + std::to_string(s) + ">";
      options.include_notes = false;
      auto base = AnalyzeModel(generated.value().model, options);
      if (caesar::HasErrorsOrWarnings(base)) {
        std::fprintf(stderr, "FAIL seed %llu: base model not clean: %s\n",
                     static_cast<unsigned long long>(s),
                     caesar::FormatDiagnostic(base.front()).c_str());
        ++failures;
      }
      for (const std::string& mutation : caesar::ModelMutationNames()) {
        std::string expected;
        auto mutated =
            caesar::MutateModel(generated.value().model, mutation, &expected);
        if (!mutated.ok()) continue;  // shape not present in this model
        auto diags = AnalyzeModel(mutated.value(), options);
        ++checked;
        if (!HasCode(diags, expected)) {
          std::fprintf(stderr,
                       "FAIL seed %llu: mutation %s not flagged with %s\n",
                       static_cast<unsigned long long>(s), mutation.c_str(),
                       expected.c_str());
          ++failures;
        }
      }
    }
    std::fprintf(stderr, "selfcheck: %d mutation checks, %d failure(s)\n",
                 checked, failures);
    return failures == 0 ? 0 : 1;
  }

  // ---- Generated models ----------------------------------------------
  if (have_seed) {
    for (int i = 0; i < iters; ++i) {
      const uint64_t s = seed + static_cast<uint64_t>(i);
      caesar::TypeRegistry registry;
      auto generated = caesar::GenerateCase(s, &registry);
      if (!generated.ok()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(s),
                     generated.status().ToString().c_str());
        return 2;
      }
      const std::string source = "<seed " + std::to_string(s) + ">";
      if (inject_bug.empty()) {
        run.Lint(generated.value().model, source);
        continue;
      }
      std::string expected;
      auto mutated = caesar::MutateModel(generated.value().model, inject_bug,
                                         &expected);
      if (!mutated.ok()) {
        std::fprintf(stderr, "seed %llu: %s\n",
                     static_cast<unsigned long long>(s),
                     mutated.status().ToString().c_str());
        return 2;
      }
      run.Lint(mutated.value(), source + " +" + inject_bug);
    }
    return Report(&run, format);
  }

  // ---- Builtin workload models ---------------------------------------
  if (!builtin.empty()) {
    auto lint_builtin = [&](const std::string& name) -> bool {
      caesar::TypeRegistry registry;
      caesar::Result<CaesarModel> model = [&]() -> caesar::Result<CaesarModel> {
        if (name == "linear_road") {
          caesar::RegisterLinearRoadTypes(&registry);
          return caesar::MakeLinearRoadModel({}, &registry);
        }
        if (name == "pamap") {
          caesar::RegisterPamapTypes(&registry);
          return caesar::MakePamapModel({}, &registry);
        }
        if (name == "synthetic") {
          caesar::RegisterSyntheticTypes(&registry);
          return caesar::MakeSyntheticModel({}, &registry);
        }
        return caesar::Status::InvalidArgument("unknown builtin: " + name);
      }();
      if (!model.ok()) {
        std::fprintf(stderr, "%s: %s\n", name.c_str(),
                     model.status().ToString().c_str());
        return false;
      }
      run.Lint(model.value(), "<builtin:" + name + ">");
      return true;
    };
    if (builtin == "all") {
      for (const char* name : {"linear_road", "pamap", "synthetic"}) {
        if (!lint_builtin(name)) return 2;
      }
    } else if (!lint_builtin(builtin)) {
      return 2;
    }
    return Report(&run, format);
  }

  // ---- Automaton / interval-fact dumps ---------------------------------
  if (dump_automaton || dump_facts) {
    if (files.empty()) return Usage(argv[0]);
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "%s: cannot open\n", path.c_str());
        return 2;
      }
      std::ostringstream text;
      text << in.rdbuf();
      caesar::TypeRegistry registry;
      caesar::ParseModelOptions parse_options;
      parse_options.source_name = path;
      auto model = caesar::ParseModel(text.str(), &registry, parse_options);
      if (!model.ok()) {
        std::fprintf(stderr, "%s\n", model.status().message().c_str());
        return 2;
      }
      auto dumped =
          dump_facts
              ? caesar::DumpModelFacts(model.value(), caesar::PlanOptions{})
              : caesar::DumpModelAutomatons(
                    model.value(), caesar::PlanOptions{},
                    caesar::PatternCompileOptions{absint});
      if (!dumped.ok()) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(),
                     dumped.status().ToString().c_str());
        return 2;
      }
      if (files.size() > 1) std::printf("== %s ==\n", path.c_str());
      std::fputs(dumped.value().c_str(), stdout);
    }
    return 0;
  }

  // ---- Model files ----------------------------------------------------
  if (files.empty()) return Usage(argv[0]);
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    caesar::TypeRegistry registry;
    caesar::ParseModelOptions parse_options;
    parse_options.source_name = path;
    parse_options.strict = false;  // validity issues become diagnostics
    auto model = caesar::ParseModel(text.str(), &registry, parse_options);
    if (!model.ok()) {
      std::fprintf(stderr, "%s\n", model.status().message().c_str());
      return 2;
    }
    AnalyzerOptions options = run.analyzer;
    options.source_name = path;
    options.check_plan = true;  // end-to-end: P304 on translator limits
    for (Diagnostic& diag : AnalyzeModel(model.value(), options)) {
      run.diagnostics.push_back(std::move(diag));
    }
  }
  return Report(&run, format);
}
