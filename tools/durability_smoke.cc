// Recovery smoke driver for CI: a real SIGKILL (not an in-process crash
// hook) against a live engine, then byte-compared recovery.
//
// Modes:
//   durability_smoke --mode=run --dir=DIR [--seed=N] [--duration=T]
//       [--ticks-per-batch=K] [--tick-sleep-ms=M]
//     Runs the pinned synthetic workload in tick-aligned batches with
//     durability=wal+checkpoint into DIR. --tick-sleep-ms stalls every
//     scheduler tick so an external `kill -9` lands mid-batch, mid-WAL.
//     Exits 0 when the whole stream was processed.
//   durability_smoke --mode=recover --dir=DIR [--seed=N] [--duration=T]
//       [--ticks-per-batch=K]
//     Recovers from DIR with the same (deterministic) workload, re-submits
//     every batch after durable_batch_seq(), and compares the remaining
//     derived stream byte-for-byte against an uninterrupted durability-off
//     run. Exits 0 on equality, 1 on divergence, 2 on usage/setup errors.
//
// The workload knobs must match between the killed run and the recovery.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --mode=run|recover --dir=DIR [--seed=N]\n"
               "          [--duration=T] [--ticks-per-batch=K]\n"
               "          [--tick-sleep-ms=M]\n",
               argv0);
  return 2;
}

struct Workload {
  TypeRegistry registry;
  ExecutablePlan plan;
  std::vector<EventBatch> batches;
};

std::vector<EventBatch> SplitByTicks(const EventBatch& stream,
                                     int ticks_per_batch) {
  std::vector<EventBatch> batches;
  EventBatch current;
  int distinct = 0;
  bool any = false;
  Timestamp prev = 0;
  for (const EventPtr& event : stream) {
    if (!any || event->time() != prev) {
      if (distinct == ticks_per_batch) {
        batches.push_back(std::move(current));
        current.clear();
        distinct = 0;
      }
      ++distinct;
      prev = event->time();
      any = true;
    }
    current.push_back(event);
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

std::unique_ptr<Workload> MakeWorkload(uint64_t seed, Timestamp duration,
                                       int ticks_per_batch) {
  auto w = std::make_unique<Workload>();
  SyntheticConfig config;
  config.duration = duration;
  config.num_partitions = 4;
  config.events_per_tick = 2;
  config.seed = seed;
  config.windows = LayOutWindows(/*count=*/3, /*length=*/duration / 4,
                                 /*overlap=*/duration / 16,
                                 /*first_start=*/duration / 8);
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.queries_per_window = 2;
  EventBatch stream = GenerateSyntheticStream(config, &w->registry);
  w->batches = SplitByTicks(stream, ticks_per_batch);
  auto model = MakeSyntheticModel(config, &w->registry);
  CAESAR_CHECK_OK(model.status());
  auto plan = OptimizeModel(model.value(), OptimizerOptions());
  CAESAR_CHECK_OK(plan.status());
  w->plan = std::move(plan).value();
  return w;
}

std::string Render(const EventBatch& outputs, const TypeRegistry& registry) {
  std::ostringstream os;
  for (const EventPtr& event : outputs) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  return os.str();
}

EngineOptions DurableOptions(const std::string& dir) {
  EngineOptions options;
  options.durability.mode = DurabilityMode::kWalCheckpoint;
  options.durability.dir = dir;
  options.durability.fsync = FsyncPolicy::kBatch;
  options.durability.checkpoint_interval_ticks = 32;
  return options;
}

int RunMode(const Workload& w, const std::string& dir,
            int64_t tick_sleep_ms) {
  Engine engine(w.plan.Clone(), DurableOptions(dir));
  if (tick_sleep_ms > 0) {
    engine.SetTickObserver([tick_sleep_ms](Timestamp, const EventBatch&) {
      std::this_thread::sleep_for(std::chrono::milliseconds(tick_sleep_ms));
    });
  }
  for (size_t b = 0; b < w.batches.size(); ++b) {
    auto stats = engine.Run(w.batches[b], nullptr);
    if (!stats.ok()) {
      std::fprintf(stderr, "batch %zu failed: %s\n", b,
                   stats.status().ToString().c_str());
      return 2;
    }
    std::printf("batch %zu committed (seq %llu)\n", b,
                static_cast<unsigned long long>(engine.durable_batch_seq()));
    std::fflush(stdout);
  }
  std::printf("run complete: %zu batches durable\n", w.batches.size());
  return 0;
}

int RecoverMode(const Workload& w, const std::string& dir) {
  // Uninterrupted reference, durability off.
  std::vector<std::string> expected;
  {
    Engine reference(w.plan.Clone(), EngineOptions());
    for (const EventBatch& batch : w.batches) {
      EventBatch derived;
      auto stats = reference.Run(batch, &derived);
      CAESAR_CHECK_OK(stats.status());
      expected.push_back(Render(derived, w.registry));
    }
  }

  auto recovered = Engine::Recover(w.plan.Clone(), DurableOptions(dir));
  if (!recovered.ok()) {
    std::fprintf(stderr, "Engine::Recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 2;
  }
  Engine& engine = *recovered.value();
  for (const std::string& diag : engine.recovery_diagnostics()) {
    std::fprintf(stderr, "recovery: %s\n", diag.c_str());
  }
  const uint64_t resume = engine.durable_batch_seq();
  std::printf("recovered: durable_batch_seq=%llu replayed_events=%lld\n",
              static_cast<unsigned long long>(resume),
              static_cast<long long>(
                  engine.durability_counters().recovery_replayed_events));
  if (resume > w.batches.size()) {
    std::fprintf(stderr, "durable seq %llu beyond %zu generated batches\n",
                 static_cast<unsigned long long>(resume), w.batches.size());
    return 2;
  }
  bool diverged = false;
  for (size_t b = resume; b < w.batches.size(); ++b) {
    EventBatch derived;
    auto stats = engine.Run(w.batches[b], &derived);
    if (!stats.ok()) {
      std::fprintf(stderr, "post-recovery batch %zu failed: %s\n", b,
                   stats.status().ToString().c_str());
      return 2;
    }
    const std::string actual = Render(derived, w.registry);
    if (actual != expected[b]) {
      std::fprintf(stderr,
                   "batch %zu diverged after recovery (%zu vs %zu bytes)\n",
                   b, actual.size(), expected[b].size());
      diverged = true;
    }
  }
  if (diverged) return 1;
  std::printf("recovery verified: batches %llu..%zu byte-identical\n",
              static_cast<unsigned long long>(resume), w.batches.size());
  return 0;
}

int Main(int argc, char** argv) {
  std::string mode;
  std::string dir;
  uint64_t seed = 1;
  Timestamp duration = 600;
  int ticks_per_batch = 25;
  int64_t tick_sleep_ms = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg]() { return arg.substr(arg.find('=') + 1); };
    if (arg.rfind("--mode=", 0) == 0) {
      mode = value();
    } else if (arg.rfind("--dir=", 0) == 0) {
      dir = value();
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(value().c_str(), nullptr, 10);
    } else if (arg.rfind("--duration=", 0) == 0) {
      duration = std::atoll(value().c_str());
    } else if (arg.rfind("--ticks-per-batch=", 0) == 0) {
      ticks_per_batch = std::atoi(value().c_str());
    } else if (arg.rfind("--tick-sleep-ms=", 0) == 0) {
      tick_sleep_ms = std::atoll(value().c_str());
    } else {
      return Usage(argv[0]);
    }
  }
  if (dir.empty() || (mode != "run" && mode != "recover")) {
    return Usage(argv[0]);
  }
  auto workload = MakeWorkload(seed, duration, ticks_per_batch);
  return mode == "run" ? RunMode(*workload, dir, tick_sleep_ms)
                       : RecoverMode(*workload, dir);
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
