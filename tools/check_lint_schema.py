#!/usr/bin/env python3
"""Validates the JSON emitted by caesar_lint --format=json.

Stdlib only (runs in CI without installing anything). Checks the envelope
{tool, version, diagnostics[], errors} and, for every diagnostic, the
required fields, the code/severity vocabularies, and consistency between
the per-diagnostic severities and the envelope's `errors` flag.

Usage: check_lint_schema.py FILE [FILE ...]
Exit status: 0 when every file validates, 1 otherwise.
"""

import json
import re
import sys

VERSION = 1
CODE_RE = re.compile(r"^[CEWPI]\d{3}$")
SEVERITIES = ("error", "warning", "note")


class SchemaError(Exception):
    pass


def expect(cond, message):
    if not cond:
        raise SchemaError(message)


def check_diagnostic(diag, where):
    expect(isinstance(diag, dict), f"{where}: diagnostic must be an object")
    for key in ("code", "severity", "source", "line", "col", "message"):
        expect(key in diag, f"{where} missing '{key}'")
    expect(
        CODE_RE.match(diag["code"]),
        f"{where}: code {diag['code']!r} is not a C/E/W/P/I + 3-digit code",
    )
    expect(
        diag["severity"] in SEVERITIES,
        f"{where}: unknown severity {diag['severity']!r}",
    )
    expect(isinstance(diag["source"], str), f"{where}: source must be a string")
    expect(
        isinstance(diag["line"], int) and diag["line"] >= 0,
        f"{where}: line must be a non-negative integer",
    )
    expect(
        isinstance(diag["col"], int) and diag["col"] >= 0,
        f"{where}: col must be a non-negative integer",
    )
    expect(
        isinstance(diag["message"], str) and diag["message"],
        f"{where}: message must be a non-empty string",
    )
    for optional in ("query", "context"):
        if optional in diag:
            expect(
                isinstance(diag[optional], str) and diag[optional],
                f"{where}: '{optional}' is a non-empty string when present",
            )


def check_file(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    expect(isinstance(doc, dict), "top level must be an object")
    for key in ("tool", "version", "diagnostics", "errors"):
        expect(key in doc, f"top level missing '{key}'")
    expect(doc["tool"] == "caesar_lint", f"unknown tool {doc['tool']!r}")
    expect(
        doc["version"] == VERSION,
        f"envelope version {doc['version']} != {VERSION}",
    )
    expect(isinstance(doc["diagnostics"], list),
           "'diagnostics' must be a list")
    has_errors = False
    for i, diag in enumerate(doc["diagnostics"]):
        check_diagnostic(diag, f"diagnostics[{i}]")
        if diag["severity"] == "error":
            has_errors = True
    expect(isinstance(doc["errors"], bool), "'errors' must be a boolean")
    expect(
        doc["errors"] == has_errors,
        f"'errors' is {doc['errors']} but the list "
        f"{'contains' if has_errors else 'has no'} error diagnostics",
    )
    return len(doc["diagnostics"])


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv[1:]:
        try:
            count = check_file(path)
            print(f"{path}: OK ({count} diagnostics)")
        except (SchemaError, OSError, json.JSONDecodeError) as error:
            print(f"{path}: FAIL: {error}", file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
