#!/usr/bin/env python3
"""Regenerates BENCH_baseline.json, the checked-in benchmark baseline.

Stdlib only. Runs the baseline benches from an existing build tree, captures
their --metrics-out envelopes (and the pattern-compile ablation rows), and
writes the wrapper document check_metrics_schema.py validates:

  {"baseline_version": 1, "generated": "YYYY-MM-DD",
   "benches": {name: {"envelope": {...}, "ablation": [...]}}}

Usage: update_bench_baseline.py [--build-dir DIR] [--out FILE]
Exit status: 0 on success; a failing bench run aborts with its exit code.
"""

import argparse
import datetime
import json
import subprocess
import sys
import tempfile
from pathlib import Path


def run_bench(binary, args, out_path):
    command = [str(binary)] + args
    print("+ " + " ".join(command), file=sys.stderr)
    result = subprocess.run(command)
    if result.returncode != 0:
        print(f"{binary.name} failed with exit {result.returncode}",
              file=sys.stderr)
        sys.exit(result.returncode or 1)
    with open(out_path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--out", default="BENCH_baseline.json")
    args = parser.parse_args()

    bench_dir = Path(args.build_dir) / "bench"
    benches = {}
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        # Reduced workloads keep the checked-in file reviewable; the trends
        # (scaling curve, compiled-vs-interpreted gap) survive the shrink.
        metrics = tmp / "parallel.json"
        benches["bench_parallel_scaling"] = {
            "envelope": run_bench(
                bench_dir / "bench_parallel_scaling",
                ["--roads=2", "--segments=8", "--duration=300",
                 "--metrics=operator", f"--metrics-out={metrics}"],
                metrics,
            ),
        }
        # The scheduler A/B on the hot-partition workload: pinned vs
        # stealing at every thread count (check_metrics_schema.py gates on
        # derived equality, the pinned rows' imbalance and the stealing
        # rows' steal counts; the wall-clock gate applies only when the
        # recording machine is multi-core).
        skew = tmp / "parallel_skew.json"
        benches["bench_parallel_scaling"]["skew"] = run_bench(
            bench_dir / "bench_parallel_scaling",
            ["--workload=skewed", "--duration=200", "--repetitions=2",
             f"--skew-out={skew}"],
            skew,
        )
        metrics = tmp / "compile.json"
        ablation = tmp / "ablation.json"
        benches["bench_pattern_compile"] = {
            "envelope": run_bench(
                bench_dir / "bench_pattern_compile",
                ["--metrics=operator", f"--metrics-out={metrics}",
                 f"--ablation-out={ablation}"],
                metrics,
            ),
        }
        with open(ablation, "r", encoding="utf-8") as handle:
            benches["bench_pattern_compile"]["ablation"] = json.load(handle)
        metrics = tmp / "durability.json"
        benches["bench_durability"] = {
            "envelope": run_bench(
                bench_dir / "bench_durability",
                ["--segments=6", "--duration=300",
                 f"--metrics-out={metrics}"],
                metrics,
            ),
        }

    doc = {
        "baseline_version": 1,
        "generated": datetime.date.today().isoformat(),
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, separators=(",", ":"))
        handle.write("\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
