// caesard: the CAESAR daemon. Hosts many tenant engines over one shared
// worker pool behind a loopback/TCP socket (see src/server/server.h for
// the concurrency model and src/server/protocol.h for the protocol).
//
//   caesard [--host=ADDR] [--port=N] [--deterministic]
//           [--workers=N] [--scheduler=pinned|stealing]
//           [--max-tenants=N] [--max-pending=N]
//           [--drain-interval-ms=N] [--max-frame-bytes=N]
//           [--port-file=PATH]
//
// --port=0 (the default) binds an ephemeral port; --port-file writes the
// resolved port as a single line once the server is listening, which is
// how test harnesses and the CI smoke job find the daemon without racing
// it. Exits 0 on a clean shutdown (wire `shutdown` command, SIGINT, or
// SIGTERM), 2 on usage or bind errors.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/executor.h"
#include "server/server.h"

namespace caesar {
namespace {

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host=ADDR] [--port=N] [--deterministic]\n"
      "          [--workers=N] [--scheduler=pinned|stealing]\n"
      "          [--max-tenants=N] [--max-pending=N]\n"
      "          [--drain-interval-ms=N] [--max-frame-bytes=N]\n"
      "          [--port-file=PATH]\n",
      argv0);
  return 2;
}

// --key=value matcher; returns the value tail or null.
const char* FlagValue(const char* arg, const char* key) {
  const size_t n = std::strlen(key);
  if (std::strncmp(arg, key, n) == 0 && arg[n] == '=') return arg + n + 1;
  return nullptr;
}

bool ParseIntFlag(const char* value, long min, long max, long* out) {
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || v < min || v > max) return false;
  *out = v;
  return true;
}

int Main(int argc, char** argv) {
  ServerOptions options;
  std::string port_file;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* value = nullptr;
    long n = 0;
    if ((value = FlagValue(arg, "--host")) != nullptr) {
      options.host = value;
    } else if ((value = FlagValue(arg, "--port")) != nullptr) {
      if (!ParseIntFlag(value, 0, 65535, &n)) return Usage(argv[0]);
      options.port = static_cast<int>(n);
    } else if (std::strcmp(arg, "--deterministic") == 0) {
      options.deterministic = true;
    } else if ((value = FlagValue(arg, "--workers")) != nullptr) {
      if (!ParseIntFlag(value, 0, 256, &n)) return Usage(argv[0]);
      options.executor_workers = static_cast<int>(n);
    } else if ((value = FlagValue(arg, "--scheduler")) != nullptr) {
      if (!ParseSchedulerMode(value, &options.scheduler)) {
        return Usage(argv[0]);
      }
    } else if ((value = FlagValue(arg, "--max-tenants")) != nullptr) {
      if (!ParseIntFlag(value, 1, 1 << 20, &n)) return Usage(argv[0]);
      options.max_tenants = static_cast<size_t>(n);
    } else if ((value = FlagValue(arg, "--max-pending")) != nullptr) {
      if (!ParseIntFlag(value, 1, 1L << 30, &n)) return Usage(argv[0]);
      options.max_pending_events = static_cast<size_t>(n);
    } else if ((value = FlagValue(arg, "--drain-interval-ms")) != nullptr) {
      if (!ParseIntFlag(value, 1, 60000, &n)) return Usage(argv[0]);
      options.drain_interval_ms = static_cast<int>(n);
    } else if ((value = FlagValue(arg, "--max-frame-bytes")) != nullptr) {
      if (!ParseIntFlag(value, 2, static_cast<long>(kMaxWirePayload), &n)) {
        return Usage(argv[0]);
      }
      options.max_frame_bytes = static_cast<uint32_t>(n);
    } else if ((value = FlagValue(arg, "--port-file")) != nullptr) {
      port_file = value;
    } else {
      return Usage(argv[0]);
    }
  }

  CaesarServer server(options);
  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "caesard: %s\n", status.ToString().c_str());
    return 2;
  }

  std::fprintf(stderr,
               "caesard: listening on %s:%d (%s mode, %d workers, %s)\n",
               options.host.c_str(), server.port(),
               options.deterministic ? "deterministic" : "throughput",
               options.executor_workers > 1 ? options.executor_workers : 1,
               SchedulerModeName(options.scheduler));

  if (!port_file.empty()) {
    // Written after listen(2) succeeded: a reader that sees the line can
    // connect immediately.
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "caesard: cannot write %s\n", port_file.c_str());
      server.Stop();
      return 2;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Poll: signal handlers cannot touch the server's locks, and the wire
  // shutdown command sets stop_requested() from a handler thread.
  while (g_signal == 0 && !server.stop_requested()) {
    struct timespec ts {0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Stop();
  std::fprintf(stderr, "caesard: stopped\n");
  return 0;
}

}  // namespace
}  // namespace caesar

int main(int argc, char** argv) { return caesar::Main(argc, argv); }
