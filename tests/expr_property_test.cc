// Property tests for the expression subsystem:
//  - print/parse round-trip is a fixpoint for random well-formed ASTs;
//  - the compiled evaluator agrees with a direct reference interpretation
//    of the AST;
//  - the lexer/parser/query-parser never crash on random garbage (errors
//    come back as Status, not aborts).

#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "common/rng.h"
#include "event/event.h"
#include "expr/compiled.h"
#include "expr/expr.h"
#include "expr/parser.h"
#include "query/parser.h"

namespace caesar {
namespace {

// Generates random well-typed expressions over the schema
// E(a:int, b:int, x:double).
class ExprGenerator {
 public:
  explicit ExprGenerator(Rng* rng) : rng_(rng) {}

  // kind: 0 = numeric, 1 = boolean.
  ExprPtr Generate(int kind, int depth) {
    if (kind == 1) {
      // Boolean: comparison or logical combination.
      if (depth <= 0 || rng_->Bernoulli(0.5)) {
        BinaryOp op = kComparisons[rng_->Uniform(0, 5)];
        return MakeBinary(op, Generate(0, depth - 1), Generate(0, depth - 1));
      }
      BinaryOp op = rng_->Bernoulli(0.5) ? BinaryOp::kAnd : BinaryOp::kOr;
      return MakeBinary(op, Generate(1, depth - 1), Generate(1, depth - 1));
    }
    // Numeric.
    if (depth <= 0 || rng_->Bernoulli(0.4)) {
      switch (rng_->Uniform(0, 3)) {
        case 0:
          return MakeConstant(rng_->Uniform(0, 9));
        case 1:
          return MakeAttrRef("e", "a");
        case 2:
          return MakeAttrRef("e", "b");
        default:
          return MakeConstant(rng_->Uniform(1, 9));  // avoid 0 divisors a bit
      }
    }
    BinaryOp op = kArithmetic[rng_->Uniform(0, 3)];
    return MakeBinary(op, Generate(0, depth - 1), Generate(0, depth - 1));
  }

 private:
  static constexpr BinaryOp kComparisons[] = {BinaryOp::kEq, BinaryOp::kNe,
                                              BinaryOp::kLt, BinaryOp::kLe,
                                              BinaryOp::kGt, BinaryOp::kGe};
  static constexpr BinaryOp kArithmetic[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                             BinaryOp::kMul, BinaryOp::kDiv};
  Rng* rng_;
};

// Direct reference interpretation of the AST (int-only domain mirroring the
// engine's semantics: null on division by zero, comparisons on nulls are
// false, short-circuit logic).
std::optional<int64_t> Reference(const Expr& expr, int64_t a, int64_t b) {
  switch (expr.kind()) {
    case Expr::Kind::kConstant: {
      const Value& value = static_cast<const ConstantExpr&>(expr).value();
      return value.AsInt();
    }
    case Expr::Kind::kAttrRef: {
      const auto& ref = static_cast<const AttrRefExpr&>(expr);
      return ref.attribute() == "a" ? a : b;
    }
    case Expr::Kind::kBinary: {
      const auto& binary = static_cast<const BinaryExpr&>(expr);
      if (binary.op() == BinaryOp::kAnd) {
        auto left = Reference(*binary.left(), a, b);
        if (!left.has_value() || *left == 0) return 0;
        return Reference(*binary.right(), a, b);
      }
      if (binary.op() == BinaryOp::kOr) {
        auto left = Reference(*binary.left(), a, b);
        if (left.has_value() && *left != 0) return 1;
        return Reference(*binary.right(), a, b);
      }
      auto left = Reference(*binary.left(), a, b);
      auto right = Reference(*binary.right(), a, b);
      if (!left.has_value() || !right.has_value()) return std::nullopt;
      switch (binary.op()) {
        case BinaryOp::kAdd: return *left + *right;
        case BinaryOp::kSub: return *left - *right;
        case BinaryOp::kMul: return *left * *right;
        case BinaryOp::kDiv:
          if (*right == 0) return std::nullopt;
          return *left / *right;
        case BinaryOp::kEq: return *left == *right ? 1 : 0;
        case BinaryOp::kNe: return *left != *right ? 1 : 0;
        case BinaryOp::kLt: return *left < *right ? 1 : 0;
        case BinaryOp::kLe: return *left <= *right ? 1 : 0;
        case BinaryOp::kGt: return *left > *right ? 1 : 0;
        case BinaryOp::kGe: return *left >= *right ? 1 : 0;
        default: return std::nullopt;
      }
    }
  }
  return std::nullopt;
}

class ExprPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  ExprPropertyTest() {
    type_ = registry_.RegisterOrGet(
        "E", {{"a", ValueType::kInt}, {"b", ValueType::kInt}});
    bindings_.Add({"e", type_, &registry_.type(type_).schema});
  }

  TypeRegistry registry_;
  TypeId type_;
  BindingSet bindings_;
};

TEST_P(ExprPropertyTest, PrintParseRoundTripIsFixpoint) {
  Rng rng(GetParam());
  ExprGenerator generator(&rng);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr expr = generator.Generate(trial % 2, 3);
    std::string printed = expr->ToString();
    auto reparsed = ParseExpr(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << ": " << reparsed.status();
    EXPECT_EQ(reparsed.value()->ToString(), printed);
  }
}

TEST_P(ExprPropertyTest, CompiledEvalMatchesReference) {
  Rng rng(GetParam() + 500);
  ExprGenerator generator(&rng);
  for (int trial = 0; trial < 40; ++trial) {
    ExprPtr expr = generator.Generate(trial % 2, 3);
    auto compiled = Compile(expr, bindings_);
    ASSERT_TRUE(compiled.ok()) << expr->ToString() << ": "
                               << compiled.status();
    for (int sample = 0; sample < 10; ++sample) {
      int64_t a = rng.Uniform(-9, 9);
      int64_t b = rng.Uniform(-9, 9);
      EventPtr event = MakeEvent(type_, 0, {Value(a), Value(b)});
      Value actual = compiled.value()->Eval(&event);
      std::optional<int64_t> expected = Reference(*expr, a, b);
      if (!expected.has_value()) {
        EXPECT_TRUE(actual.is_null())
            << expr->ToString() << " a=" << a << " b=" << b;
      } else {
        ASSERT_EQ(actual.type(), ValueType::kInt)
            << expr->ToString() << " a=" << a << " b=" << b;
        EXPECT_EQ(actual.AsInt(), *expected)
            << expr->ToString() << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST_P(ExprPropertyTest, ParsersNeverCrashOnGarbage) {
  Rng rng(GetParam() + 9000);
  const std::string alphabet =
      "abcXY01279 .,;()<>=!+-*/\"'\n\tPATTERN WHERE SEQ NOT CONTEXT DERIVE";
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    int length = static_cast<int>(rng.Uniform(0, 60));
    for (int i = 0; i < length; ++i) {
      garbage += alphabet[rng.Uniform(0, alphabet.size() - 1)];
    }
    // Any of these may fail, but none may crash.
    (void)ParseExpr(garbage);
    (void)ParseQuery(garbage);
    TypeRegistry registry;
    (void)ParseModel(garbage, &registry);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExprPropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace caesar
