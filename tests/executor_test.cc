// Unit tests for the persistent sharded worker pool: shard assignment
// stability, barrier correctness (including empty ticks), metric
// accounting, reuse across ticks and Run calls, and clean shutdown.

#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

TEST(ShardedExecutorTest, ExecutesEveryTaskExactlyOnce) {
  ShardedExecutor executor(4);
  constexpr size_t kTasks = 64;
  std::vector<uint64_t> shards(kTasks);
  for (size_t i = 0; i < kTasks; ++i) shards[i] = i * 1315423911ULL;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& hit : hits) hit = 0;
  for (int tick = 0; tick < 10; ++tick) {
    executor.ExecuteTick(kTasks, shards.data(),
                         [&](size_t i) { ++hits[i]; });
  }
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 10) << i;
  EXPECT_EQ(executor.metrics().ticks, 10u);
  EXPECT_EQ(executor.metrics().tasks, 10u * kTasks);
}

TEST(ShardedExecutorTest, ShardAssignmentIsStableAcrossTicks) {
  ShardedExecutor executor(3);
  constexpr size_t kTasks = 24;
  std::vector<uint64_t> shards(kTasks);
  // Multiplier coprime to the worker count, so all residues mod 3 occur.
  for (size_t i = 0; i < kTasks; ++i) shards[i] = 0x9e3779b1ULL * (i + 1);

  // Record which thread handled each shard key on every tick; the same key
  // must always land on the same worker thread.
  std::map<uint64_t, std::thread::id> owner;
  std::mutex mu;
  for (int tick = 0; tick < 20; ++tick) {
    executor.ExecuteTick(kTasks, shards.data(), [&](size_t i) {
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] =
          owner.emplace(shards[i], std::this_thread::get_id());
      if (!inserted) {
        EXPECT_EQ(it->second, std::this_thread::get_id())
            << "shard " << shards[i] << " migrated between workers";
      }
    });
  }
  // Keys congruent mod num_workers share a worker; distinct residues use
  // distinct workers (3 residues present among the keys).
  std::map<std::thread::id, int> distinct;
  for (const auto& [key, id] : owner) ++distinct[id];
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(ShardedExecutorTest, EmptyTickStillReachesTheBarrier) {
  ShardedExecutor executor(4);
  for (int tick = 0; tick < 100; ++tick) {
    executor.ExecuteTick(0, nullptr, [](size_t) { FAIL(); });
  }
  EXPECT_EQ(executor.metrics().ticks, 100u);
  EXPECT_EQ(executor.metrics().tasks, 0u);
  EXPECT_EQ(executor.metrics().imbalance, 0u);
  // The pool must still be usable after empty ticks.
  std::atomic<int> ran{0};
  uint64_t shard = 7;
  executor.ExecuteTick(1, &shard, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardedExecutorTest, ImbalanceCountsSkewedShards) {
  ShardedExecutor executor(2);
  // All four tasks on the same shard: one worker gets 4, the other 0.
  std::vector<uint64_t> skewed(4, 2);
  executor.ExecuteTick(skewed.size(), skewed.data(), [](size_t) {});
  EXPECT_EQ(executor.metrics().imbalance, 4u);
  // Perfectly alternating shards: no imbalance added.
  std::vector<uint64_t> even = {0, 1, 2, 3};
  executor.ExecuteTick(even.size(), even.data(), [](size_t) {});
  EXPECT_EQ(executor.metrics().imbalance, 4u);
  EXPECT_EQ(executor.metrics().barrier_wait.count(), 2);
}

TEST(ShardedExecutorTest, SingleWorkerRunsEverything) {
  ShardedExecutor executor(1);
  std::vector<uint64_t> shards = {0, 1, 2, 3, 4, 5, 6, 7};
  std::atomic<int> ran{0};
  executor.ExecuteTick(shards.size(), shards.data(), [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ShardedExecutorTest, CleanShutdownWithoutAnyTick) {
  for (int i = 0; i < 20; ++i) {
    ShardedExecutor executor(4);
  }
}

TEST(ShardedExecutorTest, ManyTicksReuseTheSameWorkers) {
  ShardedExecutor executor(2);
  std::vector<uint64_t> shards = {0, 1};
  std::atomic<uint64_t> total{0};
  for (int tick = 0; tick < 2000; ++tick) {
    executor.ExecuteTick(2, shards.data(), [&](size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 4000u);
  EXPECT_EQ(executor.metrics().ticks, 2000u);
}

// --- Engine-level pool lifetime -------------------------------------------

constexpr char kModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high
PATTERN Reading r WHERE r.value > 10
CONTEXT normal;

QUERY go_normal
SWITCH CONTEXT normal
PATTERN Reading r WHERE r.value <= 10
CONTEXT high;

QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r WHERE r.value > 15
CONTEXT high;
)";

class ExecutorEngineTest : public ::testing::Test {
 protected:
  ExecutorEngineTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  ExecutablePlan Plan() {
    auto model = ParseModel(kModel, &registry_);
    CAESAR_CHECK_OK(model.status());
    auto plan = TranslateModel(model.value(), PlanOptions());
    CAESAR_CHECK_OK(plan.status());
    return std::move(plan).value();
  }

  EventBatch Stream(Timestamp from, Timestamp to) {
    EventBatch batch;
    for (Timestamp t = from; t < to; ++t) {
      for (int64_t seg = 0; seg < 6; ++seg) {
        int64_t value = (t * 7 + seg * 13) % 30;
        batch.push_back(
            MakeEvent(reading_, t, {Value(seg), Value(value), Value(t)}));
      }
    }
    return batch;
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(ExecutorEngineTest, SerialEngineHasNoPool) {
  Engine engine(Plan(), EngineOptions());
  EXPECT_EQ(engine.executor(), nullptr);
  RunStats stats = engine.Run(Stream(0, 10)).value();
  EXPECT_EQ(stats.parallel_ticks, 0);
  EXPECT_EQ(stats.barrier_wait_seconds, 0.0);
}

TEST_F(ExecutorEngineTest, WorkersCreatedOncePerEngineAndReusedAcrossRuns) {
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(Plan(), options);
  ASSERT_NE(engine.executor(), nullptr);
  EXPECT_EQ(engine.executor()->num_workers(), 4);
  const ShardedExecutor* pool = engine.executor();

  RunStats first = engine.Run(Stream(0, 50)).value();
  EXPECT_EQ(first.parallel_ticks, 50);
  EXPECT_EQ(first.parallel_tasks, first.transactions);

  // Second Run reuses the same pool object and its workers; cumulative
  // metrics keep growing.
  RunStats second = engine.Run(Stream(50, 100)).value();
  EXPECT_EQ(engine.executor(), pool);
  EXPECT_EQ(second.parallel_ticks, 50);
  EXPECT_EQ(pool->metrics().ticks, 100u);
  EXPECT_EQ(pool->metrics().tasks,
            static_cast<uint64_t>(first.transactions + second.transactions));
}

TEST_F(ExecutorEngineTest, StatisticsReportCarriesExecutorSnapshot) {
  EngineOptions options;
  options.num_threads = 3;
  options.gather_statistics = true;
  Engine engine(Plan(), options);
  engine.Run(Stream(0, 20)).value();
  StatisticsReport report = engine.CollectStatistics();
  EXPECT_EQ(report.executor_workers, 3);
  EXPECT_EQ(report.executor.ticks, 20u);
  EXPECT_NE(report.ToString().find("executor: workers=3"), std::string::npos);
}

TEST_F(ExecutorEngineTest, EngineDestructionJoinsWorkers) {
  for (int i = 0; i < 10; ++i) {
    EngineOptions options;
    options.num_threads = 4;
    Engine engine(Plan(), options);
    if (i % 2 == 0) engine.Run(Stream(0, 5)).value();
    // Destructor must join the pool cleanly, with or without a Run.
  }
}

}  // namespace
}  // namespace caesar
