// Unit tests for the persistent sharded worker pool: shard assignment
// stability, barrier correctness (including empty ticks), metric
// accounting, reuse across ticks and Run calls, clean shutdown, and the
// work-stealing scheduler (exactly-once execution under skew, steal
// accounting, identical metric structure across worker counts).

#include "runtime/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

TEST(SchedulerModeTest, ParseAndName) {
  SchedulerMode mode;
  EXPECT_TRUE(ParseSchedulerMode("pinned", &mode));
  EXPECT_EQ(mode, SchedulerMode::kPinned);
  EXPECT_TRUE(ParseSchedulerMode("stealing", &mode));
  EXPECT_EQ(mode, SchedulerMode::kStealing);
  EXPECT_FALSE(ParseSchedulerMode("bogus", &mode));
  EXPECT_STREQ(SchedulerModeName(SchedulerMode::kPinned), "pinned");
  EXPECT_STREQ(SchedulerModeName(SchedulerMode::kStealing), "stealing");
}

TEST(ShardedExecutorTest, ExecutesEveryTaskExactlyOnce) {
  ShardedExecutor executor(4);
  EXPECT_EQ(executor.mode(), SchedulerMode::kPinned);
  constexpr size_t kTasks = 64;
  std::vector<uint64_t> shards(kTasks);
  for (size_t i = 0; i < kTasks; ++i) shards[i] = i * 1315423911ULL;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& hit : hits) hit = 0;
  for (int tick = 0; tick < 10; ++tick) {
    executor.ExecuteTick(kTasks, shards.data(), [&](size_t i, int worker) {
      // Pinned mode: the executing worker is the shard's static owner.
      EXPECT_EQ(worker, static_cast<int>(shards[i] % 4));
      ++hits[i];
    });
  }
  for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 10) << i;
  EXPECT_EQ(executor.metrics().ticks, 10u);
  EXPECT_EQ(executor.metrics().tasks, 10u * kTasks);
  EXPECT_EQ(executor.metrics().steals, 0u);
}

TEST(ShardedExecutorTest, ShardAssignmentIsStableAcrossTicks) {
  ShardedExecutor executor(3);
  constexpr size_t kTasks = 24;
  std::vector<uint64_t> shards(kTasks);
  // Multiplier coprime to the worker count, so all residues mod 3 occur.
  for (size_t i = 0; i < kTasks; ++i) shards[i] = 0x9e3779b1ULL * (i + 1);

  // Record which thread handled each shard key on every tick; the same key
  // must always land on the same worker thread (pinned mode only).
  std::map<uint64_t, std::thread::id> owner;
  std::mutex mu;
  for (int tick = 0; tick < 20; ++tick) {
    executor.ExecuteTick(kTasks, shards.data(), [&](size_t i, int) {
      std::lock_guard<std::mutex> lock(mu);
      auto [it, inserted] =
          owner.emplace(shards[i], std::this_thread::get_id());
      if (!inserted) {
        EXPECT_EQ(it->second, std::this_thread::get_id())
            << "shard " << shards[i] << " migrated between workers";
      }
    });
  }
  // Keys congruent mod num_workers share a worker; distinct residues use
  // distinct workers (3 residues present among the keys).
  std::map<std::thread::id, int> distinct;
  for (const auto& [key, id] : owner) ++distinct[id];
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(ShardedExecutorTest, EmptyTickStillReachesTheBarrier) {
  ShardedExecutor executor(4);
  for (int tick = 0; tick < 100; ++tick) {
    executor.ExecuteTick(0, nullptr, [](size_t, int) { FAIL(); });
  }
  EXPECT_EQ(executor.metrics().ticks, 100u);
  EXPECT_EQ(executor.metrics().tasks, 0u);
  EXPECT_EQ(executor.metrics().imbalance, 0u);
  // The pool must still be usable after empty ticks.
  std::atomic<int> ran{0};
  uint64_t shard = 7;
  executor.ExecuteTick(1, &shard, [&](size_t, int) { ++ran; });
  EXPECT_EQ(ran.load(), 1);
}

TEST(ShardedExecutorTest, ImbalanceCountsSkewedShards) {
  ShardedExecutor executor(2);
  // All four tasks on the same shard: one worker gets 4, the other 0.
  std::vector<uint64_t> skewed(4, 2);
  executor.ExecuteTick(skewed.size(), skewed.data(), [](size_t, int) {});
  EXPECT_EQ(executor.metrics().imbalance, 4u);
  // Perfectly alternating shards: no imbalance added.
  std::vector<uint64_t> even = {0, 1, 2, 3};
  executor.ExecuteTick(even.size(), even.data(), [](size_t, int) {});
  EXPECT_EQ(executor.metrics().imbalance, 4u);
  EXPECT_EQ(executor.metrics().barrier_wait.count(), 2);
  // The per-tick histogram records every tick: one with imbalance 4, one
  // with 0.
  EXPECT_EQ(executor.metrics().imbalance_per_tick.count(), 2);
  EXPECT_EQ(executor.metrics().imbalance_per_tick.sum(), 4u);
  EXPECT_EQ(executor.metrics().imbalance_per_tick.max(), 4u);
}

TEST(ShardedExecutorTest, WeightedImbalanceSeesWorkSkew) {
  ShardedExecutor executor(2);
  // One task per worker — task counts are perfectly even — but task 0
  // carries weight 9 vs 1. The load tally is weight-based (the engine
  // passes per-transaction event counts), so the hot task registers.
  std::vector<uint64_t> shards = {0, 1};
  std::vector<uint64_t> weights = {9, 1};
  executor.ExecuteTick(2, shards.data(), weights.data(), [](size_t, int) {});
  EXPECT_EQ(executor.metrics().imbalance, 8u);
  EXPECT_EQ(executor.metrics().imbalance_per_tick.max(), 8u);
  EXPECT_EQ(executor.metrics().tasks, 2u);
}

TEST(ShardedExecutorTest, SingleWorkerRunsEverything) {
  ShardedExecutor executor(1);
  std::vector<uint64_t> shards = {0, 1, 2, 3, 4, 5, 6, 7};
  std::atomic<int> ran{0};
  executor.ExecuteTick(shards.size(), shards.data(),
                       [&](size_t, int) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
  // Metric structure is identical across worker counts: the load tally is
  // taken even with one worker (max == min, so imbalance stays zero, but
  // the histogram still records the tick).
  EXPECT_EQ(executor.metrics().imbalance, 0u);
  EXPECT_EQ(executor.metrics().imbalance_per_tick.count(), 1);
  EXPECT_EQ(executor.metrics().steals, 0u);
}

TEST(ShardedExecutorTest, CleanShutdownWithoutAnyTick) {
  for (int i = 0; i < 20; ++i) {
    ShardedExecutor executor(4);
  }
  for (int i = 0; i < 20; ++i) {
    ShardedExecutor executor(4, SchedulerMode::kStealing);
  }
}

TEST(ShardedExecutorTest, ManyTicksReuseTheSameWorkers) {
  ShardedExecutor executor(2);
  std::vector<uint64_t> shards = {0, 1};
  std::atomic<uint64_t> total{0};
  for (int tick = 0; tick < 2000; ++tick) {
    executor.ExecuteTick(2, shards.data(), [&](size_t, int) { ++total; });
  }
  EXPECT_EQ(total.load(), 4000u);
  EXPECT_EQ(executor.metrics().ticks, 2000u);
}

// --- Work stealing --------------------------------------------------------

TEST(ShardedExecutorTest, StealingExecutesEveryTaskExactlyOnceUnderSkew) {
  // Forced skew: >90% of the tasks share one hot shard. Claim flags must
  // keep execution exactly-once at every worker count, over many ticks.
  constexpr size_t kTasks = 64;
  constexpr int kTicks = 200;
  std::vector<uint64_t> shards(kTasks);
  for (size_t i = 0; i < kTasks; ++i) {
    shards[i] = i < 60 ? 0 : i * 1315423911ULL;  // 60/64 tasks on shard 0
  }
  for (int workers : {1, 2, 4, 8}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ShardedExecutor executor(workers, SchedulerMode::kStealing);
    EXPECT_EQ(executor.mode(), SchedulerMode::kStealing);
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& hit : hits) hit = 0;
    for (int tick = 0; tick < kTicks; ++tick) {
      executor.ExecuteTick(kTasks, shards.data(), [&](size_t i, int worker) {
        EXPECT_GE(worker, 0);
        EXPECT_LT(worker, workers);
        ++hits[i];
      });
    }
    for (size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), kTicks) << "task " << i;
    }
    EXPECT_EQ(executor.metrics().ticks, static_cast<uint64_t>(kTicks));
    EXPECT_EQ(executor.metrics().tasks,
              static_cast<uint64_t>(kTicks) * kTasks);
    EXPECT_EQ(executor.metrics().imbalance_per_tick.count(), kTicks);
  }
}

TEST(ShardedExecutorTest, StealingEngagesOnSkewedSlowTasks) {
  // All tasks pinned to one shard, each slow enough that idle workers get
  // scheduled and steal from the owner's tail — even on a single CPU.
  ShardedExecutor executor(4, SchedulerMode::kStealing);
  constexpr size_t kTasks = 32;
  std::vector<uint64_t> shards(kTasks, 0);
  std::atomic<int> ran{0};
  for (int tick = 0; tick < 4; ++tick) {
    executor.ExecuteTick(kTasks, shards.data(), [&](size_t, int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ++ran;
    });
  }
  EXPECT_EQ(ran.load(), 4 * static_cast<int>(kTasks));
  // The owner sleeps through most of its queue; thieves must have taken
  // part of it.
  EXPECT_GT(executor.metrics().steals, 0u);
  // Executed-load imbalance under stealing is bounded by the assigned
  // imbalance (kTasks per tick when one worker owns everything).
  EXPECT_LE(executor.metrics().imbalance_per_tick.max(), kTasks);
}

TEST(ShardedExecutorTest, PinnedAndStealingAgreeOnTaskSet) {
  // Same skewed input through both schedulers: identical task coverage and
  // identical tick/task counters; only who executed what may differ.
  constexpr size_t kTasks = 48;
  std::vector<uint64_t> shards(kTasks);
  for (size_t i = 0; i < kTasks; ++i) shards[i] = i < 40 ? 5 : i;
  for (SchedulerMode mode :
       {SchedulerMode::kPinned, SchedulerMode::kStealing}) {
    SCOPED_TRACE(SchedulerModeName(mode));
    ShardedExecutor executor(4, mode);
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& hit : hits) hit = 0;
    for (int tick = 0; tick < 50; ++tick) {
      executor.ExecuteTick(kTasks, shards.data(),
                           [&](size_t i, int) { ++hits[i]; });
    }
    for (size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 50) << i;
    EXPECT_EQ(executor.metrics().ticks, 50u);
    EXPECT_EQ(executor.metrics().tasks, 50u * kTasks);
  }
}

// --- Engine-level pool lifetime -------------------------------------------

constexpr char kModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high
PATTERN Reading r WHERE r.value > 10
CONTEXT normal;

QUERY go_normal
SWITCH CONTEXT normal
PATTERN Reading r WHERE r.value <= 10
CONTEXT high;

QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r WHERE r.value > 15
CONTEXT high;
)";

class ExecutorEngineTest : public ::testing::Test {
 protected:
  ExecutorEngineTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  ExecutablePlan Plan() {
    auto model = ParseModel(kModel, &registry_);
    CAESAR_CHECK_OK(model.status());
    auto plan = TranslateModel(model.value(), PlanOptions());
    CAESAR_CHECK_OK(plan.status());
    return std::move(plan).value();
  }

  EventBatch Stream(Timestamp from, Timestamp to) {
    EventBatch batch;
    for (Timestamp t = from; t < to; ++t) {
      for (int64_t seg = 0; seg < 6; ++seg) {
        int64_t value = (t * 7 + seg * 13) % 30;
        batch.push_back(
            MakeEvent(reading_, t, {Value(seg), Value(value), Value(t)}));
      }
    }
    return batch;
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(ExecutorEngineTest, SerialEngineHasNoPool) {
  Engine engine(Plan(), EngineOptions());
  EXPECT_EQ(engine.executor(), nullptr);
  RunStats stats = engine.Run(Stream(0, 10)).value();
  EXPECT_EQ(stats.parallel_ticks, 0);
  EXPECT_EQ(stats.barrier_wait_seconds, 0.0);
}

TEST_F(ExecutorEngineTest, WorkersCreatedOncePerEngineAndReusedAcrossRuns) {
  EngineOptions options;
  options.num_threads = 4;
  Engine engine(Plan(), options);
  ASSERT_NE(engine.executor(), nullptr);
  EXPECT_EQ(engine.executor()->num_workers(), 4);
  const ShardedExecutor* pool = engine.executor();

  RunStats first = engine.Run(Stream(0, 50)).value();
  EXPECT_EQ(first.parallel_ticks, 50);
  EXPECT_EQ(first.parallel_tasks, first.transactions);

  // Second Run reuses the same pool object and its workers; cumulative
  // metrics keep growing.
  RunStats second = engine.Run(Stream(50, 100)).value();
  EXPECT_EQ(engine.executor(), pool);
  EXPECT_EQ(second.parallel_ticks, 50);
  EXPECT_EQ(pool->metrics().ticks, 100u);
  EXPECT_EQ(pool->metrics().tasks,
            static_cast<uint64_t>(first.transactions + second.transactions));
}

TEST_F(ExecutorEngineTest, EngineHonorsSchedulerOption) {
  EngineOptions options;
  options.num_threads = 4;
  options.scheduler = SchedulerMode::kStealing;
  Engine engine(Plan(), options);
  ASSERT_NE(engine.executor(), nullptr);
  EXPECT_EQ(engine.executor()->mode(), SchedulerMode::kStealing);
  RunStats stats = engine.Run(Stream(0, 50)).value();
  EXPECT_EQ(stats.parallel_ticks, 50);
  EXPECT_EQ(stats.parallel_tasks, stats.transactions);
  EXPECT_GE(stats.tasks_stolen, 0);
}

TEST_F(ExecutorEngineTest, StatisticsReportCarriesExecutorSnapshot) {
  EngineOptions options;
  options.num_threads = 3;
  options.gather_statistics = true;
  Engine engine(Plan(), options);
  engine.Run(Stream(0, 20)).value();
  StatisticsReport report = engine.CollectStatistics();
  EXPECT_EQ(report.executor_workers, 3);
  EXPECT_EQ(report.executor.ticks, 20u);
  EXPECT_EQ(report.executor.imbalance_per_tick.count(), 20);
  EXPECT_NE(report.ToString().find("executor: workers=3"), std::string::npos);
  EXPECT_NE(report.ToString().find("imbalance_per_tick["), std::string::npos);
}

TEST_F(ExecutorEngineTest, EngineDestructionJoinsWorkers) {
  for (int i = 0; i < 10; ++i) {
    EngineOptions options;
    options.num_threads = 4;
    options.scheduler =
        i % 2 == 0 ? SchedulerMode::kPinned : SchedulerMode::kStealing;
    Engine engine(Plan(), options);
    if (i % 2 == 0) engine.Run(Stream(0, 5)).value();
    // Destructor must join the pool cleanly, with or without a Run.
  }
}

}  // namespace
}  // namespace caesar
