// Unit tests for src/common: Status, Result, stats, RNG determinism.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace caesar {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("bad window");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad window");
  EXPECT_EQ(status.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

Result<int> Double(Result<int> input) {
  CAESAR_ASSIGN_OR_RETURN(int v, input);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Double(21).value(), 42);
  EXPECT_EQ(Double(Status::Internal("boom")).status().code(),
            StatusCode::kInternal);
}

TEST(RunningStatsTest, TracksMoments) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0);
  EXPECT_EQ(stats.mean(), 0.0);
  stats.Add(1.0);
  stats.Add(3.0);
  stats.Add(2.0);
  EXPECT_EQ(stats.count(), 3);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 3.0);
}

TEST(RunningStatsTest, MergeCombines) {
  RunningStats a, b;
  a.Add(1.0);
  b.Add(5.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 3);
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(5.5);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(100.0);
  EXPECT_EQ(h.total(), 6);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(5), 1);
  EXPECT_EQ(h.bucket_count(9), 1);
}

TEST(HistogramTest, QuantileApproximation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.5);
}

TEST(LatencyTrackerTest, ReportsMax) {
  LatencyTracker tracker;
  tracker.Record(0.5);
  tracker.Record(2.5);
  tracker.Record(1.0);
  EXPECT_DOUBLE_EQ(tracker.max_latency(), 2.5);
  EXPECT_EQ(tracker.count(), 3);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformRespectsRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(7);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(StopwatchTest, ElapsedIsNonNegativeAndMonotone) {
  Stopwatch sw;
  double first = sw.ElapsedSeconds();
  double second = sw.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
}

}  // namespace
}  // namespace caesar
