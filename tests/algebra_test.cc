// Unit tests for the CAESAR algebra operators: filter, projection, context
// init/term/window, sequence pattern matching with negation, and sliding
// aggregates.

#include <gtest/gtest.h>

#include <memory>

#include "algebra/aggregate_op.h"
#include "algebra/basic_ops.h"
#include "algebra/context_ops.h"
#include "algebra/pattern_op.h"
#include "expr/compiled.h"
#include "expr/parser.h"
#include "runtime/context_vector.h"

namespace caesar {
namespace {

class AlgebraTest : public ::testing::Test {
 protected:
  AlgebraTest() : contexts_(4, 0) {
    type_ = registry_.RegisterOrGet("R", {{"vid", ValueType::kInt},
                                          {"seg", ValueType::kInt},
                                          {"speed", ValueType::kDouble},
                                          {"sec", ValueType::kInt}});
    ctx_.contexts = &contexts_;
    ctx_.registry = &registry_;
    ctx_.ops_counter = &ops_;
  }

  EventPtr MakeR(int64_t vid, int64_t seg, double speed, int64_t sec) {
    return MakeEvent(
        type_, sec, {Value(vid), Value(seg), Value(speed), Value(sec)});
  }

  std::shared_ptr<const CompiledExpr> CompilePredicate(
      const std::string& text, const BindingSet& bindings) {
    auto expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto compiled = Compile(expr.value(), bindings);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return std::shared_ptr<const CompiledExpr>(std::move(compiled).value());
  }

  BindingSet SingleBinding(const std::string& var) {
    BindingSet bindings;
    bindings.Add({var, type_, &registry_.type(type_).schema});
    return bindings;
  }

  TypeRegistry registry_;
  TypeId type_;
  ContextBitVector contexts_;
  uint64_t ops_ = 0;
  OpExecContext ctx_;
};

// --- Filter / Projection ---------------------------------------------------

TEST_F(AlgebraTest, FilterPassesSatisfyingEvents) {
  FilterOp filter(CompilePredicate("r.speed < 40", SingleBinding("r")));
  EventBatch in = {MakeR(1, 1, 30.0, 0), MakeR(2, 1, 50.0, 0),
                   MakeR(3, 1, 39.9, 0)};
  EventBatch out;
  filter.Process(in, &out, &ctx_);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->value(0).AsInt(), 1);
  EXPECT_EQ(out[1]->value(0).AsInt(), 3);
  EXPECT_GE(ops_, 3u);
}

TEST_F(AlgebraTest, FilterCloneIsIndependent) {
  FilterOp filter(CompilePredicate("r.vid = 1", SingleBinding("r")));
  auto clone = filter.Clone();
  EXPECT_EQ(clone->kind(), Operator::Kind::kFilter);
  EventBatch in = {MakeR(1, 1, 1.0, 0)};
  EventBatch out;
  clone->Process(in, &out, &ctx_);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, ProjectionDerivesTypedEvents) {
  TypeId out_type = registry_.RegisterOrGet(
      "Toll", {{"vid", ValueType::kInt}, {"toll", ValueType::kInt}});
  std::vector<std::shared_ptr<const CompiledExpr>> args;
  args.push_back(CompilePredicate("r.vid", SingleBinding("r")));
  args.push_back(CompilePredicate("5", SingleBinding("r")));
  ProjectionOp projection(out_type, std::move(args));
  EventBatch in = {MakeR(7, 2, 33.0, 12)};
  EventBatch out;
  projection.Process(in, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->type_id(), out_type);
  EXPECT_EQ(out[0]->value(0).AsInt(), 7);
  EXPECT_EQ(out[0]->value(1).AsInt(), 5);
  EXPECT_EQ(out[0]->time(), 12);
}

// --- Context operators -----------------------------------------------------

TEST_F(AlgebraTest, ContextInitAndTermUpdateVector) {
  ContextInitOp init(2, "busy");
  ContextTermOp term(2, "busy");
  EventBatch in = {MakeR(1, 1, 1.0, 10)};
  EventBatch out;
  init.Process(in, &out, &ctx_);
  EXPECT_TRUE(contexts_.IsActive(2));
  EXPECT_FALSE(contexts_.IsActive(0));  // default displaced
  EXPECT_EQ(contexts_.ActiveSince(2), 10);
  EXPECT_EQ(out.size(), 1u);  // pass-through

  out.clear();
  EventBatch in2 = {MakeR(1, 1, 1.0, 20)};
  term.Process(in2, &out, &ctx_);
  EXPECT_FALSE(contexts_.IsActive(2));
  EXPECT_TRUE(contexts_.IsActive(0));  // default restored
  EXPECT_EQ(contexts_.ActiveSince(0), 20);
}

TEST_F(AlgebraTest, ContextVectorOnlyOneWindowPerType) {
  ContextBitVector vector(4, 0);
  EXPECT_TRUE(vector.Initiate(1, 5));
  EXPECT_FALSE(vector.Initiate(1, 9));  // already active: no-op
  EXPECT_EQ(vector.ActiveSince(1), 5);
  EXPECT_TRUE(vector.Terminate(1, 12));
  EXPECT_FALSE(vector.Terminate(1, 13));
}

TEST_F(AlgebraTest, ContextVectorOverlappingWindows) {
  ContextBitVector vector(4, 0);
  vector.Initiate(1, 5);
  vector.Initiate(2, 7);  // overlap
  EXPECT_TRUE(vector.IsActive(1));
  EXPECT_TRUE(vector.IsActive(2));
  EXPECT_EQ(vector.ActiveCount(), 2);
  vector.Terminate(1, 9);
  EXPECT_TRUE(vector.IsActive(2));
  EXPECT_FALSE(vector.IsActive(0));
}

TEST_F(AlgebraTest, ContextWindowGates) {
  ContextWindowOp window({2}, "busy");
  EventBatch in = {MakeR(1, 1, 1.0, 30)};
  EventBatch out;
  // Context inactive: nothing passes.
  window.Process(in, &out, &ctx_);
  EXPECT_TRUE(out.empty());
  // Active since t=25: event at 30 passes.
  contexts_.Initiate(2, 25);
  window.Process(in, &out, &ctx_);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, ContextWindowScopesComplexEventsToWindowStart) {
  ContextWindowOp window({2}, "busy");
  contexts_.Initiate(2, 25);
  // A complex event spanning [20, 30] started before the window: dropped.
  EventBatch in = {MakeComplexEvent(type_, 20, 30,
                                    {Value(int64_t{1}), Value(int64_t{1}),
                                     Value(1.0), Value(int64_t{30})})};
  EventBatch out;
  window.Process(in, &out, &ctx_);
  EXPECT_TRUE(out.empty());
}

TEST_F(AlgebraTest, ContextWindowOrSemantics) {
  ContextWindowOp window({1, 2}, "either");
  contexts_.Initiate(1, 0);
  EventBatch in = {MakeR(1, 1, 1.0, 5)};
  EventBatch out;
  window.Process(in, &out, &ctx_);
  EXPECT_EQ(out.size(), 1u);
}

// --- Pattern: event matching ------------------------------------------------

TEST_F(AlgebraTest, EventMatchFiltersByType) {
  TypeId other = registry_.RegisterOrGet("Other", {{"x", ValueType::kInt}});
  auto config = std::make_shared<PatternOpConfig>();
  config->positions.push_back({type_, false, {}});
  config->output_type = type_;
  config->pass_through = true;
  PatternOp pattern(config);
  EventBatch in = {MakeR(1, 1, 1.0, 0), MakeEvent(other, 0, {Value(int64_t{1})})};
  EventBatch out;
  pattern.Process(in, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->type_id(), type_);
}

// --- Pattern: SEQ ------------------------------------------------------------

class SeqTest : public AlgebraTest {
 protected:
  // SEQ(R a, R b) WHERE a.vid = b.vid (pushed) WITHIN 60.
  std::unique_ptr<PatternOp> MakeSeqSameVid() {
    BindingSet bindings;
    bindings.Add({"a", type_, &registry_.type(type_).schema});
    bindings.Add({"b", type_, &registry_.type(type_).schema});
    auto config = std::make_shared<PatternOpConfig>();
    config->positions.push_back({type_, false, {}});
    config->positions.push_back(
        {type_, false, {CompilePredicate("a.vid = b.vid", bindings)}});
    config->within = 60;
    std::vector<Attribute> attrs;
    for (const char* var : {"a", "b"}) {
      for (const Attribute& attr : registry_.type(type_).schema.attributes()) {
        attrs.push_back({std::string(var) + "." + attr.name, attr.type});
      }
    }
    config->output_type = registry_.RegisterOrGet("$seq_same_vid", attrs);
    config->description = "SEQ(R a, R b)";
    return std::make_unique<PatternOp>(config);
  }
};

TEST_F(SeqTest, MatchesOrderedPairsWithPredicate) {
  auto seq = MakeSeqSameVid();
  EventBatch out;
  seq->Process({MakeR(1, 1, 10.0, 0)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());
  seq->Process({MakeR(2, 1, 10.0, 5)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());  // different vid
  seq->Process({MakeR(1, 1, 20.0, 10)}, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  // Composite event: a.* then b.*, interval [0, 10].
  EXPECT_EQ(out[0]->start_time(), 0);
  EXPECT_EQ(out[0]->end_time(), 10);
  EXPECT_EQ(out[0]->value(0).AsInt(), 1);        // a.vid
  EXPECT_DOUBLE_EQ(out[0]->value(6).AsDouble(), 20.0);  // b.speed
}

TEST_F(SeqTest, StrictTimeOrdering) {
  auto seq = MakeSeqSameVid();
  EventBatch out;
  // Two events with the same time stamp cannot form a sequence.
  seq->Process({MakeR(1, 1, 10.0, 5), MakeR(1, 1, 20.0, 5)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());
}

TEST_F(SeqTest, SkipTillAnyMatchProducesAllCombinations) {
  auto seq = MakeSeqSameVid();
  EventBatch out;
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  seq->Process({MakeR(1, 1, 2.0, 10)}, &out, &ctx_);
  seq->Process({MakeR(1, 1, 3.0, 20)}, &out, &ctx_);
  // Pairs: (0,10), (0,20), (10,20).
  EXPECT_EQ(out.size(), 3u);
}

TEST_F(SeqTest, WithinBoundExpiresPartials) {
  auto seq = MakeSeqSameVid();
  EventBatch out;
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  EXPECT_EQ(seq->num_partials(), 1u);
  seq->Process({MakeR(1, 1, 2.0, 100)}, &out, &ctx_);  // beyond WITHIN=60
  EXPECT_TRUE(out.empty());
  // The stale partial was expired; the new event started a fresh one.
  EXPECT_EQ(seq->num_partials(), 1u);
}

TEST_F(SeqTest, ResetDiscardsState) {
  auto seq = MakeSeqSameVid();
  EventBatch out;
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  seq->Reset();
  EXPECT_EQ(seq->num_partials(), 0u);
  seq->Process({MakeR(1, 1, 2.0, 10)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());  // no partial to complete
}

class NegationTest : public AlgebraTest {
 protected:
  // SEQ(NOT R p1, R p2) WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid
  // WITHIN 60 — the NewTravelingCar query of Fig. 3.
  std::unique_ptr<PatternOp> MakeNewCarSeq() {
    BindingSet bindings;
    bindings.Add({"p1", type_, &registry_.type(type_).schema});
    bindings.Add({"p2", type_, &registry_.type(type_).schema});
    auto config = std::make_shared<PatternOpConfig>();
    config->positions.push_back(
        {type_, true,
         {CompilePredicate("p1.sec + 30 = p2.sec AND p1.vid = p2.vid",
                           bindings)}});
    config->positions.push_back({type_, false, {}});
    config->within = 60;
    std::vector<Attribute> attrs;
    for (const Attribute& attr : registry_.type(type_).schema.attributes()) {
      attrs.push_back({"p2." + attr.name, attr.type});
    }
    config->output_type = registry_.RegisterOrGet("$seq_newcar", attrs);
    config->description = "SEQ(NOT R p1, R p2)";
    return std::make_unique<PatternOp>(config);
  }
};

TEST_F(NegationTest, LeadingNegationBlocksMatch) {
  auto seq = MakeNewCarSeq();
  EventBatch out;
  // vid 1 reported at 0; its report at 30 is NOT new (blocked).
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  EXPECT_EQ(out.size(), 1u);  // the t=0 report itself is new
  out.clear();
  seq->Process({MakeR(1, 1, 1.0, 30)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());
}

TEST_F(NegationTest, NoPriorReportMeansNewCar) {
  auto seq = MakeNewCarSeq();
  EventBatch out;
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  seq->Process({MakeR(2, 1, 1.0, 30)}, &out, &ctx_);  // different vid
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1]->value(0).AsInt(), 2);
}

TEST_F(NegationTest, GapLongerThanPredicateAllowsMatch) {
  auto seq = MakeNewCarSeq();
  EventBatch out;
  seq->Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  out.clear();
  // 60 seconds later: the predicate (sec+30) does not tie them.
  seq->Process({MakeR(1, 1, 1.0, 60)}, &out, &ctx_);
  EXPECT_EQ(out.size(), 1u);
}

TEST_F(AlgebraTest, MiddleNegationChecksInterval) {
  // SEQ(R a, NOT R n, R b) with n.vid = a.vid: no event of the same vid
  // strictly between a and b.
  BindingSet bindings;
  bindings.Add({"a", type_, &registry_.type(type_).schema});
  bindings.Add({"n", type_, &registry_.type(type_).schema});
  bindings.Add({"b", type_, &registry_.type(type_).schema});
  auto config = std::make_shared<PatternOpConfig>();
  config->positions.push_back({type_, false, {}});
  config->positions.push_back(
      {type_, true, {CompilePredicate("n.vid = a.vid", bindings)}});
  config->positions.push_back(
      {type_, false, {CompilePredicate("a.vid = b.vid", bindings)}});
  config->within = 100;
  config->output_type = registry_.RegisterOrGet(
      "$seq_mid", {{"a.vid", ValueType::kInt},
                   {"a.seg", ValueType::kInt},
                   {"a.speed", ValueType::kDouble},
                   {"a.sec", ValueType::kInt},
                   {"b.vid", ValueType::kInt},
                   {"b.seg", ValueType::kInt},
                   {"b.speed", ValueType::kDouble},
                   {"b.sec", ValueType::kInt}});
  config->description = "SEQ(R a, NOT R n, R b)";
  PatternOp seq(config);

  EventBatch out;
  seq.Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  seq.Process({MakeR(2, 1, 1.0, 5)}, &out, &ctx_);   // other vid: no block
  seq.Process({MakeR(1, 1, 1.0, 10)}, &out, &ctx_);
  // Match (0 -> 10): no vid-1 event strictly inside (0, 10)? There is none
  // (the vid-2 event does not satisfy the negation predicate).
  ASSERT_EQ(out.size(), 1u);
  out.clear();
  seq.Process({MakeR(1, 1, 1.0, 20)}, &out, &ctx_);
  // Candidate matches ending at 20: (0,20) blocked by the event at 10;
  // (10,20) passes.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->start_time(), 10);
}

// --- Aggregates --------------------------------------------------------------

TEST_F(AlgebraTest, AggregateCountAvgWithHaving) {
  // Per segment: count and average speed over 60 ticks, emitting when
  // count >= 3 AND avg < 40 (the congestion condition, scaled down).
  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = type_;
  config->group_by = {1};  // seg
  config->aggregates = {{AggregateFunc::kCount, -1},
                        {AggregateFunc::kAvg, 2}};
  config->window_length = 60;
  TypeId out_type = registry_.RegisterOrGet(
      "$agg", {{"seg", ValueType::kInt},
               {"cars", ValueType::kInt},
               {"avg_speed", ValueType::kDouble}});
  config->output_type = out_type;
  {
    BindingSet bindings;
    bindings.Add({"g", out_type, &registry_.type(out_type).schema});
    auto having = ParseExpr("g.cars >= 3 AND g.avg_speed < 40");
    ASSERT_TRUE(having.ok());
    auto compiled = Compile(having.value(), bindings);
    ASSERT_TRUE(compiled.ok()) << compiled.status();
    config->having =
        std::shared_ptr<const CompiledExpr>(std::move(compiled).value());
  }
  config->description = "congestion";
  AggregateOp agg(config);

  EventBatch out;
  agg.Process({MakeR(1, 7, 30.0, 0)}, &out, &ctx_);
  agg.Process({MakeR(2, 7, 35.0, 10)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());  // only 2 cars
  agg.Process({MakeR(3, 7, 20.0, 20)}, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->value(0).AsInt(), 7);
  EXPECT_EQ(out[0]->value(1).AsInt(), 3);
  EXPECT_NEAR(out[0]->value(2).AsDouble(), 28.33, 0.01);

  // Fast traffic does not trigger.
  out.clear();
  agg.Process({MakeR(4, 7, 80.0, 25)}, &out, &ctx_);
  EXPECT_TRUE(out.empty());  // avg now >= 40? (30+35+20+80)/4 = 41.25
}

TEST_F(AlgebraTest, AggregateSlidingEviction) {
  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = type_;
  config->group_by = {1};
  config->aggregates = {{AggregateFunc::kCount, -1}};
  config->window_length = 50;
  config->output_type = registry_.RegisterOrGet(
      "$agg2", {{"seg", ValueType::kInt}, {"n", ValueType::kInt}});
  config->description = "count";
  AggregateOp agg(config);

  EventBatch out;
  agg.Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  agg.Process({MakeR(2, 1, 1.0, 30)}, &out, &ctx_);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1]->value(1).AsInt(), 2);
  out.clear();
  // At t=60 the t=0 sample left the 50-tick window.
  agg.Process({MakeR(3, 1, 1.0, 60)}, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->value(1).AsInt(), 2);  // samples at 30 and 60
}

TEST_F(AlgebraTest, AggregateMinMax) {
  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = type_;
  config->group_by = {};
  config->aggregates = {{AggregateFunc::kMin, 2}, {AggregateFunc::kMax, 2},
                        {AggregateFunc::kSum, 2}};
  config->window_length = 100;
  config->output_type = registry_.RegisterOrGet(
      "$agg3", {{"lo", ValueType::kDouble},
                {"hi", ValueType::kDouble},
                {"sum", ValueType::kDouble}});
  config->description = "minmax";
  AggregateOp agg(config);
  EventBatch out;
  agg.Process({MakeR(1, 1, 5.0, 0), MakeR(2, 1, 9.0, 1), MakeR(3, 1, 2.0, 2)},
              &out, &ctx_);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_DOUBLE_EQ(out[2]->value(0).AsDouble(), 2.0);
  EXPECT_DOUBLE_EQ(out[2]->value(1).AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(out[2]->value(2).AsDouble(), 16.0);
}

TEST_F(AlgebraTest, AggregateResetAndClone) {
  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = type_;
  config->group_by = {1};
  config->aggregates = {{AggregateFunc::kCount, -1}};
  config->window_length = 100;
  config->output_type = registry_.RegisterOrGet(
      "$agg4", {{"seg", ValueType::kInt}, {"n", ValueType::kInt}});
  config->description = "count";
  AggregateOp agg(config);
  EventBatch out;
  agg.Process({MakeR(1, 1, 1.0, 0)}, &out, &ctx_);
  EXPECT_EQ(agg.num_groups(), 1u);
  agg.Reset();
  EXPECT_EQ(agg.num_groups(), 0u);

  auto clone = agg.Clone();
  out.clear();
  clone->Process({MakeR(1, 2, 1.0, 5)}, &out, &ctx_);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->value(1).AsInt(), 1);
}

}  // namespace
}  // namespace caesar
