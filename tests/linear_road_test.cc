// Tests for the Linear Road workload: generator invariants and end-to-end
// behaviour of the traffic model (contexts emerge from the data; tolls,
// zero tolls and accident warnings are derived in the right contexts).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/logging.h"

#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

LinearRoadConfig SmallConfig() {
  LinearRoadConfig config;
  config.num_xways = 1;
  config.num_segments = 4;
  config.duration = 1800;
  config.cars_per_segment = 4;
  config.congestion_episodes_per_segment = 1.0;
  config.accident_episodes_per_segment = 0.5;
  config.seed = 7;
  return config;
}

TEST(LinearRoadGeneratorTest, StreamIsTimeOrderedAndInRange) {
  TypeRegistry registry;
  LinearRoadConfig config = SmallConfig();
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  ASSERT_GT(stream.size(), 100u);
  EXPECT_TRUE(IsTimeOrdered(stream));
  TypeId pr = registry.Lookup("PositionReport");
  for (const EventPtr& event : stream) {
    EXPECT_EQ(event->type_id(), pr);
    EXPECT_GE(event->time(), 0);
    EXPECT_LT(event->time(), config.duration);
    EXPECT_GE(event->value(5).AsInt(), 0);                     // seg
    EXPECT_LT(event->value(5).AsInt(), config.num_segments);   // seg
    EXPECT_EQ(event->value(7).AsInt(), event->time());         // sec == time
  }
}

TEST(LinearRoadGeneratorTest, Deterministic) {
  TypeRegistry registry;
  EventBatch a = GenerateLinearRoadStream(SmallConfig(), &registry);
  EventBatch b = GenerateLinearRoadStream(SmallConfig(), &registry);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i]->values(), b[i]->values());
  }
}

TEST(LinearRoadGeneratorTest, CarsReportEveryInterval) {
  TypeRegistry registry;
  LinearRoadConfig config = SmallConfig();
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  // For every vid, consecutive reports are spaced by the report interval.
  std::map<int64_t, Timestamp> last_report;
  int checked = 0;
  for (const EventPtr& event : stream) {
    int64_t vid = event->value(0).AsInt();
    auto it = last_report.find(vid);
    if (it != last_report.end()) {
      EXPECT_EQ(event->time() - it->second, config.report_interval)
          << "vid " << vid;
      ++checked;
    }
    last_report[vid] = event->time();
  }
  EXPECT_GT(checked, 100);
}

TEST(LinearRoadGeneratorTest, ContainsAccidentsAndCongestion) {
  TypeRegistry registry;
  LinearRoadConfig config = SmallConfig();
  config.accident_episodes_per_segment = 1.0;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  bool any_stopped = false;
  bool any_slow = false;
  bool any_fast = false;
  for (const EventPtr& event : stream) {
    int64_t speed = event->value(1).AsInt();
    if (speed == 0) any_stopped = true;
    if (speed > 0 && speed < 40) any_slow = true;
    if (speed >= 45) any_fast = true;
  }
  EXPECT_TRUE(any_stopped);
  EXPECT_TRUE(any_slow);
  EXPECT_TRUE(any_fast);
}

class LinearRoadModelTest : public ::testing::Test {
 protected:
  RunStats RunModel(const LinearRoadConfig& stream_config,
                    bool context_aware,
                    std::map<std::string, int64_t>* derived) {
    TypeRegistry registry;
    EventBatch stream = GenerateLinearRoadStream(stream_config, &registry);
    auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
    CAESAR_CHECK_OK(model.status());
    Result<ExecutablePlan> plan =
        context_aware ? OptimizeModel(model.value(), OptimizerOptions())
                      : BaselinePlan(model.value());
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    RunStats stats = engine.Run(stream).value();
    if (derived != nullptr) *derived = stats.derived_by_type;
    return stats;
  }
};

TEST_F(LinearRoadModelTest, DerivesAllBenchmarkOutputs) {
  LinearRoadConfig config = SmallConfig();
  config.accident_episodes_per_segment = 1.0;
  std::map<std::string, int64_t> derived;
  RunStats stats = RunModel(config, /*context_aware=*/true, &derived);
  EXPECT_GT(stats.derived_events, 0);
  // All benchmark output kinds appear.
  EXPECT_GT(derived["StoppedCar"], 0);
  EXPECT_GT(derived["Accident"], 0);
  EXPECT_GT(derived["AccidentWarning"], 0);
  EXPECT_GT(derived["ZeroToll"], 0);
  EXPECT_GT(derived["NewTravelingCar"], 0);
  EXPECT_GT(derived["TollNotification"], 0);
  // Suspension happened (context windows cover only part of the stream).
  EXPECT_GT(stats.suspended_chains, 0);
}

TEST_F(LinearRoadModelTest, TollOnlyDuringCongestionWarningsOnlyDuringAccident)
{
  // Tolls require congestion; with no congestion episodes there are no toll
  // notifications, and with no accidents there are no warnings.
  LinearRoadConfig config = SmallConfig();
  config.congestion_episodes_per_segment = 0.0;
  config.accident_episodes_per_segment = 0.0;
  std::map<std::string, int64_t> derived;
  RunModel(config, /*context_aware=*/true, &derived);
  EXPECT_EQ(derived["TollNotification"], 0);
  EXPECT_EQ(derived["AccidentWarning"], 0);
  EXPECT_EQ(derived["Accident"], 0);
  EXPECT_GT(derived["ZeroToll"], 0);  // clear roads: zero toll
}

TEST_F(LinearRoadModelTest, ContextAwareMatchesBaselineOutputs) {
  LinearRoadConfig config = SmallConfig();
  config.num_segments = 2;
  config.duration = 1200;
  config.accident_episodes_per_segment = 1.0;
  std::map<std::string, int64_t> ca_derived, ci_derived;
  RunModel(config, /*context_aware=*/true, &ca_derived);
  RunModel(config, /*context_aware=*/false, &ci_derived);
  EXPECT_EQ(ca_derived, ci_derived);
}

TEST_F(LinearRoadModelTest, ContextAwareDoesLessWork) {
  LinearRoadConfig config = SmallConfig();
  RunStats ca = RunModel(config, /*context_aware=*/true, nullptr);
  RunStats ci = RunModel(config, /*context_aware=*/false, nullptr);
  EXPECT_LT(ca.ops_executed, ci.ops_executed);
  EXPECT_EQ(ci.suspended_chains, 0);
}

TEST_F(LinearRoadModelTest, WorkloadReplicationScalesQueries) {
  TypeRegistry registry;
  LinearRoadModelConfig config;
  config.processing_replicas = 3;
  auto model = MakeLinearRoadModel(config, &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  // 5 deriving/helper queries + 4 processing queries per replica.
  EXPECT_EQ(model.value().num_queries(), 5 + 4 * 3);
  auto plan = TranslateModel(model.value(), PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().processing.size(), 12u);
}

}  // namespace
}  // namespace caesar
