// Unit tests for the caesard wire layer (server/wire.h): the JSON document
// model, the deterministic serializer, the event row codec, and both
// message framings over a real socketpair.

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "event/event.h"
#include "event/schema.h"
#include "gtest/gtest.h"
#include "server/protocol.h"
#include "server/wire.h"

namespace caesar {
namespace {

// --- JSON parser -----------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(ParseJson("null").value().is_null());
  EXPECT_TRUE(ParseJson("true").value().bool_value());
  EXPECT_FALSE(ParseJson("false").value().bool_value());
  EXPECT_EQ(ParseJson("42").value().int_value(), 42);
  EXPECT_EQ(ParseJson("-7").value().int_value(), -7);
  EXPECT_DOUBLE_EQ(ParseJson("2.5").value().double_value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseJson("1e3").value().double_value(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"").value().string_value(), "hi");
}

TEST(JsonParse, IntegerPrecisionSurvives) {
  // A double would lose the low bits of this int64.
  const int64_t big = 9007199254740993;  // 2^53 + 1
  JsonValue v = ParseJson("9007199254740993").value();
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), big);
}

TEST(JsonParse, StringEscapes) {
  JsonValue v = ParseJson(R"("a\"b\\c\/d\n\tAé")").value();
  EXPECT_EQ(v.string_value(), "a\"b\\c/d\n\tA\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(ParseJson(R"("😀")").value().string_value(),
            "\xf0\x9f\x98\x80");
  // Lone surrogate is an error.
  EXPECT_FALSE(ParseJson(R"("\ud83d")").ok());
}

TEST(JsonParse, Containers) {
  JsonValue v = ParseJson(R"({"a":[1,2,{"b":null}],"c":true})").value();
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_TRUE(a->items()[2].Find("b")->is_null());
  EXPECT_TRUE(v.Find("c")->bool_value());
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParse, RejectsGarbage) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{} trailing").ok());
  EXPECT_FALSE(ParseJson("\x01").ok());
}

TEST(JsonParse, DepthCapHolds) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(ParseJson(deep).ok());  // past the cap
  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  EXPECT_TRUE(ParseJson(shallow).ok());
}

TEST(JsonDump, DeterministicRoundTrip) {
  const char* docs[] = {
      R"({"a":1,"b":[true,null,"x"],"c":{"d":-2.5}})",
      R"([1,9007199254740993,"\\\""])",
      R"({"empty_obj":{},"empty_arr":[]})",
  };
  for (const char* doc : docs) {
    Result<JsonValue> parsed = ParseJson(doc);
    ASSERT_TRUE(parsed.ok()) << doc << ": " << parsed.status();
    const std::string once = parsed.value().Dump();
    // Parse(Dump(x)) == x, byte-for-byte on the second Dump.
    EXPECT_EQ(ParseJson(once).value().Dump(), once) << doc;
  }
}

TEST(JsonDump, DoublesStayDoubles) {
  // A double that holds an integral value must not collapse into an int
  // on the wire (the row codec distinguishes them for Value kinds).
  JsonValue v = JsonValue::Double(3.0);
  EXPECT_EQ(v.Dump(), "3.0");
  JsonValue parsed = ParseJson("3.0").value();
  EXPECT_TRUE(parsed.is_double());
}

// --- Event row codec --------------------------------------------------------

TEST(EventRowCodec, RoundTripsAllValueKinds) {
  TypeRegistry registry;
  TypeId t = registry
                 .Register("R", {{"i", ValueType::kInt},
                                 {"d", ValueType::kDouble},
                                 {"s", ValueType::kString},
                                 {"n", ValueType::kNull}})
                 .value();
  EventPtr original = MakeEvent(
      t, 7, {Value(int64_t{42}), Value(2.5), Value("hi"), Value()});
  JsonValue row = EncodeEventRow(*original, registry);
  EXPECT_EQ(row.Dump(), R"(["R",7,[42,2.5,"hi",null]])");

  EventPtr decoded;
  ASSERT_TRUE(DecodeEventRow(row, registry, &decoded).ok());
  EXPECT_EQ(decoded->type_id(), t);
  EXPECT_EQ(decoded->time(), 7);
  ASSERT_EQ(decoded->num_values(), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(decoded->value(i).Equals(original->value(i))) << i;
  }
}

TEST(EventRowCodec, IntervalForm) {
  TypeRegistry registry;
  TypeId t = registry.Register("R", {{"i", ValueType::kInt}}).value();
  EventPtr original = MakeComplexEvent(t, 3, 9, {Value(int64_t{1})});
  JsonValue row = EncodeEventRow(*original, registry);
  EXPECT_EQ(row.Dump(), R"(["R",3,9,[1]])");
  EventPtr decoded;
  ASSERT_TRUE(DecodeEventRow(row, registry, &decoded).ok());
  EXPECT_EQ(decoded->start_time(), 3);
  EXPECT_EQ(decoded->end_time(), 9);
}

TEST(EventRowCodec, UnknownTypeDecodesOutOfRange) {
  TypeRegistry registry;
  registry.Register("R", {}).value();
  EventPtr decoded;
  ASSERT_TRUE(
      DecodeEventRow(ParseJson(R"(["Nope",1,[]])").value(), registry,
                     &decoded)
          .ok());
  // Out of range — the engine's quarantine path classifies it, exactly as
  // for an in-process corrupt type id.
  EXPECT_EQ(decoded->type_id(), registry.num_types());
  // And it re-encodes under the reserved name.
  EXPECT_EQ(EncodeEventRow(*decoded, registry).Dump(),
            R"(["__unknown__",1,[]])");
}

TEST(EventRowCodec, RejectsStructuralBreakage) {
  TypeRegistry registry;
  registry.Register("R", {}).value();
  EventPtr decoded;
  const char* bad[] = {
      R"("not an array")",     R"([])",
      R"(["R"])",              R"([1,2,[]])",
      R"(["R","x",[]])",       R"(["R",1.5,[]])",
      R"(["R",1,2,3,[]])",     R"(["R",1,"nope"])",
      R"(["R",1,[true]])",     R"(["R",1,[[]]])",
  };
  for (const char* doc : bad) {
    EXPECT_FALSE(
        DecodeEventRow(ParseJson(doc).value(), registry, &decoded).ok())
        << doc;
  }
}

// --- Framing over a socketpair ----------------------------------------------

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  void CloseWriter() {
    ::close(fds_[0]);
    fds_[0] = -1;
  }
  int writer() const { return fds_[0]; }
  int reader_fd() const { return fds_[1]; }

  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, BinaryAndLineFramesInterleave) {
  ASSERT_TRUE(WriteBinaryFrame(writer(), R"({"a":1})").ok());
  ASSERT_TRUE(WriteJsonLine(writer(), R"({"b":2})").ok());
  ASSERT_TRUE(WriteBinaryFrame(writer(), "[]").ok());
  CloseWriter();

  MessageReader reader(reader_fd());
  std::string payload;
  bool binary = false;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&payload, &binary, &eof).ok());
  EXPECT_TRUE(binary);
  EXPECT_EQ(payload, R"({"a":1})");
  ASSERT_TRUE(reader.Next(&payload, &binary, &eof).ok());
  EXPECT_FALSE(binary);
  EXPECT_EQ(payload, R"({"b":2})");
  ASSERT_TRUE(reader.Next(&payload, &binary, &eof).ok());
  EXPECT_TRUE(binary);
  EXPECT_EQ(payload, "[]");
  ASSERT_TRUE(reader.Next(&payload, &binary, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST_F(FramingTest, CrLfLinesTolerated) {
  const std::string line = "{\"x\":1}\r\n";
  ASSERT_EQ(::send(writer(), line.data(), line.size(), 0),
            static_cast<ssize_t>(line.size()));
  CloseWriter();
  MessageReader reader(reader_fd());
  std::string payload;
  bool binary = true;
  bool eof = false;
  ASSERT_TRUE(reader.Next(&payload, &binary, &eof).ok());
  EXPECT_EQ(payload, "{\"x\":1}");
}

TEST_F(FramingTest, OversizedLengthRejected) {
  // Magic + a length beyond the reader's cap: must fail without
  // allocating the claimed payload.
  unsigned char header[5] = {0xC5, 0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::send(writer(), header, sizeof(header), 0), 5);
  MessageReader reader(reader_fd(), /*max_payload=*/1024);
  std::string payload;
  bool binary = false;
  bool eof = false;
  EXPECT_FALSE(reader.Next(&payload, &binary, &eof).ok());
}

TEST_F(FramingTest, TornFrameIsDataLoss) {
  unsigned char partial[7] = {0xC5, 16, 0, 0, 0, 'a', 'b'};  // promises 16
  ASSERT_EQ(::send(writer(), partial, sizeof(partial), 0), 7);
  CloseWriter();
  MessageReader reader(reader_fd());
  std::string payload;
  bool binary = false;
  bool eof = false;
  Status status = reader.Next(&payload, &binary, &eof);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST_F(FramingTest, OversizedLineRejected) {
  std::string long_line(2048, 'x');
  ASSERT_EQ(::send(writer(), long_line.data(), long_line.size(), 0),
            static_cast<ssize_t>(long_line.size()));
  MessageReader reader(reader_fd(), /*max_payload=*/1024);
  std::string payload;
  bool binary = false;
  bool eof = false;
  EXPECT_FALSE(reader.Next(&payload, &binary, &eof).ok());
}

}  // namespace
}  // namespace caesar
