// Pins caesar_lint's documented exit-code contract by exec'ing the real
// binary (CAESAR_LINT_PATH, injected by CMake):
//
//   0  clean — no errors or warnings; notes are allowed
//   1  diagnostics at warning severity or above
//   2  usage, I/O, or syntax error
//
// The notes-only case is the regression of interest: a model whose only
// diagnostics are notes (every hysteresis workload emits W203) must exit
// 0 in every output format and with --no-notes, or CI gates built on
// "caesar_lint && ..." start failing on healthy models.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

// Runs `caesar_lint <args>` with stdout/stderr discarded; returns the
// process exit code (or -1 if the child did not exit normally).
int RunLint(const std::string& args) {
  const std::string cmd =
      std::string(CAESAR_LINT_PATH) + " " + args + " > /dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  if (status == -1 || !WIFEXITED(status)) return -1;
  return WEXITSTATUS(status);
}

std::string Fixture(const std::string& name) {
  return std::string(CAESAR_TEST_SRCDIR) + "/lint_corpus/" + name;
}

TEST(LintCliExitCodes, NotesOnlyModelExitsZeroInEveryFormat) {
  const std::string model = Fixture("clean_hysteresis.caesar");
  EXPECT_EQ(RunLint(model), 0);
  EXPECT_EQ(RunLint("--format=json " + model), 0);
  EXPECT_EQ(RunLint("--format=sarif " + model), 0);
  EXPECT_EQ(RunLint("--no-notes " + model), 0);
}

TEST(LintCliExitCodes, FullyCleanModelExitsZero) {
  EXPECT_EQ(RunLint(Fixture("clean_window.caesar")), 0);
}

TEST(LintCliExitCodes, WarningExitsOne) {
  const std::string model = Fixture("w201_contradiction.caesar");
  EXPECT_EQ(RunLint(model), 1);
  EXPECT_EQ(RunLint("--format=json " + model), 1);
  EXPECT_EQ(RunLint("--format=sarif " + model), 1);
  // Dropping notes must not drop the warning's exit code.
  EXPECT_EQ(RunLint("--no-notes " + model), 1);
}

TEST(LintCliExitCodes, ErrorExitsOne) {
  EXPECT_EQ(RunLint(Fixture("c005_unknown_context.caesar")), 1);
}

TEST(LintCliExitCodes, MixedNotesAndWarningsStillExitOne) {
  // Notes riding along with a warning must not mask it.
  EXPECT_EQ(RunLint(Fixture("c003_shadowed.caesar")), 1);
}

TEST(LintCliExitCodes, SyntaxErrorExitsTwo) {
  const std::string path = testing::TempDir() + "lint_cli_syntax_error.caesar";
  {
    std::ofstream out(path);
    out << "TYPE E(x int;\n";  // unbalanced parenthesis
  }
  EXPECT_EQ(RunLint(path), 2);
  std::remove(path.c_str());
}

TEST(LintCliExitCodes, MissingFileExitsTwo) {
  EXPECT_EQ(RunLint(Fixture("does_not_exist.caesar")), 2);
}

TEST(LintCliExitCodes, UnknownFlagExitsTwo) {
  EXPECT_EQ(RunLint("--definitely-not-a-flag"), 2);
}

}  // namespace
