// Property-based tests (parameterized sweeps over random seeds):
//
//  1. The sequence matcher agrees with a brute-force reference
//     implementation of the paper's SEQ semantics, including negation.
//  2. The context-aware engine, the non-optimized plan, and the
//     context-independent baseline derive identical event sets on random
//     threshold models and random streams.
//  3. The sharing transform (window grouping) preserves derived event sets
//     on random overlapping-window layouts and never increases work.

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "expr/compiled.h"
#include "expr/parser.h"
#include "algebra/pattern_op.h"
#include "optimizer/optimizer.h"
#include "oracle/generator.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

// --- 1. SEQ matcher vs brute force ----------------------------------------

class SeqOracleTest : public ::testing::TestWithParam<int> {
 protected:
  SeqOracleTest() : contexts_(2, 0) {
    type_ = registry_.RegisterOrGet("E", {{"key", ValueType::kInt},
                                          {"value", ValueType::kInt},
                                          {"sec", ValueType::kInt}});
    ctx_.contexts = &contexts_;
    ctx_.registry = &registry_;
    ctx_.ops_counter = &ops_;
  }

  EventPtr Make(int64_t key, int64_t value, Timestamp sec) {
    return MakeEvent(type_, sec, {Value(key), Value(value), Value(sec)});
  }

  std::shared_ptr<const CompiledExpr> Pred(const std::string& text,
                                           const BindingSet& bindings) {
    auto expr = ParseExpr(text);
    CAESAR_CHECK_OK(expr.status());
    auto compiled = Compile(expr.value(), bindings);
    CAESAR_CHECK_OK(compiled.status());
    return std::shared_ptr<const CompiledExpr>(std::move(compiled).value());
  }

  // Random stream: `n` events, timestamps strictly increasing by 1..3,
  // small key/value domains to force collisions.
  EventBatch RandomStream(Rng* rng, int n) {
    EventBatch events;
    Timestamp t = 0;
    for (int i = 0; i < n; ++i) {
      t += rng->Uniform(1, 3);
      events.push_back(Make(rng->Uniform(0, 3), rng->Uniform(0, 5), t));
    }
    return events;
  }

  static std::multiset<std::string> Canonical(const EventBatch& events) {
    std::multiset<std::string> result;
    for (const EventPtr& event : events) {
      std::ostringstream os;
      os << event->start_time() << ":" << event->end_time();
      for (const Value& value : event->values()) os << "," << value;
      result.insert(os.str());
    }
    return result;
  }

  TypeRegistry registry_;
  TypeId type_;
  ContextBitVector contexts_;
  uint64_t ops_ = 0;
  OpExecContext ctx_;
};

TEST_P(SeqOracleTest, PositivePairMatchesBruteForce) {
  Rng rng(GetParam());
  BindingSet bindings;
  bindings.Add({"a", type_, &registry_.type(type_).schema});
  bindings.Add({"b", type_, &registry_.type(type_).schema});
  const Timestamp within = 10;

  auto config = std::make_shared<PatternOpConfig>();
  config->positions.push_back({type_, false, {}});
  config->positions.push_back(
      {type_, false, {Pred("a.key = b.key AND b.value > a.value", bindings)}});
  config->within = within;
  config->output_type = registry_.RegisterOrGet(
      "$oracle_pair", {{"a.key", ValueType::kInt},
                       {"a.value", ValueType::kInt},
                       {"a.sec", ValueType::kInt},
                       {"b.key", ValueType::kInt},
                       {"b.value", ValueType::kInt},
                       {"b.sec", ValueType::kInt}});
  config->description = "oracle";
  PatternOp seq(config);

  EventBatch stream = RandomStream(&rng, 60);
  EventBatch matched;
  for (const EventPtr& event : stream) {
    seq.Process({event}, &matched, &ctx_);
  }

  // Brute force: all ordered pairs within the bound satisfying the
  // predicate.
  EventBatch expected;
  for (size_t i = 0; i < stream.size(); ++i) {
    for (size_t j = i + 1; j < stream.size(); ++j) {
      const EventPtr& a = stream[i];
      const EventPtr& b = stream[j];
      if (b->time() <= a->time()) continue;
      if (b->time() - a->time() > within) continue;
      if (a->value(0) != b->value(0)) continue;
      if (!(b->value(1).AsInt() > a->value(1).AsInt())) continue;
      std::vector<Value> values = a->values();
      values.insert(values.end(), b->values().begin(), b->values().end());
      expected.push_back(MakeComplexEvent(config->output_type, a->time(),
                                          b->time(), std::move(values)));
    }
  }
  EXPECT_EQ(Canonical(matched), Canonical(expected)) << "seed " << GetParam();
}

TEST_P(SeqOracleTest, MiddleNegationMatchesBruteForce) {
  Rng rng(GetParam() + 1000);
  BindingSet bindings;
  bindings.Add({"a", type_, &registry_.type(type_).schema});
  bindings.Add({"n", type_, &registry_.type(type_).schema});
  bindings.Add({"b", type_, &registry_.type(type_).schema});
  const Timestamp within = 12;

  auto config = std::make_shared<PatternOpConfig>();
  config->positions.push_back({type_, false, {}});
  config->positions.push_back(
      {type_, true, {Pred("n.key = a.key", bindings)}});
  config->positions.push_back(
      {type_, false, {Pred("a.key = b.key", bindings)}});
  config->within = within;
  config->output_type = registry_.RegisterOrGet(
      "$oracle_neg", {{"a.key", ValueType::kInt},
                      {"a.value", ValueType::kInt},
                      {"a.sec", ValueType::kInt},
                      {"b.key", ValueType::kInt},
                      {"b.value", ValueType::kInt},
                      {"b.sec", ValueType::kInt}});
  config->description = "oracle-neg";
  PatternOp seq(config);

  EventBatch stream = RandomStream(&rng, 50);
  EventBatch matched;
  for (const EventPtr& event : stream) {
    seq.Process({event}, &matched, &ctx_);
  }

  EventBatch expected;
  for (size_t i = 0; i < stream.size(); ++i) {
    for (size_t j = i + 1; j < stream.size(); ++j) {
      const EventPtr& a = stream[i];
      const EventPtr& b = stream[j];
      if (b->time() <= a->time()) continue;
      if (b->time() - a->time() > within) continue;
      if (a->value(0) != b->value(0)) continue;
      // Negation: no same-key event strictly between a and b.
      bool blocked = false;
      for (const EventPtr& n : stream) {
        if (n->time() > a->time() && n->time() < b->time() &&
            n->value(0) == a->value(0)) {
          blocked = true;
          break;
        }
      }
      if (blocked) continue;
      std::vector<Value> values = a->values();
      values.insert(values.end(), b->values().begin(), b->values().end());
      expected.push_back(MakeComplexEvent(config->output_type, a->time(),
                                          b->time(), std::move(values)));
    }
  }
  EXPECT_EQ(Canonical(matched), Canonical(expected)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeqOracleTest, ::testing::Range(0, 12));

// --- 2. Plan-shape equivalence on random threshold models ------------------

class PlanEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  PlanEquivalenceTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_P(PlanEquivalenceTest, AllPlanShapesDeriveTheSameEvents) {
  Rng rng(GetParam());
  // Random hysteresis model: thresholds drawn per seed; a SEQ query and a
  // single-event query in the non-default context.
  int64_t up = rng.Uniform(8, 20);
  int64_t down = rng.Uniform(2, 7);
  int64_t alert = rng.Uniform(10, 25);
  std::ostringstream model_text;
  model_text << "CONTEXTS low, busy DEFAULT low;\nPARTITION BY seg;\n"
             << "QUERY up SWITCH CONTEXT busy PATTERN Reading r WHERE "
                "r.value > "
             << up << " CONTEXT low;\n"
             << "QUERY down SWITCH CONTEXT low PATTERN Reading r WHERE "
                "r.value <= "
             << down << " CONTEXT busy;\n"
             << "QUERY spike DERIVE Spike(r.seg AS seg, r.sec AS sec) "
                "PATTERN Reading r WHERE r.value > "
             << alert << " CONTEXT busy;\n"
             << "QUERY pair DERIVE Pair(x.sec AS s1, y.sec AS s2) "
                "PATTERN SEQ(Reading x, Reading y) WITHIN 25 "
                "WHERE x.value = y.value CONTEXT busy;\n";
  auto model = ParseModel(model_text.str(), &registry_);
  ASSERT_TRUE(model.ok()) << model.status();

  EventBatch stream;
  for (Timestamp t = 0; t < 250; ++t) {
    for (int64_t seg = 0; seg < 2; ++seg) {
      if (rng.Bernoulli(0.8)) {
        stream.push_back(MakeEvent(
            reading_, t, {Value(seg), Value(rng.Uniform(0, 30)), Value(t)}));
      }
    }
  }

  auto run_on = [&](Result<ExecutablePlan> plan, EngineOptions options,
                    const EventBatch& input) {
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), options);
    EventBatch outputs;
    engine.Run(input, &outputs).value();
    std::multiset<std::string> lines;
    for (const EventPtr& event : outputs) {
      lines.insert(event->ToString(registry_));
    }
    return lines;
  };
  auto run = [&](Result<ExecutablePlan> plan, int num_threads) {
    EngineOptions options;
    options.num_threads = num_threads;
    return run_on(std::move(plan), options, stream);
  };

  PlanOptions optimized;  // push-down + predicate push-down
  PlanOptions plain;
  plain.push_down_context_windows = false;
  plain.push_predicates_into_pattern = false;

  auto reference = run(TranslateModel(model.value(), optimized), 1);
  EXPECT_EQ(run(TranslateModel(model.value(), plain), 1), reference)
      << "seed " << GetParam();
  EXPECT_EQ(run(BaselinePlan(model.value()), 1), reference)
      << "seed " << GetParam();
  // The multi-threaded scheduler (per-partition transactions, barrier per
  // time stamp) must agree with serial execution.
  EXPECT_EQ(run(TranslateModel(model.value(), optimized), 3), reference)
      << "seed " << GetParam();

  // Reorder ingest on a bounded-delay disordered arrival order must
  // re-sequence back to the clean derived stream, at any thread count.
  const Timestamp max_delay = 3;
  EventBatch disordered = DisorderStream(stream, GetParam() + 77, max_delay);
  auto run_reorder = [&](int num_threads) {
    EngineOptions options;
    options.num_threads = num_threads;
    options.ingest_policy = IngestPolicy::kReorder;
    options.reorder_slack = max_delay;
    return run_on(TranslateModel(model.value(), optimized), options,
                  disordered);
  };
  EXPECT_EQ(run_reorder(2), reference) << "seed " << GetParam();
  EXPECT_EQ(run_reorder(4), reference) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceTest, ::testing::Range(0, 10));

// --- 3. Sharing transform on random window layouts --------------------------

class SharingSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(SharingSweepTest, GroupingPreservesEventsAndNeverAddsWork) {
  Rng rng(GetParam() * 7 + 1);
  TypeRegistry registry;
  SyntheticConfig config;
  int windows = static_cast<int>(rng.Uniform(2, 6));
  Timestamp length = rng.Uniform(60, 160);
  Timestamp overlap = rng.Uniform(10, length - 10);
  config.windows = LayOutWindows(windows, length, overlap, 30);
  config.duration = config.windows.back().end + 60;
  config.queries_per_window = static_cast<int>(rng.Uniform(1, 4));
  config.query_within = 25;
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.seed = GetParam();

  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  ASSERT_TRUE(model.ok()) << model.status();

  auto run = [&](bool share, RunStats* stats) {
    OptimizerOptions options;
    options.share_overlapping = share;
    auto plan = OptimizeModel(model.value(), options);
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    EventBatch outputs;
    *stats = engine.Run(stream, &outputs).value();
    std::set<std::string> lines;
    for (const EventPtr& event : outputs) {
      lines.insert(event->ToString(registry));
    }
    return lines;
  };

  RunStats shared_stats, plain_stats;
  std::set<std::string> shared = run(true, &shared_stats);
  std::set<std::string> plain = run(false, &plain_stats);
  std::set<std::string> only_shared, only_plain;
  std::set_difference(shared.begin(), shared.end(), plain.begin(),
                      plain.end(),
                      std::inserter(only_shared, only_shared.begin()));
  std::set_difference(plain.begin(), plain.end(), shared.begin(),
                      shared.end(),
                      std::inserter(only_plain, only_plain.begin()));
  EXPECT_EQ(only_shared, std::set<std::string>()) << "seed " << GetParam();
  EXPECT_EQ(only_plain, std::set<std::string>()) << "seed " << GetParam();
  EXPECT_LE(shared_stats.ops_executed, plain_stats.ops_executed)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharingSweepTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace caesar
