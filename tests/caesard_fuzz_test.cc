// Protocol fuzz leg for caesard (ctest label: fuzz): a seeded frame-level
// mutator throws truncated frames, hostile lengths, raw garbage, and
// shape-broken JSON at a live daemon over real sockets. The properties
// held are exactly the ISSUE of record for a network daemon:
//
//   1. the daemon never crashes — it stays alive through every volley;
//   2. anything that parses far enough to answer gets a *coded* error
//      (I42x), never a hang or an uncoded close with pending valid input;
//   3. a fresh, well-formed connection still works after each volley.
//
// Deterministic: one fixed seed, pure mt19937 derivation, no wall-clock
// dependence in the generated payloads.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "caesard_harness.h"
#include "gtest/gtest.h"
#include "server/wire.h"

namespace caesar {
namespace {

using testing::Client;
using testing::Daemon;
using testing::IsOk;
using testing::Req;

std::string RandomBytes(std::mt19937& rng, size_t max_len) {
  std::uniform_int_distribution<size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out(len_dist(rng), '\0');
  for (char& c : out) c = static_cast<char>(byte_dist(rng));
  return out;
}

std::string BinaryFrame(std::string_view payload, uint32_t claimed_len) {
  std::string frame;
  frame.push_back(static_cast<char>(0xC5));
  frame.push_back(static_cast<char>(claimed_len & 0xFF));
  frame.push_back(static_cast<char>((claimed_len >> 8) & 0xFF));
  frame.push_back(static_cast<char>((claimed_len >> 16) & 0xFF));
  frame.push_back(static_cast<char>((claimed_len >> 24) & 0xFF));
  frame.append(payload);
  return frame;
}

// One hostile message, chosen by the dial.
std::string Mutate(std::mt19937& rng) {
  std::uniform_int_distribution<int> pick(0, 9);
  switch (pick(rng)) {
    case 0:  // raw garbage, newline-terminated so the server must answer
      return RandomBytes(rng, 64) + "\n";
    case 1: {  // truncated binary frame: promises more than it sends
      std::string payload = RandomBytes(rng, 32);
      return BinaryFrame(payload,
                         static_cast<uint32_t>(payload.size() + 100));
    }
    case 2:  // hostile length prefix, no payload at all
      return BinaryFrame("", 0xFFFFFFFFu);
    case 3: {  // well-formed frame, garbage payload
      std::string payload = RandomBytes(rng, 128);
      return BinaryFrame(payload, static_cast<uint32_t>(payload.size()));
    }
    case 4: {  // valid framing, non-object JSON
      const char* docs[] = {"42\n", "[1,2,3]\n", "\"hi\"\n", "null\n",
                            "true\n"};
      return docs[std::uniform_int_distribution<int>(0, 4)(rng)];
    }
    case 5: {  // object, broken shape
      const char* docs[] = {
          "{}\n",
          "{\"cmd\":123}\n",
          "{\"cmd\":\"warp\"}\n",
          "{\"cmd\":\"register\"}\n",
          "{\"cmd\":\"register\",\"tenant\":\"x\"}\n",
          "{\"cmd\":\"ingest\",\"tenant\":\"x\",\"events\":7}\n",
          "{\"cmd\":\"ingest\",\"tenant\":\"x\",\"events\":[[1]]}\n",
          "{\"cmd\":\"stats\",\"tenant\":\"x\",\"format\":\"xml\"}\n",
      };
      return docs[std::uniform_int_distribution<int>(0, 7)(rng)];
    }
    case 6: {  // nesting bomb (parser depth cap must answer, not recurse out)
      std::string deep(200, '[');
      deep += std::string(200, ']');
      deep += "\n";
      return deep;
    }
    case 7: {  // valid command inside a binary frame, then mid-frame trash
      std::string good = BinaryFrame("{\"cmd\":\"ping\"}", 14);
      return good + BinaryFrame(RandomBytes(rng, 16), 9999);
    }
    case 8:  // unterminated line (no newline): server must wait, we close
      return RandomBytes(rng, 48);
    default: {  // interleaved: garbage line then a valid ping line
      return RandomBytes(rng, 24) + "\n{\"cmd\":\"ping\"}\n";
    }
  }
}

TEST(CaesardProtocolFuzz, HostileFramesNeverKillTheDaemon) {
  Daemon daemon({"--deterministic", "--workers=2", "--max-frame-bytes=65536",
                 "--max-tenants=4"});
  ASSERT_TRUE(daemon.valid());

  std::mt19937 rng(0xC4E5A2u);
  constexpr int kIterations = 200;
  for (int i = 0; i < kIterations; ++i) {
    {
      Client hostile(daemon.port(), /*recv_timeout_seconds=*/2);
      ASSERT_TRUE(hostile.connected()) << "iteration " << i;
      hostile.SendRaw(Mutate(rng));
      // Half-close so torn frames resolve to EOF server-side instead of
      // pinning a connection until the read timeout.
      hostile.ShutdownWrite();
      // Whatever comes back (a coded error, a ping pong, or a close) is
      // acceptable; a crash is not. Drain best-effort.
      (void)hostile.TryRead();
    }
    ASSERT_TRUE(daemon.Alive()) << "daemon died at iteration " << i;

    // Every 20 volleys: the front door still works end to end.
    if (i % 20 == 19) {
      Client probe(daemon.port());
      ASSERT_TRUE(probe.connected());
      auto pong = probe.Call(Req("ping"));
      ASSERT_TRUE(pong.ok()) << pong.status();
      EXPECT_TRUE(IsOk(pong.value()));
    }
  }

  // Parseable-but-invalid requests answer with codes, not closes: check
  // the contract explicitly on one connection.
  Client client(daemon.port());
  ASSERT_TRUE(client.connected());
  auto bad_cmd = client.Call([] {
    JsonValue r = JsonValue::Object();
    r.Set("cmd", JsonValue::String("warp"));
    return r;
  }());
  ASSERT_TRUE(bad_cmd.ok());
  EXPECT_EQ(testing::ErrorCode(bad_cmd.value()), "I423");

  EXPECT_TRUE(daemon.Alive());
  ASSERT_TRUE(IsOk(client.Call(Req("shutdown")).value()));
  EXPECT_TRUE(daemon.ShutdownCleanly());
}

}  // namespace
}  // namespace caesar
