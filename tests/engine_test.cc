// End-to-end tests of the CAESAR runtime: context transitions driven by the
// stream, suspension of irrelevant queries, partitioned execution, context
// history management, and equivalence between the context-aware engine and
// the context-independent baseline.

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "runtime/statistics.h"

namespace caesar {
namespace {

constexpr char kMiniModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high
PATTERN Reading r
WHERE r.value > 10
CONTEXT normal;

QUERY go_normal
SWITCH CONTEXT normal
PATTERN Reading r
WHERE r.value <= 10
CONTEXT high;

QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r
WHERE r.value > 15
CONTEXT high;
)";

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    EXPECT_TRUE(model.ok()) << model.status();
    return std::move(model).value();
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp sec) {
    return MakeEvent(reading_, sec, {Value(seg), Value(value), Value(sec)});
  }

  // Canonical string form of derived events for output comparison.
  std::string Canonical(const EventBatch& events) {
    std::multiset<std::string> lines;
    for (const EventPtr& event : events) {
      lines.insert(event->ToString(registry_));
    }
    std::ostringstream os;
    for (const std::string& line : lines) os << line << "\n";
    return os.str();
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(EngineTest, ContextTransitionsGateProcessing) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  Engine engine(std::move(plan).value(), EngineOptions());

  EventBatch input = {
      Reading(1, 5, 0),    // normal; alert chain suspended
      Reading(1, 12, 1),   // switch to high; 12 <= 15: no alert
      Reading(1, 20, 2),   // high: alert
      Reading(1, 8, 3),    // switch back to normal
      Reading(1, 14, 4),   // re-triggers high (14 > 10) but 14 <= 15
  };
  EventBatch outputs;
  RunStats stats = engine.Run(input, &outputs).value();

  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(registry_.type(outputs[0]->type_id()).name, "Alert");
  EXPECT_EQ(outputs[0]->value(1).AsInt(), 20);
  EXPECT_EQ(outputs[0]->time(), 2);
  EXPECT_EQ(stats.input_events, 5);
  EXPECT_EQ(stats.derived_events, 1);
  EXPECT_EQ(stats.derived_by_type.at("Alert"), 1);
  // The alert chain was suspended during normal time stamps (0, 4), and the
  // go_normal chain during normal ones etc.
  EXPECT_GT(stats.suspended_chains, 0);
}

TEST_F(EngineTest, SwitchAtSameTimestampAffectsProcessingPhase) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  // A single event both switches to high AND satisfies the alert predicate:
  // derivation runs first, so the alert fires at the same time stamp.
  EventBatch outputs;
  engine.Run({Reading(1, 99, 0)}, &outputs).value();
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(outputs[0]->value(1).AsInt(), 99);
}

TEST_F(EngineTest, PartitionsHaveIndependentContexts) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch outputs;
  engine.Run(
      {
          Reading(1, 50, 0),  // seg 1 -> high, alert
          Reading(2, 5, 0),   // seg 2 stays normal
          Reading(1, 60, 1),  // seg 1 alert
          Reading(2, 60, 1),  // seg 2: switches high now; 60 > 15 -> alert
          Reading(2, 5, 2),   // seg 2 back to normal
          Reading(2, 70, 3),  // seg 2 normal again: switch + alert
      },
      &outputs).value();
  EXPECT_EQ(engine.num_partitions(), 2);
  // seg1: alerts at 0 and 1. seg2: alerts at 1 and 3.
  EXPECT_EQ(outputs.size(), 4u);
}

TEST_F(EngineTest, IncrementalRunsCarryState) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch outputs;
  engine.Run({Reading(1, 50, 0)}, &outputs).value();   // -> high
  engine.Run({Reading(1, 20, 10)}, &outputs).value();  // still high: alert
  EXPECT_EQ(outputs.size(), 2u);
}

TEST_F(EngineTest, TickObserverSeesDerivedEventsPerTimestamp) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  std::map<Timestamp, int> derived_per_tick;
  engine.SetTickObserver([&](Timestamp t, const EventBatch& derived) {
    derived_per_tick[t] = static_cast<int>(derived.size());
  });
  engine.Run({Reading(1, 5, 0), Reading(1, 50, 1), Reading(1, 60, 2)}).value();
  EXPECT_EQ(derived_per_tick[0], 0);
  EXPECT_EQ(derived_per_tick[1], 1);
  EXPECT_EQ(derived_per_tick[2], 1);
}

TEST_F(EngineTest, StatsArepopulated) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  RunStats stats = engine.Run({Reading(1, 5, 0), Reading(1, 50, 1)}).value();
  EXPECT_EQ(stats.input_events, 2);
  EXPECT_EQ(stats.transactions, 2);
  EXPECT_EQ(stats.partitions, 1);
  EXPECT_GT(stats.ops_executed, 0u);
  EXPECT_GT(stats.cpu_seconds, 0.0);
  EXPECT_GE(stats.max_latency, 0.0);
  EXPECT_FALSE(stats.ToString().empty());
}

// SEQ context history: partial matches are discarded when the scoping
// window ends.
TEST_F(EngineTest, ContextHistoryDiscardedAtWindowEnd) {
  CaesarModel model = Parse(R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high PATTERN Reading r WHERE r.value > 10 CONTEXT normal;
QUERY go_normal
SWITCH CONTEXT normal PATTERN Reading r WHERE r.value <= 10 CONTEXT high;

QUERY pair
DERIVE Pair(a.sec AS first_sec, b.sec AS second_sec)
PATTERN SEQ(Reading a, Reading b) WITHIN 100
WHERE a.value = 77 AND b.value = 88
CONTEXT high;
)");
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch outputs;
  engine.Run(
      {
          Reading(1, 77, 0),   // switches high; also the pair's first half
          Reading(1, 5, 1),    // back to normal: window ends, history gone
          Reading(1, 88, 2),   // high again (88 > 10); second half
      },
      &outputs).value();
  // No pair: the partial from t=0 belonged to the closed window.
  EXPECT_TRUE(outputs.empty());

  // Control: without the interruption the pair completes.
  auto plan2 = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan2.ok());
  Engine engine2(std::move(plan2).value(), EngineOptions());
  EventBatch outputs2;
  engine2.Run({Reading(1, 77, 0), Reading(1, 88, 2)}, &outputs2).value();
  EXPECT_EQ(outputs2.size(), 1u);
}

// The context-aware engine and the context-independent baseline must derive
// the same complex events (the optimizations are semantics-preserving).
TEST_F(EngineTest, ContextAwareMatchesBaselineOnRandomStreams) {
  CaesarModel model = Parse(kMiniModel);
  Rng rng(2026);
  for (int trial = 0; trial < 5; ++trial) {
    EventBatch input;
    for (Timestamp t = 0; t < 200; ++t) {
      for (int64_t seg = 1; seg <= 3; ++seg) {
        if (rng.Bernoulli(0.7)) {
          input.push_back(Reading(seg, rng.Uniform(0, 30), t));
        }
      }
    }
    auto ca_plan = TranslateModel(model, PlanOptions());
    ASSERT_TRUE(ca_plan.ok());
    auto ci_plan = BaselinePlan(model);
    ASSERT_TRUE(ci_plan.ok());
    Engine ca(std::move(ca_plan).value(), EngineOptions());
    Engine ci(std::move(ci_plan).value(), EngineOptions());
    EventBatch ca_out, ci_out;
    ca.Run(input, &ca_out).value();
    ci.Run(input, &ci_out).value();
    EXPECT_EQ(Canonical(ca_out), Canonical(ci_out)) << "trial " << trial;
  }
}

// Push-down must not change results, only cost. Uses a SEQ workload so the
// suspended pattern work dominates the context-window probe overhead.
TEST_F(EngineTest, PushDownPreservesSemantics) {
  CaesarModel model = Parse(R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high PATTERN Reading r WHERE r.value > 10 CONTEXT normal;
QUERY go_normal
SWITCH CONTEXT normal PATTERN Reading r WHERE r.value <= 10 CONTEXT high;

QUERY pair
DERIVE Pair(a.sec AS first_sec, b.sec AS second_sec)
PATTERN SEQ(Reading a, Reading b) WITHIN 50
WHERE a.value = b.value
CONTEXT high;
)");
  Rng rng(7);
  EventBatch input;
  for (Timestamp t = 0; t < 300; ++t) {
    for (int e = 0; e < 5; ++e) {
      input.push_back(Reading(1, rng.Uniform(0, 30), t));
    }
  }
  PlanOptions pushed;
  pushed.push_down_context_windows = true;
  PlanOptions unpushed;
  unpushed.push_down_context_windows = false;

  auto plan_a = TranslateModel(model, pushed);
  auto plan_b = TranslateModel(model, unpushed);
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  Engine a(std::move(plan_a).value(), EngineOptions());
  Engine b(std::move(plan_b).value(), EngineOptions());
  EventBatch out_a, out_b;
  RunStats stats_a = a.Run(input, &out_a).value();
  RunStats stats_b = b.Run(input, &out_b).value();
  EXPECT_EQ(Canonical(out_a), Canonical(out_b));
  // Push-down strictly reduces operator work.
  EXPECT_LT(stats_a.ops_executed, stats_b.ops_executed);
  EXPECT_GT(stats_a.suspended_chains, 0);
  EXPECT_EQ(stats_b.suspended_chains, 0);
}

// Regression: partition attribute indices are resolved eagerly at engine
// construction (PartitionKeyOf must not mutate shared state once worker
// threads exist). Types registered *after* construction still resolve via
// the scheduler-thread-only lazy fallback — including in parallel mode.
TEST_F(EngineTest, PartitionAttrCacheHandlesLateRegisteredTypes) {
  CaesarModel model = Parse(kMiniModel);
  auto make_engine = [&](int num_threads) {
    auto plan = TranslateModel(model, PlanOptions());
    CAESAR_CHECK_OK(plan.status());
    EngineOptions options;
    options.num_threads = num_threads;
    return std::make_unique<Engine>(std::move(plan).value(), options);
  };
  auto serial = make_engine(1);
  auto parallel = make_engine(4);

  // Register an additional partitioned type only after both engines (and
  // the parallel engine's workers) exist.
  TypeId extra = registry_.RegisterOrGet(
      "Extra", {{"seg", ValueType::kInt}, {"sec", ValueType::kInt}});
  EventBatch input;
  for (Timestamp t = 0; t < 60; ++t) {
    for (int64_t seg = 1; seg <= 5; ++seg) {
      input.push_back(Reading(seg, (t + seg) % 30, t));
      input.push_back(MakeEvent(extra, t, {Value(seg), Value(t)}));
    }
  }
  EventBatch out_serial, out_parallel;
  RunStats stats_serial = serial->Run(input, &out_serial).value();
  RunStats stats_parallel = parallel->Run(input, &out_parallel).value();
  EXPECT_EQ(serial->num_partitions(), 5);
  EXPECT_EQ(parallel->num_partitions(), 5);
  EXPECT_EQ(stats_serial.derived_events, stats_parallel.derived_events);
  EXPECT_GT(stats_serial.derived_events, 0);
  EXPECT_EQ(Canonical(out_serial), Canonical(out_parallel));
}

TEST_F(EngineTest, MultiThreadedMatchesSerial) {
  CaesarModel model = Parse(kMiniModel);
  Rng rng(11);
  EventBatch input;
  for (Timestamp t = 0; t < 100; ++t) {
    for (int64_t seg = 1; seg <= 8; ++seg) {
      input.push_back(Reading(seg, rng.Uniform(0, 30), t));
    }
  }
  auto plan_a = TranslateModel(model, PlanOptions());
  auto plan_b = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan_a.ok());
  ASSERT_TRUE(plan_b.ok());
  EngineOptions serial;
  EngineOptions parallel;
  parallel.num_threads = 4;
  Engine a(std::move(plan_a).value(), serial);
  Engine b(std::move(plan_b).value(), parallel);
  EventBatch out_a, out_b;
  a.Run(input, &out_a).value();
  b.Run(input, &out_b).value();
  EXPECT_EQ(Canonical(out_a), Canonical(out_b));
}

TEST_F(EngineTest, GcHorizonClampsToZeroOnShortStreams) {
  // Regression: with gc_interval=1 and gc_horizon larger than every input
  // timestamp, the periodic GC used to compute `t - gc_horizon` on signed
  // time and pass a *negative* horizon to ExpireBefore. The current
  // operators treat a negative horizon like zero, so the bug was invisible
  // in outputs — tick telemetry (gc_horizon_min) makes it observable: the
  // clamped horizon must never go below 0.
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EngineOptions options;
  options.gc_interval = 1;
  options.gc_horizon = 1000;  // > max(t): every tick's horizon clamps to 0
  options.metrics = MetricsGranularity::kEngine;
  Engine engine(std::move(plan).value(), options);

  EventBatch input;
  for (Timestamp t = 0; t < 20; ++t) input.push_back(Reading(1, 20, t));
  EventBatch outputs;
  RunStats stats = engine.Run(input, &outputs).value();
  EXPECT_GT(stats.derived_events, 0);

  StatisticsReport report = engine.CollectStatistics();
  ASSERT_GT(report.ticks.gc_runs, 0);
  EXPECT_GE(report.ticks.gc_horizon_min, 0);
  EXPECT_EQ(report.ticks.gc_horizon_min, 0);

  // And the aggressive-GC run still derives exactly what a GC-free run does.
  auto plan_nogc = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan_nogc.ok());
  Engine nogc(std::move(plan_nogc).value(), EngineOptions());
  EventBatch outputs_nogc;
  nogc.Run(input, &outputs_nogc).value();
  EXPECT_EQ(Canonical(outputs), Canonical(outputs_nogc));
}

}  // namespace
}  // namespace caesar
