// Tests for the CAESAR optimizer: cost model (Theorem 1), context window
// grouping (Listing 1 / Fig. 7), the model-level sharing transform and its
// semantics preservation, and the multi-query plan search.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/rng.h"
#include "optimizer/cost_model.h"
#include "optimizer/mqo.h"
#include "optimizer/optimizer.h"
#include "optimizer/window_grouping.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

// Rising-signal model of Fig. 7: c1 holds for X in (10, 30], c2 for
// X in (20, 40]. q_both is duplicated across both contexts (identical
// signature) and should be shared by grouping.
constexpr char kOverlapModel[] = R"(
CONTEXTS idle, c1, c2 DEFAULT idle;
PARTITION BY seg;

QUERY start_c1
INITIATE CONTEXT c1 PATTERN S s WHERE s.x > 10 CONTEXT idle;
QUERY end_c1
TERMINATE CONTEXT c1 PATTERN S s WHERE s.x > 30 CONTEXT c1;
QUERY start_c2
INITIATE CONTEXT c2 PATTERN S s WHERE s.x > 20 CONTEXT idle, c1;
QUERY end_c2
TERMINATE CONTEXT c2 PATTERN S s WHERE s.x > 40 CONTEXT c2;

QUERY q_c1
DERIVE A(s.x AS x) PATTERN S s CONTEXT c1;
QUERY q_c2
DERIVE B(s.x AS x) PATTERN S s CONTEXT c2;
QUERY q_both_1
DERIVE C(s.x AS x) PATTERN S s CONTEXT c1;
QUERY q_both_2
DERIVE C(s.x AS x) PATTERN S s CONTEXT c2;
)";

class OptimizerTest : public ::testing::Test {
 protected:
  OptimizerTest() {
    signal_ = registry_.RegisterOrGet(
        "S", {{"seg", ValueType::kInt}, {"x", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    EXPECT_TRUE(model.ok()) << model.status();
    return std::move(model).value();
  }

  EventPtr Signal(int64_t seg, int64_t x, Timestamp t) {
    return MakeEvent(signal_, t, {Value(seg), Value(x)});
  }

  // One rising ramp X = 0..50, one event per tick.
  EventBatch Ramp() {
    EventBatch input;
    for (Timestamp t = 0; t <= 50; ++t) {
      input.push_back(Signal(1, t, t));
    }
    return input;
  }

  std::string Canonical(const EventBatch& events) {
    std::multiset<std::string> lines;
    for (const EventPtr& event : events) {
      lines.insert(event->ToString(registry_));
    }
    std::ostringstream os;
    for (const std::string& line : lines) os << line << "\n";
    return os.str();
  }

  TypeRegistry registry_;
  TypeId signal_;
};

// --- Cost model / Theorem 1 -------------------------------------------------

TEST_F(OptimizerTest, Theorem1BottomPositionMinimizesEstimatedCost) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, busy DEFAULT idle;
QUERY go INITIATE CONTEXT busy PATTERN S s WHERE s.x > 10 CONTEXT idle;
QUERY q DERIVE A(s.x AS x) PATTERN S s WHERE s.x > 5 CONTEXT busy;
)");
  CostModelParams params;
  params.context_activity = 0.3;
  double previous = -1.0;
  for (int position = 0; position <= 2; ++position) {
    PlanOptions options;
    options.force_cw_position = position;
    auto plan = TranslateModel(model, options);
    ASSERT_TRUE(plan.ok()) << plan.status();
    double cost = EstimateChainCost(plan.value().processing[0].chain, params);
    if (previous >= 0.0) {
      EXPECT_GE(cost, previous) << "position " << position;
    }
    previous = cost;
  }
}

TEST_F(OptimizerTest, Theorem1HoldsEmpiricallyInOperatorWork) {
  // Measured operator work with the CW forced to each position: bottom
  // must be cheapest (Theorem 1), on a stream with long inactive phases.
  CaesarModel model = Parse(R"(
CONTEXTS idle, busy DEFAULT idle;
PARTITION BY seg;
QUERY go INITIATE CONTEXT busy PATTERN S s WHERE s.x > 900 CONTEXT idle;
QUERY stop TERMINATE CONTEXT busy PATTERN S s WHERE s.x < 100 CONTEXT busy;
QUERY pairs
DERIVE A(a.x AS x1, b.x AS x2)
PATTERN SEQ(S a, S b) WITHIN 40
WHERE a.x = b.x
CONTEXT busy;
)");
  EventBatch input;
  Rng rng(3);
  for (Timestamp t = 0; t < 400; ++t) {
    // Mostly idle: x stays low except a short busy burst.
    int64_t x = (t >= 100 && t < 140) ? 950 : rng.Uniform(101, 500);
    if (t == 140) x = 50;  // terminate busy
    input.push_back(Signal(1, x, t));
  }
  std::vector<uint64_t> ops;
  std::string reference;
  for (int position = 0; position <= 2; ++position) {
    PlanOptions options;
    options.force_cw_position = position;
    auto plan = TranslateModel(model, options);
    ASSERT_TRUE(plan.ok()) << plan.status();
    Engine engine(std::move(plan).value(), EngineOptions());
    EventBatch outputs;
    RunStats stats = engine.Run(input, &outputs).value();
    ops.push_back(stats.ops_executed);
    if (position == 0) {
      reference = Canonical(outputs);
    } else {
      EXPECT_EQ(Canonical(outputs), reference) << "position " << position;
    }
  }
  EXPECT_LT(ops[0], ops[1]);
  EXPECT_LE(ops[1], ops[2]);
}

// --- Listing 1 ---------------------------------------------------------------

TEST(WindowGroupingTest, Figure7Example) {
  // w_c1 = [10, 30) with {Q1, Q3}; w_c2 = [20, 40) with {Q1, Q2}.
  std::vector<WindowSpec> windows = {
      {"c1", 10, 30, {"Q1", "Q3"}},
      {"c2", 20, 40, {"Q1", "Q2"}},
  };
  auto grouped = GroupContextWindows(windows);
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  const auto& g = grouped.value();
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].start_key, 10);
  EXPECT_EQ(g[0].end_key, 20);
  EXPECT_EQ(g[0].queries, (std::vector<std::string>{"Q1", "Q3"}));
  EXPECT_EQ(g[1].start_key, 20);
  EXPECT_EQ(g[1].end_key, 30);
  // Shared middle window: union with duplicates dropped.
  EXPECT_EQ(g[1].queries, (std::vector<std::string>{"Q1", "Q3", "Q2"}));
  EXPECT_EQ(g[1].originals, (std::vector<std::string>{"c1", "c2"}));
  EXPECT_EQ(g[2].start_key, 30);
  EXPECT_EQ(g[2].end_key, 40);
  EXPECT_EQ(g[2].queries, (std::vector<std::string>{"Q1", "Q2"}));
}

TEST(WindowGroupingTest, NonOverlappingWindowsUnchanged) {
  std::vector<WindowSpec> windows = {
      {"a", 0, 10, {"Q1"}},
      {"b", 20, 30, {"Q2"}},
  };
  auto grouped = GroupContextWindows(windows);
  ASSERT_TRUE(grouped.ok());
  ASSERT_EQ(grouped.value().size(), 2u);
  EXPECT_EQ(grouped.value()[0].name, "a");
  EXPECT_EQ(grouped.value()[1].name, "b");
}

TEST(WindowGroupingTest, IdenticalWindowsMerge) {
  std::vector<WindowSpec> windows = {
      {"a", 0, 10, {"Q1"}},
      {"b", 0, 10, {"Q2", "Q1"}},
      {"c", 5, 20, {"Q3"}},
  };
  auto grouped = GroupContextWindows(windows);
  ASSERT_TRUE(grouped.ok());
  const auto& g = grouped.value();
  // Bounds: 0,5,10,20 -> [0,5){a,b}, [5,10){a,b,c}, [10,20){c}.
  ASSERT_EQ(g.size(), 3u);
  EXPECT_EQ(g[0].queries, (std::vector<std::string>{"Q1", "Q2"}));
  EXPECT_EQ(g[0].originals, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(g[1].queries, (std::vector<std::string>{"Q1", "Q2", "Q3"}));
  EXPECT_EQ(g[2].queries, (std::vector<std::string>{"Q3"}));
}

TEST(WindowGroupingTest, PropertiesOnRandomWindows) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    int n = static_cast<int>(rng.Uniform(1, 8));
    std::vector<WindowSpec> windows;
    for (int w = 0; w < n; ++w) {
      double start = static_cast<double>(rng.Uniform(0, 50));
      double end = start + static_cast<double>(rng.Uniform(1, 30));
      windows.push_back({"w" + std::to_string(w), start, end,
                         {"Q" + std::to_string(w % 3)}});
    }
    auto grouped = GroupContextWindows(windows);
    ASSERT_TRUE(grouped.ok());
    const auto& g = grouped.value();
    // 1. Grouped windows (from the sweep) never overlap each other.
    for (size_t a = 0; a < g.size(); ++a) {
      for (size_t b = a + 1; b < g.size(); ++b) {
        bool share_original = false;
        for (const std::string& origin : g[a].originals) {
          for (const std::string& other : g[b].originals) {
            if (origin == other) share_original = true;
          }
        }
        if (share_original) {
          bool disjoint = g[a].end_key <= g[b].start_key ||
                          g[b].end_key <= g[a].start_key;
          EXPECT_TRUE(disjoint);
        }
      }
    }
    // 2. Coverage: every point of every original window is covered by
    // grouped windows listing that original, and carries its queries.
    for (const WindowSpec& window : windows) {
      for (double p = window.start_key + 0.5; p < window.end_key; p += 1.0) {
        bool covered = false;
        for (const GroupedWindow& gw : g) {
          if (gw.start_key <= p && p < gw.end_key) {
            for (const std::string& origin : gw.originals) {
              if (origin == window.context) covered = true;
            }
            if (covered) {
              for (const std::string& query : window.queries) {
                EXPECT_NE(std::find(gw.queries.begin(), gw.queries.end(),
                                    query),
                          gw.queries.end());
              }
              break;
            }
          }
        }
        EXPECT_TRUE(covered) << "window " << window.context << " point " << p;
      }
    }
    // 3. No duplicate queries within one grouped window.
    for (const GroupedWindow& gw : g) {
      std::set<std::string> unique(gw.queries.begin(), gw.queries.end());
      EXPECT_EQ(unique.size(), gw.queries.size());
    }
  }
}

TEST(WindowGroupingTest, RejectsEmptyWindows) {
  EXPECT_FALSE(GroupContextWindows({{"a", 10, 10, {}}}).ok());
  EXPECT_FALSE(GroupContextWindows({{"a", 10, 5, {}}}).ok());
}

// --- Model-level sharing transform ------------------------------------------

TEST_F(OptimizerTest, ApplyWindowGroupingRewritesContexts) {
  CaesarModel model = Parse(kOverlapModel);
  auto grouped = ApplyWindowGrouping(model);
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  const CaesarModel& g = grouped.value();
  // idle + three grouped windows; c1/c2 replaced.
  EXPECT_EQ(g.ContextIndex("c1"), -1);
  EXPECT_EQ(g.ContextIndex("c2"), -1);
  EXPECT_EQ(g.num_contexts(), 4);
  EXPECT_EQ(g.default_context(), "idle");
  // The duplicated query pair collapsed into one shared query.
  int c_queries = 0;
  for (int qi = 0; qi < g.num_queries(); ++qi) {
    if (g.query(qi).derive.has_value() &&
        g.query(qi).derive->event_type == "C") {
      ++c_queries;
      EXPECT_EQ(g.query(qi).contexts.size(), 3u);  // all grouped windows
    }
  }
  EXPECT_EQ(c_queries, 1);
}

TEST_F(OptimizerTest, GroupedModelPreservesSemantics) {
  CaesarModel model = Parse(kOverlapModel);
  auto grouped = ApplyWindowGrouping(model);
  ASSERT_TRUE(grouped.ok()) << grouped.status();

  auto plan_orig = TranslateModel(model, PlanOptions());
  auto plan_grouped = TranslateModel(grouped.value(), PlanOptions());
  ASSERT_TRUE(plan_orig.ok()) << plan_orig.status();
  ASSERT_TRUE(plan_grouped.ok()) << plan_grouped.status();

  Engine original(std::move(plan_orig).value(), EngineOptions());
  Engine shared(std::move(plan_grouped).value(), EngineOptions());
  EventBatch out_orig, out_shared;
  RunStats stats_orig = original.Run(Ramp(), &out_orig).value();
  RunStats stats_shared = shared.Run(Ramp(), &out_shared).value();

  // Compare derived events as *sets*: the original model computes the
  // duplicated query twice during the overlap (identical C events from
  // q_both_1 and q_both_2); sharing derives each result exactly once —
  // that deduplication is the point of Listing 1.
  auto as_set = [&](const EventBatch& events) {
    std::set<std::string> lines;
    for (const EventPtr& event : events) {
      lines.insert(event->ToString(registry_));
    }
    return lines;
  };
  EXPECT_EQ(as_set(out_orig), as_set(out_shared));
  EXPECT_GT(out_orig.size(), out_shared.size());  // duplicates eliminated
  EXPECT_GT(out_orig.size(), 0u);
  // Sharing executes the duplicated workload once during the overlap.
  EXPECT_LT(stats_shared.ops_executed, stats_orig.ops_executed);
}

TEST_F(OptimizerTest, GroupedQueriesCarryHistoryAnchors) {
  CaesarModel model = Parse(kOverlapModel);
  auto grouped = ApplyWindowGrouping(model);
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  const CaesarModel& g = grouped.value();
  // The shared query C lives in all three grouped windows; its anchors must
  // point at the first grouped window of the oldest covering original:
  //   c1#...  (c1 only)        -> anchors itself
  //   c1+c2#. (c1 and c2)      -> anchored at c1's first window
  //   c2#...  (c2 only)        -> anchored at c2's first window = c1+c2#
  int shared = -1;
  for (int qi = 0; qi < g.num_queries(); ++qi) {
    if (g.query(qi).derive.has_value() &&
        g.query(qi).derive->event_type == "C") {
      shared = qi;
    }
  }
  ASSERT_GE(shared, 0);
  const Query& query = g.query(shared);
  ASSERT_EQ(query.context_anchors.size(), query.contexts.size());
  ASSERT_EQ(query.contexts.size(), 3u);
  // contexts are emitted in original-window order: c1's groups then c2's.
  EXPECT_EQ(query.context_anchors[0], query.contexts[0]);  // first: itself
  EXPECT_EQ(query.context_anchors[1], query.contexts[0]);  // overlap: c1 anchor
  EXPECT_EQ(query.context_anchors[2], query.contexts[1]);  // c2 tail: c2 start
  // A query of a single original (A in c1) anchors each group at c1's start.
  for (int qi = 0; qi < g.num_queries(); ++qi) {
    if (g.query(qi).derive.has_value() &&
        g.query(qi).derive->event_type == "A") {
      const Query& a = g.query(qi);
      ASSERT_EQ(a.contexts.size(), 2u);
      EXPECT_EQ(a.context_anchors[0], a.contexts[0]);
      EXPECT_EQ(a.context_anchors[1], a.contexts[0]);
    }
  }
}

TEST_F(OptimizerTest, GroupingLeavesNonOverlappingModelsAlone) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, c1, c2 DEFAULT idle;
QUERY start_c1 INITIATE CONTEXT c1 PATTERN S s WHERE s.x > 10 CONTEXT idle;
QUERY end_c1 TERMINATE CONTEXT c1 PATTERN S s WHERE s.x > 20 CONTEXT c1;
QUERY start_c2 INITIATE CONTEXT c2 PATTERN S s WHERE s.x > 30 CONTEXT idle;
QUERY end_c2 TERMINATE CONTEXT c2 PATTERN S s WHERE s.x > 40 CONTEXT c2;
QUERY q1 DERIVE A(s.x AS x) PATTERN S s CONTEXT c1;
)");
  auto grouped = ApplyWindowGrouping(model);
  ASSERT_TRUE(grouped.ok()) << grouped.status();
  EXPECT_GE(grouped.value().ContextIndex("c1"), 0);
  EXPECT_GE(grouped.value().ContextIndex("c2"), 0);
  EXPECT_EQ(grouped.value().num_queries(), model.num_queries());
}

TEST_F(OptimizerTest, OptimizeModelFacade) {
  CaesarModel model = Parse(kOverlapModel);
  OptimizerOptions options;
  auto plan = OptimizeModel(model, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Push-down: every chain starts with the context window.
  for (const CompiledQuery& query : plan.value().processing) {
    EXPECT_EQ(query.chain.ops[0]->kind(), Operator::Kind::kContextWindow);
  }
  // Baseline plan sanity.
  auto baseline = BaselinePlan(model);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  EXPECT_GT(EstimatePlanCost(baseline.value(), CostModelParams()),
            EstimatePlanCost(plan.value(), CostModelParams()));
}

// --- MQO search ---------------------------------------------------------------

TEST(MqoTest, SyntheticWorkloadShape) {
  Rng rng(5);
  MqoWorkload workload = MakeSyntheticWorkload(24, 4, 3, 0.5, &rng);
  EXPECT_EQ(workload.queries.size(), 6u);
  EXPECT_EQ(workload.total_operators(), 24);
}

TEST(MqoTest, ExhaustiveNeverWorseThanGreedy) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    MqoWorkload workload = MakeSyntheticWorkload(12, 3, 4, 0.4, &rng);
    MqoSearchResult exhaustive = ExhaustiveSearch(workload);
    MqoSearchResult greedy = GreedySearch(workload);
    EXPECT_LE(exhaustive.plan_cost, greedy.plan_cost + 1e-9);
    EXPECT_GT(exhaustive.candidates, greedy.candidates);
  }
}

TEST(MqoTest, GreedyExaminesFarFewerCandidates) {
  Rng rng(23);
  MqoWorkload workload = MakeSyntheticWorkload(20, 4, 5, 0.5, &rng);
  MqoSearchResult exhaustive = ExhaustiveSearch(workload);
  MqoSearchResult greedy = GreedySearch(workload);
  EXPECT_GT(exhaustive.candidates, 100 * greedy.candidates);
  EXPECT_GT(greedy.num_groups, 0);
}

TEST(MqoTest, SharingReducesGroupCost) {
  // Fully shared operators: grouping the two queries should roughly halve
  // the cost, so the exhaustive search prefers grouping them when they are
  // in one context.
  MqoWorkload workload;
  LogicalQuery q1, q2;
  for (int o = 0; o < 3; ++o) {
    LogicalOp op{o, 1.0, 0.5};
    q1.ops.push_back(op);
    q2.ops.push_back(op);
  }
  q1.context = 0;
  q2.context = 0;
  workload.queries = {q1, q2};
  MqoSearchResult result = ExhaustiveSearch(workload);
  EXPECT_EQ(result.num_groups, 1);
}

}  // namespace
}  // namespace caesar
