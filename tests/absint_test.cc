// Unit tests for src/analysis/absint.{h,cc}: predicate abstraction,
// interval-fact propagation (thresholds and variable-variable edges),
// verdicts, satisfiable fractions, and the cross-position analysis that
// the analyzer (W206/W207/C006), the pattern compiler, and
// `caesar_lint --dump-facts` all consume.

#include "analysis/absint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "event/schema.h"
#include "expr/compiled.h"
#include "expr/parser.h"

namespace caesar {
namespace {

class AbsintTest : public ::testing::Test {
 protected:
  AbsintTest() {
    a_type_ = registry_.RegisterOrGet("A", {{"x", ValueType::kInt}});
    b_type_ = registry_.RegisterOrGet("B", {{"y", ValueType::kInt}});
    bindings_.Add({"a", a_type_, &registry_.type(a_type_).schema});
    bindings_.Add({"b", b_type_, &registry_.type(b_type_).schema});
  }

  // Compiles `text` against (a: A, b: B) and lifts it.
  AbsPredicate Abstract(const std::string& text) {
    auto expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto compiled = Compile(expr.value(), bindings_);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return AbstractPredicate(*compiled.value());
  }

  TypeRegistry registry_;
  TypeId a_type_ = 0;
  TypeId b_type_ = 0;
  BindingSet bindings_;
};

TEST_F(AbsintTest, ThresholdConjunctionAbstractsExactly) {
  const AbsPredicate pred = Abstract("a.x > 10 AND b.y <= 5");
  EXPECT_TRUE(pred.exact);
  ASSERT_EQ(pred.constraints.size(), 2u);
  EXPECT_EQ(pred.constraints[0].kind, AbsConstraint::Kind::kThreshold);
  EXPECT_EQ(pred.constraints[0].var, 0);
  EXPECT_EQ(pred.constraints[0].value, 10.0);
  EXPECT_EQ(pred.constraints[1].var, 1);
}

TEST_F(AbsintTest, ConstantOnTheLeftIsMirrored) {
  // 10 < a.x must normalize to a.x > 10.
  const AbsPredicate pred = Abstract("10 < a.x");
  ASSERT_EQ(pred.constraints.size(), 1u);
  EXPECT_TRUE(pred.exact);
  EXPECT_EQ(pred.constraints[0].op, BinaryOp::kGt);
  EXPECT_EQ(pred.constraints[0].value, 10.0);
}

TEST_F(AbsintTest, UnsupportedConjunctsClearExactButKeepTheRest) {
  // != carries no interval information; the other conjunct must survive
  // with exact = false (dropping a conjunct widens, never narrows).
  const AbsPredicate pred = Abstract("a.x > 10 AND a.x != 3");
  EXPECT_FALSE(pred.exact);
  ASSERT_EQ(pred.constraints.size(), 1u);
  EXPECT_EQ(pred.constraints[0].op, BinaryOp::kGt);
}

TEST_F(AbsintTest, VarVarConjunctAbstracts) {
  const AbsPredicate pred = Abstract("b.y > a.x");
  ASSERT_EQ(pred.constraints.size(), 1u);
  EXPECT_TRUE(pred.exact);
  EXPECT_EQ(pred.constraints[0].kind, AbsConstraint::Kind::kVarVar);
  EXPECT_EQ(pred.constraints[0].var, 1);
  EXPECT_EQ(pred.constraints[0].rhs_var, 0);
}

TEST_F(AbsintTest, ApplyIntersectsAndFindsContradiction) {
  IntervalFacts facts;
  facts.Apply(Abstract("a.x >= 10"));
  EXPECT_FALSE(facts.contradiction());
  EXPECT_EQ(facts.Get(0, 0).lo, 10.0);
  facts.Apply(Abstract("a.x <= 5"));
  EXPECT_TRUE(facts.contradiction());
  EXPECT_EQ(facts.EmptyKey(), (std::pair<int, int>{0, 0}));
}

TEST_F(AbsintTest, CheckVerdictsAgainstBoundedFacts) {
  IntervalFacts facts;
  facts.Apply(Abstract("a.x >= 0 AND a.x <= 100"));
  EXPECT_EQ(facts.Check(Abstract("a.x > 95")), AbsVerdict::kUnknown);
  EXPECT_EQ(facts.Check(Abstract("a.x <= 200")), AbsVerdict::kTrue);
  EXPECT_EQ(facts.Check(Abstract("a.x > 200")), AbsVerdict::kFalse);
  // kTrue needs exactness: the implied region covers the facts, but the
  // dropped != conjunct could still falsify the full predicate.
  EXPECT_EQ(facts.Check(Abstract("a.x <= 200 AND a.x != 3")),
            AbsVerdict::kUnknown);
  // kFalse does not: one impossible conjunct falsifies the conjunction.
  EXPECT_EQ(facts.Check(Abstract("a.x > 200 AND a.x != 3")),
            AbsVerdict::kFalse);
}

TEST_F(AbsintTest, IdentityComparisonResolves) {
  IntervalFacts facts;
  EXPECT_EQ(facts.Check(Abstract("a.x = a.x")), AbsVerdict::kTrue);
  EXPECT_EQ(facts.Check(Abstract("a.x < a.x")), AbsVerdict::kFalse);
}

TEST_F(AbsintTest, VarVarEdgePropagatesBounds) {
  IntervalFacts facts;
  facts.Apply(Abstract("a.x >= 20"));
  facts.Apply(Abstract("b.y > a.x"));
  const Interval b = facts.Get(1, 0);
  EXPECT_EQ(b.lo, 20.0);
  EXPECT_TRUE(b.lo_open);
  EXPECT_EQ(facts.Check(Abstract("b.y <= 10")), AbsVerdict::kFalse);
}

TEST_F(AbsintTest, VarVarVerdictOverProductRegion) {
  IntervalFacts facts;
  facts.Apply(Abstract("a.x <= 5 AND b.y >= 10"));
  EXPECT_EQ(facts.Check(Abstract("a.x < b.y")), AbsVerdict::kTrue);
  EXPECT_EQ(facts.Check(Abstract("a.x > b.y")), AbsVerdict::kFalse);
  // Disjoint regions falsify equality too.
  EXPECT_EQ(facts.Check(Abstract("a.x = b.y")), AbsVerdict::kFalse);
  // Regions touching at a single point leave it open.
  IntervalFacts touching;
  touching.Apply(Abstract("a.x <= 5 AND b.y >= 5"));
  EXPECT_EQ(touching.Check(Abstract("a.x = b.y")), AbsVerdict::kUnknown);
}

TEST_F(AbsintTest, SatisfiableFractionOfFiniteFacts) {
  IntervalFacts facts;
  facts.Apply(Abstract("a.x >= 0 AND a.x <= 100"));
  auto fraction = facts.SatisfiableFraction(Abstract("a.x > 95"));
  ASSERT_TRUE(fraction.has_value());
  EXPECT_NEAR(*fraction, 0.05, 1e-9);
  // Unbounded facts give no fraction — the caller keeps its static
  // estimate instead of inventing one.
  IntervalFacts unbounded;
  EXPECT_FALSE(
      unbounded.SatisfiableFraction(Abstract("a.x > 95")).has_value());
}

TEST_F(AbsintTest, AnalyzePositionsFlagsSubsumedGuard) {
  std::vector<AbsPosition> positions(2);
  positions[0].guards = {Abstract("a.x > 10"), Abstract("a.x > 5")};
  positions[1].guards = {Abstract("b.y = 1")};
  const PatternAbsintResult result = AnalyzePositions(positions);
  EXPECT_FALSE(result.dead());
  ASSERT_EQ(result.guards.size(), 2u);
  EXPECT_EQ(result.guards[0][0].verdict, AbsVerdict::kUnknown);
  EXPECT_EQ(result.guards[0][1].verdict, AbsVerdict::kTrue);
}

TEST_F(AbsintTest, AnalyzePositionsFindsDeadTransition) {
  std::vector<AbsPosition> positions(2);
  positions[0].guards = {Abstract("a.x >= 20")};
  positions[1].guards = {Abstract("b.y > a.x"), Abstract("b.y <= 10")};
  const PatternAbsintResult result = AnalyzePositions(positions);
  EXPECT_TRUE(result.dead());
  EXPECT_EQ(result.dead_position, 1);
  EXPECT_EQ(result.dead_guard, 1);
}

TEST_F(AbsintTest, NegatedPositionsContributeNoFacts) {
  std::vector<AbsPosition> positions(2);
  positions[0].negated = true;
  positions[0].guards = {Abstract("a.x >= 20")};
  positions[1].guards = {Abstract("a.x <= 5")};
  const PatternAbsintResult result = AnalyzePositions(positions);
  // The negated position's guard must not poison the facts: a.x <= 5
  // stays satisfiable.
  EXPECT_FALSE(result.dead());
}

TEST_F(AbsintTest, FactsAccumulateAcrossPositions) {
  std::vector<AbsPosition> positions(2);
  positions[0].guards = {Abstract("a.x >= 0 AND a.x <= 100")};
  positions[1].guards = {Abstract("a.x > 95")};
  const PatternAbsintResult result = AnalyzePositions(positions);
  ASSERT_EQ(result.states.size(), 3u);
  const Interval at_pos1 = result.states[1].Get(0, 0);
  EXPECT_EQ(at_pos1.lo, 0.0);
  EXPECT_EQ(at_pos1.hi, 100.0);
  ASSERT_TRUE(result.guards[1][0].sat_fraction.has_value());
  EXPECT_NEAR(*result.guards[1][0].sat_fraction, 0.05, 1e-9);
}

}  // namespace
}  // namespace caesar
