// Integration test: the complete Linear Road traffic model written in the
// CAESAR query language (including the AGGREGATE deriving queries) behaves
// identically to the programmatically built model of
// workloads/linear_road.cc.

#include <gtest/gtest.h>

#include <map>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "expr/parser.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

namespace caesar {
namespace {

constexpr char kTrafficModelText[] = R"(
CONTEXTS clear, congestion, accident DEFAULT clear;
PARTITION BY xway, dir, seg;

QUERY detect_congestion
SWITCH CONTEXT congestion
PATTERN AGGREGATE PositionReport p WINDOW 60
        COMPUTE count() AS cnt, avg(speed) AS spd
        HAVING cnt >= 20 AND spd < 40
CONTEXT clear;

QUERY detect_clear
SWITCH CONTEXT clear
PATTERN AGGREGATE PositionReport p WINDOW 60
        COMPUTE count() AS cnt, avg(speed) AS spd
        HAVING spd >= 45
CONTEXT congestion;

QUERY detect_accident
INITIATE CONTEXT accident
DERIVE Accident(s2.xway AS xway, s2.dir AS dir, s2.seg AS seg,
                s2.pos AS pos, s2.sec AS sec)
PATTERN SEQ(StoppedCar s1, StoppedCar s2) WITHIN 90
WHERE s1.pos = s2.pos AND s1.vid != s2.vid
CONTEXT clear, congestion;

QUERY detect_clearance
TERMINATE CONTEXT accident
PATTERN SEQ(StoppedCar s, PositionReport p) WITHIN 120
WHERE p.vid = s.vid AND p.speed > 0
CONTEXT accident;

QUERY new_traveling_car
DERIVE NewTravelingCar(p2.vid AS vid, p2.xway AS xway, p2.dir AS dir,
                       p2.seg AS seg, p2.lane AS lane, p2.pos AS pos,
                       p2.sec AS sec)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2) WITHIN 60
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT congestion;

QUERY toll_notification
DERIVE TollNotification(p.vid AS vid, p.seg AS seg, p.sec AS sec, 5 AS toll)
PATTERN NewTravelingCar p
CONTEXT congestion;

QUERY zero_toll
DERIVE ZeroToll(p2.vid AS vid, p2.seg AS seg, p2.sec AS sec, 0 AS toll)
PATTERN SEQ(NOT PositionReport p1, PositionReport p2) WITHIN 60
WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4
CONTEXT clear, accident;

QUERY accident_warning
DERIVE AccidentWarning(p.vid AS vid, p.seg AS seg, p.sec AS sec)
PATTERN PositionReport p
WHERE p.lane != 4
CONTEXT accident;
)";

// The text model cannot declare the StoppedCar helper (derivation_helper is
// programmatic-only), so it is appended after parsing.
Query StoppedCarHelper() {
  Query query;
  query.name = "detect_stopped_car";
  query.derivation_helper = true;
  DeriveSpec derive;
  derive.event_type = "StoppedCar";
  derive.args = {MakeAttrRef("b", "vid"), MakeAttrRef("b", "xway"),
                 MakeAttrRef("b", "dir"), MakeAttrRef("b", "seg"),
                 MakeAttrRef("b", "pos"), MakeAttrRef("b", "sec")};
  derive.attr_names = {"vid", "xway", "dir", "seg", "pos", "sec"};
  query.derive = std::move(derive);
  PatternSpec pattern;
  pattern.kind = PatternSpec::Kind::kSeq;
  pattern.items = {{"PositionReport", "a", false},
                   {"PositionReport", "b", false}};
  pattern.within = 60;
  query.pattern = std::move(pattern);
  auto where = ParseExpr(
      "a.vid = b.vid AND a.speed = 0 AND b.speed = 0 AND a.pos = b.pos "
      "AND a.sec + 30 = b.sec");
  CAESAR_CHECK_OK(where.status());
  query.where = std::move(where).value();
  query.contexts = {"clear", "congestion", "accident"};
  return query;
}

TEST(LinearRoadTextModelTest, TextModelMatchesProgrammaticModel) {
  LinearRoadConfig config;
  config.num_segments = 4;
  config.duration = 1500;
  config.congestion_episodes_per_segment = 1.0;
  config.accident_episodes_per_segment = 1.0;
  config.seed = 13;

  auto run = [&](bool text_model) {
    TypeRegistry registry;
    EventBatch stream = GenerateLinearRoadStream(config, &registry);
    Result<CaesarModel> model = [&]() -> Result<CaesarModel> {
      if (!text_model) {
        return MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
      }
      CAESAR_ASSIGN_OR_RETURN(CaesarModel parsed,
                              ParseModel(kTrafficModelText, &registry));
      CAESAR_RETURN_IF_ERROR(parsed.AddQuery(StoppedCarHelper()).status());
      CAESAR_RETURN_IF_ERROR(parsed.Normalize());
      return parsed;
    }();
    CAESAR_CHECK_OK(model.status());
    auto plan = OptimizeModel(model.value(), OptimizerOptions());
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    RunStats stats = engine.Run(stream).value();
    return stats.derived_by_type;
  };

  std::map<std::string, int64_t> programmatic = run(false);
  std::map<std::string, int64_t> text = run(true);
  EXPECT_EQ(programmatic, text);
  EXPECT_GT(programmatic.at("TollNotification"), 0);
  EXPECT_GT(programmatic.at("AccidentWarning"), 0);
}

}  // namespace
}  // namespace caesar
