// Harness for the caesard end-to-end suites: spawns the real daemon binary
// (path injected via the CAESAR_CAESARD_PATH compile definition) on an
// ephemeral loopback port and talks the wire protocol to it over a real
// TCP socket — no in-process shortcuts, the bytes cross the kernel.
//
// The daemon writes its resolved port to a --port-file once listen(2)
// succeeded; WaitForPort polls that file, so there is no accept/connect
// race and no fixed port to collide on under parallel ctest.

#ifndef CAESAR_TESTS_CAESARD_HARNESS_H_
#define CAESAR_TESTS_CAESARD_HARNESS_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "server/wire.h"

namespace caesar {
namespace testing {

// A running caesard child process.
class Daemon {
 public:
  // Spawns `caesard <extra_flags...> --port-file=...` and waits until it
  // listens. ASSERT via valid(): a daemon that failed to boot has port -1.
  explicit Daemon(const std::vector<std::string>& extra_flags) {
    static int counter = 0;
    port_file_ = ::testing::TempDir() + "caesard_port_" +
                 std::to_string(::getpid()) + "_" +
                 std::to_string(counter++);
    std::remove(port_file_.c_str());

    std::vector<std::string> args;
    args.push_back(CAESAR_CAESARD_PATH);
    for (const std::string& flag : extra_flags) args.push_back(flag);
    args.push_back("--port-file=" + port_file_);

    pid_ = ::fork();
    if (pid_ == 0) {
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      std::perror("execv caesard");
      ::_exit(127);
    }

    // Poll for the port file: written only after listen(2) succeeded.
    for (int i = 0; i < 600 && port_ < 0; ++i) {  // 30 s ceiling
      std::ifstream in(port_file_);
      int port = -1;
      if (in >> port && port > 0) {
        port_ = port;
        break;
      }
      if (!Alive()) break;  // crashed during boot; stop waiting
      ::usleep(50 * 1000);
    }
  }

  ~Daemon() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      int status = 0;
      ::waitpid(pid_, &status, 0);
    }
    std::remove(port_file_.c_str());
  }

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  bool valid() const { return port_ > 0; }
  int port() const { return port_; }

  // True while the child has not exited (crash detector for the fuzz leg).
  bool Alive() {
    if (pid_ <= 0) return false;
    if (reaped_) return false;
    int status = 0;
    const pid_t r = ::waitpid(pid_, &status, WNOHANG);
    if (r == pid_) reaped_ = true;
    return r == 0;
  }

  // Asks for a clean exit (SIGTERM) and reports whether the child exited 0.
  bool ShutdownCleanly() {
    if (pid_ <= 0 || reaped_) return false;
    ::kill(pid_, SIGTERM);
    int status = 0;
    if (::waitpid(pid_, &status, 0) != pid_) return false;
    reaped_ = true;
    pid_ = -1;
    return WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }

 private:
  pid_t pid_ = -1;
  bool reaped_ = false;
  int port_ = -1;
  std::string port_file_;
};

// One protocol connection: request out, response in, either framing.
class Client {
 public:
  explicit Client(int port, int recv_timeout_seconds = 30) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    struct timeval tv = {recv_timeout_seconds, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
    reader_ = std::make_unique<MessageReader>(fd_);
  }

  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // Sends one request document and reads one response document.
  Result<JsonValue> Call(const JsonValue& request, bool binary = true) {
    const std::string payload = request.Dump();
    Status status = binary ? WriteBinaryFrame(fd_, payload)
                           : WriteJsonLine(fd_, payload);
    if (!status.ok()) return status;
    std::string reply;
    bool reply_binary = false;
    bool eof = false;
    status = reader_->Next(&reply, &reply_binary, &eof);
    if (!status.ok()) return status;
    if (eof) return Status::DataLoss("connection closed before reply");
    // The server must answer in the framing the request used.
    if (reply_binary != binary) {
      return Status::Internal("reply framing does not mirror the request");
    }
    return ParseJson(reply);
  }

  // Fire-and-forget raw bytes (fuzz leg).
  void SendRaw(std::string_view bytes) { (void)WriteAllToSocket(fd_, bytes); }

  // Half-close: tells the server no more bytes are coming, so a torn
  // frame resolves to EOF immediately instead of a read timeout.
  void ShutdownWrite() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
  }

  // Best-effort read of whatever the server answers within the socket
  // timeout; empty on timeout/close. The fuzz leg only cares that the
  // daemon answered *something* coded or closed the connection — never
  // that it parsed.
  std::string TryRead() {
    char buffer[4096];
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    return n > 0 ? std::string(buffer, static_cast<size_t>(n))
                 : std::string();
  }

 private:
  int fd_ = -1;
  std::unique_ptr<MessageReader> reader_;
};

// Convenience builders for the common requests.
inline JsonValue Req(const char* cmd) {
  JsonValue request = JsonValue::Object();
  request.Set("cmd", JsonValue::String(cmd));
  return request;
}

inline JsonValue Req(const char* cmd, const std::string& tenant) {
  JsonValue request = Req(cmd);
  request.Set("tenant", JsonValue::String(tenant));
  return request;
}

// ok must be present and true / false.
inline bool IsOk(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value();
}

inline std::string ErrorCode(const JsonValue& response) {
  const JsonValue* code = response.Find("code");
  return code != nullptr && code->is_string() ? code->string_value()
                                              : std::string();
}

}  // namespace testing
}  // namespace caesar

#endif  // CAESAR_TESTS_CAESARD_HARNESS_H_
