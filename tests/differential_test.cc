// In-tree entry points for the differential-testing oracle
// (src/oracle/): replays the checked-in corpus on every ctest run, runs a
// short fuzz sweep, and checks the harness stays sensitive to planted
// oracle bugs (and that its shrinker produces genuinely small repros).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "oracle/differential.h"
#include "oracle/generator.h"

namespace caesar {
namespace {

std::vector<std::string> CorpusFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "corpus";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".repro") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(CorpusReplayTest, EverySpecMatchesItsExpectation) {
  const std::vector<std::string> files = CorpusFiles();
  ASSERT_GE(files.size(), 20u) << "corpus went missing";
  for (const std::string& path : files) {
    auto spec = ReadRepro(path);
    ASSERT_TRUE(spec.ok()) << path << ": " << spec.status();
    auto report = ReplayRepro(spec.value(), /*full_matrix=*/true);
    ASSERT_TRUE(report.ok()) << path << ": " << report.status();
    const bool expected = spec.value().expect == "diverge";
    EXPECT_EQ(report.value().diverged, expected)
        << path << ": " << report.value().leg << "\n"
        << report.value().detail;
  }
}

// Seeds disjoint from the corpus and from CI's pinned smoke seed, so the
// in-tree sweep adds coverage instead of repeating it.
TEST(QuickFuzzTest, FreshSeedsAreClean) {
  FuzzOptions options;
  options.seed = 301;
  options.iters = 20;
  options.full_matrix = false;
  auto result = RunFuzz(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().iterations_run, 20);
  EXPECT_FALSE(result.value().diverged)
      << result.value().report.leg << "\n"
      << result.value().report.detail << "\n"
      << FormatRepro(result.value().repro);
}

// Absint on/off differential: every compiled leg in CompareCase re-runs
// with EngineOptions::absint = false and byte-compares the derived
// streams (divergence leg "<name>/noabsint"), so 50 generated models
// through the compiled-engine legs prove the pruning/re-ranking pass
// never changes observable output. Seeds 501..550, disjoint from the
// other sweeps.
TEST(QuickFuzzTest, FiftySeedsAbsintOnOffByteIdentical) {
  FuzzOptions options;
  options.seed = 501;
  options.iters = 50;
  options.full_matrix = false;
  options.engines = "compiled";
  auto result = RunFuzz(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().iterations_run, 50);
  EXPECT_FALSE(result.value().diverged)
      << result.value().report.leg << "\n"
      << result.value().report.detail << "\n"
      << FormatRepro(result.value().repro);
}

// Crash-recovery legs over generated cases: seeds rotate the crash point
// through the whole durability protocol (seed % 4 picks append / commit /
// checkpoint write / checkpoint publish), and each iteration checks both
// pattern engines for byte-identical remaining output after recovery.
TEST(QuickFuzzTest, CrashRecoveryLegsAreClean) {
  FuzzOptions options;
  options.seed = 401;
  options.iters = 8;
  options.full_matrix = false;
  options.crash_recovery = true;
  auto result = RunFuzz(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().iterations_run, 8);
  EXPECT_FALSE(result.value().diverged)
      << result.value().report.leg << "\n"
      << result.value().report.detail << "\n"
      << FormatRepro(result.value().repro);
}

// If the oracle is wrong, the harness must (a) notice quickly and
// (b) shrink the failure to a handful of events that still reproduces.
TEST(InjectedBugTest, SkipNegationIsCaughtAndShrunkSmall) {
  FuzzOptions options;
  options.seed = 1;
  options.iters = 10;
  options.full_matrix = true;
  options.bug = "skip_negation";
  options.generator.force_negation = true;
  auto result = RunFuzz(options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result.value().diverged) << "planted bug went unnoticed";

  const ReproSpec& repro = result.value().repro;
  ASSERT_FALSE(repro.events.empty()) << "shrinker kept the whole stream";
  int64_t kept = 0;
  for (const auto& range : repro.events) {
    kept += range.second - range.first + 1;
  }
  EXPECT_LE(kept, 10) << FormatRepro(repro);
  EXPECT_GE(kept, 1);

  auto replay = ReplayRepro(repro, /*full_matrix=*/true);
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay.value().diverged) << "shrunken repro lost the bug";
}

TEST(ReproSpecTest, FormatParseRoundTrip) {
  ReproSpec spec;
  spec.seed = 42;
  spec.generator.min_segments = 2;
  spec.generator.max_segments = 3;
  spec.generator.min_duration = 80;
  spec.generator.max_duration = 120;
  spec.generator.max_delay = 5;
  spec.generator.duplicate_rate = 0.1;
  spec.generator.malformed_rate = 0.05;
  spec.generator.late_rate = 0.02;
  spec.generator.force_negation = true;
  spec.leg = "shared/t4/reorder/m1";
  spec.queries = {0, 2, 5};
  spec.events = {{3, 17}, {40, 40}};
  spec.expect = "match";
  spec.bug = "drop_having";

  auto parsed = ParseRepro(FormatRepro(spec));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  const ReproSpec& back = parsed.value();
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.generator.min_segments, spec.generator.min_segments);
  EXPECT_EQ(back.generator.max_segments, spec.generator.max_segments);
  EXPECT_EQ(back.generator.min_duration, spec.generator.min_duration);
  EXPECT_EQ(back.generator.max_duration, spec.generator.max_duration);
  EXPECT_EQ(back.generator.max_delay, spec.generator.max_delay);
  EXPECT_DOUBLE_EQ(back.generator.duplicate_rate,
                   spec.generator.duplicate_rate);
  EXPECT_DOUBLE_EQ(back.generator.malformed_rate,
                   spec.generator.malformed_rate);
  EXPECT_DOUBLE_EQ(back.generator.late_rate, spec.generator.late_rate);
  EXPECT_EQ(back.generator.force_negation, spec.generator.force_negation);
  EXPECT_EQ(back.leg, spec.leg);
  EXPECT_EQ(back.queries, spec.queries);
  EXPECT_EQ(back.events, spec.events);
  EXPECT_EQ(back.expect, spec.expect);
  EXPECT_EQ(back.bug, spec.bug);
}

// The lint leg's standing invariant: every well-formed generated model
// analyzes clean — no error- or warning-severity diagnostics (notes such
// as the non-groupable helper window are expected). 50 seeds, analyzer
// only, so the sweep stays cheap.
TEST(LintLegTest, FiftyGeneratedModelsLintClean) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    TypeRegistry registry;
    auto generated = GenerateCase(seed, &registry);
    ASSERT_TRUE(generated.ok()) << "seed " << seed << ": "
                                << generated.status();
    AnalyzerOptions options;
    options.source_name = "<seed " + std::to_string(seed) + ">";
    options.include_notes = false;
    auto diags = AnalyzeModel(generated.value().model, options);
    EXPECT_FALSE(HasErrorsOrWarnings(diags))
        << "seed " << seed << ": " << FormatDiagnostic(diags.front());
  }
}

// The fuzz loop's mutation mode: a planted model bug must surface as a
// lint-leg divergence carrying the paired diagnostic code.
TEST(LintLegTest, FuzzLoopFlagsPlantedModelBugs) {
  FuzzOptions options;
  options.seed = 401;
  options.iters = 3;
  options.full_matrix = false;
  options.model_mutation = "unreachable_context";
  auto result = RunFuzz(options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_FALSE(result.value().diverged)
      << result.value().report.detail;  // mutation was flagged every time
  EXPECT_EQ(result.value().iterations_run, 3);
}

TEST(ReproSpecTest, UnknownKeysAndBadValuesAreRejected) {
  EXPECT_FALSE(ParseRepro("seed = 1\nnote = hello\n").ok());
  EXPECT_FALSE(ParseRepro("seed = 1\nexpect = maybe\n").ok());
  EXPECT_FALSE(ParseRepro("seed = 1\nevents = 9-3\n").ok());
  // Minimal spec: defaults everywhere else.
  auto minimal = ParseRepro("# just a seed\nseed = 7\n");
  ASSERT_TRUE(minimal.ok()) << minimal.status();
  EXPECT_EQ(minimal.value().seed, 7u);
  EXPECT_EQ(minimal.value().expect, "diverge");
}

}  // namespace
}  // namespace caesar
