// Unit tests for src/expr: lexer, parser, compilation/evaluation, and
// predicate analysis.

#include <gtest/gtest.h>

#include "expr/analysis.h"
#include "expr/compiled.h"
#include "expr/expr.h"
#include "expr/lexer.h"
#include "expr/parser.h"

namespace caesar {
namespace {

// --- Lexer ---------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("p1.sec + 30 = p2.sec AND p2.lane != 'exit'");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_GE(t.size(), 12u);
  EXPECT_EQ(t[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(t[0].text, "p1");
  EXPECT_EQ(t[1].kind, TokenKind::kDot);
  EXPECT_EQ(t[3].kind, TokenKind::kPlus);
  EXPECT_EQ(t[4].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(t[4].int_value, 30);
  EXPECT_EQ(t[5].kind, TokenKind::kEq);
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, Utf8ComparisonGlyphs) {
  // The paper's queries use ≠ and ≥.
  auto tokens = Tokenize("lane ≠ 4 AND speed ≥ 40 AND x ≤ 2");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[1].kind, TokenKind::kNe);
  EXPECT_EQ(t[5].kind, TokenKind::kGe);
  EXPECT_EQ(t[9].kind, TokenKind::kLe);
}

TEST(LexerTest, NumbersAndStrings) {
  auto tokens = Tokenize("3.5 42 \"hi there\"");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  EXPECT_EQ(t[0].kind, TokenKind::kDoubleLiteral);
  EXPECT_DOUBLE_EQ(t[0].double_value, 3.5);
  EXPECT_EQ(t[1].kind, TokenKind::kIntLiteral);
  EXPECT_EQ(t[2].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(t[2].text, "hi there");
}

TEST(LexerTest, Comments) {
  auto tokens = Tokenize("1 -- a comment\n+ 2 // another\n");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value().size(), 4u);  // 1, +, 2, END
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
  EXPECT_FALSE(Tokenize("a # b").ok());
}

TEST(LexerTest, KeywordMatchingIsCaseInsensitive) {
  auto tokens = Tokenize("and AND And");
  ASSERT_TRUE(tokens.ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(tokens.value()[i].IsKeyword("AND"));
  }
  EXPECT_FALSE(tokens.value()[0].IsKeyword("ANDX"));
}

// --- Parser --------------------------------------------------------------

TEST(ParserTest, Precedence) {
  auto expr = ParseExpr("1 + 2 * 3 = 7 AND 1 < 2 OR x > 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(),
            "((((1 + (2 * 3)) = 7) AND (1 < 2)) OR (x > 3))");
}

TEST(ParserTest, Parentheses) {
  auto expr = ParseExpr("(1 + 2) * 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((1 + 2) * 3)");
}

TEST(ParserTest, QualifiedAndBareAttrs) {
  auto expr = ParseExpr("p1.vid = vid");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "(p1.vid = vid)");
}

TEST(ParserTest, UnaryMinus) {
  auto expr = ParseExpr("-5 + 3");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr.value()->ToString(), "((0 - 5) + 3)");
}

TEST(ParserTest, TrailingInputIsError) {
  EXPECT_FALSE(ParseExpr("1 + 2 )").ok());
  EXPECT_FALSE(ParseExpr("1 +").ok());
  EXPECT_FALSE(ParseExpr("").ok());
}

// --- Compilation & evaluation --------------------------------------------

class CompiledExprTest : public ::testing::Test {
 protected:
  CompiledExprTest() {
    type_id_ = registry_.RegisterOrGet("P", {{"vid", ValueType::kInt},
                                             {"speed", ValueType::kDouble},
                                             {"lane", ValueType::kString},
                                             {"sec", ValueType::kInt}});
    const Schema* schema = &registry_.type(type_id_).schema;
    bindings_.Add({"p1", type_id_, schema});
    bindings_.Add({"p2", type_id_, schema});
  }

  EventPtr MakeP(int64_t vid, double speed, const char* lane, int64_t sec) {
    return MakeEvent(type_id_, sec,
                     {Value(vid), Value(speed), Value(lane), Value(sec)});
  }

  Value Eval(const std::string& text, const EventPtr& e1, const EventPtr& e2) {
    auto expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto compiled = Compile(expr.value(), bindings_);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    EventPtr events[2] = {e1, e2};
    return compiled.value()->Eval(events);
  }

  TypeRegistry registry_;
  TypeId type_id_;
  BindingSet bindings_;
};

TEST_F(CompiledExprTest, ArithmeticAndComparison) {
  EventPtr e1 = MakeP(7, 55.0, "travel", 30);
  EventPtr e2 = MakeP(7, 60.0, "travel", 60);
  EXPECT_EQ(Eval("p1.sec + 30 = p2.sec", e1, e2).AsInt(), 1);
  EXPECT_EQ(Eval("p1.sec + 31 = p2.sec", e1, e2).AsInt(), 0);
  EXPECT_EQ(Eval("p1.vid = p2.vid AND p1.speed < p2.speed", e1, e2).AsInt(),
            1);
}

TEST_F(CompiledExprTest, StringComparison) {
  EventPtr e1 = MakeP(7, 55.0, "exit", 30);
  EventPtr e2 = MakeP(8, 60.0, "travel", 60);
  EXPECT_EQ(Eval("p1.lane = 'exit'", e1, e2).AsInt(), 1);
  EXPECT_EQ(Eval("p2.lane != 'exit'", e1, e2).AsInt(), 1);
}

TEST_F(CompiledExprTest, MixedNumericPromotion) {
  EventPtr e1 = MakeP(7, 55.5, "t", 30);
  EventPtr e2 = MakeP(7, 60.0, "t", 60);
  Value v = Eval("p1.speed + 1", e1, e2);
  EXPECT_EQ(v.type(), ValueType::kDouble);
  EXPECT_DOUBLE_EQ(v.AsDouble(), 56.5);
  // Integer arithmetic stays integral.
  EXPECT_EQ(Eval("p1.sec / 7", e1, e2).AsInt(), 4);
}

TEST_F(CompiledExprTest, DivisionByZeroYieldsNull) {
  EventPtr e1 = MakeP(7, 55.5, "t", 30);
  EXPECT_TRUE(Eval("p1.sec / 0", e1, e1).is_null());
}

TEST_F(CompiledExprTest, ShortCircuitLogic) {
  EventPtr e1 = MakeP(7, 55.5, "t", 30);
  // OR short-circuits: right side would be division by zero -> null -> but
  // left is already true.
  EXPECT_EQ(Eval("p1.vid = 7 OR p1.sec / 0 = 1", e1, e1).AsInt(), 1);
  EXPECT_EQ(Eval("p1.vid = 8 AND p1.speed > 0", e1, e1).AsInt(), 0);
}

TEST_F(CompiledExprTest, CompileErrors) {
  auto compile = [&](const std::string& text) {
    auto expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok());
    return Compile(expr.value(), bindings_).status();
  };
  EXPECT_EQ(compile("p3.vid = 1").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(compile("p1.nope = 1").code(), StatusCode::kInvalidArgument);
  // Bare attr is ambiguous across p1/p2.
  EXPECT_EQ(compile("vid = 1").code(), StatusCode::kInvalidArgument);
  // Type errors.
  EXPECT_EQ(compile("p1.lane + 1 = 2").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(compile("p1.lane > 1").code(), StatusCode::kInvalidArgument);
  // Logical operators need boolean (int) operands; strings are rejected.
  EXPECT_EQ(compile("p1.lane AND p2.vid = 1").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(CompiledExprTest, BareAttrWithSingleBinding) {
  BindingSet single;
  single.Add({"p", type_id_, &registry_.type(type_id_).schema});
  auto expr = ParseExpr("vid = 7");
  ASSERT_TRUE(expr.ok());
  auto compiled = Compile(expr.value(), single);
  ASSERT_TRUE(compiled.ok()) << compiled.status();
  EventPtr e = MakeP(7, 1.0, "t", 0);
  EventPtr events[1] = {e};
  EXPECT_TRUE(compiled.value()->EvalBool(events));
}

TEST_F(CompiledExprTest, CanEvaluateTracksReferencedVars) {
  auto expr = ParseExpr("p2.vid = 7");
  ASSERT_TRUE(expr.ok());
  auto compiled = Compile(expr.value(), bindings_);
  ASSERT_TRUE(compiled.ok());
  EXPECT_FALSE(compiled.value()->CanEvaluate({true, false}));
  EXPECT_TRUE(compiled.value()->CanEvaluate({false, true}));
  EXPECT_EQ(compiled.value()->referenced_vars(), std::vector<int>{1});
}

// --- Predicate analysis ---------------------------------------------------

TEST(AnalysisTest, SplitConjuncts) {
  auto expr = ParseExpr("a > 1 AND b < 2 AND (c = 3 OR d = 4)");
  ASSERT_TRUE(expr.ok());
  auto conjuncts = SplitConjuncts(expr.value());
  ASSERT_EQ(conjuncts.size(), 3u);
  EXPECT_EQ(conjuncts[2]->ToString(), "((c = 3) OR (d = 4))");
}

TEST(AnalysisTest, ExtractConstraintBothSides) {
  auto left = ParseExpr("x > 10").value();
  auto right = ParseExpr("10 < x").value();
  auto c1 = ExtractConstraint(left);
  auto c2 = ExtractConstraint(right);
  ASSERT_TRUE(c1.has_value());
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c1->op, BinaryOp::kGt);
  EXPECT_EQ(c2->op, BinaryOp::kGt);
  EXPECT_DOUBLE_EQ(c2->value, 10.0);
}

TEST(AnalysisTest, ExtractConstraintRejectsComplex) {
  EXPECT_FALSE(ExtractConstraint(ParseExpr("x + 1 > 10").value()).has_value());
  EXPECT_FALSE(ExtractConstraint(ParseExpr("x != 10").value()).has_value());
  EXPECT_FALSE(ExtractConstraint(ParseExpr("x > y").value()).has_value());
}

TEST(AnalysisTest, IntervalContainment) {
  Interval a{10.0, true, 30.0, true};   // (10, 30)
  Interval b{5.0, false, 30.0, false};  // [5, 30]
  EXPECT_TRUE(a.ContainedIn(b));
  EXPECT_FALSE(b.ContainedIn(a));
  Interval closed{10.0, false, 30.0, false};
  EXPECT_TRUE(a.ContainedIn(closed));
  EXPECT_FALSE(closed.ContainedIn(a));
}

TEST(AnalysisTest, IntervalEmptiness) {
  Interval empty{5.0, true, 5.0, false};
  EXPECT_TRUE(empty.IsEmpty());
  Interval point{5.0, false, 5.0, false};
  EXPECT_FALSE(point.IsEmpty());
}

TEST(AnalysisTest, Implication) {
  auto p = PredicateSummary::FromExpr(ParseExpr("x > 20 AND x < 25").value());
  auto q = PredicateSummary::FromExpr(ParseExpr("x > 10").value());
  EXPECT_TRUE(Implies(p, q));
  EXPECT_FALSE(Implies(q, p));
}

TEST(AnalysisTest, ImplicationConservativeOnInexact) {
  auto p = PredicateSummary::FromExpr(ParseExpr("x > 20 OR y > 5").value());
  auto q = PredicateSummary::FromExpr(ParseExpr("x > 10").value());
  EXPECT_FALSE(p.exact());
  EXPECT_FALSE(Implies(p, q));
}

TEST(AnalysisTest, BoundOrderMatchesFigure7) {
  // Fig. 7: initiate c1 if X>10, initiate c2 if X>20 -> c1 starts first.
  auto c1_start = ParseExpr("X > 10").value();
  auto c2_start = ParseExpr("X > 20").value();
  EXPECT_EQ(CompareActivationOrder(c1_start, c2_start), BoundOrder::kBefore);
  EXPECT_EQ(CompareActivationOrder(c2_start, c1_start), BoundOrder::kAfter);
  // terminate c1 if X<30, terminate c2 if X<40 -> c1 ends first.
  auto c1_end = ParseExpr("X < 30").value();
  auto c2_end = ParseExpr("X < 40").value();
  EXPECT_EQ(CompareTerminationOrder(c1_end, c2_end), BoundOrder::kBefore);
  EXPECT_EQ(CompareActivationOrder(c1_start, c1_start), BoundOrder::kEqual);
}

TEST(AnalysisTest, BoundOrderUnknownCases) {
  auto a = ParseExpr("X > 10").value();
  auto b = ParseExpr("Y > 20").value();
  EXPECT_EQ(CompareBoundOrder(a, b), BoundOrder::kUnknown);
  auto c = ParseExpr("X > 10 AND X < 30").value();
  EXPECT_EQ(CompareBoundOrder(a, c), BoundOrder::kUnknown);
}

}  // namespace
}  // namespace caesar
