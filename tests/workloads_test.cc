// Tests for the synthetic context-window workload and the PAM activity
// workload, including the sharing experiments' correctness backbone:
// grouped (shared) execution of overlapping windows derives the same event
// set as non-shared execution, with less work.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "optimizer/window_grouping.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "workloads/pamap.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

// --- Synthetic workload -------------------------------------------------

TEST(SyntheticLayoutTest, LayOutWindowsOverlap) {
  auto windows = LayOutWindows(3, 100, 40, 50);
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].start, 50);
  EXPECT_EQ(windows[0].end, 150);
  EXPECT_EQ(windows[1].start, 110);  // 60 ticks later: 40 ticks of overlap
  EXPECT_EQ(windows[2].start, 170);
}

TEST(SyntheticLayoutTest, PlaceWindowsNonOverlapping) {
  for (int placement : {-1, 0, 1}) {
    auto windows = PlaceWindows(5, 60, 1000, placement);
    ASSERT_EQ(windows.size(), 5u);
    for (size_t i = 1; i < windows.size(); ++i) {
      EXPECT_GE(windows[i].start, windows[i - 1].end);
    }
  }
  // Skewed placements cluster as advertised.
  auto early = PlaceWindows(3, 50, 1000, -1);
  auto late = PlaceWindows(3, 50, 1000, 1);
  EXPECT_LT(early.back().end, 600);
  EXPECT_GT(late.front().start, 500);
}

TEST(SyntheticLayoutTest, WindowCoverage) {
  SyntheticConfig config;
  config.duration = 1000;
  config.windows = {{0, 300}, {200, 500}, {800, 1200}};
  // Union: [0,500) + [800,1000) = 700.
  EXPECT_NEAR(WindowCoverage(config), 0.7, 1e-9);
}

TEST(SyntheticStreamTest, ShapeAndDeterminism) {
  TypeRegistry registry;
  SyntheticConfig config;
  config.duration = 100;
  config.num_partitions = 2;
  config.events_per_tick = 3;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  EXPECT_EQ(stream.size(), 600u);
  EXPECT_TRUE(IsTimeOrdered(stream));
  EventBatch again = GenerateSyntheticStream(config, &registry);
  ASSERT_EQ(again.size(), stream.size());
  for (size_t i = 0; i < stream.size(); ++i) {
    EXPECT_EQ(stream[i]->values(), again[i]->values());
  }
}

class SyntheticModelTest : public ::testing::Test {
 protected:
  static std::set<std::string> RunPlan(Result<ExecutablePlan> plan,
                                       const EventBatch& stream,
                                       const TypeRegistry& registry,
                                       RunStats* stats) {
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    EventBatch outputs;
    *stats = engine.Run(stream, &outputs).value();
    std::set<std::string> lines;
    for (const EventPtr& event : outputs) {
      lines.insert(event->ToString(registry));
    }
    return lines;
  }
};

TEST_F(SyntheticModelTest, WindowsActivateOnSchedule) {
  TypeRegistry registry;
  SyntheticConfig config;
  config.duration = 400;
  config.windows = {{100, 200}};
  config.queries_per_window = 1;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  auto plan = TranslateModel(model.value(), PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch outputs;
  engine.Run(stream, &outputs).value();
  ASSERT_GT(outputs.size(), 0u);
  for (const EventPtr& event : outputs) {
    // Matches only inside the window.
    EXPECT_GE(event->start_time(), 100);
    EXPECT_LT(event->end_time(), 200);
  }
}

TEST_F(SyntheticModelTest, SharedExecutionMatchesNonSharedWithLessWork) {
  TypeRegistry registry;
  SyntheticConfig config;
  config.duration = 900;
  config.windows = LayOutWindows(4, 200, 100, 50);
  config.queries_per_window = 3;
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  ASSERT_TRUE(model.ok()) << model.status();

  OptimizerOptions non_shared;
  non_shared.share_overlapping = false;
  OptimizerOptions shared;
  shared.share_overlapping = true;

  RunStats stats_plain, stats_shared;
  std::set<std::string> out_plain =
      RunPlan(OptimizeModel(model.value(), non_shared), stream, registry,
              &stats_plain);
  std::set<std::string> out_shared =
      RunPlan(OptimizeModel(model.value(), shared), stream, registry,
              &stats_shared);
  EXPECT_EQ(out_plain, out_shared);
  EXPECT_GT(out_plain.size(), 0u);
  EXPECT_LT(stats_shared.ops_executed, stats_plain.ops_executed);
}

TEST_F(SyntheticModelTest, GroupingEffectGrowsWithOverlapDegree) {
  // More overlapping windows -> bigger sharing gain (Fig. 14(a) mechanism).
  TypeRegistry registry;
  double gain_small, gain_large;
  for (int count : {2, 6}) {
    SyntheticConfig config;
    config.windows = LayOutWindows(count, 150, 100, 50);
    config.duration = config.windows.back().end + 100;
    config.queries_per_window = 3;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    ASSERT_TRUE(model.ok()) << model.status();
    OptimizerOptions non_shared;
    non_shared.share_overlapping = false;
    RunStats stats_plain, stats_shared;
    RunPlan(OptimizeModel(model.value(), non_shared), stream, registry,
            &stats_plain);
    RunPlan(OptimizeModel(model.value(), OptimizerOptions()), stream,
            registry, &stats_shared);
    double gain = static_cast<double>(stats_plain.ops_executed) /
                  static_cast<double>(stats_shared.ops_executed);
    (count == 2 ? gain_small : gain_large) = gain;
  }
  EXPECT_GT(gain_large, gain_small);
}

TEST_F(SyntheticModelTest, SuspensionGainTracksWindowCoverage) {
  // Less stream covered by windows -> bigger CA-over-CI gain (Fig. 12(c)/(d)
  // mechanism).
  TypeRegistry registry;
  double gain_low_coverage = 0.0, gain_high_coverage = 0.0;
  for (bool high_coverage : {false, true}) {
    SyntheticConfig config;
    config.duration = 1000;
    Timestamp length = high_coverage ? 400 : 50;
    config.windows = PlaceWindows(2, length, config.duration, 0);
    config.queries_per_window = 4;
    EventBatch stream = GenerateSyntheticStream(config, &registry);
    auto model = MakeSyntheticModel(config, &registry);
    ASSERT_TRUE(model.ok()) << model.status();
    RunStats ca, ci;
    std::set<std::string> out_ca = RunPlan(
        OptimizeModel(model.value(), OptimizerOptions()), stream, registry,
        &ca);
    std::set<std::string> out_ci =
        RunPlan(BaselinePlan(model.value()), stream, registry, &ci);
    EXPECT_EQ(out_ca, out_ci);
    double gain = static_cast<double>(ci.ops_executed) /
                  static_cast<double>(ca.ops_executed);
    (high_coverage ? gain_high_coverage : gain_low_coverage) = gain;
  }
  EXPECT_GT(gain_low_coverage, gain_high_coverage);
  EXPECT_GT(gain_high_coverage, 0.9);
}

// --- PAM workload ---------------------------------------------------------

TEST(PamapTest, StreamShape) {
  TypeRegistry registry;
  PamapConfig config;
  config.num_subjects = 4;
  config.duration = 600;
  EventBatch stream = GeneratePamapStream(config, &registry);
  ASSERT_GT(stream.size(), 100u);
  EXPECT_TRUE(IsTimeOrdered(stream));
  std::set<int64_t> subjects;
  for (const EventPtr& event : stream) {
    subjects.insert(event->value(0).AsInt());
    int64_t hr = event->value(1).AsInt();
    EXPECT_GE(hr, 58);
    EXPECT_LE(hr, 165);
  }
  EXPECT_EQ(subjects.size(), 4u);
}

TEST(PamapTest, ModelDerivesSpikesOnlyWhileActive) {
  TypeRegistry registry;
  PamapConfig config;
  config.num_subjects = 6;
  config.duration = 1500;
  config.exercise_phases_per_subject = 2.0;
  config.exercise_duration = 300;
  EventBatch stream = GeneratePamapStream(config, &registry);
  auto model = MakePamapModel(PamapModelConfig(), &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  auto plan = OptimizeModel(model.value(), OptimizerOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  Engine engine(std::move(plan).value(), EngineOptions());
  RunStats stats = engine.Run(stream).value();
  EXPECT_GT(stats.derived_by_type["HrSpike_0"], 0);
  EXPECT_GT(stats.suspended_chains, 0);
}

TEST(PamapTest, ContextAwareMatchesBaseline) {
  TypeRegistry registry;
  PamapConfig config;
  config.num_subjects = 4;
  config.duration = 1200;
  EventBatch stream = GeneratePamapStream(config, &registry);
  auto model = MakePamapModel(PamapModelConfig(), &registry);
  ASSERT_TRUE(model.ok()) << model.status();

  auto run = [&](Result<ExecutablePlan> plan) {
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    EventBatch outputs;
    engine.Run(stream, &outputs).value();
    std::multiset<std::string> lines;
    for (const EventPtr& event : outputs) {
      lines.insert(event->ToString(registry));
    }
    return lines;
  };
  EXPECT_EQ(run(OptimizeModel(model.value(), OptimizerOptions())),
            run(BaselinePlan(model.value())));
}

}  // namespace
}  // namespace caesar
