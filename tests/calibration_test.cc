// Tests for the statistics-to-cost-model calibration loop (the Fig. 8
// feedback edge) plus an aggregate-operator brute-force oracle sweep.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>
#include <memory>

#include "algebra/aggregate_op.h"
#include "algebra/pattern_op.h"
#include "common/logging.h"
#include "common/rng.h"
#include "compile/compiled_pattern_op.h"
#include "compile/compiler.h"
#include "optimizer/calibration.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/context_vector.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

constexpr char kMiniModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;
QUERY go_high
SWITCH CONTEXT high PATTERN Reading r WHERE r.value > 10 CONTEXT normal;
QUERY go_normal
SWITCH CONTEXT normal PATTERN Reading r WHERE r.value <= 10 CONTEXT high;
QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r WHERE r.value > 15 CONTEXT high;
)";

class CalibrationTest : public ::testing::Test {
 protected:
  CalibrationTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp sec) {
    return MakeEvent(reading_, sec, {Value(seg), Value(value), Value(sec)});
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(CalibrationTest, CalibratedParamsReflectObservedActivity) {
  auto model = ParseModel(kMiniModel, &registry_);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());
  ExecutablePlan plan_copy = plan.value().Clone();

  EngineOptions options;
  options.gather_statistics = true;
  Engine engine(std::move(plan).value(), options);
  // Mostly-normal stream: the high-gated queries are usually suspended.
  EventBatch input;
  Rng rng(4);
  for (Timestamp t = 0; t < 300; ++t) {
    input.push_back(Reading(1, rng.Uniform(0, 13), t));
  }
  engine.Run(input).value();
  StatisticsReport report = engine.CollectStatistics();

  CostModelParams calibrated = CalibrateCostParams(report);
  EXPECT_GT(calibrated.context_activity, 0.0);
  EXPECT_LT(calibrated.context_activity, 1.0);

  // Calibrated estimate exists and responds to activity: a plan costed at
  // the observed (low) activity is cheaper than at full activity.
  double at_observed =
      EstimatePlanCostCalibrated(plan_copy, report, calibrated);
  CostModelParams always_on = calibrated;
  always_on.context_activity = 1.0;
  double at_full = EstimatePlanCostCalibrated(plan_copy, report, always_on);
  EXPECT_GT(at_observed, 0.0);
  EXPECT_LT(at_observed, at_full);
}

TEST_F(CalibrationTest, ObservedSelectivitiesReplaceDefaults) {
  auto model = ParseModel(R"(
CONTEXTS only;
QUERY narrow DERIVE A(r.value AS value) PATTERN Reading r WHERE r.value = 1;
)",
                          &registry_);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());
  ExecutablePlan plan_copy = plan.value().Clone();

  EngineOptions options;
  options.gather_statistics = true;
  Engine engine(std::move(plan).value(), options);
  EventBatch input;
  for (Timestamp t = 0; t < 100; ++t) {
    input.push_back(Reading(1, t % 50, t));  // filter passes 2% of events
  }
  engine.Run(input).value();
  StatisticsReport report = engine.CollectStatistics();

  // The filter's observed selectivity (~0.02) is far below the static 0.5
  // default, so the calibrated plan cost undercuts the static estimate
  // (less reaches the projection).
  CostModelParams params = CalibrateCostParams(report);
  double calibrated = EstimatePlanCostCalibrated(plan_copy, report, params);
  double static_estimate = EstimatePlanCost(plan_copy, params);
  EXPECT_LT(calibrated, static_estimate);
}

TEST_F(CalibrationTest, OperatorsThatNeverRanKeepStaticEstimates) {
  // Regression: an operator with zero observed input used to report a
  // selectivity of 0 (0/0 collapsed to "drops everything"), so one run in
  // which a context-gated query stayed suspended convinced the optimizer
  // that query was free. Such rows now carry no observation (has_data()
  // false) and the calibration skips them.
  auto model = ParseModel(kMiniModel, &registry_);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());
  ExecutablePlan plan_copy = plan.value().Clone();

  EngineOptions options;
  options.gather_statistics = true;
  Engine engine(std::move(plan).value(), options);
  // Values never exceed 10, so the `high` context never activates and the
  // high-gated `alert` query stays suspended for the whole run: none of its
  // operators is ever invoked.
  EventBatch input;
  for (Timestamp t = 0; t < 50; ++t) input.push_back(Reading(1, t % 10, t));
  RunStats stats = engine.Run(input).value();
  EXPECT_GT(stats.suspended_chains, 0);
  StatisticsReport report = engine.CollectStatistics();

  // The chain's gate (the context window at position 0) genuinely observes
  // 50 in / 0 out — selectivity 0 is real data there. Everything behind the
  // gate never ran and must report "no observation", not selectivity 0.
  int dormant_rows = 0;
  bool saw_live = false;
  for (const QueryOperatorStats& row : report.operators) {
    if (row.query == "alert" && row.kind != Operator::Kind::kContextWindow) {
      ++dormant_rows;
      EXPECT_EQ(row.stats.input_events, 0);
      EXPECT_FALSE(row.stats.has_data());
      EXPECT_FALSE(row.stats.ObservedSelectivity().has_value());
      EXPECT_FALSE(row.stats.ObservedUnitCost().has_value());
    }
    if (row.query == "go_high" && row.stats.has_data()) saw_live = true;
  }
  EXPECT_GT(dormant_rows, 0);
  EXPECT_TRUE(saw_live);

  // The calibrated estimate stays finite and positive: the dormant query
  // is costed from static defaults, not from a bogus zero selectivity.
  CostModelParams params = CalibrateCostParams(report);
  double calibrated = EstimatePlanCostCalibrated(plan_copy, report, params);
  EXPECT_GT(calibrated, 0.0);
  EXPECT_TRUE(std::isfinite(calibrated));
}

TEST_F(CalibrationTest, NeverProbedCompiledStatesReportNoSelectivity) {
  // The skip rule from OperatorsThatNeverRanKeepStaticEstimates, applied
  // per automaton state: a transition that never probed a candidate run
  // has no observable selectivity (nullopt), it is not a measured
  // always-fails transition.
  TypeId never = registry_.RegisterOrGet("Never", {{"x", ValueType::kInt}});
  TypeId out = registry_.RegisterOrGet(
      "$match_pair", {{"r.seg", ValueType::kInt},
                      {"r.value", ValueType::kInt},
                      {"r.sec", ValueType::kInt},
                      {"n.x", ValueType::kInt}});
  auto config = std::make_shared<PatternOpConfig>();
  config->positions.resize(2);
  config->positions[0].type_id = reading_;
  config->positions[1].type_id = never;
  config->output_type = out;
  config->within = 10;
  config->description = "SEQ(Reading r, Never n)";
  CompiledPatternOp op(CompilePattern(config));

  ContextBitVector contexts(2, 0);
  uint64_t ops = 0;
  OpExecContext ctx;
  ctx.contexts = &contexts;
  ctx.registry = &registry_;
  ctx.ops_counter = &ops;

  // Only Reading events: state 0 advances on every one, but no Never event
  // ever arrives, so state 1 never probes a candidate.
  EventBatch input = {Reading(1, 1, 0), Reading(1, 2, 1), Reading(1, 3, 2)};
  EventBatch output;
  op.Process(input, &output, &ctx);
  EXPECT_TRUE(output.empty());
  EXPECT_EQ(op.num_runs(), 3u);

  ASSERT_EQ(op.state_stats().size(), 2u);
  EXPECT_TRUE(op.state_stats()[0].has_data());
  ASSERT_TRUE(op.ObservedStateSelectivity(0).has_value());
  EXPECT_DOUBLE_EQ(*op.ObservedStateSelectivity(0), 1.0);
  EXPECT_EQ(op.state_stats()[1].input_events, 0u);
  EXPECT_FALSE(op.state_stats()[1].has_data());
  EXPECT_FALSE(op.ObservedStateSelectivity(1).has_value());
}

TEST_F(CalibrationTest, DormantQueriesStayUnobservedUnderCompiledEngine) {
  // The engine-level dormant-query property must survive the pattern-engine
  // swap: rewritten chains reuse the same statistics rows, and a suspended
  // compiled chain reports no observations just like an interpreted one.
  auto model = ParseModel(kMiniModel, &registry_);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());

  EngineOptions options;
  options.gather_statistics = true;
  options.pattern_engine = PatternEngine::kCompiled;
  Engine engine(std::move(plan).value(), options);
  EventBatch input;
  for (Timestamp t = 0; t < 50; ++t) input.push_back(Reading(1, t % 10, t));
  RunStats stats = engine.Run(input).value();
  EXPECT_GT(stats.suspended_chains, 0);
  StatisticsReport report = engine.CollectStatistics();

  int dormant_rows = 0;
  for (const QueryOperatorStats& row : report.operators) {
    if (row.query == "alert" && row.kind != Operator::Kind::kContextWindow) {
      ++dormant_rows;
      EXPECT_FALSE(row.stats.has_data());
      EXPECT_FALSE(row.stats.ObservedSelectivity().has_value());
      EXPECT_FALSE(row.stats.ObservedUnitCost().has_value());
    }
  }
  EXPECT_GT(dormant_rows, 0);
}

// Aggregate operator vs a brute-force sliding-window oracle.
class AggregateOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(AggregateOracleTest, CountAndAvgMatchBruteForce) {
  Rng rng(GetParam() + 77);
  TypeRegistry registry;
  TypeId type = registry.RegisterOrGet("R", {{"key", ValueType::kInt},
                                             {"v", ValueType::kDouble}});
  const Timestamp window = 15;

  auto config = std::make_shared<AggregateOpConfig>();
  config->input_type = type;
  config->group_by = {0};
  config->aggregates = {{AggregateFunc::kCount, -1},
                        {AggregateFunc::kAvg, 1},
                        {AggregateFunc::kMax, 1}};
  config->window_length = window;
  config->output_type = registry.RegisterOrGet(
      "$agg_oracle", {{"key", ValueType::kInt},
                      {"cnt", ValueType::kInt},
                      {"avg", ValueType::kDouble},
                      {"max", ValueType::kDouble}});
  config->description = "oracle";
  AggregateOp agg(config);

  ContextBitVector contexts(2, 0);
  uint64_t ops = 0;
  OpExecContext ctx;
  ctx.contexts = &contexts;
  ctx.registry = &registry;
  ctx.ops_counter = &ops;

  EventBatch stream;
  Timestamp t = 0;
  for (int i = 0; i < 120; ++i) {
    t += rng.Uniform(0, 2);
    stream.push_back(MakeEvent(
        type, t, {Value(rng.Uniform(0, 2)), Value(rng.UniformReal(0, 10))}));
  }

  EventBatch outputs;
  agg.Process(stream, &outputs, &ctx);
  ASSERT_EQ(outputs.size(), stream.size());

  for (size_t i = 0; i < stream.size(); ++i) {
    const EventPtr& trigger = stream[i];
    int64_t key = trigger->value(0).AsInt();
    // Brute force: same-key events with time in (t - window, t].
    int64_t count = 0;
    double sum = 0.0;
    double max_value = -1e300;
    for (size_t j = 0; j <= i; ++j) {
      if (stream[j]->value(0).AsInt() != key) continue;
      if (stream[j]->time() <= trigger->time() - window) continue;
      ++count;
      double v = stream[j]->value(1).AsDouble();
      sum += v;
      max_value = std::max(max_value, v);
    }
    EXPECT_EQ(outputs[i]->value(1).AsInt(), count) << "event " << i;
    EXPECT_NEAR(outputs[i]->value(2).AsDouble(), sum / count, 1e-9)
        << "event " << i;
    EXPECT_NEAR(outputs[i]->value(3).AsDouble(), max_value, 1e-12)
        << "event " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AggregateOracleTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace caesar
