// Unit tests of the graceful-degradation ingest layer: the watermark-driven
// ReorderBuffer, the bounded QuarantineSink, EngineOptions validation, and
// the engine-level drop/reorder/strict policies on a mini model.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "runtime/ingest.h"

namespace caesar {
namespace {

EventPtr At(Timestamp t, int64_t tag = 0) {
  return MakeEvent(/*type_id=*/0, t, {Value(tag)});
}

std::vector<Timestamp> Times(const EventBatch& batch) {
  std::vector<Timestamp> times;
  for (const EventPtr& event : batch) times.push_back(event->time());
  return times;
}

std::vector<int64_t> Tags(const EventBatch& batch) {
  std::vector<int64_t> tags;
  for (const EventPtr& event : batch) tags.push_back(event->value(0).AsInt());
  return tags;
}

TEST(ReorderBufferTest, ReleasesInTimeOrderWithinSlack) {
  ReorderBuffer buffer(/*slack=*/2);
  EventBatch released;
  EXPECT_TRUE(buffer.Push(At(5), &released));
  EXPECT_TRUE(buffer.Push(At(3), &released));  // late by 2 == slack: admitted
  EXPECT_TRUE(buffer.Push(At(4), &released));
  EXPECT_TRUE(buffer.Push(At(8), &released));  // watermark -> 6: 3,4,5 out
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{3, 4, 5}));
  buffer.Flush(&released);
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{3, 4, 5, 8}));
  EXPECT_EQ(buffer.buffered(), 0u);
}

TEST(ReorderBufferTest, SlackBoundaryIsInclusive) {
  ReorderBuffer buffer(/*slack=*/3);
  EventBatch released;
  EXPECT_TRUE(buffer.Push(At(10), &released));
  EXPECT_TRUE(buffer.Push(At(7), &released));   // lateness 3 == slack
  // 7 sits exactly at the watermark: it is released immediately (any later
  // admissible arrival at time 7 sorts after it by arrival order).
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{7}));
  EXPECT_FALSE(buffer.Push(At(6), &released));  // lateness 4 > slack
  EXPECT_EQ(buffer.buffered(), 1u);             // the reject buffered nothing
  EXPECT_EQ(buffer.max_seen(), 10);
  EXPECT_EQ(buffer.watermark(), 7);
}

TEST(ReorderBufferTest, WatermarkIsSentinelBeforeFirstAdmission) {
  // Regression: before any admission the watermark used to read
  // `max_seen_ - slack` off the zero-initialized max, i.e. a real-looking
  // timestamp of -slack (or 0 with no slack). A stream legitimately
  // starting at a negative or very small timestamp would have its first
  // events misjudged as late. The sentinel says "no watermark yet".
  ReorderBuffer buffer(/*slack=*/3);
  EXPECT_EQ(buffer.watermark(), ReorderBuffer::kNoWatermark);
  EXPECT_EQ(ReorderBuffer::kNoWatermark,
            std::numeric_limits<Timestamp>::min());

  // The very first event is never late, wherever the stream starts.
  EventBatch released;
  EXPECT_TRUE(buffer.Push(At(-100), &released));
  EXPECT_EQ(buffer.watermark(), -103);
  EXPECT_TRUE(buffer.Push(At(-102), &released));   // within slack
  EXPECT_FALSE(buffer.Push(At(-104), &released));  // beyond slack
  buffer.Flush(&released);
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{-102, -100}));
}

TEST(ReorderBufferTest, EqualTimesKeepArrivalOrder) {
  ReorderBuffer buffer(/*slack=*/5);
  EventBatch released;
  EXPECT_TRUE(buffer.Push(At(4, 1), &released));
  EXPECT_TRUE(buffer.Push(At(2, 2), &released));
  EXPECT_TRUE(buffer.Push(At(2, 3), &released));
  EXPECT_TRUE(buffer.Push(At(4, 4), &released));
  buffer.Flush(&released);
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{2, 2, 4, 4}));
  EXPECT_EQ(Tags(released), (std::vector<int64_t>{2, 3, 1, 4}));
}

TEST(ReorderBufferTest, NothingAdmittedBelowReleasedAfterFlush) {
  ReorderBuffer buffer(/*slack=*/10);
  EventBatch released;
  EXPECT_TRUE(buffer.Push(At(5), &released));
  buffer.Flush(&released);  // 5 is emitted; the stream may not go back
  ASSERT_EQ(Times(released), (std::vector<Timestamp>{5}));
  // Within the slack window but older than what was already emitted.
  EXPECT_FALSE(buffer.Push(At(4), &released));
  EXPECT_TRUE(buffer.Push(At(5), &released));  // equal time stays admissible
  EXPECT_TRUE(buffer.Push(At(6), &released));
  buffer.Flush(&released);
  EXPECT_EQ(Times(released), (std::vector<Timestamp>{5, 5, 6}));
}

TEST(ReorderBufferTest, EmissionIsMonotoneUnderHeavyDisorder) {
  ReorderBuffer buffer(/*slack=*/4);
  EventBatch released;
  int64_t admitted = 0;
  // A deterministic zig-zag with every lateness from 0 to 6.
  for (Timestamp t : {0, 4, 1, 7, 3, 9, 5, 12, 8, 6, 15, 11}) {
    if (buffer.Push(At(t), &released)) ++admitted;
  }
  buffer.Flush(&released);
  EXPECT_EQ(static_cast<int64_t>(released.size()), admitted);
  for (size_t i = 1; i < released.size(); ++i) {
    EXPECT_LE(released[i - 1]->time(), released[i]->time()) << i;
  }
}

TEST(QuarantineSinkTest, CountersStayExactPastCapacity) {
  QuarantineSink sink(/*capacity=*/2);
  for (int i = 0; i < 5; ++i) {
    sink.Add(At(i), QuarantineReason::kOutOfOrder, /*partition_key=*/i % 2);
  }
  sink.Add(At(99), QuarantineReason::kUnknownType, /*partition_key=*/0);
  EXPECT_EQ(sink.total(), 6);
  EXPECT_EQ(sink.count(QuarantineReason::kOutOfOrder), 5);
  EXPECT_EQ(sink.count(QuarantineReason::kUnknownType), 1);
  EXPECT_EQ(sink.count(QuarantineReason::kNegativeTime), 0);
  ASSERT_EQ(sink.entries().size(), 2u);  // only the head is retained
  EXPECT_EQ(sink.overflow(), 4);
  EXPECT_EQ(sink.entries()[0].event->time(), 0);
  EXPECT_EQ(sink.entries()[1].event->time(), 1);
  EXPECT_EQ(sink.by_partition().at(0), 4);  // 0,2,4 + the unknown-type event
  EXPECT_EQ(sink.by_partition().at(1), 2);
}

TEST(EngineOptionsTest, ValidateNamesTheOffendingField) {
  EngineOptions options;
  EXPECT_TRUE(options.Validate().ok());

  options.num_threads = 0;
  Status bad_threads = options.Validate();
  EXPECT_FALSE(bad_threads.ok());
  EXPECT_NE(bad_threads.message().find("num_threads"), std::string::npos)
      << bad_threads;

  options = EngineOptions();
  options.reorder_slack = -1;
  Status bad_slack = options.Validate();
  EXPECT_FALSE(bad_slack.ok());
  EXPECT_NE(bad_slack.message().find("reorder_slack"), std::string::npos)
      << bad_slack;

  options = EngineOptions();
  options.accel = 0.0;
  EXPECT_NE(options.Validate().message().find("accel"), std::string::npos);

  options = EngineOptions();
  options.seconds_per_tick = -2.0;
  EXPECT_NE(options.Validate().message().find("seconds_per_tick"),
            std::string::npos);

  options = EngineOptions();
  options.gc_interval = 0;
  EXPECT_NE(options.Validate().message().find("gc_interval"),
            std::string::npos);

  options = EngineOptions();
  options.gc_horizon = -5;
  EXPECT_NE(options.Validate().message().find("gc_horizon"),
            std::string::npos);
}

constexpr char kMiniModel[] = R"(
CONTEXTS only;
PARTITION BY seg;

QUERY echo
DERIVE Echo(r.seg AS seg, r.value AS value)
PATTERN Reading r;
)";

class IngestEngineTest : public ::testing::Test {
 protected:
  IngestEngineTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt}});
  }

  ExecutablePlan Plan() {
    auto model = ParseModel(kMiniModel, &registry_);
    EXPECT_TRUE(model.ok()) << model.status();
    auto plan = TranslateModel(model.value(), PlanOptions());
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(plan).value();
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp t) {
    return MakeEvent(reading_, t, {Value(seg), Value(value)});
  }

  // "time:value" per derived event — the admitted sequence as the engine
  // saw it (echo derives one event per admitted Reading).
  std::string Echoed(const EventBatch& outputs) {
    std::ostringstream os;
    for (const EventPtr& event : outputs) {
      os << event->time() << ":" << event->value(1).AsInt() << " ";
    }
    return os.str();
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(IngestEngineTest, CreateRejectsBadOptionsWithoutAborting) {
  EngineOptions bad;
  bad.num_threads = -4;
  auto engine = Engine::Create(Plan(), bad);
  ASSERT_FALSE(engine.ok());
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(engine.status().message().find("num_threads"), std::string::npos);

  auto good = Engine::Create(Plan(), EngineOptions());
  ASSERT_TRUE(good.ok()) << good.status();
  EventBatch outputs;
  RunStats stats =
      good.value()->Run({Reading(1, 10, 0), Reading(1, 20, 1)}, &outputs)
          .value();
  EXPECT_EQ(stats.derived_events, 2);
}

TEST_F(IngestEngineTest, StrictPolicyReturnsStatusOnDisorder) {
  Engine engine(Plan(), EngineOptions());
  EventBatch disordered = {Reading(1, 10, 5), Reading(1, 20, 3)};
  auto run = engine.Run(disordered);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(run.status().message().find("not time-ordered at index 1"),
            std::string::npos)
      << run.status();
  EXPECT_NE(run.status().message().find("time 3 after 5"), std::string::npos)
      << run.status();

  // Nothing was mutated: the engine still processes a good batch, and no
  // degradation was recorded.
  EventBatch outputs;
  RunStats stats = engine.Run({Reading(1, 10, 0)}, &outputs).value();
  EXPECT_EQ(stats.derived_events, 1);
  EXPECT_EQ(engine.quarantine().total(), 0);
  EXPECT_EQ(engine.ingest_metrics().admitted, 1);
}

TEST_F(IngestEngineTest, StrictPolicyReturnsStatusOnMalformedEvent) {
  Engine engine(Plan(), EngineOptions());
  EventBatch batch = {Reading(1, 10, 0),
                      MakeEvent(/*type_id=*/999, 1, {})};
  auto run = engine.Run(batch);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(run.status().message().find("malformed event at index 1"),
            std::string::npos)
      << run.status();
  EXPECT_NE(run.status().message().find("unknown_type"), std::string::npos)
      << run.status();
}

TEST_F(IngestEngineTest, DropPolicyKeepsRunningMaxAndQuarantinesTheRest) {
  EngineOptions options;
  options.ingest_policy = IngestPolicy::kDrop;
  Engine engine(Plan(), options);
  EventBatch outputs;
  // t = 3 is older than the admitted high-water mark 5 -> dropped; the
  // second 5 equals it -> kept.
  EventBatch input = {Reading(1, 1, 0), Reading(1, 2, 5), Reading(1, 3, 3),
                      Reading(1, 4, 5), Reading(1, 5, 7)};
  RunStats stats = engine.Run(input, &outputs).value();
  EXPECT_EQ(Echoed(outputs), "0:1 5:2 5:4 7:5 ");
  EXPECT_EQ(stats.input_events, 5);
  EXPECT_EQ(stats.derived_events, 4);
  EXPECT_EQ(stats.events_dropped_late, 1);
  EXPECT_EQ(stats.events_quarantined, 1);
  EXPECT_EQ(stats.events_reordered, 0);
  EXPECT_EQ(stats.max_observed_lateness, 2);  // 5 - 3
  EXPECT_EQ(engine.quarantine().count(QuarantineReason::kOutOfOrder), 1);
  ASSERT_EQ(engine.quarantine().entries().size(), 1u);
  EXPECT_EQ(engine.quarantine().entries()[0].event->value(1).AsInt(), 3);

  // The high-water mark persists across Run calls.
  EventBatch more_out;
  RunStats more = engine.Run({Reading(1, 6, 4)}, &more_out).value();
  EXPECT_EQ(more.events_dropped_late, 1);
  EXPECT_EQ(more.max_observed_lateness, 3);  // 7 - 4
  EXPECT_TRUE(more_out.empty());
  EXPECT_EQ(engine.ingest_metrics().dropped_late, 2);
}

TEST_F(IngestEngineTest, ReorderPolicyResequencesWithinSlack) {
  EngineOptions options;
  options.ingest_policy = IngestPolicy::kReorder;
  options.reorder_slack = 2;
  Engine engine(Plan(), options);
  EventBatch outputs;
  EventBatch input = {Reading(1, 1, 2), Reading(1, 2, 0), Reading(1, 3, 1),
                      Reading(1, 4, 3), Reading(1, 5, 9), Reading(1, 6, 6)};
  RunStats stats = engine.Run(input, &outputs).value();
  // 0,1 are late by <= 2 and re-sequenced; 6 is late by 3 > slack.
  EXPECT_EQ(Echoed(outputs), "0:2 1:3 2:1 3:4 9:5 ");
  EXPECT_EQ(stats.events_reordered, 2);
  EXPECT_EQ(stats.events_dropped_late, 1);
  EXPECT_EQ(stats.events_quarantined, 1);
  EXPECT_EQ(stats.max_observed_lateness, 3);  // 9 - 6
  EXPECT_EQ(engine.quarantine().count(QuarantineReason::kLateBeyondSlack), 1);

  // Across Runs: the high-water mark persists, so an old event stays late.
  EventBatch more_out;
  RunStats more = engine.Run({Reading(1, 7, 5)}, &more_out).value();
  EXPECT_EQ(more.events_dropped_late, 1);
  EXPECT_TRUE(more_out.empty());
}

TEST_F(IngestEngineTest, MalformedEventsAreQuarantinedWithReasons) {
  EngineOptions options;
  options.ingest_policy = IngestPolicy::kDrop;
  Engine engine(Plan(), options);
  EventBatch outputs;
  EventBatch input = {
      Reading(1, 1, 0),
      MakeEvent(/*type_id=*/999, 1, {}),                        // unknown type
      MakeEvent(reading_, -4, {Value(int64_t{1}), Value(int64_t{2})}),
      MakeComplexEvent(reading_, /*start=*/3, /*end=*/2,
                       {Value(int64_t{1}), Value(int64_t{3})}),  // inverted
      Reading(1, 4, 2),
  };
  RunStats stats = engine.Run(input, &outputs).value();
  EXPECT_EQ(stats.derived_events, 2);
  EXPECT_EQ(stats.events_quarantined, 3);
  EXPECT_EQ(stats.events_dropped_late, 0);  // malformed, not late
  const QuarantineSink& sink = engine.quarantine();
  EXPECT_EQ(sink.count(QuarantineReason::kUnknownType), 1);
  EXPECT_EQ(sink.count(QuarantineReason::kNegativeTime), 1);
  EXPECT_EQ(sink.count(QuarantineReason::kInvertedInterval), 1);
  ASSERT_EQ(sink.entries().size(), 3u);
  EXPECT_EQ(sink.entries()[0].reason, QuarantineReason::kUnknownType);
  EXPECT_EQ(sink.entries()[0].partition_key, 0u);  // unpartitionable

  // The report surfaces the same counters.
  StatisticsReport report = engine.CollectStatistics();
  EXPECT_EQ(report.ingest.quarantined, 3);
  EXPECT_EQ(report.quarantine_by_reason[static_cast<int>(
                QuarantineReason::kUnknownType)],
            1);
  EXPECT_NE(report.ToString().find("quarantine:"), std::string::npos);
}

TEST_F(IngestEngineTest, RunStatsToStringMentionsDegradation) {
  EngineOptions options;
  options.ingest_policy = IngestPolicy::kDrop;
  Engine engine(Plan(), options);
  RunStats stats =
      engine.Run({Reading(1, 1, 5), Reading(1, 2, 3)}).value();
  std::string text = stats.ToString();
  EXPECT_NE(text.find("dropped_late=1"), std::string::npos) << text;
  EXPECT_NE(text.find("quarantined=1"), std::string::npos) << text;
}

TEST(IngestNamesTest, PolicyAndReasonNamesAreStable) {
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kStrict), "strict");
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kDrop), "drop");
  EXPECT_STREQ(IngestPolicyName(IngestPolicy::kReorder), "reorder");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kOutOfOrder),
               "out_of_order");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kLateBeyondSlack),
               "late_beyond_slack");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kUnknownType),
               "unknown_type");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kNegativeTime),
               "negative_time");
  EXPECT_STREQ(QuarantineReasonName(QuarantineReason::kInvertedInterval),
               "inverted_interval");
}

}  // namespace
}  // namespace caesar
