// Edge-case semantics of context-aware execution: window-boundary scoping
// of complex events, overlapping contexts, same-time-stamp derivation
// chains, default-context reactivation, and partitioning of events lacking
// the partition attributes.

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  SemanticsTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
    marker_ = registry_.RegisterOrGet("Marker", {{"sec", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    CAESAR_CHECK_OK(model.status());
    return std::move(model).value();
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp sec) {
    return MakeEvent(reading_, sec, {Value(seg), Value(value), Value(sec)});
  }

  EventBatch Run(const CaesarModel& model, const PlanOptions& options,
                 const EventBatch& input) {
    auto plan = TranslateModel(model, options);
    CAESAR_CHECK_OK(plan.status());
    Engine engine(std::move(plan).value(), EngineOptions());
    EventBatch outputs;
    engine.Run(input, &outputs).value();
    return outputs;
  }

  TypeRegistry registry_;
  TypeId reading_;
  TypeId marker_;
};

// A SEQ whose first component falls before the window start must not match,
// in the pushed-down AND the non-optimized plan shapes.
TEST_F(SemanticsTest, MatchesNeverSpanIntoAWindowFromOutside) {
  CaesarModel model = Parse(R"(
CONTEXTS off, on DEFAULT off;
PARTITION BY seg;
QUERY go SWITCH CONTEXT on PATTERN Reading r WHERE r.value = 100 CONTEXT off;
QUERY stop SWITCH CONTEXT off PATTERN Reading r WHERE r.value = 0 CONTEXT on;
QUERY pair
DERIVE Pair(a.sec AS s1, b.sec AS s2)
PATTERN SEQ(Reading a, Reading b) WITHIN 50
WHERE a.value = 7 AND b.value = 7
CONTEXT on;
)");
  EventBatch input = {
      Reading(1, 7, 0),    // candidate first half, but `on` is not active
      Reading(1, 100, 5),  // window opens at t=5
      Reading(1, 7, 10),   // first half inside the window
      Reading(1, 7, 20),   // completes [10, 20]
  };
  for (bool pushed : {true, false}) {
    PlanOptions options;
    options.push_down_context_windows = pushed;
    EventBatch outputs = Run(model, options, input);
    ASSERT_EQ(outputs.size(), 1u) << "pushed=" << pushed;
    // Only [10, 20]; never [0, 10] or [0, 20].
    EXPECT_EQ(outputs[0]->start_time(), 10);
    EXPECT_EQ(outputs[0]->end_time(), 20);
  }
}

// A query belonging to two overlapping contexts executes once per event,
// not once per active context.
TEST_F(SemanticsTest, OverlappingContextsDoNotDoubleDerive) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, red, blue DEFAULT idle;
PARTITION BY seg;
QUERY start_red INITIATE CONTEXT red
PATTERN Reading r WHERE r.value = 1 CONTEXT idle, blue;
QUERY start_blue INITIATE CONTEXT blue
PATTERN Reading r WHERE r.value = 2 CONTEXT idle, red;
QUERY both
DERIVE Seen(r.sec AS sec)
PATTERN Reading r
CONTEXT red, blue;
)");
  EventBatch input = {
      Reading(1, 1, 0),  // red on
      Reading(1, 2, 1),  // blue on too (overlap)
      Reading(1, 9, 2),  // both active: derive exactly one Seen
  };
  EventBatch outputs = Run(model, PlanOptions(), input);
  int seen = 0;
  for (const EventPtr& event : outputs) {
    if (registry_.type(event->type_id()).name == "Seen") ++seen;
  }
  EXPECT_EQ(seen, 3);  // one per event from t=0 on (red active since 0)
}

// Derivation chains resolve within one time stamp: a deriving query's
// output is visible to context processing queries at the same tick.
TEST_F(SemanticsTest, SameTickDerivationChain) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, alerting DEFAULT idle;
PARTITION BY seg;
QUERY detect
INITIATE CONTEXT alerting
DERIVE Incident(r.seg AS seg, r.sec AS sec)
PATTERN Reading r WHERE r.value > 50
CONTEXT idle;
QUERY notify
DERIVE Notification(i.seg AS seg, i.sec AS sec)
PATTERN Incident i
CONTEXT alerting;
)");
  EventBatch outputs = Run(model, PlanOptions(), {Reading(1, 60, 7)});
  std::multiset<std::string> names;
  for (const EventPtr& event : outputs) {
    names.insert(registry_.type(event->type_id()).name);
  }
  // Incident derived AND notification sent, all at t=7.
  EXPECT_EQ(names.count("Incident"), 1u);
  EXPECT_EQ(names.count("Notification"), 1u);
  for (const EventPtr& event : outputs) EXPECT_EQ(event->time(), 7);
}

// When the last context terminates, the default context window begins at
// the terminating event's time stamp.
TEST_F(SemanticsTest, DefaultContextReactivatesOnTermination) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, busy DEFAULT idle;
PARTITION BY seg;
QUERY go INITIATE CONTEXT busy PATTERN Reading r WHERE r.value = 1 CONTEXT idle;
QUERY stop TERMINATE CONTEXT busy PATTERN Reading r WHERE r.value = 0 CONTEXT busy;
QUERY idle_work
DERIVE IdleSeen(r.sec AS sec)
PATTERN Reading r
CONTEXT idle;
)");
  auto plan = TranslateModel(model, PlanOptions());
  CAESAR_CHECK_OK(plan.status());
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch outputs;
  engine.Run(
      {
          Reading(1, 9, 0),  // idle: IdleSeen
          Reading(1, 1, 1),  // busy begins: idle_work suspended
          Reading(1, 9, 2),  // suspended
          Reading(1, 0, 3),  // busy ends; idle resumes at t=3
          Reading(1, 9, 4),  // IdleSeen again
      },
      &outputs).value();
  std::vector<Timestamp> idle_seen;
  for (const EventPtr& event : outputs) {
    if (registry_.type(event->type_id()).name == "IdleSeen") {
      idle_seen.push_back(event->time());
    }
  }
  // t=0 before busy; t=3 (the terminating event itself re-enters idle
  // within the same tick, derivation-before-processing); t=4 after.
  EXPECT_EQ(idle_seen, (std::vector<Timestamp>{0, 3, 4}));
}

// Events whose type lacks the partition attributes land in one shared
// partition rather than being dropped.
TEST_F(SemanticsTest, EventsWithoutPartitionAttrsStillProcessed) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
PARTITION BY seg;
QUERY count_markers
DERIVE MarkerSeen(m.sec AS sec)
PATTERN Marker m
CONTEXT only;
)");
  EventBatch input = {
      MakeEvent(marker_, 0, {Value(int64_t{0})}),
      MakeEvent(marker_, 1, {Value(int64_t{1})}),
  };
  EventBatch outputs = Run(model, PlanOptions(), input);
  EXPECT_EQ(outputs.size(), 2u);
}

// INITIATE of an already-active context leaves its window start untouched
// (only one window of a type at a time).
TEST_F(SemanticsTest, ReinitiationDoesNotRestartTheWindow) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, busy DEFAULT idle;
PARTITION BY seg;
QUERY go INITIATE CONTEXT busy PATTERN Reading r WHERE r.value >= 1 CONTEXT idle, busy;
QUERY pair
DERIVE Pair(a.sec AS s1, b.sec AS s2)
PATTERN SEQ(Reading a, Reading b) WITHIN 100
WHERE a.value = 5 AND b.value = 5
CONTEXT busy;
)");
  // The initiator keeps firing (value >= 1 in busy too); if each firing
  // restarted the window, the pair spanning [1, 3] would be rejected by the
  // window-start scoping.
  EventBatch outputs = Run(model, PlanOptions(),
                           {Reading(1, 5, 1), Reading(1, 7, 2),
                            Reading(1, 5, 3)});
  bool found = false;
  for (const EventPtr& event : outputs) {
    if (registry_.type(event->type_id()).name == "Pair") {
      found = true;
      EXPECT_EQ(event->start_time(), 1);
      EXPECT_EQ(event->end_time(), 3);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace caesar
