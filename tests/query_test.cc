// Unit tests for src/query: the CAESAR model (contexts, queries,
// normalization, validation) and the query language parser.

#include <gtest/gtest.h>

#include "event/schema.h"
#include "query/model.h"
#include "query/parser.h"

namespace caesar {
namespace {

Query SimpleQuery(const std::string& name, const std::string& type) {
  Query query;
  query.name = name;
  PatternSpec pattern;
  pattern.items.push_back({type, "p", false});
  query.pattern = pattern;
  DeriveSpec derive;
  derive.event_type = "Out_" + name;
  derive.args.push_back(MakeAttrRef("p", "x"));
  query.derive = derive;
  return query;
}

TEST(ModelTest, ContextDeclarationAndDefault) {
  TypeRegistry registry;
  CaesarModel model(&registry);
  ASSERT_TRUE(model.AddContext("clear").ok());
  ASSERT_TRUE(model.AddContext("congestion").ok());
  EXPECT_EQ(model.default_context(), "clear");  // first declared
  ASSERT_TRUE(model.SetDefaultContext("congestion").ok());
  EXPECT_EQ(model.default_context(), "congestion");
  EXPECT_FALSE(model.AddContext("clear").ok());
  EXPECT_FALSE(model.SetDefaultContext("nope").ok());
  EXPECT_EQ(model.ContextIndex("clear"), 0);
  EXPECT_EQ(model.ContextIndex("nope"), -1);
}

TEST(ModelTest, NormalizeAddsImpliedContextClause) {
  TypeRegistry registry;
  CaesarModel model(&registry);
  ASSERT_TRUE(model.AddContext("clear").ok());
  ASSERT_TRUE(model.AddQuery(SimpleQuery("q1", "E")).ok());
  ASSERT_TRUE(model.Normalize().ok());
  // Phase 1: the implied CONTEXT clause became mandatory.
  EXPECT_EQ(model.query(0).contexts, std::vector<std::string>{"clear"});
  EXPECT_EQ(model.context(0).processing_queries, std::vector<int>{0});
}

TEST(ModelTest, NormalizePopulatesWorkloads) {
  TypeRegistry registry;
  CaesarModel model(&registry);
  ASSERT_TRUE(model.AddContext("clear").ok());
  ASSERT_TRUE(model.AddContext("busy").ok());
  Query deriving = SimpleQuery("d1", "E");
  deriving.derive.reset();
  deriving.action = ContextAction::kInitiate;
  deriving.target_context = "busy";
  deriving.contexts = {"clear"};
  ASSERT_TRUE(model.AddQuery(deriving).ok());
  Query processing = SimpleQuery("p1", "E");
  processing.contexts = {"busy"};
  ASSERT_TRUE(model.AddQuery(processing).ok());
  ASSERT_TRUE(model.Normalize().ok());
  EXPECT_EQ(model.context(0).deriving_queries, std::vector<int>{0});
  EXPECT_TRUE(model.context(0).processing_queries.empty());
  EXPECT_EQ(model.context(1).processing_queries, std::vector<int>{1});
}

TEST(ModelTest, ValidationErrors) {
  TypeRegistry registry;
  {
    CaesarModel model(&registry);
    EXPECT_FALSE(model.Normalize().ok());  // no contexts
  }
  {
    CaesarModel model(&registry);
    ASSERT_TRUE(model.AddContext("c").ok());
    Query query;  // no pattern
    query.name = "bad";
    ASSERT_TRUE(model.AddQuery(query).ok());
    EXPECT_FALSE(model.Normalize().ok());
  }
  {
    CaesarModel model(&registry);
    ASSERT_TRUE(model.AddContext("c").ok());
    Query query = SimpleQuery("q", "E");
    query.derive.reset();  // neither derive nor action
    ASSERT_TRUE(model.AddQuery(query).ok());
    EXPECT_FALSE(model.Normalize().ok());
  }
  {
    CaesarModel model(&registry);
    ASSERT_TRUE(model.AddContext("c").ok());
    Query query = SimpleQuery("q", "E");
    query.action = ContextAction::kInitiate;
    query.target_context = "unknown";
    ASSERT_TRUE(model.AddQuery(query).ok());
    EXPECT_FALSE(model.Normalize().ok());
  }
  {
    // Pattern with only negated items.
    CaesarModel model(&registry);
    ASSERT_TRUE(model.AddContext("c").ok());
    Query query = SimpleQuery("q", "E");
    query.pattern->kind = PatternSpec::Kind::kSeq;
    query.pattern->items = {{"E", "p", true}};
    ASSERT_TRUE(model.AddQuery(query).ok());
    EXPECT_FALSE(model.Normalize().ok());
  }
}

TEST(ParserTest, ParseSingleProcessingQuery) {
  auto query = ParseQuery(
      "QUERY toll\n"
      "DERIVE TollNotification(p.vid, p.sec, 5 AS toll)\n"
      "PATTERN NewTravelingCar p\n"
      "CONTEXT congestion");
  ASSERT_TRUE(query.ok()) << query.status();
  const Query& q = query.value();
  EXPECT_EQ(q.name, "toll");
  EXPECT_EQ(q.action, ContextAction::kNone);
  ASSERT_TRUE(q.derive.has_value());
  EXPECT_EQ(q.derive->event_type, "TollNotification");
  ASSERT_EQ(q.derive->args.size(), 3u);
  EXPECT_EQ(q.derive->attr_names[2], "toll");
  ASSERT_TRUE(q.pattern.has_value());
  EXPECT_EQ(q.pattern->kind, PatternSpec::Kind::kEvent);
  EXPECT_EQ(q.pattern->items[0].event_type, "NewTravelingCar");
  EXPECT_EQ(q.pattern->items[0].variable, "p");
  EXPECT_EQ(q.contexts, std::vector<std::string>{"congestion"});
}

TEST(ParserTest, ParseSeqWithNegationAndWhere) {
  auto query = ParseQuery(
      "DERIVE NewTravelingCar(p2.vid, p2.seg, p2.sec)\n"
      "PATTERN SEQ(NOT PositionReport p1, PositionReport p2) WITHIN 60\n"
      "WHERE p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4\n"
      "CONTEXT congestion");
  ASSERT_TRUE(query.ok()) << query.status();
  const Query& q = query.value();
  ASSERT_TRUE(q.pattern.has_value());
  EXPECT_EQ(q.pattern->kind, PatternSpec::Kind::kSeq);
  ASSERT_EQ(q.pattern->items.size(), 2u);
  EXPECT_TRUE(q.pattern->items[0].negated);
  EXPECT_FALSE(q.pattern->items[1].negated);
  EXPECT_EQ(q.pattern->within, 60);
  ASSERT_NE(q.where, nullptr);
}

TEST(ParserTest, ParseContextActions) {
  auto initiate = ParseQuery(
      "INITIATE CONTEXT accident PATTERN Accident a CONTEXT clear, "
      "congestion");
  ASSERT_TRUE(initiate.ok()) << initiate.status();
  EXPECT_EQ(initiate.value().action, ContextAction::kInitiate);
  EXPECT_EQ(initiate.value().target_context, "accident");
  EXPECT_EQ(initiate.value().contexts.size(), 2u);

  auto sw = ParseQuery("SWITCH CONTEXT clear PATTERN Smooth s CONTEXT jam");
  ASSERT_TRUE(sw.ok());
  EXPECT_EQ(sw.value().action, ContextAction::kSwitch);

  auto term =
      ParseQuery("TERMINATE CONTEXT accident PATTERN Cleared c");
  ASSERT_TRUE(term.ok());
  EXPECT_EQ(term.value().action, ContextAction::kTerminate);
}

TEST(ParserTest, NestedSeqFlattens) {
  auto query = ParseQuery("DERIVE X(a.v) PATTERN SEQ(A a, SEQ(B b, C c))");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_EQ(query.value().pattern->items.size(), 3u);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("DERIVE X(").ok());
  EXPECT_FALSE(ParseQuery("PATTERN SEQ(A a").ok());
  EXPECT_FALSE(ParseQuery("INITIATE accident").ok());  // missing CONTEXT
  EXPECT_FALSE(ParseQuery("PATTERN NOT SEQ(A a)").ok());
  EXPECT_FALSE(
      ParseQuery("DERIVE X(a.v) PATTERN A a PATTERN B b").ok());  // dup
  EXPECT_FALSE(ParseQuery("DERIVE X(1) PATTERN A a garbage ,").ok());
}

TEST(ParserTest, ParseWholeModel) {
  TypeRegistry registry;
  auto model = ParseModel(
      "CONTEXTS clear, congestion, accident DEFAULT clear;\n"
      "PARTITION BY xway, dir, seg;\n"
      "\n"
      "QUERY detect\n"
      "INITIATE CONTEXT accident\n"
      "PATTERN Accident a\n"
      "CONTEXT clear, congestion;\n"
      "\n"
      "QUERY toll\n"
      "DERIVE Toll(p.vid, 5 AS toll)\n"
      "PATTERN NewCar p\n"
      "CONTEXT congestion;\n"
      "\n"
      "QUERY slowdown\n"
      "INITIATE CONTEXT congestion\n"
      "PATTERN Jam j\n"
      "CONTEXT clear;\n",
      &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  const CaesarModel& m = model.value();
  EXPECT_EQ(m.num_contexts(), 3);
  EXPECT_EQ(m.default_context(), "clear");
  EXPECT_EQ(m.partition_by(),
            (std::vector<std::string>{"xway", "dir", "seg"}));
  EXPECT_EQ(m.num_queries(), 3);
  EXPECT_EQ(m.context(m.ContextIndex("clear")).deriving_queries,
            (std::vector<int>{0, 2}));
  EXPECT_EQ(m.context(m.ContextIndex("congestion")).processing_queries,
            std::vector<int>{1});
}

TEST(ParserTest, ModelWithoutContextClauseUsesDefault) {
  TypeRegistry registry;
  auto model = ParseModel(
      "CONTEXTS only;\n"
      "QUERY q DERIVE X(p.v) PATTERN E p;\n",
      &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model.value().query(0).contexts, std::vector<std::string>{"only"});
}

TEST(ParserTest, ModelErrorsSurface) {
  TypeRegistry registry;
  EXPECT_FALSE(ParseModel("QUERY q PATTERN E p;", &registry).ok());  // no ctx
  EXPECT_FALSE(
      ParseModel("CONTEXTS a DEFAULT b; QUERY q DERIVE X(1) PATTERN E p;",
                 &registry)
          .ok());
  EXPECT_FALSE(ParseModel("CONTEXTS a; PARTITION xway;", &registry).ok());
}

TEST(ParserTest, UnreachableContextIsRejectedByName) {
  TypeRegistry registry;
  // `ghost` has a workload but nothing ever INITIATEs or SWITCHes to it.
  auto model = ParseModel(
      "CONTEXTS idle, ghost DEFAULT idle;\n"
      "QUERY q DERIVE X(p.v) PATTERN E p CONTEXT ghost;\n",
      &registry);
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("ghost"), std::string::npos)
      << model.status();
  EXPECT_NE(model.status().message().find("unreachable"), std::string::npos)
      << model.status();

  // The same context becomes legal once some query can reach it.
  auto fixed = ParseModel(
      "CONTEXTS idle, ghost DEFAULT idle;\n"
      "QUERY open INITIATE CONTEXT ghost PATTERN S s CONTEXT idle;\n"
      "QUERY q DERIVE X(p.v) PATTERN E p CONTEXT ghost;\n",
      &registry);
  EXPECT_TRUE(fixed.ok()) << fixed.status();
}

TEST(ParserTest, ErrorsFollowTheSourceLineColPrefixConvention) {
  // Strict-mode rejections are rendered as coded diagnostics with the
  // "<source>:<line>:<col>: " prefix (the convention shared with the
  // tolerant CSV reader and caesar_lint).
  TypeRegistry registry;
  ParseModelOptions options;
  options.source_name = "models/bad.caesar";
  auto model = ParseModel(
      "CONTEXTS idle, ghost DEFAULT idle;\n"
      "QUERY q DERIVE X(p.v) PATTERN E p CONTEXT ghost;\n",
      &registry, options);
  ASSERT_FALSE(model.ok());
  // `ghost` is declared on line 1 at column 16.
  EXPECT_NE(model.status().message().find("models/bad.caesar:1:16: "),
            std::string::npos)
      << model.status();
  EXPECT_NE(model.status().message().find("error[C001]: "),
            std::string::npos)
      << model.status();

  // Tokenizer failures carry the source prefix too.
  auto junk = ParseModel("QUERY ???", &registry, options);
  ASSERT_FALSE(junk.ok());
  EXPECT_NE(junk.status().message().find("models/bad.caesar"),
            std::string::npos)
      << junk.status();
}

TEST(ParserTest, SelfLoopSwitchIsRejectedByName) {
  TypeRegistry registry;
  auto model = ParseModel(
      "CONTEXTS idle, busy DEFAULT idle;\n"
      "QUERY enter SWITCH CONTEXT busy PATTERN E p CONTEXT idle;\n"
      "QUERY stuck SWITCH CONTEXT busy PATTERN F p CONTEXT busy;\n",
      &registry);
  ASSERT_FALSE(model.ok());
  EXPECT_NE(model.status().message().find("stuck"), std::string::npos)
      << model.status();
  EXPECT_NE(model.status().message().find("busy"), std::string::npos)
      << model.status();

  // A SWITCH with no explicit CONTEXT clause is gated on the default
  // context after Normalize; targeting the default is then a self-loop too.
  auto implicit = ParseModel(
      "CONTEXTS idle, busy DEFAULT idle;\n"
      "QUERY enter SWITCH CONTEXT busy PATTERN E p CONTEXT idle;\n"
      "QUERY back SWITCH CONTEXT idle PATTERN F p;\n",
      &registry);
  ASSERT_FALSE(implicit.ok());
  EXPECT_NE(implicit.status().message().find("back"), std::string::npos)
      << implicit.status();
}

TEST(ParserTest, ParseAggregatePattern) {
  auto query = ParseQuery(
      "SWITCH CONTEXT congestion "
      "PATTERN AGGREGATE PositionReport p WINDOW 60 GROUP BY xway, seg "
      "COMPUTE count() AS cnt, avg(speed) AS spd "
      "HAVING cnt >= 20 AND spd < 40 "
      "CONTEXT clear");
  ASSERT_TRUE(query.ok()) << query.status();
  const Query& q = query.value();
  ASSERT_TRUE(q.pattern.has_value());
  EXPECT_EQ(q.pattern->kind, PatternSpec::Kind::kAggregate);
  EXPECT_EQ(q.pattern->items[0].event_type, "PositionReport");
  EXPECT_EQ(q.pattern->items[0].variable, "p");
  EXPECT_EQ(q.pattern->window_length, 60);
  EXPECT_EQ(q.pattern->group_by,
            (std::vector<std::string>{"xway", "seg"}));
  ASSERT_EQ(q.pattern->aggregates.size(), 2u);
  EXPECT_EQ(q.pattern->aggregates[0].func, AggregateFunc::kCount);
  EXPECT_EQ(q.pattern->aggregates[0].name, "cnt");
  EXPECT_EQ(q.pattern->aggregates[1].func, AggregateFunc::kAvg);
  EXPECT_EQ(q.pattern->aggregates[1].attribute, "speed");
  ASSERT_NE(q.pattern->having, nullptr);
}

TEST(ParserTest, AggregatePatternWithoutGroupByOrHaving) {
  auto query = ParseQuery(
      "DERIVE Load(t.n AS n) "
      "PATTERN AGGREGATE Tick WINDOW 10 COMPUTE count() AS n");
  ASSERT_TRUE(query.ok()) << query.status();
  EXPECT_TRUE(query.value().pattern->group_by.empty());
  EXPECT_EQ(query.value().pattern->having, nullptr);
}

TEST(ParserTest, AggregatePatternErrors) {
  EXPECT_FALSE(ParseQuery("PATTERN AGGREGATE E WINDOW COMPUTE count() AS n")
                   .ok());  // missing window length
  EXPECT_FALSE(ParseQuery("PATTERN AGGREGATE E WINDOW 10").ok());  // COMPUTE
  EXPECT_FALSE(
      ParseQuery("PATTERN AGGREGATE E WINDOW 10 COMPUTE median(x) AS m")
          .ok());  // unknown function
  EXPECT_FALSE(
      ParseQuery("PATTERN AGGREGATE E WINDOW 10 COMPUTE count() n").ok());
}

TEST(ParserTest, QueryToStringRoundTrips) {
  auto query = ParseQuery(
      "QUERY q1 INITIATE CONTEXT busy DERIVE X(p.v AS v) PATTERN E p "
      "WHERE p.v > 3 CONTEXT idle");
  ASSERT_TRUE(query.ok()) << query.status();
  auto reparsed = ParseQuery(query.value().ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().ToString(), query.value().ToString());
}

}  // namespace
}  // namespace caesar
