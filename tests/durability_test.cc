// Durability suite: the WAL/checkpoint file formats, corrupted-artifact
// recovery with I41x diagnostics (goldens in tests/lint_corpus/), and the
// crash-recovery property — an engine killed at an injected crash point and
// rebuilt by Engine::Recover must produce byte-identical remaining output
// and equal degradation counters vs an uninterrupted twin, for both the
// interpreted and the compiled pattern engine, including crashes landing
// mid-checkpoint and mid-WAL-append.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "durability/checkpoint.h"
#include "durability/durability.h"
#include "durability/manager.h"
#include "durability/serde.h"
#include "durability/wal.h"
#include "fault_injection.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "runtime/observability.h"
#include "runtime/statistics.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

using testing::CrashPointInjector;
using testing::DuplicateTailRecord;
using testing::FaultInjector;
using testing::FlipByte;
using testing::TruncateFileTail;

// Fresh scratch directory per call (tests run in parallel processes, so
// the path carries the pid; within a process a counter keeps them apart).
std::string ScratchDir(const std::string& name) {
  static int counter = 0;
  std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("caesar_durability_" + std::to_string(::getpid())) /
      (name + "_" + std::to_string(counter++));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

std::string RenderDiags(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& diag : diags) out += FormatDiagnostic(diag) + "\n";
  return out;
}

// Compares rendered recovery diagnostics against a lint-corpus golden
// (tests/lint_corpus/<name>.expected). These goldens pin the I41x line
// format the same way the .caesar fixtures pin the analyzer codes; they
// have no .caesar side because the diagnostics come from on-disk faults,
// not from model text. Regenerate by copying the "actual" side of a
// failure.
void ExpectMatchesGolden(const std::string& rendered,
                         const std::string& name) {
  std::filesystem::path golden = std::filesystem::path(CAESAR_TEST_SRCDIR) /
                                 "lint_corpus" / (name + ".expected");
  EXPECT_EQ(rendered, ReadFile(golden)) << "recovery-diagnostic golden "
                                        << name << ".expected drifted";
}

DurabilityOptions WalOptions(const std::string& dir,
                             FsyncPolicy fsync = FsyncPolicy::kNone) {
  DurabilityOptions options;
  options.mode = DurabilityMode::kWal;
  options.dir = dir;
  options.fsync = fsync;
  return options;
}

EventPtr At(Timestamp t, int64_t tag) {
  return MakeEvent(/*type_id=*/0, t, {Value(tag)});
}

// One tick + commit appended through the real writer, so unit tests
// exercise the same framing the engine produces.
void AppendBatch(WalWriter* writer, uint64_t batch_seq, Timestamp tick,
                 const EventBatch& events, const std::string& snapshot) {
  ASSERT_TRUE(writer
                  ->Append(EncodeTickRecord(batch_seq, tick, events.data(),
                                            events.size()),
                           "wal_append")
                  .ok());
  ASSERT_TRUE(
      writer->Append(EncodeCommitRecord(batch_seq, snapshot), "wal_commit")
          .ok());
}

// ---- WAL unit tests ------------------------------------------------------

TEST(WalTest, RoundTripsBatches) {
  std::string dir = ScratchDir("wal_roundtrip");
  DurabilityCounters counters;
  auto writer = WalWriter::Open(WalOptions(dir), /*segment_seq=*/1, &counters);
  ASSERT_TRUE(writer.ok()) << writer.status();
  AppendBatch(writer.value().get(), 1, 5, {At(5, 10), At(5, 11)}, "snap-1");
  AppendBatch(writer.value().get(), 2, 6, {At(6, 12)}, "snap-2");
  writer.value().reset();

  auto scan = ScanWal(dir, /*from_segment_seq=*/0, /*min_batch_seq=*/0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  const WalScanResult& result = scan.value();
  ASSERT_EQ(result.batches.size(), 2u);
  EXPECT_EQ(result.batches[0].batch_seq, 1u);
  EXPECT_EQ(result.batches[0].snapshot, "snap-1");
  ASSERT_EQ(result.batches[0].ticks.size(), 1u);
  EXPECT_EQ(result.batches[0].ticks[0].first, 5);
  ASSERT_EQ(result.batches[0].ticks[0].second.size(), 2u);
  EXPECT_EQ(result.batches[0].ticks[0].second[1]->value(0).AsInt(), 11);
  EXPECT_EQ(result.batches[1].snapshot, "snap-2");
  EXPECT_EQ(result.max_batch_seq, 2u);
  EXPECT_EQ(result.next_segment_seq, 2u);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_EQ(counters.wal_records, 4);
  EXPECT_GT(counters.wal_bytes, 0);
}

TEST(WalTest, TornTailTruncatedWithI410) {
  std::string dir = ScratchDir("wal_torn");
  DurabilityCounters counters;
  auto writer = WalWriter::Open(WalOptions(dir), 1, &counters);
  ASSERT_TRUE(writer.ok()) << writer.status();
  AppendBatch(writer.value().get(), 1, 5, {At(5, 10)}, "snap");
  // An appended-but-uncommitted tick for batch 2, torn 3 bytes short.
  EventBatch pending = {At(6, 11)};
  ASSERT_TRUE(writer.value()
                  ->Append(EncodeTickRecord(2, 6, pending.data(), 1),
                           "wal_append")
                  .ok());
  writer.value().reset();
  std::string segment =
      (std::filesystem::path(dir) / WalSegmentFileName(1)).string();
  uint64_t intact = std::filesystem::file_size(segment);
  ASSERT_TRUE(TruncateFileTail(segment, 3));

  auto scan = ScanWal(dir, 0, 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  // The sealed batch survives; the torn tail is physically truncated.
  ASSERT_EQ(scan.value().batches.size(), 1u);
  EXPECT_EQ(scan.value().torn_tail_truncations, 1);
  EXPECT_LT(std::filesystem::file_size(segment), intact - 3);
  ExpectMatchesGolden(RenderDiags(scan.value().diagnostics),
                      "i410_torn_wal_tail");

  // Truncation is idempotent: a second scan is clean.
  auto rescan = ScanWal(dir, 0, 0);
  ASSERT_TRUE(rescan.ok());
  EXPECT_TRUE(rescan.value().diagnostics.empty());
  EXPECT_EQ(rescan.value().batches.size(), 1u);
}

TEST(WalTest, FlippedCrcByteTruncatedWithI412) {
  std::string dir = ScratchDir("wal_crc");
  DurabilityCounters counters;
  auto writer = WalWriter::Open(WalOptions(dir), 1, &counters);
  ASSERT_TRUE(writer.ok()) << writer.status();
  AppendBatch(writer.value().get(), 1, 5, {At(5, 10)}, "snap");
  AppendBatch(writer.value().get(), 2, 6, {At(6, 11)}, "snap");
  writer.value().reset();
  std::string segment =
      (std::filesystem::path(dir) / WalSegmentFileName(1)).string();
  // Rot the last payload byte: the tail record fails its checksum, the
  // sealed batch before it survives.
  ASSERT_TRUE(FlipByte(segment, -1));

  auto scan = ScanWal(dir, 0, 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan.value().batches.size(), 1u);
  EXPECT_EQ(scan.value().batches[0].batch_seq, 1u);
  EXPECT_EQ(scan.value().torn_tail_truncations, 0);
  ExpectMatchesGolden(RenderDiags(scan.value().diagnostics),
                      "i412_wal_record_crc_mismatch");
}

TEST(WalTest, DuplicatedTailRecordSkippedWithI413) {
  std::string dir = ScratchDir("wal_dup");
  DurabilityCounters counters;
  auto writer = WalWriter::Open(WalOptions(dir), 1, &counters);
  ASSERT_TRUE(writer.ok()) << writer.status();
  AppendBatch(writer.value().get(), 1, 5, {At(5, 10)}, "snap");
  writer.value().reset();
  std::string segment =
      (std::filesystem::path(dir) / WalSegmentFileName(1)).string();
  // A storage layer replaying its write queue: the commit record appears
  // twice. The duplicate is internally valid, so recovery must reject it
  // by sequence, not checksum.
  ASSERT_TRUE(DuplicateTailRecord(segment));

  auto scan = ScanWal(dir, 0, 0);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_EQ(scan.value().batches.size(), 1u);
  EXPECT_EQ(scan.value().max_batch_seq, 1u);
  ExpectMatchesGolden(RenderDiags(scan.value().diagnostics),
                      "i413_stale_wal_record");
}

// ---- Checkpoint unit tests -----------------------------------------------

TEST(CheckpointTest, RoundTripsAndPicksNewest) {
  std::string dir = ScratchDir("ckpt_roundtrip");
  int64_t fsyncs = 0;
  CheckpointInfo first{/*batch_seq=*/3, /*wal_seq=*/2, /*last_tick=*/40,
                       "state-3"};
  CheckpointInfo second{/*batch_seq=*/7, /*wal_seq=*/4, /*last_tick=*/90,
                        "state-7"};
  ASSERT_TRUE(WriteCheckpointFile(dir, first, CrashHook(), &fsyncs).ok());
  ASSERT_TRUE(WriteCheckpointFile(dir, second, CrashHook(), &fsyncs).ok());
  EXPECT_GE(fsyncs, 4);

  auto scan = FindLatestCheckpoint(dir);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan.value().found);
  EXPECT_EQ(scan.value().latest.batch_seq, 7u);
  EXPECT_EQ(scan.value().latest.wal_seq, 4u);
  EXPECT_EQ(scan.value().latest.last_tick, 90);
  EXPECT_EQ(scan.value().latest.payload, "state-7");
  EXPECT_EQ(scan.value().skipped_corrupt, 0);
}

TEST(CheckpointTest, CorruptNewestSkippedWithI411) {
  std::string dir = ScratchDir("ckpt_corrupt");
  int64_t fsyncs = 0;
  CheckpointInfo older{3, 2, 40, "state-3"};
  CheckpointInfo newer{7, 4, 90, "state-7"};
  ASSERT_TRUE(WriteCheckpointFile(dir, older, CrashHook(), &fsyncs).ok());
  ASSERT_TRUE(WriteCheckpointFile(dir, newer, CrashHook(), &fsyncs).ok());
  // Rot one payload byte of the newest: it fails its checksum and the
  // scan falls back to the older checkpoint.
  ASSERT_TRUE(FlipByte(
      (std::filesystem::path(dir) / CheckpointFileName(7)).string(), -1));

  auto scan = FindLatestCheckpoint(dir);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan.value().found);
  EXPECT_EQ(scan.value().latest.batch_seq, 3u);
  EXPECT_EQ(scan.value().latest.payload, "state-3");
  EXPECT_EQ(scan.value().skipped_corrupt, 1);
  ExpectMatchesGolden(RenderDiags(scan.value().diagnostics),
                      "i411_checkpoint_crc_mismatch");
}

TEST(CheckpointTest, UnpublishedTmpIgnoredAndRemoved) {
  std::string dir = ScratchDir("ckpt_tmp");
  int64_t fsyncs = 0;
  ASSERT_TRUE(WriteCheckpointFile(dir, CheckpointInfo{3, 2, 40, "state-3"},
                                  CrashHook(), &fsyncs)
                  .ok());
  // Death between fsync(tmp) and rename: a complete tmp for seq 7 remains.
  CrashHook publish_crash = [](std::string_view point) {
    return point == "checkpoint_publish";
  };
  Status crashed = WriteCheckpointFile(dir, CheckpointInfo{7, 4, 90, "x"},
                                       publish_crash, &fsyncs);
  EXPECT_EQ(crashed.code(), StatusCode::kDataLoss);

  auto scan = FindLatestCheckpoint(dir);
  ASSERT_TRUE(scan.ok()) << scan.status();
  ASSERT_TRUE(scan.value().found);
  EXPECT_EQ(scan.value().latest.batch_seq, 3u);
  EXPECT_TRUE(scan.value().diagnostics.empty());  // tmp debris is not rot
  EXPECT_FALSE(std::filesystem::exists(std::filesystem::path(dir) /
                                       (CheckpointFileName(7) + ".tmp")));
}

// ---- Engine-level crash-recovery harness ---------------------------------

ExecutablePlan Optimize(const CaesarModel& model) {
  auto plan = OptimizeModel(model, OptimizerOptions());
  CAESAR_CHECK_OK(plan.status());
  return std::move(plan).value();
}

struct Workload {
  TypeRegistry registry;
  ExecutablePlan plan;
  EventBatch stream;
};

// Small synthetic context-window workload: 3 partitions, 2 overlapping
// windows, SEQ queries — enough traffic to populate pattern partials,
// context history, and per-operator counters in every checkpoint.
std::unique_ptr<Workload> MakeWorkload() {
  auto w = std::make_unique<Workload>();
  SyntheticConfig config;
  config.duration = 160;
  config.num_partitions = 3;
  config.events_per_tick = 2;
  config.windows = LayOutWindows(/*count=*/2, /*length=*/40, /*overlap=*/10,
                                 /*first_start=*/20);
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.queries_per_window = 2;
  w->stream = GenerateSyntheticStream(config, &w->registry);
  auto model = MakeSyntheticModel(config, &w->registry);
  EXPECT_TRUE(model.ok()) << model.status();
  w->plan = Optimize(model.value());
  return w;
}

// Splits a stream into Run-sized batches at tick boundaries (events of one
// time stamp never straddle a Run call — one Run is one WAL batch).
std::vector<EventBatch> SplitByTicks(const EventBatch& stream,
                                     int ticks_per_batch) {
  std::vector<EventBatch> batches;
  EventBatch current;
  int distinct = 0;
  bool any = false;
  Timestamp prev = 0;
  for (const EventPtr& event : stream) {
    if (!any || event->time() != prev) {
      if (distinct == ticks_per_batch) {
        batches.push_back(std::move(current));
        current.clear();
        distinct = 0;
      }
      ++distinct;
      prev = event->time();
      any = true;
    }
    current.push_back(event);
  }
  if (!current.empty()) batches.push_back(std::move(current));
  return batches;
}

std::string Render(const EventBatch& outputs, const TypeRegistry& registry) {
  std::ostringstream os;
  for (const EventPtr& event : outputs) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  return os.str();
}

struct BatchRun {
  std::vector<std::string> outputs;  // rendered, one entry per Run
  IngestMetrics ingest;
  int64_t quarantine_total = 0;
  int partitions = 0;
};

BatchRun RunBatches(Engine* engine, const std::vector<EventBatch>& batches,
                    size_t from, const TypeRegistry& registry) {
  BatchRun result;
  for (size_t b = from; b < batches.size(); ++b) {
    EventBatch outputs;
    auto stats = engine->Run(batches[b], &outputs);
    EXPECT_TRUE(stats.ok()) << "batch " << b << ": " << stats.status();
    result.outputs.push_back(Render(outputs, registry));
  }
  result.ingest = engine->ingest_metrics();
  result.quarantine_total = engine->quarantine().total();
  result.partitions = engine->num_partitions();
  return result;
}

void ExpectSameDegradation(const BatchRun& expected, const BatchRun& actual) {
  EXPECT_EQ(expected.ingest.admitted, actual.ingest.admitted);
  EXPECT_EQ(expected.ingest.reordered, actual.ingest.reordered);
  EXPECT_EQ(expected.ingest.dropped_late, actual.ingest.dropped_late);
  EXPECT_EQ(expected.ingest.quarantined, actual.ingest.quarantined);
  EXPECT_EQ(expected.ingest.max_observed_lateness,
            actual.ingest.max_observed_lateness);
  EXPECT_EQ(expected.quarantine_total, actual.quarantine_total);
  EXPECT_EQ(expected.partitions, actual.partitions);
}

// One crash-recovery case: run uninterrupted (durability off) as the
// reference, count the occurrences of `point`, crash at a seed-chosen
// occurrence, recover, re-submit everything after durable_batch_seq(), and
// demand byte-identical remaining output plus equal final counters.
void CrashRecoveryCase(const Workload& w, uint64_t seed,
                       PatternEngine engine_kind, const std::string& point,
                       DurabilityMode mode) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " engine=" +
               PatternEngineName(engine_kind) + " point=" + point +
               " mode=" + DurabilityModeName(mode));
  Rng rng(seed * 7919 + 17);

  // Seeded stream perturbation: some seeds exercise the reorder buffer and
  // the quarantine across the crash, the rest run the strict path.
  EngineOptions base;
  base.pattern_engine = engine_kind;
  EventBatch stream = w.stream;
  if (seed % 3 == 0) {
    base.ingest_policy = IngestPolicy::kReorder;
    base.reorder_slack = 4;
    FaultInjector faults(seed);
    stream = faults.DelayTicks(stream, /*max_delay=*/3);
    if (seed % 2 == 0) stream = faults.CorruptTimes(stream, 0.02);
  }
  std::vector<EventBatch> batches = SplitByTicks(stream, /*ticks_per_batch=*/20);
  ASSERT_GT(batches.size(), 2u);

  Engine reference(w.plan.Clone(), base);
  BatchRun uninterrupted = RunBatches(&reference, batches, 0, w.registry);

  auto durable = [&](const std::string& dir) {
    EngineOptions options = base;
    options.durability.mode = mode;
    options.durability.dir = dir;
    options.durability.fsync = FsyncPolicy::kNone;  // speed; policy is
                                                    // covered separately
    options.durability.checkpoint_interval_ticks = 16;
    return options;
  };

  // Pass 1: count how often the crash point is reachable.
  CrashPointInjector probe(point, /*nth=*/-1);
  {
    EngineOptions options = durable(ScratchDir("probe"));
    options.durability.crash_hook = probe.Hook();
    Engine engine(w.plan.Clone(), options);
    BatchRun logged = RunBatches(&engine, batches, 0, w.registry);
    // Logging must not perturb the output (the durability=off contract in
    // reverse): same bytes with the WAL on.
    EXPECT_EQ(logged.outputs, uninterrupted.outputs);
  }
  ASSERT_GT(probe.occurrences(), 0) << "crash point never reached";

  // Pass 2: crash at a seed-chosen occurrence.
  std::string dir = ScratchDir("crash");
  CrashPointInjector injector(point,
                              rng.Uniform(0, probe.occurrences() - 1));
  size_t failed_batch = batches.size();
  {
    EngineOptions options = durable(dir);
    options.durability.crash_hook = injector.Hook();
    Engine victim(w.plan.Clone(), options);
    for (size_t b = 0; b < batches.size(); ++b) {
      auto stats = victim.Run(batches[b], nullptr);
      if (!stats.ok()) {
        EXPECT_EQ(stats.status().code(), StatusCode::kDataLoss);
        failed_batch = b;
        break;
      }
    }
  }
  ASSERT_TRUE(injector.fired());
  ASSERT_LT(failed_batch, batches.size());

  // Pass 3: recover and re-submit everything not yet durable.
  auto recovered = Engine::Recover(w.plan.Clone(), durable(dir));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Engine& engine = *recovered.value();
  EXPECT_TRUE(engine.recovered());
  uint64_t durable_seq = engine.durable_batch_seq();
  // A checkpoint crash happens after the batch committed; every other
  // point kills the batch in flight.
  if (point == "checkpoint_write" || point == "checkpoint_publish") {
    EXPECT_EQ(durable_seq, failed_batch + 1);
  } else {
    EXPECT_EQ(durable_seq, failed_batch);
  }
  ASSERT_LE(durable_seq, batches.size());

  BatchRun resumed = RunBatches(&engine, batches, durable_seq, w.registry);
  ASSERT_EQ(resumed.outputs.size(), batches.size() - durable_seq);
  for (size_t b = durable_seq; b < batches.size(); ++b) {
    EXPECT_EQ(resumed.outputs[b - durable_seq], uninterrupted.outputs[b])
        << "batch " << b << " diverged after recovery";
  }
  ExpectSameDegradation(uninterrupted, resumed);
}

TEST(CrashRecoveryTest, MidAppendKill) {
  auto w = MakeWorkload();
  CrashRecoveryCase(*w, 11, PatternEngine::kInterpreted, "wal_append",
                    DurabilityMode::kWal);
  CrashRecoveryCase(*w, 12, PatternEngine::kCompiled, "wal_append",
                    DurabilityMode::kWalCheckpoint);
}

TEST(CrashRecoveryTest, MidCommitKill) {
  auto w = MakeWorkload();
  CrashRecoveryCase(*w, 21, PatternEngine::kInterpreted, "wal_commit",
                    DurabilityMode::kWalCheckpoint);
}

TEST(CrashRecoveryTest, MidCheckpointKill) {
  auto w = MakeWorkload();
  CrashRecoveryCase(*w, 31, PatternEngine::kInterpreted, "checkpoint_write",
                    DurabilityMode::kWalCheckpoint);
  CrashRecoveryCase(*w, 32, PatternEngine::kCompiled, "checkpoint_publish",
                    DurabilityMode::kWalCheckpoint);
}

// The headline property: >= 50 seeds, both pattern engines, crash points
// rotating over the whole protocol (append, commit, checkpoint write,
// checkpoint publish), byte-identical remaining output + equal counters.
TEST(CrashRecoveryTest, FiftySeedProperty) {
  const std::string points[] = {"wal_append", "wal_commit",
                                "checkpoint_write", "checkpoint_publish"};
  auto w = MakeWorkload();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    const std::string& point = points[seed % 4];
    // Checkpoint points need the checkpoint cadence; the WAL points split
    // between wal-only and wal+checkpoint recovery.
    DurabilityMode mode =
        (seed % 4 >= 2 || seed % 2 == 0) ? DurabilityMode::kWalCheckpoint
                                         : DurabilityMode::kWal;
    PatternEngine engine_kind =
        seed % 2 == 0 ? PatternEngine::kCompiled : PatternEngine::kInterpreted;
    CrashRecoveryCase(*w, seed, engine_kind, point, mode);
  }
}

// ---- Engine integration details ------------------------------------------

TEST(EngineDurabilityTest, OffModeTouchesNothingAndMatchesOnMode) {
  auto w = MakeWorkload();
  std::string dir = ScratchDir("off_mode");
  EngineOptions off;  // durability defaults to kOff
  Engine plain(w->plan.Clone(), off);
  EventBatch plain_out;
  auto plain_stats = plain.Run(w->stream, &plain_out);
  ASSERT_TRUE(plain_stats.ok());
  EXPECT_EQ(plain_stats.value().wal_records, 0);
  EXPECT_EQ(plain.durable_batch_seq(), 0u);

  EngineOptions on;
  on.durability.mode = DurabilityMode::kWalCheckpoint;
  on.durability.dir = dir;
  on.durability.checkpoint_interval_ticks = 32;
  Engine durable(w->plan.Clone(), on);
  EventBatch durable_out;
  auto durable_stats = durable.Run(w->stream, &durable_out);
  ASSERT_TRUE(durable_stats.ok());
  EXPECT_EQ(Render(plain_out, w->registry), Render(durable_out, w->registry));
  EXPECT_GT(durable_stats.value().wal_records, 0);
  EXPECT_GT(durable_stats.value().wal_bytes, 0);
  EXPECT_GT(durable_stats.value().checkpoints_written, 0);
  EXPECT_EQ(durable.durable_batch_seq(), 1u);

  // Off-mode exports carry no durability block at all; on-mode exports do.
  ExportOptions deterministic;
  deterministic.deterministic = true;
  std::string off_json =
      StatisticsToJson(plain.CollectStatistics(), deterministic);
  std::string on_json =
      StatisticsToJson(durable.CollectStatistics(), deterministic);
  EXPECT_EQ(off_json.find("durability"), std::string::npos);
  EXPECT_NE(on_json.find("\"durability\":{\"mode\":\"wal+checkpoint\""),
            std::string::npos);
  std::string off_prom =
      StatisticsToPrometheus(plain.CollectStatistics(), deterministic);
  std::string on_prom =
      StatisticsToPrometheus(durable.CollectStatistics(), deterministic);
  EXPECT_EQ(off_prom.find("caesar_wal_records_total"), std::string::npos);
  EXPECT_NE(on_prom.find("caesar_wal_records_total"), std::string::npos);
}

TEST(EngineDurabilityTest, CheckpointRestoresOperatorStatistics) {
  // Per-operator counters (gather_statistics) are part of the checkpoint:
  // after a crash the recovered report matches the uninterrupted one row
  // for row.
  auto w = MakeWorkload();
  std::vector<EventBatch> batches = SplitByTicks(w->stream, 20);
  EngineOptions base;
  base.gather_statistics = true;

  Engine reference(w->plan.Clone(), base);
  RunBatches(&reference, batches, 0, w->registry);
  std::string expected;
  for (const QueryOperatorStats& row :
       reference.CollectStatistics().operators) {
    expected += row.query + "#" + std::to_string(row.op_index) + ":" +
                std::to_string(row.stats.invocations) + "/" +
                std::to_string(row.stats.input_events) + "/" +
                std::to_string(row.stats.output_events) + "/" +
                std::to_string(row.stats.work_units) + "\n";
  }

  std::string dir = ScratchDir("op_stats");
  CrashPointInjector injector("wal_append", 40);
  EngineOptions crash = base;
  crash.durability.mode = DurabilityMode::kWalCheckpoint;
  crash.durability.dir = dir;
  crash.durability.checkpoint_interval_ticks = 16;
  crash.durability.crash_hook = injector.Hook();
  {
    Engine victim(w->plan.Clone(), crash);
    for (const EventBatch& batch : batches) {
      if (!victim.Run(batch, nullptr).ok()) break;
    }
  }
  ASSERT_TRUE(injector.fired());

  EngineOptions recover = base;
  recover.durability.mode = DurabilityMode::kWalCheckpoint;
  recover.durability.dir = dir;
  recover.durability.checkpoint_interval_ticks = 16;
  auto recovered = Engine::Recover(w->plan.Clone(), recover);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  RunBatches(recovered.value().get(), batches,
             recovered.value()->durable_batch_seq(), w->registry);
  std::string actual;
  for (const QueryOperatorStats& row :
       recovered.value()->CollectStatistics().operators) {
    actual += row.query + "#" + std::to_string(row.op_index) + ":" +
              std::to_string(row.stats.invocations) + "/" +
              std::to_string(row.stats.input_events) + "/" +
              std::to_string(row.stats.output_events) + "/" +
              std::to_string(row.stats.work_units) + "\n";
  }
  EXPECT_EQ(actual, expected);
}

TEST(EngineDurabilityTest, RecoveryReportsDiagnosticsForRottenArtifacts) {
  // End-to-end graceful degradation: a crash mid-append leaves a torn WAL
  // tail, and the newest checkpoint rots on top of it. Recovery truncates
  // the tail (I410), falls back to the older checkpoint (I411), replays
  // the sealed batches in between, and keeps serving.
  auto w = MakeWorkload();
  std::vector<EventBatch> batches = SplitByTicks(w->stream, 20);
  ASSERT_GE(batches.size(), 4u);
  std::string dir = ScratchDir("rotten");
  EngineOptions options;
  options.durability.mode = DurabilityMode::kWalCheckpoint;
  options.durability.dir = dir;
  options.durability.checkpoint_interval_ticks = 16;

  // Count appends, then crash at the very last one: every earlier batch is
  // sealed and checkpointed (20-tick batches beat the 16-tick cadence), so
  // retention leaves two checkpoints plus the sealed batch between them.
  CrashPointInjector probe("wal_append", -1);
  {
    EngineOptions probed = options;
    probed.durability.dir = ScratchDir("rotten_probe");
    probed.durability.crash_hook = probe.Hook();
    Engine engine(w->plan.Clone(), probed);
    for (const EventBatch& batch : batches) {
      ASSERT_TRUE(engine.Run(batch, nullptr).ok());
    }
  }
  ASSERT_GT(probe.occurrences(), 0);
  CrashPointInjector injector("wal_append", probe.occurrences() - 1);
  {
    EngineOptions crash = options;
    crash.durability.crash_hook = injector.Hook();
    Engine victim(w->plan.Clone(), crash);
    for (const EventBatch& batch : batches) {
      if (!victim.Run(batch, nullptr).ok()) break;
    }
  }
  ASSERT_TRUE(injector.fired());

  // Rot the newest checkpoint so the scan must fall back to the older one
  // and replay the batch between them.
  uint64_t newest_ckpt = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".ckpt") continue;
    std::string stem = entry.path().stem().string();  // ckpt-<10 digits>
    newest_ckpt = std::max(
        newest_ckpt, static_cast<uint64_t>(std::stoull(stem.substr(5))));
  }
  ASSERT_GT(newest_ckpt, 1u);
  ASSERT_TRUE(FlipByte(
      (std::filesystem::path(dir) / CheckpointFileName(newest_ckpt)).string(),
      -1));

  auto recovered = Engine::Recover(w->plan.Clone(), options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  Engine& engine = *recovered.value();
  EXPECT_TRUE(engine.recovered());
  std::string rendered;
  for (const std::string& diag : engine.recovery_diagnostics()) {
    rendered += diag + "\n";
  }
  EXPECT_NE(rendered.find("[I411]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("[I410]"), std::string::npos) << rendered;
  EXPECT_GT(engine.durability_counters().torn_tail_truncations, 0);
  EXPECT_GT(engine.durability_counters().recovery_replayed_events, 0);
  EXPECT_EQ(engine.durable_batch_seq(), newest_ckpt);
  // The diagnostics also surface through the statistics report.
  StatisticsReport report = engine.CollectStatistics();
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.recovery_diagnostics, engine.recovery_diagnostics());
  EXPECT_NE(report.ToString().find("[I410]"), std::string::npos);
  // And the engine still serves: the not-yet-durable input re-runs clean.
  for (size_t b = newest_ckpt; b < batches.size(); ++b) {
    EXPECT_TRUE(engine.Run(batches[b], nullptr).ok());
  }
}

TEST(EngineDurabilityTest, FreshEngineInUsedDirectoryKeepsSequencing) {
  // A fresh (non-recovered) engine pointed at a used directory must append
  // after the existing artifacts — batch seqs stay monotone, so a later
  // recovery never misreads live records as stale (I413).
  auto w = MakeWorkload();
  std::vector<EventBatch> batches = SplitByTicks(w->stream, 40);
  ASSERT_GE(batches.size(), 4u);
  std::string dir = ScratchDir("reused");
  EngineOptions options;
  options.durability.mode = DurabilityMode::kWal;
  options.durability.dir = dir;
  {
    Engine first(w->plan.Clone(), options);
    ASSERT_TRUE(first.Run(batches[0], nullptr).ok());
    ASSERT_TRUE(first.Run(batches[1], nullptr).ok());
    EXPECT_EQ(first.durable_batch_seq(), 2u);
  }
  {
    Engine second(w->plan.Clone(), options);
    ASSERT_TRUE(second.Run(batches[2], nullptr).ok());
    EXPECT_EQ(second.durable_batch_seq(), 3u);
  }
  auto scan = ScanForRecovery(options.durability);
  ASSERT_TRUE(scan.ok()) << scan.status();
  EXPECT_EQ(scan.value().batches.size(), 3u);
  EXPECT_EQ(scan.value().next_batch_seq, 4u);
  for (const Diagnostic& diag : scan.value().diagnostics) {
    EXPECT_NE(diag.code, DiagCode::kI413StaleWalRecord)
        << FormatDiagnostic(diag);
  }
}

TEST(EngineDurabilityTest, RecoverRequiresDurabilityOn) {
  auto w = MakeWorkload();
  EngineOptions options;  // kOff
  auto recovered = Engine::Recover(w->plan.Clone(), options);
  ASSERT_FALSE(recovered.ok());
  EXPECT_EQ(recovered.status().code(), StatusCode::kInvalidArgument);
}

TEST(EngineDurabilityTest, FsyncPolicyCountsSyncs) {
  auto w = MakeWorkload();
  std::vector<EventBatch> batches = SplitByTicks(w->stream, 40);
  auto fsyncs_with = [&](FsyncPolicy policy) {
    EngineOptions options;
    options.durability.mode = DurabilityMode::kWal;
    options.durability.dir = ScratchDir("fsync");
    options.durability.fsync = policy;
    Engine engine(w->plan.Clone(), options);
    int64_t total = 0;
    for (const EventBatch& batch : batches) {
      auto stats = engine.Run(batch, nullptr);
      EXPECT_TRUE(stats.ok());
      total += stats.value().fsyncs;
    }
    return std::pair<int64_t, int64_t>(
        total, engine.durability_counters().wal_records);
  };
  auto [none, none_records] = fsyncs_with(FsyncPolicy::kNone);
  auto [batch, batch_records] = fsyncs_with(FsyncPolicy::kBatch);
  auto [always, always_records] = fsyncs_with(FsyncPolicy::kAlways);
  EXPECT_EQ(none, 0);
  EXPECT_EQ(batch, static_cast<int64_t>(batches.size()));
  EXPECT_EQ(always, always_records);
  EXPECT_EQ(none_records, batch_records);
  EXPECT_EQ(batch_records, always_records);
}

}  // namespace
}  // namespace caesar
