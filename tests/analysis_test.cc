// Tests for src/analysis: the diagnostics engine and the semantic
// analyzer behind caesar_lint.
//
// The lint corpus (tests/lint_corpus/*.caesar) pins the analyzer's output
// byte-for-byte: every fixture is lenient-parsed and analyzed exactly the
// way tools/caesar_lint does it, and the rendered human diagnostics must
// equal the paired .expected golden. Programmatic-only checks (shapes the
// text syntax cannot express, engine integration, renderer determinism)
// are covered by unit tests below.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analyzer.h"
#include "analysis/diagnostics.h"
#include "event/schema.h"
#include "io/csv.h"
#include "oracle/generator.h"
#include "plan/translator.h"
#include "query/model.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "runtime/ingest.h"

namespace caesar {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Mirrors the caesar_lint file mode: lenient parse, full analysis with
// plan checking, human rendering. `source_name` matches the relative path
// the goldens were generated with.
std::string LintFixture(const std::filesystem::path& path,
                        const std::string& source_name) {
  TypeRegistry registry;
  ParseModelOptions parse_options;
  parse_options.source_name = source_name;
  parse_options.strict = false;
  auto model = ParseModel(ReadFile(path), &registry, parse_options);
  EXPECT_TRUE(model.ok()) << model.status();
  if (!model.ok()) return "<parse error>";
  AnalyzerOptions options;
  options.source_name = source_name;
  options.check_plan = true;
  std::string out;
  for (const Diagnostic& diag : AnalyzeModel(model.value(), options)) {
    out += FormatDiagnostic(diag) + "\n";
  }
  return out;
}

TEST(LintCorpusTest, FixturesMatchGoldens) {
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "lint_corpus";
  int fixtures = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".caesar") continue;
    ++fixtures;
    const std::string source_name =
        "tests/lint_corpus/" + entry.path().filename().string();
    std::filesystem::path golden = entry.path();
    golden.replace_extension(".expected");
    EXPECT_EQ(LintFixture(entry.path(), source_name), ReadFile(golden))
        << "fixture " << source_name
        << " drifted; regenerate with tools/caesar_lint " << source_name;
  }
  EXPECT_GE(fixtures, 21) << "lint corpus went missing";
}

TEST(LintCorpusTest, EveryFixtureCodeIsDistinctAndCovered) {
  // One fixture per code family entry: the file name prefix names the
  // code it pins (clean_* pin the absence of diagnostics).
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "lint_corpus";
  std::set<std::string> codes;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".expected") continue;
    std::istringstream lines(ReadFile(entry.path()));
    std::string line;
    while (std::getline(lines, line)) {
      auto open = line.find('[');
      auto close = line.find(']');
      if (open != std::string::npos && close > open) {
        codes.insert(line.substr(open + 1, close - open - 1));
      }
    }
  }
  // The I41x goldens have no .caesar side — they pin the recovery
  // diagnostics durability_test renders from deliberately rotted WAL and
  // checkpoint files, not analyzer output.
  for (const char* code : {"C001", "C002", "C003", "C004", "C005", "C006",
                           "E101", "E102", "E103", "E104", "E105", "E106",
                           "E109", "W201", "W202", "W203", "W204", "W205",
                           "W206", "W207", "P302", "P303", "P305", "I410",
                           "I411", "I412", "I413"}) {
    EXPECT_TRUE(codes.count(code)) << "no fixture exercises " << code;
  }
}

// ---- Programmatic-only checks ----------------------------------------

CaesarModel ModelWithQuery(TypeRegistry* registry, Query query) {
  registry->RegisterOrGet("E", {{"x", ValueType::kInt}});
  CaesarModel model(registry);
  EXPECT_TRUE(model.AddContext("idle").ok());
  EXPECT_TRUE(model.AddQuery(std::move(query)).ok());
  model.NormalizeLenient();
  return model;
}

bool HasCode(const std::vector<Diagnostic>& diags, DiagCode code) {
  for (const Diagnostic& diag : diags) {
    if (diag.code == code) return true;
  }
  return false;
}

TEST(AnalyzerTest, MissingPatternIsE107) {
  TypeRegistry registry;
  Query query;
  query.name = "bare";
  DeriveSpec derive;
  derive.event_type = "Out";
  derive.args.push_back(MakeConstant(1.0));
  query.derive = derive;
  CaesarModel model = ModelWithQuery(&registry, std::move(query));
  EXPECT_TRUE(HasCode(AnalyzeModel(model), DiagCode::kE107MissingPattern));
}

TEST(AnalyzerTest, MissingDeriveAndActionIsE108) {
  TypeRegistry registry;
  Query query;
  query.name = "inert";
  PatternSpec pattern;
  pattern.items.push_back({"E", "p", false});
  query.pattern = pattern;
  CaesarModel model = ModelWithQuery(&registry, std::move(query));
  EXPECT_TRUE(
      HasCode(AnalyzeModel(model), DiagCode::kE108MissingDeriveOrAction));
}

TEST(AnalyzerTest, TooManyContextsIsP301) {
  TypeRegistry registry;
  registry.RegisterOrGet("E", {{"x", ValueType::kInt}});
  CaesarModel model(&registry);
  for (int i = 0; i < 65; ++i) {
    ASSERT_TRUE(model.AddContext("c" + std::to_string(i)).ok());
  }
  model.NormalizeLenient();
  EXPECT_TRUE(HasCode(AnalyzeModel(model), DiagCode::kP301TooManyContexts));
}

TEST(AnalyzerTest, RenderersAreDeterministic) {
  TypeRegistry registry;
  auto generated = GenerateCase(7, &registry);
  ASSERT_TRUE(generated.ok()) << generated.status();
  AnalyzerOptions options;
  options.source_name = "<det>";
  auto first = AnalyzeModel(generated.value().model, options);
  auto second = AnalyzeModel(generated.value().model, options);
  EXPECT_EQ(DiagnosticsToJson(first), DiagnosticsToJson(second));
  EXPECT_EQ(DiagnosticsToSarif(first), DiagnosticsToSarif(second));
}

// ---- Model mutations (the lint oracle) --------------------------------

TEST(AnalyzerTest, EveryModelMutationIsFlaggedWithItsCode) {
  int checked = 0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    TypeRegistry registry;
    auto generated = GenerateCase(seed, &registry);
    ASSERT_TRUE(generated.ok()) << generated.status();
    AnalyzerOptions options;
    options.include_notes = false;
    for (const std::string& mutation : ModelMutationNames()) {
      std::string expected;
      auto mutated =
          MutateModel(generated.value().model, mutation, &expected);
      if (!mutated.ok()) {
        EXPECT_EQ(mutated.status().code(), StatusCode::kFailedPrecondition)
            << mutated.status();
        continue;
      }
      ++checked;
      bool hit = false;
      for (const Diagnostic& diag : AnalyzeModel(mutated.value(), options)) {
        if (DiagCodeName(diag.code) == expected) hit = true;
      }
      EXPECT_TRUE(hit) << "seed " << seed << ": mutation " << mutation
                       << " not flagged with " << expected;
    }
  }
  EXPECT_GE(checked, 40) << "mutations mostly skipped";
}

// ---- Engine integration -----------------------------------------------

// A model that translates but carries a W201 contradiction warning.
CaesarModel ContradictionModel(TypeRegistry* registry) {
  registry->RegisterOrGet("E", {{"x", ValueType::kInt}});
  registry->RegisterOrGet("Out", {{"x", ValueType::kInt}});
  CaesarModel model(registry);
  EXPECT_TRUE(model.AddContext("idle").ok());
  Query query;
  query.name = "nope";
  PatternSpec pattern;
  pattern.items.push_back({"E", "p", false});
  query.pattern = pattern;
  query.where = MakeConjunction(
      MakeBinary(BinaryOp::kGe, MakeAttrRef("p", "x"), MakeConstant(10.0)),
      MakeBinary(BinaryOp::kLe, MakeAttrRef("p", "x"), MakeConstant(5.0)));
  DeriveSpec derive;
  derive.event_type = "Out";
  derive.args.push_back(MakeAttrRef("p", "x"));
  query.derive = derive;
  EXPECT_TRUE(model.AddQuery(std::move(query)).ok());
  EXPECT_TRUE(model.Normalize().ok());
  return model;
}

TEST(EngineAnalysisTest, WarnModeSurfacesDiagnosticsInStatistics) {
  TypeRegistry registry;
  CaesarModel model = ContradictionModel(&registry);
  EngineOptions options;
  options.analysis = AnalysisMode::kWarn;
  auto engine = Engine::Create(model, PlanOptions{}, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  StatisticsReport report = engine.value()->CollectStatistics();
  ASSERT_EQ(report.analysis_diagnostics.size(), 1u);
  EXPECT_NE(report.analysis_diagnostics[0].find("W201"), std::string::npos)
      << report.analysis_diagnostics[0];
  EXPECT_NE(report.ToString().find("analysis diagnostics:"),
            std::string::npos);
}

TEST(EngineAnalysisTest, StrictModeRejectsErrors) {
  TypeRegistry registry;
  registry.RegisterOrGet("E", {{"x", ValueType::kInt}});
  CaesarModel model(&registry);
  ASSERT_TRUE(model.AddContext("idle").ok());
  Query query;
  query.name = "bad";
  PatternSpec pattern;
  pattern.items.push_back({"E", "p", false});
  query.pattern = pattern;
  query.where =
      MakeBinary(BinaryOp::kEq, MakeAttrRef("p", "nope"), MakeConstant(1.0));
  DeriveSpec derive;
  derive.event_type = "Out";
  derive.args.push_back(MakeAttrRef("p", "x"));
  query.derive = derive;
  ASSERT_TRUE(model.AddQuery(std::move(query)).ok());
  ASSERT_TRUE(model.Normalize().ok());

  EngineOptions strict;
  strict.analysis = AnalysisMode::kStrict;
  auto engine = Engine::Create(model, PlanOptions{}, strict);
  ASSERT_FALSE(engine.ok());
  EXPECT_NE(engine.status().message().find("E102"), std::string::npos)
      << engine.status();

  // kOff skips the analyzer entirely; the translator still rejects the
  // unknown attribute, but without the diagnostic code.
  EngineOptions off;
  auto unchecked = Engine::Create(model, PlanOptions{}, off);
  ASSERT_FALSE(unchecked.ok());
  EXPECT_EQ(unchecked.status().message().find("E102"), std::string::npos)
      << unchecked.status();
}

TEST(EngineAnalysisTest, CleanModelHasNoRetainedDiagnostics) {
  TypeRegistry registry;
  auto generated = GenerateCase(3, &registry);
  ASSERT_TRUE(generated.ok()) << generated.status();
  EngineOptions options;
  options.analysis = AnalysisMode::kStrict;
  auto engine =
      Engine::Create(generated.value().model, PlanOptions{}, options);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_TRUE(engine.value()->CollectStatistics().analysis_diagnostics.empty());
}

// ---- Ingest / IO code sharing (I4xx) ----------------------------------

TEST(DiagnosticsTest, QuarantineReasonsMapOntoI4xxCodes) {
  EXPECT_EQ(QuarantineDiagCode(QuarantineReason::kOutOfOrder),
            DiagCode::kI401OutOfOrder);
  EXPECT_EQ(QuarantineDiagCode(QuarantineReason::kLateBeyondSlack),
            DiagCode::kI402LateBeyondSlack);
  EXPECT_EQ(QuarantineDiagCode(QuarantineReason::kUnknownType),
            DiagCode::kI403UnknownType);
  EXPECT_EQ(QuarantineDiagCode(QuarantineReason::kNegativeTime),
            DiagCode::kI404NegativeTime);
  EXPECT_EQ(QuarantineDiagCode(QuarantineReason::kInvertedInterval),
            DiagCode::kI405InvertedInterval);
  EXPECT_STREQ(DiagCodeName(DiagCode::kI403UnknownType), "I403");
}

TEST(DiagnosticsTest, CsvReaderErrorsCarryI406) {
  TypeRegistry registry;
  auto parsed = ReadEventsCsv(
      "# type: T\n# attrs: x:int\ntime,x\n1,ok\n", &registry, "feed");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("feed:4: "), std::string::npos)
      << parsed.status();
  EXPECT_NE(parsed.status().message().find("error[I406]: "),
            std::string::npos)
      << parsed.status();
}

}  // namespace
}  // namespace caesar
