// Runtime-infrastructure tests beyond the basic engine behaviour: the
// statistics gatherer, garbage collection of operator state, the latency
// virtual clock, partition independence at scale, and engine stress with
// many contexts.

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

constexpr char kMiniModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high PATTERN Reading r WHERE r.value > 10 CONTEXT normal;
QUERY go_normal
SWITCH CONTEXT normal PATTERN Reading r WHERE r.value <= 10 CONTEXT high;
QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r WHERE r.value > 15
CONTEXT high;
)";

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    CAESAR_CHECK_OK(model.status());
    return std::move(model).value();
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp sec) {
    return MakeEvent(reading_, sec, {Value(seg), Value(value), Value(sec)});
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(RuntimeTest, StatisticsGathererRecordsPerOperatorCounts) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  EngineOptions options;
  options.gather_statistics = true;
  Engine engine(std::move(plan).value(), options);
  EventBatch input;
  for (Timestamp t = 0; t < 100; ++t) {
    input.push_back(Reading(1, t % 30, t));
  }
  engine.Run(input).value();

  StatisticsReport report = engine.CollectStatistics();
  ASSERT_FALSE(report.operators.empty());
  // Context activity is a fraction.
  EXPECT_GT(report.observed_context_activity, 0.0);
  EXPECT_LE(report.observed_context_activity, 1.0);
  // Some operator processed input and some filtered events out.
  bool any_input = false;
  bool any_selective = false;
  for (const QueryOperatorStats& row : report.operators) {
    EXPECT_GE(row.stats.input_events, row.stats.output_events == 0
                  ? 0u
                  : 0u);  // sanity: counters are consistent
    if (row.stats.input_events > 0) any_input = true;
    if (row.kind == Operator::Kind::kFilter && row.stats.has_data() &&
        *row.stats.ObservedSelectivity() < 1.0) {
      any_selective = true;
    }
  }
  EXPECT_TRUE(any_input);
  EXPECT_TRUE(any_selective);
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(RuntimeTest, StatisticsDisabledByDefault) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  engine.Run({Reading(1, 5, 0)}).value();
  StatisticsReport report = engine.CollectStatistics();
  EXPECT_TRUE(report.operators.empty());
}

TEST_F(RuntimeTest, ObservedActivityTracksWindowCoverage) {
  // A stream that stays in `normal` forever: the alert query (gated on
  // `high`) is always suspended, so observed activity is well below 1.
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  EngineOptions options;
  options.gather_statistics = true;
  Engine engine(std::move(plan).value(), options);
  EventBatch input;
  for (Timestamp t = 0; t < 50; ++t) input.push_back(Reading(1, 3, t));
  engine.Run(input).value();
  StatisticsReport report = engine.CollectStatistics();
  // go_normal and alert are suspended on every tick: 1 of 3 chains runs.
  EXPECT_LT(report.observed_context_activity, 0.5);
}

TEST_F(RuntimeTest, GarbageCollectionBoundsPatternState) {
  // A SEQ query whose first component matches every event: without GC and
  // WITHIN expiry its partial set would grow with the stream.
  CaesarModel model = Parse(R"(
CONTEXTS only;
PARTITION BY seg;
QUERY pairs
DERIVE Pair(a.sec AS first_sec, b.sec AS second_sec)
PATTERN SEQ(Reading a, Reading b) WITHIN 20
WHERE a.value = 999
CONTEXT only;
)");
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  EngineOptions options;
  options.gather_statistics = true;
  options.gc_interval = 10;
  options.gc_horizon = 50;
  Engine engine(std::move(plan).value(), options);
  // 2000 ticks of non-matching events: partials are created and must be
  // discarded by WITHIN expiry + GC, keeping per-event work flat.
  EventBatch first_half, second_half;
  for (Timestamp t = 0; t < 1000; ++t) first_half.push_back(Reading(1, 1, t));
  for (Timestamp t = 1000; t < 2000; ++t) {
    second_half.push_back(Reading(1, 1, t));
  }
  RunStats first = engine.Run(first_half).value();
  RunStats second = engine.Run(second_half).value();
  // Flat cost: the second half does not cost more than ~1.5x the first.
  EXPECT_LT(second.ops_executed, first.ops_executed * 3 / 2);
}

TEST_F(RuntimeTest, LatencyModelDeterministicArrivalSchedule) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  EngineOptions options;
  options.accel = 1.0;  // 1 simulated second per wall second: no backlog
  Engine engine(std::move(plan).value(), options);
  EventBatch input;
  for (Timestamp t = 0; t < 20; ++t) input.push_back(Reading(1, 3, t));
  RunStats stats = engine.Run(input).value();
  // Processing 20 trivial ticks takes far less than 1 wall second each, so
  // latency is (almost) pure processing time: well below a second.
  EXPECT_LT(stats.max_latency, 0.5);
}

TEST_F(RuntimeTest, ManyPartitionsIsolateState) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  // 64 partitions; only even segments enter `high`.
  EventBatch input;
  for (Timestamp t = 0; t < 10; ++t) {
    for (int64_t seg = 0; seg < 64; ++seg) {
      input.push_back(Reading(seg, seg % 2 == 0 ? 20 : 3, t));
    }
  }
  EventBatch outputs;
  engine.Run(input, &outputs).value();
  EXPECT_EQ(engine.num_partitions(), 64);
  // Alerts only from even segments (value 20 > 15 while high).
  for (const EventPtr& alert : outputs) {
    EXPECT_EQ(alert->value(0).AsInt() % 2, 0);
  }
  EXPECT_EQ(outputs.size(), 32u * 10u);
}

TEST_F(RuntimeTest, MaxContextsSupported) {
  // Build a model with 63 non-default contexts (the 64-bit vector limit).
  std::string text = "CONTEXTS idle";
  for (int c = 0; c < 63; ++c) text += ", c" + std::to_string(c);
  text += " DEFAULT idle;\nPARTITION BY seg;\n";
  for (int c = 0; c < 63; ++c) {
    std::string name = std::to_string(c);
    text += "QUERY start" + name + " INITIATE CONTEXT c" + name +
            " PATTERN Reading r WHERE r.value = " + std::to_string(c + 100) +
            " CONTEXT idle;\n";
  }
  CaesarModel model = Parse(text);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch input = {Reading(1, 100, 0), Reading(1, 150, 1)};
  RunStats stats = engine.Run(input).value();
  EXPECT_EQ(stats.transactions, 2);
}

TEST_F(RuntimeTest, EmptyAndSingleEventRuns) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  RunStats empty = engine.Run({}).value();
  EXPECT_EQ(empty.input_events, 0);
  EXPECT_EQ(empty.transactions, 0);
  RunStats one = engine.Run({Reading(1, 50, 5)}).value();
  EXPECT_EQ(one.input_events, 1);
  EXPECT_EQ(one.derived_events, 1);  // switches high and alerts
}

TEST_F(RuntimeTest, ObserverNotCalledWithoutEvents) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  Engine engine(std::move(plan).value(), EngineOptions());
  int calls = 0;
  engine.SetTickObserver(
      [&](Timestamp, const EventBatch&) { ++calls; });
  engine.Run({}).value();
  EXPECT_EQ(calls, 0);
  engine.Run({Reading(1, 1, 0), Reading(1, 2, 0), Reading(1, 3, 1)}).value();
  EXPECT_EQ(calls, 2);  // one per distinct time stamp
}

}  // namespace
}  // namespace caesar
