// Parallel determinism suite: for every workload generator (synthetic,
// Linear Road, PAMAP) the sharded executor must produce a byte-identical
// derived-event sequence — same events, same order — and equal semantic
// RunStats counters for num_threads in {2, 4, 8} vs the serial engine,
// with and without statistics gathering, under both scheduler modes
// (pinned and work-stealing; the skewed-workload test drives the stealing
// path explicitly, and CI additionally re-runs the whole suite with
// CAESAR_SCHEDULER=stealing under TSan). Runs under TSan in CI.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "runtime/observability.h"
#include "runtime/statistics.h"
#include "workloads/linear_road.h"
#include "workloads/pamap.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

struct RunResult {
  std::string derived;     // ToString of every output event, in order
  RunStats stats;
  std::string statistics;  // operator rows (executor line stripped)
  std::string json;        // deterministic JSON export (byte-comparable)
};

// Drops report lines that legitimately differ between serial and parallel
// runs (the executor snapshot and the wall-clock timing line of the tick
// telemetry).
std::string StripExecutorLines(const std::string& report) {
  std::istringstream in(report);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("executor:", 0) == 0) continue;
    if (line.find("scheduler_s ") != std::string::npos) continue;
    out << line << "\n";
  }
  return out.str();
}

RunResult RunWith(const ExecutablePlan& plan, const EventBatch& stream,
                  const TypeRegistry& registry, int num_threads,
                  bool gather_statistics,
                  PatternEngine engine_kind = PatternEngine::kInterpreted,
                  // Follow the process default (CAESAR_SCHEDULER) so the CI
                  // stealing leg drives the whole suite through the
                  // stealing scheduler; tests pin a mode explicitly where
                  // the mode is the point.
                  SchedulerMode scheduler = DefaultSchedulerMode()) {
  EngineOptions options;
  options.num_threads = num_threads;
  options.gather_statistics = gather_statistics;
  options.pattern_engine = engine_kind;
  options.scheduler = scheduler;
  if (gather_statistics) options.metrics = MetricsGranularity::kOperator;
  Engine engine(plan.Clone(), options);
  EventBatch outputs;
  RunResult result;
  result.stats = engine.Run(stream, &outputs).value();
  std::ostringstream os;
  for (const EventPtr& event : outputs) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  result.derived = os.str();
  if (gather_statistics) {
    StatisticsReport report = engine.CollectStatistics();
    result.statistics = StripExecutorLines(report.ToString());
    ExportOptions export_options;
    export_options.deterministic = true;
    result.json = StatisticsToJson(report, export_options);
  }
  return result;
}

// The semantic counters that must not depend on the thread count. Timing
// fields (latency, cpu_seconds, barrier wait) are excluded by design.
void ExpectEqualCounters(const RunStats& serial, const RunStats& parallel,
                         int num_threads) {
  EXPECT_EQ(serial.input_events, parallel.input_events) << num_threads;
  EXPECT_EQ(serial.derived_events, parallel.derived_events) << num_threads;
  EXPECT_EQ(serial.derived_by_type, parallel.derived_by_type) << num_threads;
  EXPECT_EQ(serial.ops_executed, parallel.ops_executed) << num_threads;
  EXPECT_EQ(serial.suspended_chains, parallel.suspended_chains)
      << num_threads;
  EXPECT_EQ(serial.executed_chains, parallel.executed_chains) << num_threads;
  EXPECT_EQ(serial.transactions, parallel.transactions) << num_threads;
  EXPECT_EQ(serial.partitions, parallel.partitions) << num_threads;
}

void ExpectParallelMatchesSerial(
    const ExecutablePlan& plan, const EventBatch& stream,
    const TypeRegistry& registry,
    PatternEngine engine_kind = PatternEngine::kInterpreted) {
  ASSERT_FALSE(stream.empty());
  for (bool gather : {false, true}) {
    RunResult serial = RunWith(plan, stream, registry, 1, gather, engine_kind);
    // A meaningful check needs actual derived traffic.
    EXPECT_GT(serial.stats.derived_events, 0);
    EXPECT_GT(serial.stats.partitions, 1);
    for (int num_threads : {2, 4, 8}) {
      SCOPED_TRACE("threads=" + std::to_string(num_threads) +
                   " gather=" + std::to_string(gather) + " engine=" +
                   PatternEngineName(engine_kind));
      RunResult parallel =
          RunWith(plan, stream, registry, num_threads, gather, engine_kind);
      EXPECT_EQ(serial.derived, parallel.derived);
      ExpectEqualCounters(serial.stats, parallel.stats, num_threads);
      EXPECT_EQ(serial.statistics, parallel.statistics);
      // The deterministic JSON export must be byte-identical, full stop —
      // histogram buckets, counter totals and timeline included.
      EXPECT_EQ(serial.json, parallel.json);
      // The pool really ran: every tick was dispatched through it.
      EXPECT_GT(parallel.stats.parallel_ticks, 0);
      EXPECT_EQ(parallel.stats.parallel_tasks, parallel.stats.transactions);
    }
  }
}

// The cross-engine contract on top of the parallel one: the compiled
// pattern engine must derive the exact byte sequence of the interpreted
// engine, serial and parallel alike (same events, same order).
void ExpectCompiledMatchesInterpreted(const ExecutablePlan& plan,
                                      const EventBatch& stream,
                                      const TypeRegistry& registry) {
  RunResult interpreted = RunWith(plan, stream, registry, 1, false);
  EXPECT_GT(interpreted.stats.derived_events, 0);
  for (int num_threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("compiled threads=" + std::to_string(num_threads));
    RunResult compiled = RunWith(plan, stream, registry, num_threads, false,
                                 PatternEngine::kCompiled);
    EXPECT_EQ(interpreted.derived, compiled.derived);
    EXPECT_EQ(interpreted.stats.derived_events, compiled.stats.derived_events);
    EXPECT_EQ(interpreted.stats.derived_by_type, compiled.stats.derived_by_type);
  }
  // kAuto compiles what it can and must also stay byte-identical.
  RunResult automatic =
      RunWith(plan, stream, registry, 4, false, PatternEngine::kAuto);
  EXPECT_EQ(interpreted.derived, automatic.derived);
}

ExecutablePlan Optimize(const CaesarModel& model) {
  auto plan = OptimizeModel(model, OptimizerOptions());
  CAESAR_CHECK_OK(plan.status());
  return std::move(plan).value();
}

TEST(ParallelDeterminismTest, SyntheticWorkload) {
  SyntheticConfig config;
  config.duration = 300;
  config.num_partitions = 8;
  config.events_per_tick = 2;
  config.windows = LayOutWindows(/*count=*/3, /*length=*/60, /*overlap=*/20,
                                 /*first_start=*/30);
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.queries_per_window = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExpectParallelMatchesSerial(Optimize(model.value()), stream, registry);
}

TEST(ParallelDeterminismTest, LinearRoadWorkload) {
  LinearRoadConfig config;
  config.num_xways = 2;
  config.num_segments = 6;
  config.duration = 300;
  config.seed = 7;
  LinearRoadModelConfig model_config;
  model_config.processing_replicas = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  auto model = MakeLinearRoadModel(model_config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExpectParallelMatchesSerial(Optimize(model.value()), stream, registry);
}

TEST(ParallelDeterminismTest, LinearRoadContextIndependentBaseline) {
  // The baseline plan's private guard chains and per-query context vectors
  // must also be safe under the sharded pool.
  LinearRoadConfig config;
  config.num_xways = 1;
  config.num_segments = 6;
  config.duration = 240;
  config.seed = 11;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  auto plan = BaselinePlan(model.value());
  CAESAR_CHECK_OK(plan.status());
  ExpectParallelMatchesSerial(plan.value(), stream, registry);
}

TEST(ParallelDeterminismTest, PamapWorkload) {
  PamapConfig config;
  config.num_subjects = 6;
  config.duration = 1200;
  config.exercise_phases_per_subject = 2.0;
  config.exercise_duration = 300;
  config.seed = 3;
  TypeRegistry registry;
  EventBatch stream = GeneratePamapStream(config, &registry);
  auto model = MakePamapModel(PamapModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  ExpectParallelMatchesSerial(Optimize(model.value()), stream, registry);
}

TEST(ParallelDeterminismTest, SyntheticWorkloadCompiledEngine) {
  SyntheticConfig config;
  config.duration = 300;
  config.num_partitions = 8;
  config.events_per_tick = 2;
  config.windows = LayOutWindows(/*count=*/3, /*length=*/60, /*overlap=*/20,
                                 /*first_start=*/30);
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.queries_per_window = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());
  ExpectParallelMatchesSerial(plan, stream, registry,
                              PatternEngine::kCompiled);
  ExpectCompiledMatchesInterpreted(plan, stream, registry);
}

TEST(ParallelDeterminismTest, LinearRoadWorkloadCompiledEngine) {
  LinearRoadConfig config;
  config.num_xways = 2;
  config.num_segments = 6;
  config.duration = 300;
  config.seed = 7;
  LinearRoadModelConfig model_config;
  model_config.processing_replicas = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  auto model = MakeLinearRoadModel(model_config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());
  ExpectParallelMatchesSerial(plan, stream, registry,
                              PatternEngine::kCompiled);
  ExpectCompiledMatchesInterpreted(plan, stream, registry);
}

TEST(ParallelDeterminismTest, PamapWorkloadCompiledEngine) {
  PamapConfig config;
  config.num_subjects = 6;
  config.duration = 1200;
  config.exercise_phases_per_subject = 2.0;
  config.exercise_duration = 300;
  config.seed = 3;
  TypeRegistry registry;
  EventBatch stream = GeneratePamapStream(config, &registry);
  auto model = MakePamapModel(PamapModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());
  ExpectParallelMatchesSerial(plan, stream, registry,
                              PatternEngine::kCompiled);
  ExpectCompiledMatchesInterpreted(plan, stream, registry);
}

TEST(ParallelDeterminismTest, SkewedWorkloadBothSchedulers) {
  // The hot-partition stress: most of every tick's events (and far more
  // SEQ pairing work) land on partition 0, so static pinning is maximally
  // imbalanced and work stealing actually engages. Neither scheduler may
  // change a single byte: derived sequence, semantic counters, operator
  // statistics and the deterministic JSON export must all equal the serial
  // run at every thread count, pinned and stealing alike.
  SyntheticConfig config;
  config.duration = 80;
  config.num_partitions = 8;
  config.events_per_tick = 4;
  config.hot_partition_share = 0.9;  // capped at (total-7)/total ≈ 0.78
  config.query_within = 4;
  config.windows = {{1, 81}};  // active for the whole run
  config.assignment = SyntheticConfig::QueryAssignment::kAllWindows;
  config.queries_per_window = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());

  for (bool gather : {false, true}) {
    RunResult serial = RunWith(plan, stream, registry, 1, gather);
    EXPECT_GT(serial.stats.derived_events, 0);
    for (int num_threads : {2, 4, 8}) {
      for (SchedulerMode mode :
           {SchedulerMode::kPinned, SchedulerMode::kStealing}) {
        SCOPED_TRACE("threads=" + std::to_string(num_threads) + " gather=" +
                     std::to_string(gather) + " scheduler=" +
                     SchedulerModeName(mode));
        RunResult parallel =
            RunWith(plan, stream, registry, num_threads, gather,
                    PatternEngine::kInterpreted, mode);
        EXPECT_EQ(serial.derived, parallel.derived);
        ExpectEqualCounters(serial.stats, parallel.stats, num_threads);
        EXPECT_EQ(serial.statistics, parallel.statistics);
        EXPECT_EQ(serial.json, parallel.json);
        EXPECT_GT(parallel.stats.parallel_ticks, 0);
        EXPECT_EQ(parallel.stats.parallel_tasks,
                  parallel.stats.transactions);
        if (mode == SchedulerMode::kPinned) {
          // The skew materialized: pinned executed load is the assigned
          // load, so the hot partition shows up as imbalance.
          EXPECT_GT(parallel.stats.shard_imbalance, 0);
          EXPECT_EQ(parallel.stats.tasks_stolen, 0);
        }
      }
    }
  }
}

TEST(ParallelDeterminismTest, SplitRunsMatchSingleRun) {
  // Engine state (contexts, partial matches, the worker pool) carries over
  // between Run calls; processing a stream in two halves through one
  // parallel engine must equal one uninterrupted run.
  LinearRoadConfig config;
  config.num_xways = 1;
  config.num_segments = 8;
  config.duration = 240;
  config.seed = 19;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  auto model = MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());

  auto render = [&](const EventBatch& events) {
    std::ostringstream os;
    for (const EventPtr& event : events) {
      os << event->time() << " " << event->ToString(registry) << "\n";
    }
    return os.str();
  };

  EngineOptions options;
  options.num_threads = 4;
  Engine whole(plan.Clone(), options);
  EventBatch whole_out;
  whole.Run(stream, &whole_out).value();

  // Split at a tick boundary.
  size_t split = stream.size() / 2;
  Timestamp boundary = stream[split]->time();
  while (split > 0 && stream[split - 1]->time() == boundary) --split;
  Engine halves(plan.Clone(), options);
  EventBatch halves_out;
  halves.Run(EventBatch(stream.begin(), stream.begin() + split), &halves_out).value();
  halves.Run(EventBatch(stream.begin() + split, stream.end()), &halves_out).value();

  EXPECT_GT(whole_out.size(), 0u);
  EXPECT_EQ(render(whole_out), render(halves_out));
}

TEST(ParallelDeterminismTest, DurabilityKeepsExportsByteIdentical) {
  // Durability runs on the scheduler thread, so the WAL/checkpoint record
  // streams — and with them the durability counters in the deterministic
  // exports — must not depend on the worker count: byte-identical derived
  // output AND byte-identical deterministic JSON (durability block
  // included) for 1/2/4/8 threads, each engine logging to its own
  // directory.
  SyntheticConfig config;
  config.duration = 300;
  config.num_partitions = 8;
  config.events_per_tick = 2;
  config.windows = LayOutWindows(/*count=*/3, /*length=*/60, /*overlap=*/20,
                                 /*first_start=*/30);
  config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
  config.queries_per_window = 2;
  TypeRegistry registry;
  EventBatch stream = GenerateSyntheticStream(config, &registry);
  auto model = MakeSyntheticModel(config, &registry);
  CAESAR_CHECK_OK(model.status());
  ExecutablePlan plan = Optimize(model.value());

  auto run_with = [&](int num_threads, std::string* json) {
    const std::filesystem::path dir =
        std::filesystem::temp_directory_path() /
        ("caesar_determinism_durability_" + std::to_string(::getpid()) +
         "_t" + std::to_string(num_threads));
    std::filesystem::remove_all(dir);
    EngineOptions options;
    options.num_threads = num_threads;
    options.gather_statistics = true;
    options.durability.mode = DurabilityMode::kWalCheckpoint;
    options.durability.dir = dir.string();
    options.durability.checkpoint_interval_ticks = 64;
    Engine engine(plan.Clone(), options);
    EventBatch outputs;
    RunStats stats = engine.Run(stream, &outputs).value();
    EXPECT_GT(stats.wal_records, 0) << num_threads;
    EXPECT_GT(stats.checkpoints_written, 0) << num_threads;
    ExportOptions export_options;
    export_options.deterministic = true;
    *json = StatisticsToJson(engine.CollectStatistics(), export_options);
    std::ostringstream os;
    for (const EventPtr& event : outputs) {
      os << event->time() << " " << event->ToString(registry) << "\n";
    }
    std::filesystem::remove_all(dir);
    return os.str();
  };

  std::string serial_json;
  const std::string serial = run_with(1, &serial_json);
  EXPECT_NE(serial_json.find("\"durability\""), std::string::npos);
  for (int num_threads : {2, 4, 8}) {
    std::string json;
    const std::string derived = run_with(num_threads, &json);
    EXPECT_EQ(serial, derived) << num_threads << " threads";
    EXPECT_EQ(serial_json, json) << num_threads << " threads";
  }
}

}  // namespace
}  // namespace caesar
