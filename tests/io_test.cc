// Tests for the IO module: CSV event stream round-tripping, the k-way
// time-ordered merge, and DOT export of models and plans.

#include <gtest/gtest.h>

#include <cstdio>

#include "io/csv.h"
#include "io/dot.h"
#include "plan/translator.h"
#include "query/parser.h"

namespace caesar {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  CsvTest() {
    type_ = registry_.RegisterOrGet("Order", {{"id", ValueType::kInt},
                                              {"price", ValueType::kDouble},
                                              {"note", ValueType::kString}});
  }

  EventPtr Order(int64_t id, double price, const char* note, Timestamp t) {
    return MakeEvent(type_, t, {Value(id), Value(price), Value(note)});
  }

  TypeRegistry registry_;
  TypeId type_;
};

TEST_F(CsvTest, RoundTripPreservesEverything) {
  EventBatch events = {
      Order(1, 9.5, "plain", 0),
      Order(2, 0.125, "with, comma", 1),
      Order(3, -2.75, "with \"quotes\"", 2),
      Order(4, 1e-9, "multi\nline", 5),
  };
  auto csv = WriteEventsCsv(events, registry_);
  ASSERT_TRUE(csv.ok()) << csv.status();

  TypeRegistry fresh;
  auto parsed = ReadEventsCsv(csv.value(), &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed.value().size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(parsed.value()[i]->time(), events[i]->time());
    EXPECT_EQ(parsed.value()[i]->values(), events[i]->values()) << i;
  }
  // The type was registered in the fresh registry with its schema.
  TypeId id = fresh.Lookup("Order");
  ASSERT_NE(id, kInvalidTypeId);
  EXPECT_EQ(fresh.type(id).schema.IndexOf("price"), 1);
  EXPECT_EQ(fresh.type(id).schema.attribute(2).type, ValueType::kString);
}

TEST_F(CsvTest, RejectsMixedTypesAndEmptyBatches) {
  TypeId other = registry_.RegisterOrGet("Other", {{"x", ValueType::kInt}});
  EventBatch mixed = {Order(1, 1.0, "a", 0),
                      MakeEvent(other, 1, {Value(int64_t{1})})};
  EXPECT_FALSE(WriteEventsCsv(mixed, registry_).ok());
  EXPECT_FALSE(WriteEventsCsv({}, registry_).ok());
}

TEST_F(CsvTest, ParseErrors) {
  TypeRegistry fresh;
  EXPECT_FALSE(ReadEventsCsv("", &fresh).ok());
  EXPECT_FALSE(ReadEventsCsv("# type: X\njunk\n", &fresh).ok());
  EXPECT_FALSE(
      ReadEventsCsv("# type: X\n# attrs: a:int\ntime,a\n1,2,3\n", &fresh)
          .ok());  // wrong cell count
  EXPECT_FALSE(
      ReadEventsCsv("# type: X\n# attrs: a:blob\ntime,a\n", &fresh).ok());
}

// Every reader error names its stream and 1-based physical line.
TEST_F(CsvTest, ErrorsCarryStreamNameAndLineNumber) {
  TypeRegistry fresh;
  // Unknown attribute type: reported at header line 2.
  auto bad_type =
      ReadEventsCsv("# type: X\n# attrs: a:blob\ntime,a\n", &fresh, "feed");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("feed:2: "), std::string::npos)
      << bad_type.status();
  EXPECT_NE(bad_type.status().message().find("unknown attribute type: blob"),
            std::string::npos)
      << bad_type.status();

  // Arity mismatch: data rows start at line 4.
  auto arity = ReadEventsCsv(
      "# type: X\n# attrs: a:int\ntime,a\n1,2\n3,4,5\n", &fresh, "feed");
  ASSERT_FALSE(arity.ok());
  EXPECT_NE(arity.status().message().find("feed:5: "), std::string::npos)
      << arity.status();
  EXPECT_NE(arity.status().message().find("expected 2 cells, got 3"),
            std::string::npos)
      << arity.status();

  // Invalid cells name the line, the cell and (for attributes) the attribute.
  auto bad_time =
      ReadEventsCsv("# type: X\n# attrs: a:int\ntime,a\nnope,2\n", &fresh);
  ASSERT_FALSE(bad_time.ok());
  EXPECT_NE(bad_time.status().message().find("<csv>:4: "), std::string::npos)
      << bad_time.status();
  EXPECT_NE(bad_time.status().message().find("invalid time stamp 'nope'"),
            std::string::npos)
      << bad_time.status();

  auto bad_int =
      ReadEventsCsv("# type: X\n# attrs: a:int\ntime,a\n1,2\n2,2x\n", &fresh);
  ASSERT_FALSE(bad_int.ok());
  EXPECT_NE(bad_int.status().message().find("<csv>:5: "), std::string::npos)
      << bad_int.status();
  EXPECT_NE(
      bad_int.status().message().find("invalid int value '2x' for attribute "
                                      "'a'"),
      std::string::npos)
      << bad_int.status();
}

TEST_F(CsvTest, UnterminatedQuoteAndTruncatedInput) {
  TypeRegistry fresh;
  // A quoted cell that never closes: the reader consumes the rest of the
  // input looking for the closing quote, then reports the row's first line.
  auto unterminated = ReadEventsCsv(
      "# type: X\n# attrs: s:string\ntime,s\n1,\"never closed\n", &fresh);
  ASSERT_FALSE(unterminated.ok());
  EXPECT_NE(unterminated.status().message().find("unterminated quote"),
            std::string::npos)
      << unterminated.status();
  EXPECT_NE(unterminated.status().message().find("row starts at line 4"),
            std::string::npos)
      << unterminated.status();
  EXPECT_NE(unterminated.status().message().find("truncated mid-quote"),
            std::string::npos)
      << unterminated.status();

  // Same but the quoted cell spans lines before the input ends: the row
  // start is still line 4 even though later physical lines were consumed.
  auto truncated = ReadEventsCsv(
      "# type: X\n# attrs: s:string\ntime,s\n1,\"spans\nseveral\nlines\n",
      &fresh);
  ASSERT_FALSE(truncated.ok());
  EXPECT_NE(truncated.status().message().find("row starts at line 4"),
            std::string::npos)
      << truncated.status();
  EXPECT_NE(truncated.status().message().find("truncated mid-quote"),
            std::string::npos)
      << truncated.status();
}

TEST_F(CsvTest, TolerantParseKeepsPrefixBeforeError) {
  TypeRegistry fresh;
  CsvParseResult result = ReadEventsCsvTolerant(
      "# type: X\n# attrs: a:int\ntime,a\n1,10\n2,20\n3,bad\n4,40\n", &fresh,
      "orders.csv");
  EXPECT_FALSE(result.status.ok());
  // Both rows before the corrupt one survive; the corrupt tail is dropped.
  ASSERT_EQ(result.events.size(), 2u);
  EXPECT_EQ(result.rows_parsed, 2);
  EXPECT_EQ(result.error_line, 6);
  EXPECT_EQ(result.events[0]->value(0).AsInt(), 10);
  EXPECT_EQ(result.events[1]->value(0).AsInt(), 20);
  EXPECT_NE(result.status.message().find("orders.csv:6: "), std::string::npos)
      << result.status;

  // All-good input: Ok status, zero error_line.
  CsvParseResult ok = ReadEventsCsvTolerant(
      "# type: X\n# attrs: a:int\ntime,a\n1,10\n", &fresh);
  EXPECT_TRUE(ok.status.ok());
  EXPECT_EQ(ok.rows_parsed, 1);
  EXPECT_EQ(ok.error_line, 0);
}

TEST_F(CsvTest, FileErrorsNameThePath) {
  std::string path = ::testing::TempDir() + "/caesar_csv_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("# type: X\n# attrs: a:int\ntime,a\n1,oops\n", f);
    std::fclose(f);
  }
  TypeRegistry fresh;
  auto parsed = ReadEventsCsvFile(path, &fresh);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find(path + ":4: "), std::string::npos)
      << parsed.status();
  std::remove(path.c_str());
}

TEST_F(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/caesar_csv_test.csv";
  EventBatch events = {Order(7, 3.5, "file", 42)};
  ASSERT_TRUE(WriteEventsCsvFile(path, events, registry_).ok());
  TypeRegistry fresh;
  auto parsed = ReadEventsCsvFile(path, &fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0]->value(0).AsInt(), 7);
  std::remove(path.c_str());
  EXPECT_FALSE(ReadEventsCsvFile(path, &fresh).ok());  // gone
}

TEST_F(CsvTest, MergeByTimeIsStableAndOrdered) {
  EventBatch a = {Order(1, 1, "a", 0), Order(2, 1, "a", 5),
                  Order(3, 1, "a", 9)};
  EventBatch b = {Order(4, 1, "b", 1), Order(5, 1, "b", 5)};
  EventBatch c = {Order(6, 1, "c", 5)};
  EventBatch merged = MergeByTime({a, b, c});
  ASSERT_EQ(merged.size(), 6u);
  EXPECT_TRUE(IsTimeOrdered(merged));
  // Stability at time 5: batch order a, b, c.
  EXPECT_EQ(merged[2]->value(0).AsInt(), 2);
  EXPECT_EQ(merged[3]->value(0).AsInt(), 5);
  EXPECT_EQ(merged[4]->value(0).AsInt(), 6);
}

TEST(DotTest, ModelExportContainsContextsAndTransitions) {
  TypeRegistry registry;
  registry.RegisterOrGet("E", {{"x", ValueType::kInt}});
  auto model = ParseModel(R"(
CONTEXTS clear, busy DEFAULT clear;
QUERY go SWITCH CONTEXT busy PATTERN E e WHERE e.x > 1 CONTEXT clear;
QUERY stop TERMINATE CONTEXT busy PATTERN E e CONTEXT busy;
QUERY work DERIVE W(e.x) PATTERN E e CONTEXT busy;
)",
                          &registry);
  ASSERT_TRUE(model.ok()) << model.status();
  std::string dot = ModelToDot(model.value());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"clear\""), std::string::npos);
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos);  // default ctx
  EXPECT_NE(dot.find("\"clear\" -> \"busy\""), std::string::npos);
  EXPECT_NE(dot.find("work"), std::string::npos);  // workload listed
}

TEST(DotTest, PlanExportContainsChains) {
  TypeRegistry registry;
  registry.RegisterOrGet("E", {{"x", ValueType::kInt}});
  auto model = ParseModel(R"(
CONTEXTS only;
QUERY work DERIVE W(e.x) PATTERN E e WHERE e.x > 1;
)",
                          &registry);
  ASSERT_TRUE(model.ok());
  auto plan = TranslateModel(model.value(), PlanOptions());
  ASSERT_TRUE(plan.ok());
  std::string dot = PlanToDot(plan.value());
  EXPECT_NE(dot.find("subgraph cluster_0"), std::string::npos);
  EXPECT_NE(dot.find("Pattern"), std::string::npos);
  EXPECT_NE(dot.find("ContextWindow"), std::string::npos);
}

}  // namespace
}  // namespace caesar
