// Fault injection for ingest testing: seeded, deterministic perturbations of
// a well-formed event stream (bounded delay, shuffle, duplication, drops,
// field corruption). Every method is a pure function of (input, seed state),
// so a test that fixes the constructor seed reproduces bit-identically.
//
// The key perturbation is DelayTicks: it delays whole ticks by a bounded
// random amount, modeling network-style reordering where events of one
// source stay in order but interleave late. Its guarantee — no event
// observes lateness greater than max_delay, and events of one tick stay
// contiguous in original order — is exactly what IngestPolicy::kReorder
// with reorder_slack >= max_delay needs to restore the original sequence,
// making byte-identical-output assertions possible.

#ifndef CAESAR_TESTS_FAULT_INJECTION_H_
#define CAESAR_TESTS_FAULT_INJECTION_H_

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "durability/durability.h"
#include "event/event.h"

namespace caesar {
namespace testing {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  // Bounded per-tick delay: every distinct time stamp draws one delay in
  // [0, max_delay] and events are stably re-sorted by (time + delay).
  // Events of one tick stay contiguous and in original order; an event can
  // only be overtaken by an earlier-delayed later tick, so its lateness
  // (high-water time at arrival minus its own time) never exceeds
  // max_delay. A reorder buffer with slack >= max_delay therefore restores
  // the exact original sequence.
  EventBatch DelayTicks(const EventBatch& stream, Timestamp max_delay) {
    std::map<Timestamp, Timestamp> delay;
    for (const EventPtr& event : stream) {
      if (delay.find(event->time()) == delay.end()) {
        delay[event->time()] = rng_.Uniform(0, max_delay);
      }
    }
    std::vector<std::pair<Timestamp, EventPtr>> keyed;
    keyed.reserve(stream.size());
    for (const EventPtr& event : stream) {
      keyed.emplace_back(event->time() + delay[event->time()], event);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    EventBatch out;
    out.reserve(keyed.size());
    for (auto& [key, event] : keyed) out.push_back(std::move(event));
    return out;
  }

  // Unbounded local disorder: Fisher-Yates shuffle within consecutive
  // windows of `window` events. Unlike DelayTicks this can split ticks and
  // swap equal-time events, so it is the right input for drop-policy tests
  // (where only a deterministic running-max survival rule must hold), not
  // for byte-identity tests.
  EventBatch ShuffleEvents(const EventBatch& stream, size_t window) {
    EventBatch out = stream;
    for (size_t begin = 0; begin < out.size(); begin += window) {
      size_t end = std::min(begin + window, out.size());
      for (size_t i = end - 1; i > begin; --i) {
        size_t j = begin + static_cast<size_t>(
                               rng_.Uniform(0, static_cast<int64_t>(i - begin)));
        std::swap(out[i], out[j]);
      }
    }
    return out;
  }

  // Duplicates each event with probability p; the copy follows the
  // original immediately (same shared immutable instance).
  EventBatch Duplicate(const EventBatch& stream, double p) {
    EventBatch out;
    out.reserve(stream.size() * 2);
    for (const EventPtr& event : stream) {
      out.push_back(event);
      if (rng_.Bernoulli(p)) out.push_back(event);
    }
    return out;
  }

  // Drops each event with probability p.
  EventBatch DropEvents(const EventBatch& stream, double p) {
    EventBatch out;
    out.reserve(stream.size());
    for (const EventPtr& event : stream) {
      if (!rng_.Bernoulli(p)) out.push_back(event);
    }
    return out;
  }

  // Replaces the type id with `bad_type` with probability p (the engine
  // quarantines these as kUnknownType when bad_type is unregistered).
  EventBatch CorruptTypes(const EventBatch& stream, double p,
                          TypeId bad_type) {
    return Map(stream, p, [&](const Event& event) {
      return MakeComplexEvent(bad_type, event.start_time(), event.end_time(),
                              event.values());
    });
  }

  // Sends the occurrence time before the epoch with probability p
  // (time -> -1 - time; quarantined as kNegativeTime).
  EventBatch CorruptTimes(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) {
      return MakeEvent(event.type_id(), -1 - event.time(), event.values());
    });
  }

  // Inverts the occurrence interval with probability p while keeping the
  // ordering time() unchanged (start = time + 1 > end = time; quarantined
  // as kInvertedInterval).
  EventBatch CorruptIntervals(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) {
      return MakeComplexEvent(event.type_id(), event.time() + 1,
                              event.time(), event.values());
    });
  }

  // Nulls one uniformly chosen attribute value with probability p (events
  // without attributes pass through). Null values are legal — expressions
  // over them evaluate to null — so this probes robustness, not
  // quarantine.
  EventBatch CorruptFields(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) -> EventPtr {
      if (event.num_values() == 0) {
        return MakeComplexEvent(event.type_id(), event.start_time(),
                                event.end_time(), event.values());
      }
      std::vector<Value> values = event.values();
      values[rng_.Uniform(0, event.num_values() - 1)] = Value();
      return MakeComplexEvent(event.type_id(), event.start_time(),
                              event.end_time(), std::move(values));
    });
  }

 private:
  // Applies `mutate` to each event with probability p.
  template <typename Fn>
  EventBatch Map(const EventBatch& stream, double p, Fn mutate) {
    EventBatch out;
    out.reserve(stream.size());
    for (const EventPtr& event : stream) {
      out.push_back(rng_.Bernoulli(p) ? mutate(*event) : event);
    }
    return out;
  }

  Rng rng_;
};

// Crash-point injector for the durability write path: arms a CrashHook that
// fires at the nth occurrence of a named protocol point ("wal_append",
// "wal_commit", "checkpoint_write", "checkpoint_publish"). The durability
// layer then leaves deliberately partial on-disk state and fails the Run
// with DataLoss — an in-process SIGKILL the harness can aim at any byte of
// the protocol. Count occurrences first (armed = false) to pick a target.
class CrashPointInjector {
 public:
  // Fire at the `nth` (0-based) occurrence of `point`; never when nth < 0.
  CrashPointInjector(std::string point, int64_t nth)
      : point_(std::move(point)), nth_(nth) {}

  CrashHook Hook() {
    return [this](std::string_view point) {
      if (point != point_) return false;
      return occurrences_++ == nth_;
    };
  }

  // Occurrences of the target point observed so far (including the fatal
  // one); with nth < 0 this counts a full run without crashing.
  int64_t occurrences() const { return occurrences_; }
  bool fired() const { return nth_ >= 0 && occurrences_ > nth_; }

 private:
  std::string point_;
  int64_t nth_;
  int64_t occurrences_ = 0;
};

// --- On-disk file faults (bit rot, torn writes, misbehaving storage) ------
// All return false if the file could not be read/rewritten or is too small
// for the requested fault.

// Truncates the last `bytes` bytes (a torn tail: the tail record's frame or
// payload is cut mid-write).
inline bool TruncateFileTail(const std::string& path, uint64_t bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  if (data.size() < bytes) return false;
  data.resize(data.size() - bytes);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

// XORs one byte at `offset` (offset < 0 counts from the end): checksum-
// detectable single-byte rot.
inline bool FlipByte(const std::string& path, int64_t offset) {
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!file) return false;
  file.seekg(0, std::ios::end);
  int64_t size = static_cast<int64_t>(file.tellg());
  int64_t pos = offset >= 0 ? offset : size + offset;
  if (pos < 0 || pos >= size) return false;
  file.seekg(pos);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(pos);
  file.write(&byte, 1);
  return static_cast<bool>(file);
}

// Re-appends the last [len][crc][payload] frame of a WAL segment (a storage
// layer replaying its own write queue after a reconnect). The duplicate is
// internally valid, so recovery must reject it by sequence, not checksum.
inline bool DuplicateTailRecord(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  // Segment header: u64 magic + u32 version + u64 seq.
  constexpr size_t kHeader = 8 + 4 + 8;
  size_t pos = kHeader;
  size_t last_frame_begin = 0;
  size_t last_frame_size = 0;
  while (pos + 8 <= data.size()) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<uint32_t>(
                 static_cast<unsigned char>(data[pos + static_cast<size_t>(i)]))
             << (8 * i);
    }
    size_t frame = 8 + static_cast<size_t>(len);
    if (pos + frame > data.size()) break;  // torn tail: stop at last whole one
    last_frame_begin = pos;
    last_frame_size = frame;
    pos += frame;
  }
  if (last_frame_size == 0) return false;
  data.append(data, last_frame_begin, last_frame_size);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  return static_cast<bool>(out);
}

}  // namespace testing
}  // namespace caesar

#endif  // CAESAR_TESTS_FAULT_INJECTION_H_
