// Fault injection for ingest testing: seeded, deterministic perturbations of
// a well-formed event stream (bounded delay, shuffle, duplication, drops,
// field corruption). Every method is a pure function of (input, seed state),
// so a test that fixes the constructor seed reproduces bit-identically.
//
// The key perturbation is DelayTicks: it delays whole ticks by a bounded
// random amount, modeling network-style reordering where events of one
// source stay in order but interleave late. Its guarantee — no event
// observes lateness greater than max_delay, and events of one tick stay
// contiguous in original order — is exactly what IngestPolicy::kReorder
// with reorder_slack >= max_delay needs to restore the original sequence,
// making byte-identical-output assertions possible.

#ifndef CAESAR_TESTS_FAULT_INJECTION_H_
#define CAESAR_TESTS_FAULT_INJECTION_H_

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "event/event.h"

namespace caesar {
namespace testing {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  // Bounded per-tick delay: every distinct time stamp draws one delay in
  // [0, max_delay] and events are stably re-sorted by (time + delay).
  // Events of one tick stay contiguous and in original order; an event can
  // only be overtaken by an earlier-delayed later tick, so its lateness
  // (high-water time at arrival minus its own time) never exceeds
  // max_delay. A reorder buffer with slack >= max_delay therefore restores
  // the exact original sequence.
  EventBatch DelayTicks(const EventBatch& stream, Timestamp max_delay) {
    std::map<Timestamp, Timestamp> delay;
    for (const EventPtr& event : stream) {
      if (delay.find(event->time()) == delay.end()) {
        delay[event->time()] = rng_.Uniform(0, max_delay);
      }
    }
    std::vector<std::pair<Timestamp, EventPtr>> keyed;
    keyed.reserve(stream.size());
    for (const EventPtr& event : stream) {
      keyed.emplace_back(event->time() + delay[event->time()], event);
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    EventBatch out;
    out.reserve(keyed.size());
    for (auto& [key, event] : keyed) out.push_back(std::move(event));
    return out;
  }

  // Unbounded local disorder: Fisher-Yates shuffle within consecutive
  // windows of `window` events. Unlike DelayTicks this can split ticks and
  // swap equal-time events, so it is the right input for drop-policy tests
  // (where only a deterministic running-max survival rule must hold), not
  // for byte-identity tests.
  EventBatch ShuffleEvents(const EventBatch& stream, size_t window) {
    EventBatch out = stream;
    for (size_t begin = 0; begin < out.size(); begin += window) {
      size_t end = std::min(begin + window, out.size());
      for (size_t i = end - 1; i > begin; --i) {
        size_t j = begin + static_cast<size_t>(
                               rng_.Uniform(0, static_cast<int64_t>(i - begin)));
        std::swap(out[i], out[j]);
      }
    }
    return out;
  }

  // Duplicates each event with probability p; the copy follows the
  // original immediately (same shared immutable instance).
  EventBatch Duplicate(const EventBatch& stream, double p) {
    EventBatch out;
    out.reserve(stream.size() * 2);
    for (const EventPtr& event : stream) {
      out.push_back(event);
      if (rng_.Bernoulli(p)) out.push_back(event);
    }
    return out;
  }

  // Drops each event with probability p.
  EventBatch DropEvents(const EventBatch& stream, double p) {
    EventBatch out;
    out.reserve(stream.size());
    for (const EventPtr& event : stream) {
      if (!rng_.Bernoulli(p)) out.push_back(event);
    }
    return out;
  }

  // Replaces the type id with `bad_type` with probability p (the engine
  // quarantines these as kUnknownType when bad_type is unregistered).
  EventBatch CorruptTypes(const EventBatch& stream, double p,
                          TypeId bad_type) {
    return Map(stream, p, [&](const Event& event) {
      return MakeComplexEvent(bad_type, event.start_time(), event.end_time(),
                              event.values());
    });
  }

  // Sends the occurrence time before the epoch with probability p
  // (time -> -1 - time; quarantined as kNegativeTime).
  EventBatch CorruptTimes(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) {
      return MakeEvent(event.type_id(), -1 - event.time(), event.values());
    });
  }

  // Inverts the occurrence interval with probability p while keeping the
  // ordering time() unchanged (start = time + 1 > end = time; quarantined
  // as kInvertedInterval).
  EventBatch CorruptIntervals(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) {
      return MakeComplexEvent(event.type_id(), event.time() + 1,
                              event.time(), event.values());
    });
  }

  // Nulls one uniformly chosen attribute value with probability p (events
  // without attributes pass through). Null values are legal — expressions
  // over them evaluate to null — so this probes robustness, not
  // quarantine.
  EventBatch CorruptFields(const EventBatch& stream, double p) {
    return Map(stream, p, [&](const Event& event) -> EventPtr {
      if (event.num_values() == 0) {
        return MakeComplexEvent(event.type_id(), event.start_time(),
                                event.end_time(), event.values());
      }
      std::vector<Value> values = event.values();
      values[rng_.Uniform(0, event.num_values() - 1)] = Value();
      return MakeComplexEvent(event.type_id(), event.start_time(),
                              event.end_time(), std::move(values));
    });
  }

 private:
  // Applies `mutate` to each event with probability p.
  template <typename Fn>
  EventBatch Map(const EventBatch& stream, double p, Fn mutate) {
    EventBatch out;
    out.reserve(stream.size());
    for (const EventPtr& event : stream) {
      out.push_back(rng_.Bernoulli(p) ? mutate(*event) : event);
    }
    return out;
  }

  Rng rng_;
};

}  // namespace testing
}  // namespace caesar

#endif  // CAESAR_TESTS_FAULT_INJECTION_H_
