// Tests for the Definition-2 window relationship analysis.

#include <gtest/gtest.h>

#include "optimizer/overlap_analysis.h"
#include "query/parser.h"

namespace caesar {
namespace {

class OverlapAnalysisTest : public ::testing::Test {
 protected:
  OverlapAnalysisTest() {
    registry_.RegisterOrGet("S", {{"seg", ValueType::kInt},
                                  {"x", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    EXPECT_TRUE(model.ok()) << model.status();
    return std::move(model).value();
  }

  TypeRegistry registry_;
};

constexpr char kFigure7Model[] = R"(
CONTEXTS idle, c1, c2, c3 DEFAULT idle;
QUERY s1 INITIATE CONTEXT c1 PATTERN S s WHERE s.x > 10 CONTEXT idle;
QUERY e1 TERMINATE CONTEXT c1 PATTERN S s WHERE s.x > 30 CONTEXT c1;
QUERY s2 INITIATE CONTEXT c2 PATTERN S s WHERE s.x > 20 CONTEXT idle;
QUERY e2 TERMINATE CONTEXT c2 PATTERN S s WHERE s.x > 40 CONTEXT c2;
QUERY s3 INITIATE CONTEXT c3 PATTERN S s WHERE s.x > 22 CONTEXT idle;
QUERY e3 TERMINATE CONTEXT c3 PATTERN S s WHERE s.x > 28 CONTEXT c3;
QUERY q DERIVE A(s.x AS x) PATTERN S s CONTEXT c1;
)";

TEST_F(OverlapAnalysisTest, ExtractsAnalyzableBounds) {
  CaesarModel model = Parse(kFigure7Model);
  std::vector<WindowBounds> bounds = ExtractWindowBounds(model);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_EQ(bounds[0].context, "c1");
  EXPECT_DOUBLE_EQ(bounds[0].start_key, 10.0);
  EXPECT_DOUBLE_EQ(bounds[0].end_key, 30.0);
  EXPECT_EQ(bounds[0].bound_attr, "s.x");
  EXPECT_EQ(bounds[0].initiator_query, 0);
  EXPECT_EQ(bounds[0].terminator_query, 1);
}

TEST_F(OverlapAnalysisTest, SkipsNonAnalyzableContexts) {
  CaesarModel model = Parse(R"(
CONTEXTS idle, plain, complex DEFAULT idle;
QUERY s1 INITIATE CONTEXT plain PATTERN S s WHERE s.x > 10 CONTEXT idle;
QUERY e1 TERMINATE CONTEXT plain PATTERN S s WHERE s.x > 20 CONTEXT plain;
QUERY s2 INITIATE CONTEXT complex PATTERN S s
WHERE s.x > 10 AND s.seg = 3 CONTEXT idle;
QUERY e2 TERMINATE CONTEXT complex PATTERN S s WHERE s.x > 20 CONTEXT complex;
)");
  std::vector<WindowBounds> bounds = ExtractWindowBounds(model);
  ASSERT_EQ(bounds.size(), 1u);  // `complex` has a two-conjunct bound
  EXPECT_EQ(bounds[0].context, "plain");
}

TEST_F(OverlapAnalysisTest, RelationsMatchDefinition2) {
  CaesarModel model = Parse(kFigure7Model);
  std::vector<WindowBounds> bounds = ExtractWindowBounds(model);
  const WindowBounds& c1 = bounds[0];  // [10, 30]
  const WindowBounds& c2 = bounds[1];  // [20, 40]
  const WindowBounds& c3 = bounds[2];  // [22, 28]
  EXPECT_EQ(Relate(c1, c2), WindowRelation::kOverlaps);
  EXPECT_EQ(Relate(c2, c1), WindowRelation::kOverlaps);
  EXPECT_EQ(Relate(c3, c1), WindowRelation::kContainedIn);
  EXPECT_EQ(Relate(c1, c3), WindowRelation::kContains);
  EXPECT_EQ(Relate(c1, c1), WindowRelation::kEqual);

  WindowBounds far = c1;
  far.start_key = 100;
  far.end_key = 120;
  EXPECT_EQ(Relate(c1, far), WindowRelation::kDisjoint);

  WindowBounds other_attr = c2;
  other_attr.bound_attr = "s.seg";
  EXPECT_EQ(Relate(c1, other_attr), WindowRelation::kUnknown);
}

TEST_F(OverlapAnalysisTest, GuaranteedOverlapViaImplication) {
  // Exact-crossing bounds (as the synthetic workload emits) are provable.
  CaesarModel model = Parse(R"(
CONTEXTS idle, inner, outer DEFAULT idle;
QUERY si INITIATE CONTEXT inner PATTERN S s WHERE s.x = 15 CONTEXT idle;
QUERY ei TERMINATE CONTEXT inner PATTERN S s WHERE s.x = 18 CONTEXT inner;
QUERY so INITIATE CONTEXT outer PATTERN S s WHERE s.x = 10 CONTEXT idle;
QUERY eo TERMINATE CONTEXT outer PATTERN S s WHERE s.x = 30 CONTEXT outer;
)");
  std::vector<WindowBounds> bounds = ExtractWindowBounds(model);
  ASSERT_EQ(bounds.size(), 2u);
  const WindowBounds& inner = bounds[0];
  const WindowBounds& outer = bounds[1];
  EXPECT_TRUE(GuaranteedOverlap(model, inner, outer));
  EXPECT_FALSE(GuaranteedOverlap(model, outer, inner));
  EXPECT_EQ(WindowRelationName(Relate(inner, outer)),
            std::string("contained-in"));
}

}  // namespace
}  // namespace caesar
