// Tests for the event distributor and the streaming engine front-end: the
// progress watermark, ordered release across interleaved sources, and the
// equivalence of streaming execution with batch execution.

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/distributor.h"

namespace caesar {
namespace {

class DistributorTest : public ::testing::Test {
 protected:
  DistributorTest() {
    reading_ = registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                                   {"value", ValueType::kInt},
                                                   {"sec", ValueType::kInt}});
  }

  EventPtr Reading(int64_t seg, int64_t value, Timestamp sec) {
    return MakeEvent(reading_, sec, {Value(seg), Value(value), Value(sec)});
  }

  TypeRegistry registry_;
  TypeId reading_;
};

TEST_F(DistributorTest, WatermarkIsMinProgressOfOpenSources) {
  EventDistributor distributor(3);
  EXPECT_EQ(distributor.Watermark(), EventDistributor::kNoProgress);
  ASSERT_TRUE(distributor.Push(0, Reading(1, 1, 10)).ok());
  ASSERT_TRUE(distributor.Push(1, Reading(1, 1, 7)).ok());
  // Source 2 has not progressed yet.
  EXPECT_EQ(distributor.Watermark(), EventDistributor::kNoProgress);
  ASSERT_TRUE(distributor.Push(2, Reading(1, 1, 4)).ok());
  EXPECT_EQ(distributor.Watermark(), 4);
  distributor.Close(2);
  EXPECT_EQ(distributor.Watermark(), 7);
}

TEST_F(DistributorTest, ReleaseIsGloballyTimeOrdered) {
  EventDistributor distributor(2);
  ASSERT_TRUE(distributor.Push(0, Reading(1, 10, 1)).ok());
  ASSERT_TRUE(distributor.Push(0, Reading(1, 11, 5)).ok());
  ASSERT_TRUE(distributor.Push(0, Reading(1, 12, 9)).ok());
  ASSERT_TRUE(distributor.Push(1, Reading(2, 20, 2)).ok());
  ASSERT_TRUE(distributor.Push(1, Reading(2, 21, 6)).ok());

  EventBatch released;
  // Watermark = min(9, 6) = 6: the event at 9 stays buffered.
  EXPECT_EQ(distributor.Release(&released), 4u);
  EXPECT_TRUE(IsTimeOrdered(released));
  EXPECT_EQ(released.back()->time(), 6);
  EXPECT_EQ(distributor.buffered(), 1u);

  EventBatch rest;
  EXPECT_EQ(distributor.ReleaseAll(&rest), 1u);
  EXPECT_EQ(rest[0]->time(), 9);
}

TEST_F(DistributorTest, RejectsRegressionsAndBadSources) {
  EventDistributor distributor(1);
  ASSERT_TRUE(distributor.Push(0, Reading(1, 1, 10)).ok());
  EXPECT_FALSE(distributor.Push(0, Reading(1, 1, 9)).ok());
  EXPECT_TRUE(distributor.Push(0, Reading(1, 1, 10)).ok());  // equal is fine
  EXPECT_FALSE(distributor.Push(1, Reading(1, 1, 11)).ok());
  distributor.Close(0);
  EXPECT_FALSE(distributor.Push(0, Reading(1, 1, 12)).ok());
}

TEST_F(DistributorTest, StreamingMatchesBatchExecution) {
  constexpr char kModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;
QUERY go_high
SWITCH CONTEXT high PATTERN Reading r WHERE r.value > 10 CONTEXT normal;
QUERY go_normal
SWITCH CONTEXT normal PATTERN Reading r WHERE r.value <= 10 CONTEXT high;
QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r WHERE r.value > 15 CONTEXT high;
)";
  auto model = ParseModel(kModel, &registry_);
  CAESAR_CHECK_OK(model.status());

  // Two interleaved sources covering two segments.
  std::vector<std::pair<int, EventPtr>> arrival;
  for (Timestamp t = 0; t < 60; ++t) {
    arrival.emplace_back(0, Reading(1, (t * 7) % 30, t));
    if (t % 2 == 0) arrival.emplace_back(1, Reading(2, (t * 11) % 30, t));
  }

  // Batch reference.
  EventBatch batch;
  for (auto& [source, event] : arrival) batch.push_back(event);
  std::stable_sort(batch.begin(), batch.end(),
                   [](const EventPtr& a, const EventPtr& b) {
                     return a->time() < b->time();
                   });
  auto batch_plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(batch_plan.status());
  Engine batch_engine(std::move(batch_plan).value(), EngineOptions());
  EventBatch batch_out;
  batch_engine.Run(batch, &batch_out).value();

  // Streaming: push source by source, advancing every few events.
  auto stream_plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(stream_plan.status());
  StreamingEngine streaming(
      std::make_unique<Engine>(std::move(stream_plan).value(),
                               EngineOptions()),
      2);
  EventBatch stream_out;
  int pushed = 0;
  for (auto& [source, event] : arrival) {
    ASSERT_TRUE(streaming.Push(source, event).ok());
    if (++pushed % 5 == 0) streaming.Advance(&stream_out).value();
  }
  streaming.Flush(&stream_out).value();

  auto canonical = [&](const EventBatch& events) {
    std::multiset<std::string> lines;
    for (const EventPtr& event : events) {
      lines.insert(event->ToString(registry_));
    }
    return lines;
  };
  EXPECT_EQ(canonical(stream_out), canonical(batch_out));
  EXPECT_GT(batch_out.size(), 0u);
}

TEST_F(DistributorTest, AdvanceWithoutWatermarkRunsNothing) {
  constexpr char kModel[] = R"(
CONTEXTS only;
QUERY q DERIVE A(r.value AS value) PATTERN Reading r;
)";
  auto model = ParseModel(kModel, &registry_);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());
  StreamingEngine streaming(
      std::make_unique<Engine>(std::move(plan).value(), EngineOptions()), 2);
  // Only source 0 pushed: watermark unknown, nothing released.
  ASSERT_TRUE(streaming.Push(0, Reading(1, 1, 3)).ok());
  RunStats stats = streaming.Advance().value();
  EXPECT_EQ(stats.input_events, 0);
  EXPECT_EQ(streaming.distributor().buffered(), 1u);
  RunStats flushed = streaming.Flush().value();
  EXPECT_EQ(flushed.input_events, 1);
}

}  // namespace
}  // namespace caesar
