// End-to-end tests for caesard: a real daemon process on a loopback
// socket, driven through the wire protocol, held byte-identical to
// in-process Engine::Run.
//
// The differential matrix covers {interpreted, compiled} pattern engines
// x {1, 2, 4} worker threads: for each cell the socket-fed tenant's
// derived stream AND its deterministic JSON statistics export must equal
// the in-process batch run byte for byte. The multi-tenant test
// interleaves two tenants — one fed fault-injected garbage — and holds
// each to its solo-run bytes, quarantine counters included. The
// backpressure test fills a tiny admission buffer, expects coded I420
// rejections on the wire, and proves clean resumption without silent
// drops.

#include <cstdint>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "caesard_harness.h"
#include "event/event.h"
#include "event/schema.h"
#include "fault_injection.h"
#include "gtest/gtest.h"
#include "plan/translator.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "runtime/observability.h"
#include "server/protocol.h"
#include "server/wire.h"

namespace caesar {
namespace {

using testing::Client;
using testing::Daemon;
using testing::ErrorCode;
using testing::IsOk;
using testing::Req;

// The activity-monitoring example model: hysteresis contexts plus a SEQ
// escalation pattern, so the compiled pattern engine has real work.
constexpr char kModel[] = R"(
TYPE ActivityReport(subject int, hr int, intensity int, sec int);
TYPE HrEscalation(subject int, from_hr int, to_hr int);

CONTEXTS rest, active DEFAULT rest;
PARTITION BY subject;

QUERY detect_active
INITIATE CONTEXT active
PATTERN ActivityReport r
WHERE r.intensity >= 7
CONTEXT rest;

QUERY detect_rest
TERMINATE CONTEXT active
PATTERN ActivityReport r
WHERE r.intensity <= 3
CONTEXT active;

QUERY hr_escalation
DERIVE HrEscalation(a.subject AS subject, a.hr AS from_hr, b.hr AS to_hr)
PATTERN SEQ(ActivityReport a, ActivityReport b) WITHIN 30
WHERE a.subject = b.subject AND b.hr > a.hr AND b.hr >= 150
CONTEXT active;
)";

// Deterministic multi-partition stream: intensities sweep through the
// hysteresis thresholds so contexts open and close; heart rates wander
// through 150 so escalations derive.
EventBatch MakeStream(const TypeRegistry& registry, int subjects,
                      Timestamp ticks) {
  const TypeId type = registry.Lookup("ActivityReport");
  EXPECT_NE(type, kInvalidTypeId);
  uint64_t state = 0x5eed;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<int64_t>(state >> 33);
  };
  EventBatch stream;
  for (Timestamp sec = 1; sec <= ticks; ++sec) {
    for (int subject = 0; subject < subjects; ++subject) {
      const int64_t intensity = next() % 11;
      const int64_t hr = 110 + next() % 70;
      stream.push_back(MakeEvent(
          type, sec,
          {Value(static_cast<int64_t>(subject)), Value(hr), Value(intensity),
           Value(static_cast<int64_t>(sec))}));
    }
  }
  return stream;
}

std::string Render(const EventBatch& events, const TypeRegistry& registry) {
  std::ostringstream os;
  for (const EventPtr& event : events) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  return os.str();
}

// In-process reference engine, configured exactly like a caesard tenant.
struct Reference {
  std::unique_ptr<TypeRegistry> registry = std::make_unique<TypeRegistry>();
  std::unique_ptr<Engine> engine;

  static Reference Build(const std::string& tenant, PatternEngine pattern,
                         int threads,
                         IngestPolicy policy = IngestPolicy::kStrict) {
    Reference ref;
    auto model = ParseModel(kModel, ref.registry.get());
    EXPECT_TRUE(model.ok()) << model.status();
    EngineOptions options;
    options.tenant = tenant;
    options.num_threads = threads;
    options.pattern_engine = pattern;
    options.ingest_policy = policy;
    options.metrics = MetricsGranularity::kEngine;
    options.gather_statistics = true;
    options.analysis = AnalysisMode::kStrict;
    auto engine = Engine::Create(model.value(), PlanOptions{}, options);
    EXPECT_TRUE(engine.ok()) << engine.status();
    ref.engine = std::move(engine).value();
    return ref;
  }

  std::string StatsJson() const {
    ExportOptions options;
    options.deterministic = true;
    return StatisticsToJson(engine->CollectStatistics(), options);
  }
};

// Feeds `stream` to `tenant` in `chunk`-sized wire batches (deliberately
// not tick-aligned) and returns the rendered derived stream, decoding the
// response rows against `registry`. Uses `client` so several tenants can
// interleave on distinct connections.
std::string StreamOverSocket(Client& client, const std::string& tenant,
                             const EventBatch& stream, size_t chunk,
                             const TypeRegistry& registry,
                             bool binary = true) {
  EventBatch derived;
  auto collect = [&](const JsonValue& response) {
    const JsonValue* rows = response.Find("derived");
    if (rows == nullptr) return;
    for (const JsonValue& row : rows->items()) {
      EventPtr event;
      Status status = DecodeEventRow(row, registry, &event);
      ASSERT_TRUE(status.ok()) << status;
      derived.push_back(std::move(event));
    }
  };

  for (size_t at = 0; at < stream.size(); at += chunk) {
    const size_t end = std::min(at + chunk, stream.size());
    JsonValue request = Req("ingest", tenant);
    JsonValue rows = JsonValue::Array();
    for (size_t i = at; i < end; ++i) {
      rows.Append(EncodeEventRow(*stream[i], registry));
    }
    request.Set("events", std::move(rows));
    auto response = client.Call(request, binary);
    EXPECT_TRUE(response.ok()) << response.status();
    if (!response.ok()) return {};
    EXPECT_TRUE(IsOk(response.value())) << response.value().Dump();
    if (!IsOk(response.value())) return {};
    collect(response.value());
    if (::testing::Test::HasFatalFailure()) return {};
  }
  auto flushed = client.Call(Req("flush", tenant), binary);
  EXPECT_TRUE(flushed.ok() && IsOk(flushed.value()));
  if (flushed.ok()) collect(flushed.value());
  return Render(derived, registry);
}

std::string SocketStats(Client& client, const std::string& tenant) {
  JsonValue request = Req("stats", tenant);
  request.Set("deterministic", JsonValue::Bool(true));
  auto response = client.Call(request);
  EXPECT_TRUE(response.ok() && IsOk(response.value()));
  if (!response.ok()) return {};
  const JsonValue* stats = response.value().Find("stats");
  return stats != nullptr && stats->is_string() ? stats->string_value()
                                                : std::string();
}

JsonValue RegisterReq(const std::string& tenant, const char* pattern_engine,
                      const char* ingest = nullptr) {
  JsonValue request = Req("register", tenant);
  request.Set("model", JsonValue::String(kModel));
  JsonValue options = JsonValue::Object();
  options.Set("pattern_engine", JsonValue::String(pattern_engine));
  if (ingest != nullptr) options.Set("ingest", JsonValue::String(ingest));
  request.Set("options", std::move(options));
  return request;
}

// ---------------------------------------------------------------------------
// Differential matrix: engines x threads, socket vs batch, byte identical
// ---------------------------------------------------------------------------

class CaesardDifferential
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CaesardDifferential, SocketMatchesBatchByteForByte) {
  const char* engine_name = std::get<0>(GetParam());
  const int workers = std::get<1>(GetParam());
  PatternEngine pattern = PatternEngine::kInterpreted;
  ASSERT_TRUE(ParsePatternEngine(engine_name, &pattern));

  Daemon daemon({"--deterministic", "--workers=" + std::to_string(workers)});
  ASSERT_TRUE(daemon.valid());
  Client client(daemon.port());
  ASSERT_TRUE(client.connected());

  auto registered = client.Call(RegisterReq("t1", engine_name));
  ASSERT_TRUE(registered.ok() && IsOk(registered.value()))
      << (registered.ok() ? registered.value().Dump()
                          : registered.status().ToString());

  // The reference: one batch Run over the identical stream.
  Reference ref = Reference::Build("t1", pattern, workers);
  ASSERT_NE(ref.engine, nullptr);
  const EventBatch stream = MakeStream(*ref.registry, 6, 120);
  EventBatch expected_derived;
  auto stats = ref.engine->Run(stream, &expected_derived);
  ASSERT_TRUE(stats.ok()) << stats.status();
  ASSERT_GT(expected_derived.size(), 0u) << "workload derives nothing";

  // Socket side: 37-event chunks, nowhere tick-aligned on purpose.
  const std::string socket_rendered =
      StreamOverSocket(client, "t1", stream, 37, *ref.registry);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(socket_rendered, Render(expected_derived, *ref.registry));

  // Deterministic statistics export: byte-identical too (tenant label
  // included on both sides).
  EXPECT_EQ(SocketStats(client, "t1"), ref.StatsJson());

  auto teardown = client.Call(Req("teardown", "t1"));
  EXPECT_TRUE(teardown.ok() && IsOk(teardown.value()));
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndThreads, CaesardDifferential,
    ::testing::Combine(::testing::Values("interpreted", "compiled"),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Multi-tenant isolation under interleaved (and partly corrupt) ingest
// ---------------------------------------------------------------------------

TEST(CaesardMultiTenant, InterleavedTenantsMatchSoloRunsBitForBit) {
  Daemon daemon({"--deterministic", "--workers=2"});
  ASSERT_TRUE(daemon.valid());

  // Tenant A: clean stream, strict policy, interpreted engine.
  // Tenant B: the same stream with fault-injected garbage (unknown types
  // and negative times), drop policy so the engine quarantines instead of
  // rejecting, compiled engine. Separate connections, interleaved chunks.
  Client client_a(daemon.port());
  Client client_b(daemon.port());
  ASSERT_TRUE(client_a.connected() && client_b.connected());

  auto reg_a = client_a.Call(RegisterReq("alpha", "interpreted"));
  ASSERT_TRUE(reg_a.ok() && IsOk(reg_a.value()));
  auto reg_b = client_b.Call(RegisterReq("beta", "compiled", "drop"));
  ASSERT_TRUE(reg_b.ok() && IsOk(reg_b.value()));

  Reference ref_a =
      Reference::Build("alpha", PatternEngine::kInterpreted, 2);
  Reference ref_b = Reference::Build("beta", PatternEngine::kCompiled, 2,
                                     IngestPolicy::kDrop);
  ASSERT_NE(ref_a.engine, nullptr);
  ASSERT_NE(ref_b.engine, nullptr);

  const EventBatch clean = MakeStream(*ref_a.registry, 5, 90);
  caesar::testing::FaultInjector injector(/*seed=*/7);
  // Unknown-type ids are out of range for BOTH registries (identical
  // models) — over the wire they travel as "__unknown__".
  EventBatch corrupt = injector.CorruptTypes(
      clean, 0.08, ref_b.registry->num_types());
  corrupt = injector.CorruptTimes(corrupt, 0.04);

  // Solo references.
  EventBatch expect_a;
  EventBatch expect_b;
  ASSERT_TRUE(ref_a.engine->Run(clean, &expect_a).ok());
  ASSERT_TRUE(ref_b.engine->Run(corrupt, &expect_b).ok());

  // Interleave on the wire: alternate 23-event chunks A/B.
  EventBatch derived_a;
  EventBatch derived_b;
  auto send_chunk = [&](Client& client, const std::string& tenant,
                        const EventBatch& stream, size_t at, size_t chunk,
                        EventBatch* sink, const TypeRegistry& registry) {
    if (at >= stream.size()) return;
    const size_t end = std::min(at + chunk, stream.size());
    JsonValue request = Req("ingest", tenant);
    JsonValue rows = JsonValue::Array();
    for (size_t i = at; i < end; ++i) {
      rows.Append(EncodeEventRow(*stream[i], registry));
    }
    request.Set("events", std::move(rows));
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok() && IsOk(response.value()))
        << (response.ok() ? response.value().Dump()
                          : response.status().ToString());
    if (const JsonValue* out = response.value().Find("derived")) {
      for (const JsonValue& row : out->items()) {
        EventPtr event;
        ASSERT_TRUE(DecodeEventRow(row, registry, &event).ok());
        sink->push_back(std::move(event));
      }
    }
  };
  const size_t chunk = 23;
  const size_t steps =
      (std::max(clean.size(), corrupt.size()) + chunk - 1) / chunk;
  for (size_t step = 0; step < steps; ++step) {
    send_chunk(client_a, "alpha", clean, step * chunk, chunk, &derived_a,
               *ref_a.registry);
    send_chunk(client_b, "beta", corrupt, step * chunk, chunk, &derived_b,
               *ref_b.registry);
    ASSERT_FALSE(::testing::Test::HasFatalFailure());
  }
  auto drain = [&](Client& client, const std::string& tenant,
                   EventBatch* sink, const TypeRegistry& registry) {
    auto response = client.Call(Req("flush", tenant));
    ASSERT_TRUE(response.ok() && IsOk(response.value()));
    for (const JsonValue& row : response.value().Find("derived")->items()) {
      EventPtr event;
      ASSERT_TRUE(DecodeEventRow(row, registry, &event).ok());
      sink->push_back(std::move(event));
    }
  };
  drain(client_a, "alpha", &derived_a, *ref_a.registry);
  drain(client_b, "beta", &derived_b, *ref_b.registry);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());

  EXPECT_EQ(Render(derived_a, *ref_a.registry),
            Render(expect_a, *ref_a.registry));
  EXPECT_EQ(Render(derived_b, *ref_b.registry),
            Render(expect_b, *ref_b.registry));

  // Statistics isolation: each tenant's deterministic export equals its
  // solo run — quarantine activity included, so beta's garbage counters
  // cannot have leaked into alpha (whose export shows zero quarantined).
  const std::string stats_a = SocketStats(client_a, "alpha");
  const std::string stats_b = SocketStats(client_b, "beta");
  EXPECT_EQ(stats_a, ref_a.StatsJson());
  EXPECT_EQ(stats_b, ref_b.StatsJson());
  EXPECT_NE(stats_a.find("\"quarantined\":0"), std::string::npos);
  EXPECT_EQ(stats_b.find("\"quarantined\":0"), std::string::npos);
  EXPECT_NE(stats_a.find("\"tenant\":\"alpha\""), std::string::npos);
  EXPECT_NE(stats_b.find("\"tenant\":\"beta\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Backpressure: bounded buffer, coded rejection, clean resumption
// ---------------------------------------------------------------------------

TEST(CaesardBackpressure, BoundedBufferRejectsWithI420AndResumes) {
  Daemon daemon({"--deterministic", "--workers=1"});
  ASSERT_TRUE(daemon.valid());
  Client client(daemon.port());
  ASSERT_TRUE(client.connected());

  JsonValue request = Req("register", "t1");
  request.Set("model", JsonValue::String(kModel));
  JsonValue options = JsonValue::Object();
  options.Set("pattern_engine", JsonValue::String("interpreted"));
  options.Set("max_pending_events", JsonValue::Int(8));
  request.Set("options", std::move(options));
  auto registered = client.Call(request);
  ASSERT_TRUE(registered.ok() && IsOk(registered.value()));

  Reference ref = Reference::Build("t1", PatternEngine::kInterpreted, 1);
  ASSERT_NE(ref.engine, nullptr);
  // Two ticks x 6 subjects. Each tick's 6 events stay buffered as the
  // open tick until a flush — exactly the squeeze the bound needs.
  const EventBatch full = MakeStream(*ref.registry, 6, 2);
  ASSERT_EQ(full.size(), 12u);
  const EventBatch tick1(full.begin(), full.begin() + 6);
  const EventBatch tick2(full.begin() + 6, full.end());

  auto ingest = [&](const EventBatch& events) {
    JsonValue req2 = Req("ingest", "t1");
    JsonValue rows = JsonValue::Array();
    for (const EventPtr& event : events) {
      rows.Append(EncodeEventRow(*event, *ref.registry));
    }
    req2.Set("events", std::move(rows));
    auto response = client.Call(req2);
    EXPECT_TRUE(response.ok()) << response.status();
    return response.value();
  };

  // 6 in (buffered as the open tick), then 6 more: 12 > 8 — refused whole.
  JsonValue first = ingest(tick1);
  ASSERT_TRUE(IsOk(first)) << first.Dump();
  EXPECT_EQ(first.Find("pending")->int_value(), 6);

  JsonValue rejected = ingest(tick2);
  ASSERT_FALSE(IsOk(rejected)) << rejected.Dump();
  EXPECT_EQ(ErrorCode(rejected), "I420");
  EXPECT_EQ(rejected.Find("pending")->int_value(), 6);  // nothing admitted
  EXPECT_EQ(rejected.Find("limit")->int_value(), 8);

  // Flush drains the buffer; the refused batch is then accepted on retry —
  // clean resumption, and the rejection was whole (no partial admission
  // to double-count now).
  auto flushed = client.Call(Req("flush", "t1"));
  ASSERT_TRUE(flushed.ok() && IsOk(flushed.value()));
  JsonValue second = ingest(tick2);
  ASSERT_TRUE(IsOk(second)) << second.Dump();

  auto final_flush = client.Call(Req("flush", "t1"));
  ASSERT_TRUE(final_flush.ok() && IsOk(final_flush.value()));

  // No silent drops: the strict-mode engine admitted exactly the 12
  // events of the two accepted batches.
  const std::string stats = SocketStats(client, "t1");
  EXPECT_NE(stats.find("\"admitted\":12"), std::string::npos) << stats;
}

// ---------------------------------------------------------------------------
// Protocol surface: admission gate, tenant lifecycle, debug framing
// ---------------------------------------------------------------------------

TEST(CaesardProtocol, LifecycleAndCodedErrors) {
  Daemon daemon({"--deterministic", "--workers=2"});
  ASSERT_TRUE(daemon.valid());
  Client client(daemon.port());
  ASSERT_TRUE(client.connected());

  // Ping reports the mode.
  auto ping = client.Call(Req("ping"));
  ASSERT_TRUE(ping.ok() && IsOk(ping.value()));
  EXPECT_TRUE(ping.value().Find("deterministic")->bool_value());
  EXPECT_EQ(ping.value().Find("workers")->int_value(), 2);

  // Admission gate, leg 1: unparseable model.
  JsonValue bad = Req("register", "broken");
  bad.Set("model", JsonValue::String("TYPE Nope(a int;"));
  auto r1 = client.Call(bad);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(IsOk(r1.value()));
  EXPECT_EQ(ErrorCode(r1.value()), "I424");

  // Admission gate, leg 2: parses, but the strict analyzer rejects the
  // unknown attribute (E102) — caesar-lint as gatekeeper.
  JsonValue lint = Req("register", "lintfail");
  lint.Set("model", JsonValue::String(
                        "TYPE A(x int);\n"
                        "TYPE B(y int);\n"
                        "CONTEXTS c0 DEFAULT c0;\n"
                        "PARTITION BY x;\n"
                        "QUERY q DERIVE B(a.nope AS y) PATTERN A a "
                        "CONTEXT c0;\n"));
  auto r2 = client.Call(lint);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(IsOk(r2.value()));
  EXPECT_EQ(ErrorCode(r2.value()), "I424");
  EXPECT_NE(r2.value().Find("error")->string_value().find("E102"),
            std::string::npos)
      << r2.value().Dump();
  EXPECT_EQ(client.Call(Req("list")).value().Find("tenants")->items().size(),
            0u);

  // Lifecycle codes: duplicate register, unknown tenant, unknown option.
  ASSERT_TRUE(IsOk(client.Call(RegisterReq("t1", "interpreted")).value()));
  EXPECT_EQ(ErrorCode(client.Call(RegisterReq("t1", "interpreted")).value()),
            "I422");
  EXPECT_EQ(ErrorCode(client.Call(Req("poll", "ghost")).value()), "I421");
  JsonValue bad_option = Req("register", "t2");
  bad_option.Set("model", JsonValue::String(kModel));
  JsonValue opts = JsonValue::Object();
  opts.Set("no_such_knob", JsonValue::Bool(true));
  bad_option.Set("options", std::move(opts));
  EXPECT_EQ(ErrorCode(client.Call(bad_option).value()), "I423");

  // Teardown frees the name for re-registration.
  EXPECT_TRUE(IsOk(client.Call(Req("teardown", "t1")).value()));
  EXPECT_TRUE(IsOk(client.Call(RegisterReq("t1", "interpreted")).value()));

  // Wire shutdown: daemon exits 0 on its own.
  EXPECT_TRUE(IsOk(client.Call(Req("shutdown")).value()));
  EXPECT_TRUE(daemon.ShutdownCleanly());
}

TEST(CaesardProtocol, NewlineJsonFramingIsEquivalent) {
  Daemon daemon({"--deterministic", "--workers=1"});
  ASSERT_TRUE(daemon.valid());
  Client client(daemon.port());
  ASSERT_TRUE(client.connected());

  auto registered =
      client.Call(RegisterReq("t1", "interpreted"), /*binary=*/false);
  ASSERT_TRUE(registered.ok() && IsOk(registered.value()));

  Reference ref = Reference::Build("t1", PatternEngine::kInterpreted, 1);
  ASSERT_NE(ref.engine, nullptr);
  const EventBatch stream = MakeStream(*ref.registry, 3, 40);
  EventBatch expected;
  ASSERT_TRUE(ref.engine->Run(stream, &expected).ok());

  const std::string rendered = StreamOverSocket(
      client, "t1", stream, 29, *ref.registry, /*binary=*/false);
  ASSERT_FALSE(::testing::Test::HasFatalFailure());
  EXPECT_EQ(rendered, Render(expected, *ref.registry));
}

}  // namespace
}  // namespace caesar
