// Graceful-degradation suite: seeded fault injection against every workload
// generator (synthetic, Linear Road, PAMAP). The headline property: a
// stream perturbed by bounded per-tick delay, replayed under
// IngestPolicy::kReorder with reorder_slack >= the injected delay, derives
// a byte-identical output sequence to the pristine stream under kStrict —
// at 1, 2, 4 and 8 worker threads. Drop and quarantine behavior is
// deterministic: counters match a replicated reference computation and are
// identical across thread counts.

#include "fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"
#include "workloads/pamap.h"
#include "workloads/synthetic.h"

namespace caesar {
namespace {

using testing::FaultInjector;

constexpr Timestamp kMaxDelay = 4;
constexpr uint64_t kSeed = 0xCAE5A;

struct RunResult {
  std::string derived;
  RunStats stats;
};

std::string Render(const EventBatch& events, const TypeRegistry& registry) {
  std::ostringstream os;
  for (const EventPtr& event : events) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  return os.str();
}

// Runs a fresh engine over `stream`; hands the engine to the caller via
// `keep` when its quarantine/ingest state is part of the assertions.
RunResult RunWith(const ExecutablePlan& plan, const EventBatch& stream,
                  const TypeRegistry& registry, const EngineOptions& options,
                  std::unique_ptr<Engine>* keep = nullptr) {
  auto engine = std::make_unique<Engine>(plan.Clone(), options);
  EventBatch outputs;
  RunResult result;
  result.stats = engine->Run(stream, &outputs).value();
  result.derived = Render(outputs, registry);
  if (keep != nullptr) *keep = std::move(engine);
  return result;
}

// The semantic counters that must not depend on the thread count or on how
// the stream was perturbed-and-repaired. Timing fields are excluded.
void ExpectEqualCounters(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.derived_events, b.derived_events);
  EXPECT_EQ(a.derived_by_type, b.derived_by_type);
  EXPECT_EQ(a.ops_executed, b.ops_executed);
  EXPECT_EQ(a.suspended_chains, b.suspended_chains);
  EXPECT_EQ(a.executed_chains, b.executed_chains);
  EXPECT_EQ(a.transactions, b.transactions);
  EXPECT_EQ(a.partitions, b.partitions);
}

// Core property: bounded lateness + sufficient slack == lossless repair.
void ExpectReorderRestoresStrictOutput(const ExecutablePlan& plan,
                                       const EventBatch& pristine,
                                       const TypeRegistry& registry) {
  ASSERT_FALSE(pristine.empty());
  ASSERT_TRUE(IsTimeOrdered(pristine));

  FaultInjector injector(kSeed);
  EventBatch delayed = injector.DelayTicks(pristine, kMaxDelay);
  ASSERT_EQ(delayed.size(), pristine.size());
  ASSERT_FALSE(IsTimeOrdered(delayed));  // the injection really disordered

  RunResult baseline = RunWith(plan, pristine, registry, EngineOptions());
  EXPECT_GT(baseline.stats.derived_events, 0);

  for (int num_threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(num_threads));
    EngineOptions options;
    options.num_threads = num_threads;
    options.ingest_policy = IngestPolicy::kReorder;
    options.reorder_slack = kMaxDelay;
    std::unique_ptr<Engine> engine;
    RunResult repaired = RunWith(plan, delayed, registry, options, &engine);

    EXPECT_EQ(repaired.derived, baseline.derived);
    ExpectEqualCounters(baseline.stats, repaired.stats);
    EXPECT_EQ(repaired.stats.input_events, baseline.stats.input_events);
    // Disorder was really repaired, within the contract.
    EXPECT_GT(repaired.stats.events_reordered, 0);
    EXPECT_GT(repaired.stats.max_observed_lateness, 0);
    EXPECT_LE(repaired.stats.max_observed_lateness, kMaxDelay);
    EXPECT_EQ(repaired.stats.events_dropped_late, 0);
    EXPECT_EQ(repaired.stats.events_quarantined, 0);
    EXPECT_EQ(engine->quarantine().total(), 0);
    EXPECT_EQ(engine->ingest_metrics().admitted,
              static_cast<int64_t>(pristine.size()));
  }
}

// Drop policy under arbitrary local shuffles: survival is the running-max
// rule, replicated here event by event; every thread count agrees.
void ExpectDropPolicyIsDeterministic(const ExecutablePlan& plan,
                                     const EventBatch& pristine,
                                     const TypeRegistry& registry) {
  FaultInjector injector(kSeed + 1);
  EventBatch shuffled = injector.ShuffleEvents(pristine, /*window=*/32);
  ASSERT_FALSE(IsTimeOrdered(shuffled));

  // Reference: an event survives iff it is not older than the newest
  // already-surviving time stamp.
  int64_t expected_drops = 0;
  Timestamp expected_max_lateness = 0;
  bool any = false;
  Timestamp high_water = 0;
  for (const EventPtr& event : shuffled) {
    if (any && event->time() < high_water) {
      ++expected_drops;
      expected_max_lateness =
          std::max(expected_max_lateness, high_water - event->time());
      continue;
    }
    any = true;
    high_water = event->time();
  }
  ASSERT_GT(expected_drops, 0);

  RunResult reference;
  for (int num_threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(num_threads));
    EngineOptions options;
    options.num_threads = num_threads;
    options.ingest_policy = IngestPolicy::kDrop;
    std::unique_ptr<Engine> engine;
    RunResult result = RunWith(plan, shuffled, registry, options, &engine);

    EXPECT_EQ(result.stats.events_dropped_late, expected_drops);
    EXPECT_EQ(result.stats.events_quarantined, expected_drops);
    EXPECT_EQ(result.stats.max_observed_lateness, expected_max_lateness);
    EXPECT_EQ(engine->quarantine().count(QuarantineReason::kOutOfOrder),
              expected_drops);
    if (num_threads == 1) {
      reference = result;
    } else {
      EXPECT_EQ(result.derived, reference.derived);
      ExpectEqualCounters(reference.stats, result.stats);
    }
  }
}

// Malformed events: quarantine counts per reason equal a replica of the
// engine's classification (same precedence), at every thread count.
void ExpectQuarantineCountsAreDeterministic(const ExecutablePlan& plan,
                                            const EventBatch& pristine,
                                            const TypeRegistry& registry) {
  FaultInjector injector(kSeed + 2);
  TypeId bad_type = static_cast<TypeId>(registry.num_types()) + 7;
  EventBatch corrupted = injector.CorruptTypes(pristine, 0.03, bad_type);
  corrupted = injector.CorruptTimes(corrupted, 0.03);
  corrupted = injector.CorruptIntervals(corrupted, 0.03);

  // Replicate ClassifyMalformed's precedence: unknown type, then negative
  // time, then inverted interval.
  int64_t expected[kNumQuarantineReasons] = {};
  for (const EventPtr& event : corrupted) {
    if (event->type_id() < 0 ||
        event->type_id() >= static_cast<TypeId>(registry.num_types())) {
      ++expected[static_cast<int>(QuarantineReason::kUnknownType)];
    } else if (event->time() < 0) {
      ++expected[static_cast<int>(QuarantineReason::kNegativeTime)];
    } else if (event->end_time() < event->start_time()) {
      ++expected[static_cast<int>(QuarantineReason::kInvertedInterval)];
    }
  }
  int64_t expected_total =
      expected[static_cast<int>(QuarantineReason::kUnknownType)] +
      expected[static_cast<int>(QuarantineReason::kNegativeTime)] +
      expected[static_cast<int>(QuarantineReason::kInvertedInterval)];
  ASSERT_GT(expected[static_cast<int>(QuarantineReason::kUnknownType)], 0);
  ASSERT_GT(expected[static_cast<int>(QuarantineReason::kNegativeTime)], 0);
  ASSERT_GT(expected[static_cast<int>(QuarantineReason::kInvertedInterval)],
            0);

  RunResult reference;
  for (int num_threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(num_threads));
    EngineOptions options;
    options.num_threads = num_threads;
    options.ingest_policy = IngestPolicy::kDrop;
    std::unique_ptr<Engine> engine;
    RunResult result = RunWith(plan, corrupted, registry, options, &engine);

    // Removing malformed events leaves the pristine order: nothing is late.
    EXPECT_EQ(result.stats.events_dropped_late, 0);
    EXPECT_EQ(result.stats.events_quarantined, expected_total);
    for (int r = 0; r < kNumQuarantineReasons; ++r) {
      EXPECT_EQ(engine->quarantine().count(static_cast<QuarantineReason>(r)),
                expected[r])
          << QuarantineReasonName(static_cast<QuarantineReason>(r));
    }
    if (num_threads == 1) {
      reference = result;
    } else {
      EXPECT_EQ(result.derived, reference.derived);
      ExpectEqualCounters(reference.stats, result.stats);
    }
  }
}

// Duplicated events are legal input (same time stamp twice); the engine
// stays deterministic across thread counts. Nulled-out attribute values
// are legal too (expressions over null evaluate to null): no crash, same
// output at every thread count.
void ExpectBenignFaultsStayDeterministic(const ExecutablePlan& plan,
                                         const EventBatch& pristine,
                                         const TypeRegistry& registry) {
  FaultInjector injector(kSeed + 3);
  EventBatch duplicated = injector.Duplicate(pristine, 0.1);
  ASSERT_GT(duplicated.size(), pristine.size());
  ASSERT_TRUE(IsTimeOrdered(duplicated));
  EventBatch nulled = injector.CorruptFields(pristine, 0.05);
  ASSERT_TRUE(IsTimeOrdered(nulled));

  for (const EventBatch* stream : {&duplicated, &nulled}) {
    RunResult reference;
    for (int num_threads : {1, 4}) {
      SCOPED_TRACE("threads=" + std::to_string(num_threads));
      EngineOptions options;
      options.num_threads = num_threads;
      RunResult result = RunWith(plan, *stream, registry, options);
      if (num_threads == 1) {
        reference = result;
      } else {
        EXPECT_EQ(result.derived, reference.derived);
        ExpectEqualCounters(reference.stats, result.stats);
      }
    }
  }
}

void ExpectStrictRejectsButStaysUsable(const ExecutablePlan& plan,
                                       const EventBatch& pristine,
                                       const TypeRegistry& registry) {
  FaultInjector injector(kSeed + 4);
  EventBatch shuffled = injector.ShuffleEvents(pristine, /*window=*/32);
  ASSERT_FALSE(IsTimeOrdered(shuffled));

  Engine engine(plan.Clone(), EngineOptions());
  auto rejected = engine.Run(shuffled);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(rejected.status().message().find("not time-ordered at index"),
            std::string::npos)
      << rejected.status();
  EXPECT_NE(rejected.status().message().find("IngestPolicy::kReorder"),
            std::string::npos)
      << rejected.status();

  // The rejection mutated nothing: the engine now processes the pristine
  // stream exactly like a fresh one.
  EventBatch out_after, out_fresh;
  RunStats after = engine.Run(pristine, &out_after).value();
  Engine fresh(plan.Clone(), EngineOptions());
  RunStats fresh_stats = fresh.Run(pristine, &out_fresh).value();
  EXPECT_EQ(Render(out_after, registry), Render(out_fresh, registry));
  ExpectEqualCounters(fresh_stats, after);
  EXPECT_EQ(engine.quarantine().total(), 0);
}

ExecutablePlan Optimize(const CaesarModel& model) {
  auto plan = OptimizeModel(model, OptimizerOptions());
  CAESAR_CHECK_OK(plan.status());
  return std::move(plan).value();
}

struct Workload {
  ExecutablePlan plan;
  EventBatch stream;
};

class FaultInjectionTest : public ::testing::Test {
 protected:
  Workload Synthetic() {
    SyntheticConfig config;
    config.duration = 240;
    config.num_partitions = 8;
    config.events_per_tick = 2;
    config.windows = LayOutWindows(/*count=*/3, /*length=*/60, /*overlap=*/20,
                                   /*first_start=*/30);
    config.assignment = SyntheticConfig::QueryAssignment::kPerWindowCopies;
    config.queries_per_window = 2;
    EventBatch stream = GenerateSyntheticStream(config, &registry_);
    auto model = MakeSyntheticModel(config, &registry_);
    CAESAR_CHECK_OK(model.status());
    return {Optimize(model.value()), std::move(stream)};
  }

  Workload LinearRoad() {
    LinearRoadConfig config;
    config.num_xways = 2;
    config.num_segments = 6;
    config.duration = 240;
    config.seed = 7;
    LinearRoadModelConfig model_config;
    model_config.processing_replicas = 2;
    EventBatch stream = GenerateLinearRoadStream(config, &registry_);
    auto model = MakeLinearRoadModel(model_config, &registry_);
    CAESAR_CHECK_OK(model.status());
    return {Optimize(model.value()), std::move(stream)};
  }

  Workload Pamap() {
    PamapConfig config;
    config.num_subjects = 6;
    config.duration = 900;
    config.exercise_phases_per_subject = 2.0;
    config.exercise_duration = 300;
    config.seed = 3;
    EventBatch stream = GeneratePamapStream(config, &registry_);
    auto model = MakePamapModel(PamapModelConfig(), &registry_);
    CAESAR_CHECK_OK(model.status());
    return {Optimize(model.value()), std::move(stream)};
  }

  TypeRegistry registry_;
};

TEST_F(FaultInjectionTest, SyntheticReorderRestoresStrictOutput) {
  Workload w = Synthetic();
  ExpectReorderRestoresStrictOutput(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, LinearRoadReorderRestoresStrictOutput) {
  Workload w = LinearRoad();
  ExpectReorderRestoresStrictOutput(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, PamapReorderRestoresStrictOutput) {
  Workload w = Pamap();
  ExpectReorderRestoresStrictOutput(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, SyntheticDropPolicyIsDeterministic) {
  Workload w = Synthetic();
  ExpectDropPolicyIsDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, LinearRoadDropPolicyIsDeterministic) {
  Workload w = LinearRoad();
  ExpectDropPolicyIsDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, PamapDropPolicyIsDeterministic) {
  Workload w = Pamap();
  ExpectDropPolicyIsDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, SyntheticQuarantineCountsAreDeterministic) {
  Workload w = Synthetic();
  ExpectQuarantineCountsAreDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, LinearRoadQuarantineCountsAreDeterministic) {
  Workload w = LinearRoad();
  ExpectQuarantineCountsAreDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, PamapQuarantineCountsAreDeterministic) {
  Workload w = Pamap();
  ExpectQuarantineCountsAreDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, SyntheticBenignFaultsStayDeterministic) {
  Workload w = Synthetic();
  ExpectBenignFaultsStayDeterministic(w.plan, w.stream, registry_);
}

TEST_F(FaultInjectionTest, LinearRoadStrictRejectsButStaysUsable) {
  Workload w = LinearRoad();
  ExpectStrictRejectsButStaysUsable(w.plan, w.stream, registry_);
}

}  // namespace
}  // namespace caesar
