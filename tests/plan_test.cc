// Tests for model-to-plan translation: Table-1 operator mapping, chain
// shapes under optimizer options (Fig. 6a vs 6b), composite type
// registration, topological ordering, and the context-independent baseline's
// guard construction.

#include <gtest/gtest.h>

#include "plan/translator.h"
#include "query/parser.h"

namespace caesar {
namespace {

constexpr char kMiniModel[] = R"(
CONTEXTS normal, high DEFAULT normal;
PARTITION BY seg;

QUERY go_high
SWITCH CONTEXT high
PATTERN Reading r
WHERE r.value > 10
CONTEXT normal;

QUERY go_normal
SWITCH CONTEXT normal
PATTERN Reading r
WHERE r.value <= 10
CONTEXT high;

QUERY alert
DERIVE Alert(r.seg AS seg, r.value AS value)
PATTERN Reading r
WHERE r.value > 15
CONTEXT high;
)";

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() {
    registry_.RegisterOrGet("Reading", {{"seg", ValueType::kInt},
                                        {"value", ValueType::kInt},
                                        {"sec", ValueType::kInt}});
  }

  CaesarModel Parse(const std::string& text) {
    auto model = ParseModel(text, &registry_);
    EXPECT_TRUE(model.ok()) << model.status();
    return std::move(model).value();
  }

  std::vector<Operator::Kind> ChainKinds(const OpChain& chain) {
    std::vector<Operator::Kind> kinds;
    for (const auto& op : chain.ops) kinds.push_back(op->kind());
    return kinds;
  }

  TypeRegistry registry_;
};

TEST_F(PlanTest, NonOptimizedChainFollowsFig6a) {
  CaesarModel model = Parse(kMiniModel);
  PlanOptions options;
  options.push_down_context_windows = false;
  auto plan = TranslateModel(model, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().processing.size(), 1u);
  // Fig. 6a order: pattern, filter, context window, projection.
  EXPECT_EQ(ChainKinds(plan.value().processing[0].chain),
            (std::vector<Operator::Kind>{
                Operator::Kind::kPattern, Operator::Kind::kFilter,
                Operator::Kind::kContextWindow, Operator::Kind::kProjection}));
}

TEST_F(PlanTest, PushDownMovesContextWindowToBottom) {
  CaesarModel model = Parse(kMiniModel);
  PlanOptions options;
  options.push_down_context_windows = true;
  auto plan = TranslateModel(model, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Fig. 6b order: context window at the bottom.
  EXPECT_EQ(ChainKinds(plan.value().processing[0].chain),
            (std::vector<Operator::Kind>{
                Operator::Kind::kContextWindow, Operator::Kind::kPattern,
                Operator::Kind::kFilter, Operator::Kind::kProjection}));
}

TEST_F(PlanTest, ForcedContextWindowPosition) {
  CaesarModel model = Parse(kMiniModel);
  PlanOptions options;
  options.force_cw_position = 1;
  auto plan = TranslateModel(model, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(ChainKinds(plan.value().processing[0].chain)[1],
            Operator::Kind::kContextWindow);
}

TEST_F(PlanTest, SwitchQueryGetsInitAndTermOps) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().deriving.size(), 2u);
  const OpChain& chain = plan.value().deriving[0].chain;  // go_high
  auto kinds = ChainKinds(chain);
  // ... pattern, filter above the CW, then CI(high) + CT(normal).
  EXPECT_EQ(kinds[kinds.size() - 2], Operator::Kind::kContextInit);
  EXPECT_EQ(kinds[kinds.size() - 1], Operator::Kind::kContextTerm);
}

TEST_F(PlanTest, ProcessingQueriesAreTopoSortedByTypes) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
QUERY downstream
DERIVE Final(n.seg)
PATTERN NewCar n;
QUERY upstream
DERIVE NewCar(r.seg AS seg)
PATTERN Reading r;
)");
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan.value().processing.size(), 2u);
  // upstream (producer of NewCar) must run first.
  EXPECT_EQ(plan.value().processing[0].name, "upstream");
  EXPECT_EQ(plan.value().processing[1].name, "downstream");
}

TEST_F(PlanTest, DerivingConsumingProcessingOutputIsRejected) {
  CaesarModel model = Parse(R"(
CONTEXTS a, b;
QUERY produce
DERIVE Marker(r.seg AS seg)
PATTERN Reading r;
QUERY react
INITIATE CONTEXT b
PATTERN Marker m;
)");
  auto plan = TranslateModel(model, PlanOptions());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(PlanTest, UnknownEventTypeFails) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
QUERY q DERIVE X(e.foo) PATTERN Nope e;
)");
  auto plan = TranslateModel(model, PlanOptions());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST_F(PlanTest, TrailingNegationIsUnimplemented) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
QUERY q
DERIVE X(a.seg)
PATTERN SEQ(Reading a, NOT Reading b) WITHIN 10
WHERE b.seg = a.seg;
)");
  auto plan = TranslateModel(model, PlanOptions());
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnimplemented);
}

TEST_F(PlanTest, SeqRegistersCompositeTypeAndDerivedType) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
QUERY pairs
DERIVE Pair(a.seg AS seg, b.value AS second_value)
PATTERN SEQ(Reading a, Reading b) WITHIN 30
WHERE a.seg = b.seg;
)");
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok()) << plan.status();
  TypeId composite = registry_.Lookup("$match_pairs");
  ASSERT_NE(composite, kInvalidTypeId);
  const Schema& schema = registry_.type(composite).schema;
  EXPECT_EQ(schema.num_attributes(), 6);
  EXPECT_GE(schema.IndexOf("a.seg"), 0);
  EXPECT_GE(schema.IndexOf("b.value"), 0);

  TypeId derived = registry_.Lookup("Pair");
  ASSERT_NE(derived, kInvalidTypeId);
  EXPECT_EQ(registry_.type(derived).schema.attribute(1).name, "second_value");
  EXPECT_EQ(plan.value().processing[0].output_type, derived);
}

TEST_F(PlanTest, PredicatePushdownRemovesFilter) {
  CaesarModel model = Parse(R"(
CONTEXTS only;
QUERY pairs
DERIVE Pair(a.seg AS seg)
PATTERN SEQ(Reading a, Reading b) WITHIN 30
WHERE a.seg = b.seg;
)");
  PlanOptions pushed;
  pushed.push_predicates_into_pattern = true;
  auto plan = TranslateModel(model, pushed);
  ASSERT_TRUE(plan.ok()) << plan.status();
  auto kinds = ChainKinds(plan.value().processing[0].chain);
  EXPECT_EQ(std::count(kinds.begin(), kinds.end(), Operator::Kind::kFilter),
            0);

  PlanOptions unpushed;
  unpushed.push_predicates_into_pattern = false;
  auto plan2 = TranslateModel(model, unpushed);
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  auto kinds2 = ChainKinds(plan2.value().processing[0].chain);
  EXPECT_EQ(std::count(kinds2.begin(), kinds2.end(), Operator::Kind::kFilter),
            1);
}

TEST_F(PlanTest, ContextIndependentBaselineAttachesGuards) {
  CaesarModel model = Parse(kMiniModel);
  PlanOptions options;
  options.context_independent = true;
  options.push_down_context_windows = false;
  auto plan = TranslateModel(model, options);
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The alert query belongs to `high`, bounded by go_high (switch into) and
  // go_normal (switch out of): two guards.
  ASSERT_EQ(plan.value().processing.size(), 1u);
  EXPECT_EQ(plan.value().processing[0].guards.size(), 2u);
}

TEST_F(PlanTest, PlanCloneIsDeep) {
  CaesarModel model = Parse(kMiniModel);
  auto plan = TranslateModel(model, PlanOptions());
  ASSERT_TRUE(plan.ok());
  ExecutablePlan clone = plan.value().Clone();
  EXPECT_EQ(clone.processing.size(), plan.value().processing.size());
  EXPECT_NE(clone.processing[0].chain.ops[0].get(),
            plan.value().processing[0].chain.ops[0].get());
  EXPECT_FALSE(clone.DebugString().empty());
}

}  // namespace
}  // namespace caesar
