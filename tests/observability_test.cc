// Unit tests of the observability layer (runtime/observability.h): the
// power-of-2 histogram, the sharded counter/histogram, the metrics
// registry, the timeline ring buffer, the trace recorder, and the two
// snapshot exporters. The exporter format is pinned by golden files under
// tests/golden/ (regenerate with CAESAR_REGEN_GOLDEN=1), and the
// deterministic export form is asserted byte-identical for 1/2/4/8 worker
// threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "event/event.h"
#include "event/schema.h"
#include "query/parser.h"
#include "plan/translator.h"
#include "runtime/engine.h"
#include "runtime/observability.h"
#include "runtime/statistics.h"

namespace caesar {
namespace {

// ---------------------------------------------------------------------------
// Pow2Histogram
// ---------------------------------------------------------------------------

TEST(Pow2HistogramTest, BucketLayout) {
  EXPECT_EQ(Pow2Histogram::BucketOf(0), 0);
  EXPECT_EQ(Pow2Histogram::BucketOf(1), 1);
  EXPECT_EQ(Pow2Histogram::BucketOf(2), 2);
  EXPECT_EQ(Pow2Histogram::BucketOf(3), 2);
  EXPECT_EQ(Pow2Histogram::BucketOf(4), 3);
  EXPECT_EQ(Pow2Histogram::BucketOf(7), 3);
  EXPECT_EQ(Pow2Histogram::BucketOf(8), 4);
  EXPECT_EQ(Pow2Histogram::BucketOf(std::numeric_limits<uint64_t>::max()),
            64);
  for (int i = 0; i < Pow2Histogram::kNumBuckets; ++i) {
    // Every bucket's bounds round-trip through BucketOf.
    EXPECT_EQ(Pow2Histogram::BucketOf(Pow2Histogram::BucketLowerBound(i)), i);
    EXPECT_EQ(Pow2Histogram::BucketOf(Pow2Histogram::BucketUpperBound(i)), i);
  }
  EXPECT_EQ(Pow2Histogram::BucketLowerBound(0), 0u);
  EXPECT_EQ(Pow2Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Pow2Histogram::BucketLowerBound(4), 8u);
  EXPECT_EQ(Pow2Histogram::BucketUpperBound(4), 15u);
  EXPECT_EQ(Pow2Histogram::BucketUpperBound(64),
            std::numeric_limits<uint64_t>::max());
}

TEST(Pow2HistogramTest, AddTracksCountSumMaxMean) {
  Pow2Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  for (uint64_t v : {0, 1, 1, 3, 8, 100}) h.Add(v);
  EXPECT_EQ(h.count(), 6);
  EXPECT_EQ(h.sum(), 113u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 113.0 / 6.0);
  EXPECT_EQ(h.bucket(0), 1);  // {0}
  EXPECT_EQ(h.bucket(1), 2);  // {1}
  EXPECT_EQ(h.bucket(2), 1);  // [2,4)
  EXPECT_EQ(h.bucket(4), 1);  // [8,16)
  EXPECT_EQ(h.bucket(7), 1);  // [64,128)
}

TEST(Pow2HistogramTest, QuantileWalksBuckets) {
  Pow2Histogram h;
  for (int i = 0; i < 50; ++i) h.Add(0);
  for (int i = 0; i < 50; ++i) h.Add(10);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(0.25), 0u);
  // The 75th percentile falls in [8,16); the quantile reports the bucket
  // upper bound clamped to the observed max.
  EXPECT_EQ(h.Quantile(0.75), 10u);
  EXPECT_EQ(h.Quantile(1.0), 10u);
  Pow2Histogram empty;
  EXPECT_EQ(empty.Quantile(0.5), 0u);
}

TEST(Pow2HistogramTest, MergeIsIndexWise) {
  Pow2Histogram a, b;
  a.Add(1);
  a.Add(5);
  b.Add(5);
  b.Add(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4);
  EXPECT_EQ(a.sum(), 311u);
  EXPECT_EQ(a.max(), 300u);
  EXPECT_EQ(a.bucket(1), 1);
  EXPECT_EQ(a.bucket(3), 2);  // two 5s
  EXPECT_EQ(a.bucket(9), 1);  // [256,512)
}

TEST(Pow2HistogramTest, ToStringIsSparse) {
  Pow2Histogram h;
  h.Add(0);
  h.Add(3);
  std::string s = h.ToString();
  EXPECT_NE(s.find("count=2"), std::string::npos) << s;
  EXPECT_NE(s.find("max=3"), std::string::npos) << s;
  EXPECT_NE(s.find("0=1"), std::string::npos) << s;
  EXPECT_NE(s.find("[2,4)=1"), std::string::npos) << s;
  // Empty buckets stay out of the rendering.
  EXPECT_EQ(s.find("[4,8)"), std::string::npos) << s;
}

// ---------------------------------------------------------------------------
// ShardedCounter / ShardedHistogram / MetricsRegistry
// ---------------------------------------------------------------------------

TEST(ShardedCounterTest, TotalsAcrossShards) {
  ShardedCounter counter(4);
  counter.Add(0, 5);
  counter.Add(3, 7);
  counter.Add(0, 1);
  EXPECT_EQ(counter.num_shards(), 4);
  EXPECT_EQ(counter.shard_value(0), 6);
  EXPECT_EQ(counter.shard_value(1), 0);
  EXPECT_EQ(counter.shard_value(3), 7);
  EXPECT_EQ(counter.Total(), 13);
}

TEST(ShardedCounterTest, ConcurrentIncrementsAreExact) {
  constexpr int kShards = 8;
  constexpr int64_t kPerThread = 20000;
  ShardedCounter counter(kShards);
  std::vector<std::thread> threads;
  for (int shard = 0; shard < kShards; ++shard) {
    threads.emplace_back([&counter, shard] {
      for (int64_t i = 0; i < kPerThread; ++i) counter.Add(shard, 1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Total(), kShards * kPerThread);
}

TEST(ShardedHistogramTest, MergedAcrossShards) {
  ShardedHistogram hist(3);
  hist.Add(0, 1);
  hist.Add(1, 1);
  hist.Add(2, 9);
  Pow2Histogram merged = hist.Merged();
  EXPECT_EQ(merged.count(), 3);
  EXPECT_EQ(merged.bucket(1), 2);
  EXPECT_EQ(merged.bucket(4), 1);
  EXPECT_EQ(merged.max(), 9u);
}

TEST(MetricsRegistryTest, SnapshotsInNameOrder) {
  MetricsRegistry registry(2);
  ShardedCounter* b = registry.AddCounter("b_counter", "second");
  ShardedCounter* a = registry.AddCounter("a_counter", "first");
  // Re-registering a name returns the same instrument.
  EXPECT_EQ(registry.AddCounter("a_counter", "first"), a);
  a->Add(0, 1);
  b->Add(1, 2);
  registry.AddHistogram("latency", "help")->Add(0, 4);

  std::vector<CounterSnapshot> counters = registry.SnapshotCounters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].name, "a_counter");
  EXPECT_EQ(counters[0].total, 1);
  EXPECT_EQ(counters[0].per_shard, (std::vector<int64_t>{1, 0}));
  EXPECT_EQ(counters[1].name, "b_counter");
  EXPECT_EQ(counters[1].total, 2);

  std::vector<HistogramSnapshot> histograms = registry.SnapshotHistograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].name, "latency");
  EXPECT_EQ(histograms[0].merged.count(), 1);
}

// ---------------------------------------------------------------------------
// Timeline
// ---------------------------------------------------------------------------

TimelinePoint PointAt(Timestamp t) {
  TimelinePoint point;
  point.time = t;
  return point;
}

TEST(TimelineTest, RingKeepsMostRecentOldestFirst) {
  Timeline timeline(3);
  for (Timestamp t = 0; t < 5; ++t) timeline.Push(PointAt(t));
  EXPECT_EQ(timeline.size(), 3u);
  EXPECT_EQ(timeline.total_pushed(), 5);
  EXPECT_EQ(timeline.dropped(), 2);
  std::vector<TimelinePoint> points = timeline.Snapshot();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].time, 2);
  EXPECT_EQ(points[1].time, 3);
  EXPECT_EQ(points[2].time, 4);
}

TEST(TimelineTest, PartialFill) {
  Timeline timeline(8);
  timeline.Push(PointAt(42));
  EXPECT_EQ(timeline.size(), 1u);
  EXPECT_EQ(timeline.dropped(), 0);
  ASSERT_EQ(timeline.Snapshot().size(), 1u);
  EXPECT_EQ(timeline.Snapshot()[0].time, 42);
}

TEST(TimelinePointTest, ActivityFraction) {
  TimelinePoint point;
  EXPECT_DOUBLE_EQ(point.activity(), 1.0);  // idle tick counts as active
  point.executed_chains = 1;
  point.suspended_chains = 3;
  EXPECT_DOUBLE_EQ(point.activity(), 0.25);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(TraceRecorderTest, RecordsSpansAndRendersChromeFormat) {
  TraceRecorder recorder;
  recorder.Record("alpha", 10, 5);
  recorder.Record("be\"ta", 20, 1);  // name is escaped in the JSON
  EXPECT_EQ(recorder.size(), 2u);
  std::string json = recorder.ToJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"be\\\"ta\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos) << json;
}

TEST(TraceRecorderTest, SpansReportIntoCurrentScope) {
  TraceRecorder recorder;
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
  {
    TraceScope scope(&recorder);
    EXPECT_EQ(TraceRecorder::Current(), &recorder);
    CAESAR_TRACE_SPAN("scoped");
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
#ifndef CAESAR_DISABLE_TRACING
  EXPECT_EQ(recorder.size(), 1u);
  EXPECT_NE(recorder.ToJson().find("\"name\":\"scoped\""), std::string::npos);
#endif
  // Spans opened with no recorder installed go nowhere (and don't crash).
  CAESAR_TRACE_SPAN("orphan");
}

TEST(TraceRecorderTest, WriteJsonRejectsBadPath) {
  TraceRecorder recorder;
  EXPECT_FALSE(recorder.WriteJson("/nonexistent-dir/trace.json").ok());
}

// ---------------------------------------------------------------------------
// Granularity names
// ---------------------------------------------------------------------------

TEST(MetricsGranularityTest, NamesRoundTrip) {
  for (MetricsGranularity g :
       {MetricsGranularity::kOff, MetricsGranularity::kEngine,
        MetricsGranularity::kOperator}) {
    MetricsGranularity parsed;
    ASSERT_TRUE(ParseMetricsGranularity(MetricsGranularityName(g), &parsed));
    EXPECT_EQ(parsed, g);
  }
  MetricsGranularity parsed;
  EXPECT_FALSE(ParseMetricsGranularity("bogus", &parsed));
}

// ---------------------------------------------------------------------------
// Exporters: golden files and cross-thread determinism
// ---------------------------------------------------------------------------

// A small deterministic workload: two temperature sensors (partitions)
// driving a context switch and an alert query. No RNG, no wall-clock
// dependence in the deterministic export.
constexpr char kModel[] = R"(
CONTEXTS normal, overheated DEFAULT normal;
PARTITION BY sensor;

QUERY detect_overheat
SWITCH CONTEXT overheated
PATTERN Temperature t
WHERE t.celsius > 90
CONTEXT normal;

QUERY detect_cooldown
SWITCH CONTEXT normal
PATTERN Temperature t
WHERE t.celsius <= 75
CONTEXT overheated;

QUERY alert
DERIVE OverheatAlert(t.sensor AS sensor, t.celsius AS celsius, t.sec AS sec)
PATTERN Temperature t
WHERE t.celsius > 95
CONTEXT overheated;
)";

StatisticsReport RunFixture(int num_threads, const std::string& tenant = "") {
  TypeRegistry registry;
  TypeId temperature =
      registry.RegisterOrGet("Temperature", {{"sensor", ValueType::kInt},
                                             {"celsius", ValueType::kDouble},
                                             {"sec", ValueType::kInt}});
  auto model = ParseModel(kModel, &registry);
  CAESAR_CHECK_OK(model.status());
  auto plan = TranslateModel(model.value(), PlanOptions());
  CAESAR_CHECK_OK(plan.status());

  EngineOptions options;
  options.num_threads = num_threads;
  options.gather_statistics = true;
  options.metrics = MetricsGranularity::kOperator;
  options.tenant = tenant;
  Engine engine(std::move(plan).value(), options);

  const double readings[] = {70, 80, 93, 97, 99, 85, 70, 65, 98, 72};
  EventBatch input;
  for (int64_t sensor = 1; sensor <= 2; ++sensor) {
    for (int t = 0; t < 10; ++t) {
      input.push_back(MakeEvent(
          temperature, t,
          {Value(sensor), Value(readings[t] + static_cast<double>(sensor)),
           Value(int64_t{t})}));
    }
  }
  std::sort(input.begin(), input.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return a->time() < b->time();
            });
  engine.Run(input).value();
  return engine.CollectStatistics();
}

std::string GoldenPath(const std::string& name) {
  return std::string(CAESAR_TEST_SRCDIR) + "/golden/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with CAESAR_REGEN_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = GoldenPath(name);
  if (std::getenv("CAESAR_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  EXPECT_EQ(ReadFileOrDie(path), actual)
      << "export format drifted from " << path
      << "; regenerate with CAESAR_REGEN_GOLDEN=1 if intended";
}

TEST(ExportGoldenTest, DeterministicJsonMatchesGoldenFile) {
  ExportOptions options;
  options.deterministic = true;
  CheckGolden("observability_metrics.json",
              StatisticsToJson(RunFixture(/*num_threads=*/1), options));
}

TEST(ExportGoldenTest, DeterministicPrometheusMatchesGoldenFile) {
  ExportOptions options;
  options.deterministic = true;
  CheckGolden("observability_metrics.prom",
              StatisticsToPrometheus(RunFixture(/*num_threads=*/1), options));
}

TEST(ExportDeterminismTest, JsonAndPrometheusByteIdenticalAcrossThreads) {
  ExportOptions options;
  options.deterministic = true;
  StatisticsReport serial = RunFixture(1);
  const std::string json = StatisticsToJson(serial, options);
  const std::string prom = StatisticsToPrometheus(serial, options);
  EXPECT_NE(json.find("\"schema_version\""), std::string::npos);
  for (int num_threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(num_threads));
    StatisticsReport parallel = RunFixture(num_threads);
    EXPECT_EQ(json, StatisticsToJson(parallel, options));
    EXPECT_EQ(prom, StatisticsToPrometheus(parallel, options));
  }
}

TEST(ExportDeterminismTest, FullExportCarriesTimingAndExecutorSections) {
  // The non-deterministic (default) form keeps what the deterministic form
  // drops: wall-clock stats and, for parallel runs, the executor section
  // and per-worker counter breakdowns.
  StatisticsReport report = RunFixture(4);
  std::string json = StatisticsToJson(report);
  EXPECT_NE(json.find("scheduler_seconds"), std::string::npos);
  EXPECT_NE(json.find("\"executor\""), std::string::npos);
  EXPECT_NE(json.find("per_shard"), std::string::npos);

  ExportOptions det;
  det.deterministic = true;
  std::string deterministic = StatisticsToJson(report, det);
  EXPECT_EQ(deterministic.find("scheduler_seconds"), std::string::npos);
  EXPECT_EQ(deterministic.find("\"executor\""), std::string::npos);
  EXPECT_EQ(deterministic.find("per_shard"), std::string::npos);
}

TEST(TenantLabelTest, EmptyTenantLeavesExportsUntouched) {
  // Library use (no tenant) must emit exactly the pre-tenant byte stream —
  // the golden tests above pin this, but assert the mechanism directly.
  ExportOptions options;
  options.deterministic = true;
  StatisticsReport report = RunFixture(1);
  EXPECT_EQ(report.tenant, "");
  EXPECT_EQ(StatisticsToJson(report, options).find("tenant"),
            std::string::npos);
  EXPECT_EQ(StatisticsToPrometheus(report, options).find("tenant"),
            std::string::npos);
}

TEST(TenantLabelTest, TenantFlowsFromEngineOptionsToEverySeries) {
  ExportOptions options;
  options.deterministic = true;
  StatisticsReport report = RunFixture(1, "acme-7");
  EXPECT_EQ(report.tenant, "acme-7");

  const std::string json = StatisticsToJson(report, options);
  EXPECT_NE(json.find("\"tenant\":\"acme-7\""), std::string::npos) << json;

  // Prometheus: every sample line (not comments, not blanks) carries the
  // tenant label — per-tenant series must never collide across tenants.
  const std::string prom = StatisticsToPrometheus(report, options);
  size_t samples = 0;
  size_t start = 0;
  while (start < prom.size()) {
    size_t end = prom.find('\n', start);
    if (end == std::string::npos) end = prom.size();
    std::string line = prom.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++samples;
    EXPECT_NE(line.find("tenant=\"acme-7\""), std::string::npos) << line;
  }
  EXPECT_GT(samples, 0u);
}

TEST(TenantLabelTest, ApartFromTheLabelExportsMatchTenantless) {
  // The tenant dimension is purely additive: strip the label text and the
  // tenant export is byte-identical to the library export.
  ExportOptions options;
  options.deterministic = true;
  const std::string bare = StatisticsToJson(RunFixture(1), options);
  std::string labeled = StatisticsToJson(RunFixture(1, "acme-7"), options);
  const std::string field = "\"tenant\":\"acme-7\",";
  size_t at = labeled.find(field);
  ASSERT_NE(at, std::string::npos);
  labeled.erase(at, field.size());
  EXPECT_EQ(labeled, bare);
}

TEST(ExportDeterminismTest, ReportToStringMentionsTelemetry) {
  StatisticsReport report = RunFixture(1);
  std::string text = report.ToString();
  EXPECT_NE(text.find("ticks:"), std::string::npos) << text;
  EXPECT_NE(text.find("timeline:"), std::string::npos) << text;
  EXPECT_NE(text.find("counter transactions"), std::string::npos) << text;
  EXPECT_NE(text.find("work/invocation"), std::string::npos) << text;
}

}  // namespace
}  // namespace caesar
