// Tests for src/compile: the pattern-to-automaton compiler and the
// automaton-backed pattern operator.
//
// The compile corpus (tests/compile_corpus/*.caesar) pins the compiler's
// deterministic dump byte-for-byte, one fixture per pattern shape: SEQ
// depth 1 (pass-through) through 4, interior and leading negation, the
// default WITHIN, and a consumer chain over a derived type. Goldens are
// regenerable with `caesar_lint --dump-automaton <fixture>`. Operator
// semantics are pinned differentially against the interpreted PatternOp —
// the two must render byte-identically on the same input.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algebra/pattern_op.h"
#include "compile/automaton.h"
#include "compile/compiled_pattern_op.h"
#include "compile/compiler.h"
#include "expr/compiled.h"
#include "expr/parser.h"
#include "plan/translator.h"
#include "query/model.h"
#include "query/parser.h"
#include "runtime/context_vector.h"

namespace caesar {
namespace {

std::string ReadFile(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

// Mirrors `caesar_lint --dump-automaton`: strict parse, translate with
// default options, dump every pattern query's automaton.
std::string DumpFixture(const std::filesystem::path& path,
                        const PatternCompileOptions& compile_options = {}) {
  TypeRegistry registry;
  ParseModelOptions parse_options;
  parse_options.source_name = path.filename().string();
  auto model = ParseModel(ReadFile(path), &registry, parse_options);
  EXPECT_TRUE(model.ok()) << model.status();
  if (!model.ok()) return "<parse error>";
  auto dumped =
      DumpModelAutomatons(model.value(), PlanOptions{}, compile_options);
  EXPECT_TRUE(dumped.ok()) << dumped.status();
  return dumped.ok() ? dumped.value() : "<dump error>";
}

TEST(CompileCorpusTest, FixturesMatchGoldens) {
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "compile_corpus";
  int fixtures = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".caesar") continue;
    ++fixtures;
    std::filesystem::path golden = entry.path();
    golden.replace_extension(".expected");
    EXPECT_EQ(DumpFixture(entry.path()), ReadFile(golden))
        << "fixture " << entry.path().filename()
        << " drifted; regenerate with tools/caesar_lint --dump-automaton";
  }
  EXPECT_GE(fixtures, 11) << "compile corpus went missing";
}

TEST(CompileCorpusTest, NoAbsintGoldensMatchWithPassDisabled) {
  // Paired goldens: every *.noabsint.expected pins the same fixture's
  // dump with the abstract-interpretation pass switched off — the
  // documented "off switch is byte-identical to a compiler without the
  // pass" contract.
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "compile_corpus";
  int paired = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    const std::string suffix = ".noabsint.expected";
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    ++paired;
    std::filesystem::path fixture = dir / name;
    fixture.replace_extension().replace_extension(".caesar");
    PatternCompileOptions off;
    off.absint = false;
    EXPECT_EQ(DumpFixture(fixture, off), ReadFile(entry.path()))
        << "fixture " << fixture.filename()
        << " drifted; regenerate with tools/caesar_lint --dump-automaton "
           "--no-absint";
  }
  EXPECT_GE(paired, 3) << "no-absint goldens went missing";
}

TEST(CompileCorpusTest, DumpIsDeterministic) {
  const std::filesystem::path dir =
      std::filesystem::path(CAESAR_TEST_SRCDIR) / "compile_corpus";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".caesar") continue;
    EXPECT_EQ(DumpFixture(entry.path()), DumpFixture(entry.path()))
        << entry.path().filename();
  }
}

// ---- Compiler unit tests ---------------------------------------------

class CompileTest : public ::testing::Test {
 protected:
  CompileTest() : contexts_(4, 0) {
    a_type_ = registry_.RegisterOrGet("A", {{"x", ValueType::kInt}});
    b_type_ = registry_.RegisterOrGet("B", {{"x", ValueType::kInt}});
    out_type_ = registry_.RegisterOrGet(
        "AB", {{"a.x", ValueType::kInt}, {"b.x", ValueType::kInt}});
    ctx_.contexts = &contexts_;
    ctx_.registry = &registry_;
    ctx_.ops_counter = &ops_;
  }

  EventPtr MakeA(int64_t x, Timestamp t) {
    return MakeEvent(a_type_, t, {Value(x)});
  }
  EventPtr MakeB(int64_t x, Timestamp t) {
    return MakeEvent(b_type_, t, {Value(x)});
  }

  // Compiles `text` against bindings (a: A, b: B) in slot order.
  std::shared_ptr<const CompiledExpr> Predicate(const std::string& text) {
    BindingSet bindings;
    bindings.Add({"a", a_type_, &registry_.type(a_type_).schema});
    bindings.Add({"b", b_type_, &registry_.type(b_type_).schema});
    auto expr = ParseExpr(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto compiled = Compile(expr.value(), bindings);
    EXPECT_TRUE(compiled.ok()) << compiled.status();
    return std::shared_ptr<const CompiledExpr>(std::move(compiled).value());
  }

  // SEQ(A a, B b) WITHIN `within` with `predicates` on the B position.
  std::shared_ptr<const PatternOpConfig> SeqABConfig(
      Timestamp within,
      std::vector<std::shared_ptr<const CompiledExpr>> predicates = {}) {
    auto config = std::make_shared<PatternOpConfig>();
    config->positions.resize(2);
    config->positions[0].type_id = a_type_;
    config->positions[1].type_id = b_type_;
    config->positions[1].predicates = std::move(predicates);
    config->output_type = out_type_;
    config->within = within;
    config->description = "SEQ(A a, B b)";
    return config;
  }

  std::string Render(const EventBatch& batch) {
    std::string out;
    for (const EventPtr& event : batch) {
      out += event->ToString(registry_) + "\n";
    }
    return out;
  }

  TypeRegistry registry_;
  TypeId a_type_ = kInvalidTypeId;
  TypeId b_type_ = kInvalidTypeId;
  TypeId out_type_ = kInvalidTypeId;
  ContextBitVector contexts_;
  uint64_t ops_ = 0;
  OpExecContext ctx_;
};

TEST_F(CompileTest, WidePatternIsUnsupported) {
  PatternOpConfig config;
  config.positions.resize(kMaxCompiledPositions + 1);
  for (auto& position : config.positions) position.type_id = a_type_;
  EXPECT_FALSE(CompileSupported(config));
  config.positions.resize(kMaxCompiledPositions);
  EXPECT_TRUE(CompileSupported(config));
}

TEST_F(CompileTest, PredicatesSortByExpectedCostPerRejection) {
  // Config order: ordering guard (sel 0.5) before equality guard (sel 0.1).
  // Equal cost, so the equality guard's better rejection rate wins.
  auto automaton = CompilePattern(
      SeqABConfig(10, {Predicate("b.x > a.x"), Predicate("b.x = 3")}));
  ASSERT_EQ(automaton->transitions.size(), 2u);
  const auto& guards = automaton->transitions[1].predicates;
  ASSERT_EQ(guards.size(), 2u);
  EXPECT_EQ(guards[0].config_index, 1);  // b.x = 3
  EXPECT_EQ(guards[1].config_index, 0);  // b.x > a.x
  EXPECT_LT(guards[0].rank(), guards[1].rank());
}

TEST_F(CompileTest, DispatchCoversNonInitialStates) {
  auto automaton = CompilePattern(SeqABConfig(10));
  EXPECT_EQ(automaton->num_states(), 3);
  // State 0 is fed by fresh events, not the dispatch table.
  EXPECT_EQ(automaton->StatesAwaiting(a_type_), nullptr);
  const std::vector<int>* awaiting_b = automaton->StatesAwaiting(b_type_);
  ASSERT_NE(awaiting_b, nullptr);
  ASSERT_EQ(awaiting_b->size(), 1u);
  EXPECT_EQ((*awaiting_b)[0], 1);
}

// ---- Operator semantics (differential against PatternOp) -------------

TEST_F(CompileTest, CompiledMatchesInterpretedOnSeq) {
  auto config = SeqABConfig(10, {Predicate("b.x >= a.x")});
  PatternOp interpreted(config);
  CompiledPatternOp compiled(CompilePattern(config));

  // Interleaved batch with multiple live partials, a predicate reject
  // (B 0 < A 1), a within reject (B at t=15 vs A at t=1), and two matches.
  EventBatch input = {MakeA(1, 1), MakeA(2, 2), MakeB(0, 3),
                      MakeB(2, 4),  MakeA(5, 5), MakeB(2, 15)};
  EventBatch interpreted_out;
  EventBatch compiled_out;
  interpreted.Process(input, &interpreted_out, &ctx_);
  compiled.Process(input, &compiled_out, &ctx_);
  EXPECT_GT(interpreted_out.size(), 0u);
  EXPECT_EQ(Render(interpreted_out), Render(compiled_out));
}

TEST_F(CompileTest, ExpiryDropsStaleRuns) {
  CompiledPatternOp op(CompilePattern(SeqABConfig(10)));
  EventBatch out;
  EventBatch first = {MakeA(1, 0), MakeA(2, 5)};
  op.Process(first, &out, &ctx_);
  EXPECT_EQ(op.num_runs(), 2u);
  // Batch at t=100: everything older than 100 - within expires up front.
  EventBatch second = {MakeA(3, 100)};
  op.Process(second, &out, &ctx_);
  EXPECT_EQ(op.num_runs(), 1u);
  op.Reset();
  EXPECT_EQ(op.num_runs(), 0u);
  EXPECT_TRUE(out.empty());
}

TEST_F(CompileTest, CloneStartsEmpty) {
  CompiledPatternOp op(CompilePattern(SeqABConfig(10)));
  EventBatch out;
  EventBatch input = {MakeA(1, 0)};
  op.Process(input, &out, &ctx_);
  EXPECT_EQ(op.num_runs(), 1u);
  auto clone = op.Clone();
  EXPECT_EQ(clone->kind(), Operator::Kind::kCompiledPattern);
  EXPECT_EQ(static_cast<CompiledPatternOp*>(clone.get())->num_runs(), 0u);
}

TEST_F(CompileTest, CostEstimatesMatchInterpretedOperator) {
  auto config = SeqABConfig(10);
  PatternOp interpreted(config);
  CompiledPatternOp compiled(CompilePattern(config));
  EXPECT_EQ(compiled.UnitCost(), interpreted.UnitCost());
  EXPECT_EQ(compiled.Selectivity(), interpreted.Selectivity());
}

}  // namespace
}  // namespace caesar
