// Unit tests for src/event: Value semantics, schemas, the type registry,
// and event construction.

#include <gtest/gtest.h>

#include "event/event.h"
#include "event/schema.h"
#include "event/value.h"

namespace caesar {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("exit").AsString(), "exit");
}

TEST(ValueTest, NumericCoercionInEquality) {
  EXPECT_EQ(Value(int64_t{3}), Value(3.0));
  EXPECT_NE(Value(int64_t{3}), Value(3.5));
  EXPECT_NE(Value(int64_t{3}), Value("3"));
  EXPECT_EQ(Value(), Value());
  EXPECT_NE(Value(), Value(int64_t{0}));
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value(int64_t{1}).Compare(Value(2.0)), 0);
  EXPECT_GT(Value(5.0).Compare(Value(int64_t{4})), 0);
  EXPECT_EQ(Value(int64_t{4}).Compare(Value(int64_t{4})), 0);
  EXPECT_LT(Value("abc").Compare(Value("abd")), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
  EXPECT_EQ(Value().ToString(), "null");
}

TEST(SchemaTest, IndexLookup) {
  Schema schema({{"vid", ValueType::kInt},
                 {"speed", ValueType::kDouble},
                 {"lane", ValueType::kString}});
  EXPECT_EQ(schema.num_attributes(), 3);
  EXPECT_EQ(schema.IndexOf("vid"), 0);
  EXPECT_EQ(schema.IndexOf("lane"), 2);
  EXPECT_EQ(schema.IndexOf("missing"), -1);
  EXPECT_EQ(schema.attribute(1).type, ValueType::kDouble);
}

TEST(TypeRegistryTest, RegisterAndLookup) {
  TypeRegistry registry;
  auto id = registry.Register("PositionReport", {{"vid", ValueType::kInt}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(registry.Lookup("PositionReport"), id.value());
  EXPECT_EQ(registry.Lookup("Nope"), kInvalidTypeId);
  EXPECT_EQ(registry.type(id.value()).name, "PositionReport");
  EXPECT_EQ(registry.num_types(), 1);
}

TEST(TypeRegistryTest, DuplicateNameFails) {
  TypeRegistry registry;
  ASSERT_TRUE(registry.Register("A", {}).ok());
  Result<TypeId> dup = registry.Register("A", {});
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(TypeRegistryTest, RegisterOrGetReturnsExisting) {
  TypeRegistry registry;
  TypeId a = registry.RegisterOrGet("A", {{"x", ValueType::kInt}});
  TypeId b = registry.RegisterOrGet("A", {{"y", ValueType::kDouble}});
  EXPECT_EQ(a, b);
  // Existing schema wins.
  EXPECT_EQ(registry.type(a).schema.IndexOf("x"), 0);
}

TEST(EventTest, SimpleEventTimes) {
  EventPtr e = MakeEvent(0, 42, {Value(int64_t{1})});
  EXPECT_EQ(e->time(), 42);
  EXPECT_EQ(e->start_time(), 42);
  EXPECT_EQ(e->end_time(), 42);
  EXPECT_EQ(e->num_values(), 1);
}

TEST(EventTest, ComplexEventInterval) {
  EventPtr e = MakeComplexEvent(1, 10, 20, {});
  EXPECT_EQ(e->start_time(), 10);
  EXPECT_EQ(e->end_time(), 20);
  // A complex event "happens" when it completes.
  EXPECT_EQ(e->time(), 20);
}

TEST(EventTest, ToStringIncludesTypeAndAttrs) {
  TypeRegistry registry;
  TypeId id = registry.RegisterOrGet("P", {{"vid", ValueType::kInt}});
  EventPtr e = MakeEvent(id, 5, {Value(int64_t{9})});
  EXPECT_EQ(e->ToString(registry), "P@5(vid=9)");
}

TEST(EventBatchTest, TimeOrderedCheck) {
  EventBatch batch;
  batch.push_back(MakeEvent(0, 1, {}));
  batch.push_back(MakeEvent(0, 2, {}));
  batch.push_back(MakeEvent(0, 2, {}));
  EXPECT_TRUE(IsTimeOrdered(batch));
  batch.push_back(MakeEvent(0, 1, {}));
  EXPECT_FALSE(IsTimeOrdered(batch));
}

}  // namespace
}  // namespace caesar
