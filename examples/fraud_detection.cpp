// Financial fraud monitoring: a third application domain (the paper's
// introduction cites financial fraud [30] as a classic CEP application),
// showing overlapping contexts and SEQ patterns with negation in the query
// language.
//
// Per account, two contexts can hold concurrently:
//   - `watch`   — the account made a high-value transaction recently;
//   - `travel`  — the account transacted far from its home region.
// A rapid-fire pattern (three transactions within a minute, no logout in
// between) is only evaluated while the account is on the watch list, and a
// "card-present abroad" check only during travel.
//
//   ./build/examples/fraud_detection

#include <cstdio>

#include "common/rng.h"
#include "event/event.h"
#include "event/schema.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace {

constexpr char kModel[] = R"(
CONTEXTS quiet, watch, travel DEFAULT quiet;
PARTITION BY account;

-- Large transactions arm the watch list (overlaps travel).
QUERY arm_watch
INITIATE CONTEXT watch
PATTERN Transaction t
WHERE t.amount > 5000
CONTEXT quiet, travel;

QUERY disarm_watch
TERMINATE CONTEXT watch
PATTERN Quiet q
CONTEXT watch;

-- Transactions far from the home region start the travel context.
QUERY start_travel
INITIATE CONTEXT travel
PATTERN Transaction t
WHERE t.distance > 500
CONTEXT quiet, watch;

QUERY end_travel
TERMINATE CONTEXT travel
PATTERN Transaction t
WHERE t.distance < 50
CONTEXT travel;

-- Only while on the watch list: three transactions within a minute with no
-- logout in between.
QUERY rapid_fire
DERIVE RapidFire(t1.account AS account, t1.sec AS first_sec, t3.sec AS last_sec)
PATTERN SEQ(Transaction t1, NOT Logout l, Transaction t2, Transaction t3) WITHIN 60
WHERE l.account = t1.account AND t3.amount > 100
CONTEXT watch;

-- Only while traveling: a duplicate-location pair suggesting a cloned card.
QUERY cloned_card
DERIVE ClonedCard(a.account AS account, a.sec AS sec)
PATTERN SEQ(Transaction a, Transaction b) WITHIN 30
WHERE a.distance > 500 AND b.distance < 100 AND b.sec - a.sec < 10
CONTEXT travel;
)";

}  // namespace

int main() {
  using namespace caesar;

  TypeRegistry registry;
  TypeId transaction =
      registry.RegisterOrGet("Transaction", {{"account", ValueType::kInt},
                                             {"amount", ValueType::kInt},
                                             {"distance", ValueType::kInt},
                                             {"sec", ValueType::kInt}});
  TypeId logout = registry.RegisterOrGet(
      "Logout", {{"account", ValueType::kInt}, {"sec", ValueType::kInt}});
  TypeId quiet_marker =
      registry.RegisterOrGet("Quiet", {{"account", ValueType::kInt},
                                       {"sec", ValueType::kInt}});

  Result<CaesarModel> model = ParseModel(kModel, &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  Result<ExecutablePlan> plan =
      OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  Engine engine(std::move(plan).value(), EngineOptions());

  // Synthesize account activity: account 1 goes on a spending spree (watch
  // list + rapid fire); account 2 travels and shows a cloned-card pattern.
  Rng rng(99);
  EventBatch stream;
  auto txn = [&](int64_t account, int64_t amount, int64_t distance,
                 Timestamp sec) {
    stream.push_back(MakeEvent(
        transaction, sec,
        {Value(account), Value(amount), Value(distance), Value(sec)}));
  };
  // Background noise.
  for (Timestamp t = 0; t < 300; t += 7) {
    txn(3, rng.Uniform(10, 200), rng.Uniform(0, 40), t);
  }
  // Account 1: large purchase arms the watch list, then rapid fire.
  txn(1, 8000, 10, 40);
  txn(1, 150, 12, 55);
  txn(1, 300, 11, 63);
  // Account 1 again, but a logout breaks the pattern.
  txn(1, 200, 10, 100);
  stream.push_back(
      MakeEvent(logout, 105, {Value(int64_t{1}), Value(int64_t{105})}));
  txn(1, 400, 12, 110);
  txn(1, 500, 12, 115);
  // Account 2: travel + cloned card (far and near transactions 8 s apart).
  txn(2, 900, 800, 150);
  txn(2, 120, 20, 158);
  std::sort(stream.begin(), stream.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return a->time() < b->time();
            });

  EventBatch findings;
  RunStats stats = engine.Run(stream, &findings).value();

  std::printf("fraud findings:\n");
  for (const EventPtr& finding : findings) {
    std::printf("  %s\n", finding->ToString(registry).c_str());
  }
  std::printf("\nrun summary:\n%s\n", stats.ToString().c_str());
  return 0;
}
