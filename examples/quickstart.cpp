// Quickstart: the smallest complete CAESAR application.
//
// A temperature sensor stream drives two contexts — `normal` (default) and
// `overheated` — and one alert query that only runs while the system is
// overheated. The model is written in the CAESAR query language, optimized
// (context window push-down), and executed over a small generated stream.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "event/event.h"
#include "event/schema.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "runtime/engine.h"

namespace {

constexpr char kModel[] = R"(
CONTEXTS normal, overheated DEFAULT normal;
PARTITION BY sensor;

QUERY detect_overheat
SWITCH CONTEXT overheated
PATTERN Temperature t
WHERE t.celsius > 90
CONTEXT normal;

QUERY detect_cooldown
SWITCH CONTEXT normal
PATTERN Temperature t
WHERE t.celsius <= 75
CONTEXT overheated;

QUERY alert
DERIVE OverheatAlert(t.sensor AS sensor, t.celsius AS celsius, t.sec AS sec)
PATTERN Temperature t
WHERE t.celsius > 95
CONTEXT overheated;
)";

}  // namespace

int main() {
  using namespace caesar;

  // 1. Register the input event type.
  TypeRegistry registry;
  TypeId temperature =
      registry.RegisterOrGet("Temperature", {{"sensor", ValueType::kInt},
                                             {"celsius", ValueType::kDouble},
                                             {"sec", ValueType::kInt}});

  // 2. Parse the context-aware model and build an optimized plan.
  Result<CaesarModel> model = ParseModel(kModel, &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "model error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  Result<ExecutablePlan> plan = OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // 3. Run a stream through the engine.
  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch input;
  const double readings[] = {70, 80, 93, 97, 99, 85, 70, 65, 98, 72};
  for (int t = 0; t < 10; ++t) {
    input.push_back(MakeEvent(
        temperature, t,
        {Value(int64_t{1}), Value(readings[t]), Value(int64_t{t})}));
  }
  EventBatch alerts;
  RunStats stats = engine.Run(input, &alerts).value();

  // 4. Inspect the derived complex events.
  std::printf("derived %lld alert(s):\n",
              static_cast<long long>(stats.derived_events));
  for (const EventPtr& alert : alerts) {
    std::printf("  %s\n", alert->ToString(registry).c_str());
  }
  std::printf("\n%lld of %lld query executions were suspended "
              "(context-aware savings)\n",
              static_cast<long long>(stats.suspended_chains),
              static_cast<long long>(stats.suspended_chains +
                                     stats.executed_chains));
  // Expected output: alerts at t=3 (97), t=4 (99) and t=8 (98 re-enters
  // `overheated` at the same time stamp, since context derivation runs
  // before context processing).
  return 0;
}
