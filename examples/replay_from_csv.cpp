// Stream replay: persisting an event stream to CSV and re-running it later
// — plus Graphviz export of the model's context transition network and of
// the optimized plan.
//
//   ./build/examples/replay_from_csv [output_dir]

#include <cstdio>
#include <string>

#include "io/csv.h"
#include "io/dot.h"
#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

int main(int argc, char** argv) {
  using namespace caesar;
  std::string dir = argc > 1 ? argv[1] : "/tmp";

  // 1. Generate a small Linear Road stream and persist it.
  LinearRoadConfig config;
  config.num_segments = 4;
  config.duration = 900;
  config.accident_episodes_per_segment = 1.0;
  TypeRegistry registry;
  EventBatch stream = GenerateLinearRoadStream(config, &registry);
  std::string csv_path = dir + "/linear_road_stream.csv";
  Status write = WriteEventsCsvFile(csv_path, stream, registry);
  if (!write.ok()) {
    std::fprintf(stderr, "%s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu position reports to %s\n", stream.size(),
              csv_path.c_str());

  // 2. Reload the stream into a fresh registry (as a separate process
  // would) and run the traffic model over it.
  TypeRegistry replay_registry;
  Result<EventBatch> replayed = ReadEventsCsvFile(csv_path, &replay_registry);
  if (!replayed.ok()) {
    std::fprintf(stderr, "%s\n", replayed.status().ToString().c_str());
    return 1;
  }
  Result<CaesarModel> model =
      MakeLinearRoadModel(LinearRoadModelConfig(), &replay_registry);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  // 3. Export the context transition network (Fig. 1) and the plan (Fig. 6)
  // as Graphviz files.
  Result<ExecutablePlan> plan = OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  {
    std::string dot_path = dir + "/traffic_model.dot";
    FILE* f = std::fopen(dot_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(ModelToDot(model.value()).c_str(), f);
      std::fclose(f);
      std::printf("context transition network: %s (render with `dot -Tpng`)\n",
                  dot_path.c_str());
    }
  }
  {
    std::string dot_path = dir + "/traffic_plan.dot";
    FILE* f = std::fopen(dot_path.c_str(), "w");
    if (f != nullptr) {
      std::fputs(PlanToDot(plan.value()).c_str(), f);
      std::fclose(f);
      std::printf("optimized query plan:       %s\n", dot_path.c_str());
    }
  }

  // 4. Replay.
  Engine engine(std::move(plan).value(), EngineOptions());
  RunStats stats = engine.Run(replayed.value()).value();
  std::printf("\nreplay summary:\n%s\n", stats.ToString().c_str());
  return 0;
}
