// Metrics export: turning on the observability layer.
//
// Runs the quickstart temperature model with operator-level metrics,
// engine tracing, and statistics gathering enabled, then exports the
// collected StatisticsReport three ways:
//   - human-readable text (StatisticsReport::ToString) to stdout,
//   - JSON (StatisticsToJson) to metrics.json,
//   - Prometheus text exposition (StatisticsToPrometheus) to metrics.prom.
// The engine also writes a Chrome trace (chrome://tracing or Perfetto) to
// trace.json because EngineOptions::tracing is set.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/metrics_export
//   less metrics.json metrics.prom trace.json

#include <cstdio>
#include <fstream>

#include "event/event.h"
#include "event/schema.h"
#include "optimizer/optimizer.h"
#include "query/parser.h"
#include "runtime/engine.h"
#include "runtime/observability.h"
#include "runtime/statistics.h"

namespace {

constexpr char kModel[] = R"(
CONTEXTS normal, overheated DEFAULT normal;
PARTITION BY sensor;

QUERY detect_overheat
SWITCH CONTEXT overheated
PATTERN Temperature t
WHERE t.celsius > 90
CONTEXT normal;

QUERY detect_cooldown
SWITCH CONTEXT normal
PATTERN Temperature t
WHERE t.celsius <= 75
CONTEXT overheated;

QUERY alert
DERIVE OverheatAlert(t.sensor AS sensor, t.celsius AS celsius, t.sec AS sec)
PATTERN Temperature t
WHERE t.celsius > 95
CONTEXT overheated;
)";

bool WriteFile(const char* path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
  if (!out.good()) {
    std::fprintf(stderr, "failed to write %s\n", path);
    return false;
  }
  std::printf("wrote %s (%zu bytes)\n", path, content.size());
  return true;
}

}  // namespace

int main() {
  using namespace caesar;

  TypeRegistry registry;
  TypeId temperature =
      registry.RegisterOrGet("Temperature", {{"sensor", ValueType::kInt},
                                             {"celsius", ValueType::kDouble},
                                             {"sec", ValueType::kInt}});

  Result<CaesarModel> model = ParseModel(kModel, &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "model error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  Result<ExecutablePlan> plan = OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }

  // The observability knobs: metrics granularity, per-run statistics, and
  // trace-span recording. kOperator implies the engine-level instruments
  // plus per-operator batch/selectivity/work histograms.
  EngineOptions options;
  options.gather_statistics = true;
  options.metrics = MetricsGranularity::kOperator;
  options.tracing = true;
  options.trace_path = "trace.json";  // written when the engine is destroyed

  EventBatch input;
  const double readings[] = {70, 80, 93, 97, 99, 85, 70, 65, 98, 72};
  for (int t = 0; t < 10; ++t) {
    input.push_back(MakeEvent(
        temperature, t,
        {Value(int64_t{1}), Value(readings[t]), Value(int64_t{t})}));
  }

  StatisticsReport report;
  {
    Engine engine(std::move(plan).value(), options);
    RunStats stats = engine.Run(input).value();
    std::printf("run: %s\n\n", stats.ToString().c_str());
    report = engine.CollectStatistics();
  }  // ~Engine flushes trace.json here

  // 1. Human-readable report.
  std::printf("%s\n", report.ToString().c_str());

  // 2. JSON, in deterministic form (wall-clock fields and per-worker
  //    breakdowns omitted, so the bytes don't depend on timing or thread
  //    count — the form the golden tests pin down).
  ExportOptions deterministic;
  deterministic.deterministic = true;
  if (!WriteFile("metrics.json", StatisticsToJson(report, deterministic))) {
    return 1;
  }

  // 3. Prometheus text exposition, full form — what a /metrics scrape
  //    endpoint would serve.
  if (!WriteFile("metrics.prom", StatisticsToPrometheus(report))) return 1;
  return 0;
}
