// Traffic monitoring: the paper's motivating application (Section 1,
// Fig. 1-3) end to end on the Linear Road substrate.
//
// An intelligent traffic control center consumes vehicle position reports,
// derives the current situation per road segment (clear / congestion /
// accident), and reacts context-dependently: toll notifications during
// congestion, zero-toll during clear traffic and accidents, accident
// warnings while an accident holds. The example prints the context
// transitions of one segment and a summary of the derived events, then
// contrasts the context-aware engine with the context-independent baseline.
//
//   ./build/examples/traffic_monitoring

#include <cstdio>
#include <map>
#include <string>

#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/linear_road.h"

int main() {
  using namespace caesar;

  // Generate twenty minutes of traffic on one expressway with busy traffic
  // and a guaranteed accident.
  LinearRoadConfig traffic;
  traffic.num_xways = 1;
  traffic.num_segments = 6;
  traffic.duration = 1200;
  traffic.congestion_episodes_per_segment = 1.0;
  traffic.accident_episodes_per_segment = 1.0;
  traffic.seed = 11;

  TypeRegistry registry;
  EventBatch reports = GenerateLinearRoadStream(traffic, &registry);
  std::printf("generated %zu position reports\n", reports.size());

  Result<CaesarModel> model =
      MakeLinearRoadModel(LinearRoadModelConfig(), &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- CAESAR traffic model ---\n%s\n",
              model.value().ToString().c_str());

  Result<ExecutablePlan> plan =
      OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("--- optimized query plan ---\n%s\n",
              plan.value().DebugString().c_str());

  // Trace accidents and context-dependent outputs per minute.
  Engine engine(std::move(plan).value(), EngineOptions());
  std::map<std::string, int64_t> per_type;
  std::map<Timestamp, std::map<std::string, int>> timeline;
  engine.SetTickObserver([&](Timestamp t, const EventBatch& derived) {
    for (const EventPtr& event : derived) {
      const std::string& type = registry.type(event->type_id()).name;
      ++timeline[t / 60][type];
    }
  });
  RunStats stats = engine.Run(reports).value();

  std::printf("--- derived events per minute ---\n");
  std::printf("%6s %10s %10s %10s %10s\n", "minute", "toll", "zero_toll",
              "warnings", "accidents");
  for (const auto& [minute, counts] : timeline) {
    auto count = [&](const char* name) {
      auto it = counts.find(name);
      return it == counts.end() ? 0 : it->second;
    };
    std::printf("%6lld %10d %10d %10d %10d\n",
                static_cast<long long>(minute), count("TollNotification"),
                count("ZeroToll"), count("AccidentWarning"),
                count("Accident"));
  }

  std::printf("\n--- run summary (context-aware) ---\n%s\n",
              stats.ToString().c_str());

  // The same workload without context-awareness: every query runs all the
  // time and re-derives its contexts privately.
  Result<ExecutablePlan> baseline = BaselinePlan(model.value());
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  Engine baseline_engine(std::move(baseline).value(), EngineOptions());
  RunStats baseline_stats = baseline_engine.Run(reports).value();
  std::printf("\n--- context-independent baseline ---\n");
  std::printf("operator work units: %llu (context-aware: %llu, %.1fx less)\n",
              static_cast<unsigned long long>(baseline_stats.ops_executed),
              static_cast<unsigned long long>(stats.ops_executed),
              static_cast<double>(baseline_stats.ops_executed) /
                  static_cast<double>(stats.ops_executed));
  return 0;
}
