// Activity monitoring: the paper's second evaluation domain (the PAMAP
// physical activity data set), built programmatically rather than from
// query text — demonstrating the ModelBuilder-style API.
//
// Subjects alternate between rest and exercise; the `active` context is
// derived from movement intensity, and heart-rate escalation queries run
// only while a subject is active.
//
//   ./build/examples/activity_monitoring

#include <cstdio>
#include <map>

#include "optimizer/optimizer.h"
#include "runtime/engine.h"
#include "workloads/pamap.h"

int main() {
  using namespace caesar;

  PamapConfig stream_config;
  stream_config.num_subjects = 6;
  stream_config.duration = 2400;
  stream_config.exercise_phases_per_subject = 2.0;
  stream_config.exercise_duration = 400;
  stream_config.seed = 3;

  TypeRegistry registry;
  EventBatch reports = GeneratePamapStream(stream_config, &registry);
  std::printf("generated %zu activity reports for %d subjects\n",
              reports.size(), stream_config.num_subjects);

  PamapModelConfig model_config;
  model_config.active_queries = 3;
  Result<CaesarModel> model = MakePamapModel(model_config, &registry);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }

  Result<ExecutablePlan> plan =
      OptimizeModel(model.value(), OptimizerOptions());
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  Engine engine(std::move(plan).value(), EngineOptions());
  EventBatch derived;
  RunStats stats = engine.Run(reports, &derived).value();

  // Per-subject spike summary.
  std::map<int64_t, int> spikes_per_subject;
  for (const EventPtr& event : derived) {
    const std::string& type = registry.type(event->type_id()).name;
    if (type.rfind("HrSpike", 0) == 0) {
      ++spikes_per_subject[event->value(0).AsInt()];
    }
  }
  std::printf("\nheart-rate spikes per subject (only derived while the "
              "subject's `active` context holds):\n");
  for (const auto& [subject, spikes] : spikes_per_subject) {
    std::printf("  subject %lld: %d\n", static_cast<long long>(subject),
                spikes);
  }

  std::printf("\nrun summary:\n%s\n", stats.ToString().c_str());
  std::printf("\nsuspended executions: %lld of %lld — the heart-rate "
              "queries slept through every rest phase\n",
              static_cast<long long>(stats.suspended_chains),
              static_cast<long long>(stats.suspended_chains +
                                     stats.executed_chains));
  return 0;
}
