# Empty dependencies file for linear_road_text_test.
# This may be replaced when dependencies are built.
