# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for linear_road_text_test.
