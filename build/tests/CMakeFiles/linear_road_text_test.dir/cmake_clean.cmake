file(REMOVE_RECURSE
  "CMakeFiles/linear_road_text_test.dir/linear_road_text_test.cc.o"
  "CMakeFiles/linear_road_text_test.dir/linear_road_text_test.cc.o.d"
  "linear_road_text_test"
  "linear_road_text_test.pdb"
  "linear_road_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_road_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
