# Empty dependencies file for linear_road_test.
# This may be replaced when dependencies are built.
