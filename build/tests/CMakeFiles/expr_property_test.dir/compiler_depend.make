# Empty compiler generated dependencies file for expr_property_test.
# This may be replaced when dependencies are built.
