# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/algebra_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/linear_road_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/expr_property_test[1]_include.cmake")
include("/root/repo/build/tests/overlap_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/distributor_test[1]_include.cmake")
include("/root/repo/build/tests/calibration_test[1]_include.cmake")
include("/root/repo/build/tests/semantics_test[1]_include.cmake")
include("/root/repo/build/tests/linear_road_text_test[1]_include.cmake")
