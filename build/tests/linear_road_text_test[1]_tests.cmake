add_test([=[LinearRoadTextModelTest.TextModelMatchesProgrammaticModel]=]  /root/repo/build/tests/linear_road_text_test [==[--gtest_filter=LinearRoadTextModelTest.TextModelMatchesProgrammaticModel]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[LinearRoadTextModelTest.TextModelMatchesProgrammaticModel]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  linear_road_text_test_TESTS LinearRoadTextModelTest.TextModelMatchesProgrammaticModel)
