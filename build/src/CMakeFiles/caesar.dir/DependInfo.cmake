
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/aggregate_op.cc" "src/CMakeFiles/caesar.dir/algebra/aggregate_op.cc.o" "gcc" "src/CMakeFiles/caesar.dir/algebra/aggregate_op.cc.o.d"
  "/root/repo/src/algebra/basic_ops.cc" "src/CMakeFiles/caesar.dir/algebra/basic_ops.cc.o" "gcc" "src/CMakeFiles/caesar.dir/algebra/basic_ops.cc.o.d"
  "/root/repo/src/algebra/context_ops.cc" "src/CMakeFiles/caesar.dir/algebra/context_ops.cc.o" "gcc" "src/CMakeFiles/caesar.dir/algebra/context_ops.cc.o.d"
  "/root/repo/src/algebra/operator.cc" "src/CMakeFiles/caesar.dir/algebra/operator.cc.o" "gcc" "src/CMakeFiles/caesar.dir/algebra/operator.cc.o.d"
  "/root/repo/src/algebra/pattern_op.cc" "src/CMakeFiles/caesar.dir/algebra/pattern_op.cc.o" "gcc" "src/CMakeFiles/caesar.dir/algebra/pattern_op.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/caesar.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/caesar.dir/common/stats.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/caesar.dir/common/status.cc.o" "gcc" "src/CMakeFiles/caesar.dir/common/status.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/caesar.dir/event/event.cc.o" "gcc" "src/CMakeFiles/caesar.dir/event/event.cc.o.d"
  "/root/repo/src/event/schema.cc" "src/CMakeFiles/caesar.dir/event/schema.cc.o" "gcc" "src/CMakeFiles/caesar.dir/event/schema.cc.o.d"
  "/root/repo/src/event/value.cc" "src/CMakeFiles/caesar.dir/event/value.cc.o" "gcc" "src/CMakeFiles/caesar.dir/event/value.cc.o.d"
  "/root/repo/src/expr/analysis.cc" "src/CMakeFiles/caesar.dir/expr/analysis.cc.o" "gcc" "src/CMakeFiles/caesar.dir/expr/analysis.cc.o.d"
  "/root/repo/src/expr/compiled.cc" "src/CMakeFiles/caesar.dir/expr/compiled.cc.o" "gcc" "src/CMakeFiles/caesar.dir/expr/compiled.cc.o.d"
  "/root/repo/src/expr/expr.cc" "src/CMakeFiles/caesar.dir/expr/expr.cc.o" "gcc" "src/CMakeFiles/caesar.dir/expr/expr.cc.o.d"
  "/root/repo/src/expr/lexer.cc" "src/CMakeFiles/caesar.dir/expr/lexer.cc.o" "gcc" "src/CMakeFiles/caesar.dir/expr/lexer.cc.o.d"
  "/root/repo/src/expr/parser.cc" "src/CMakeFiles/caesar.dir/expr/parser.cc.o" "gcc" "src/CMakeFiles/caesar.dir/expr/parser.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/caesar.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/caesar.dir/io/csv.cc.o.d"
  "/root/repo/src/io/dot.cc" "src/CMakeFiles/caesar.dir/io/dot.cc.o" "gcc" "src/CMakeFiles/caesar.dir/io/dot.cc.o.d"
  "/root/repo/src/optimizer/calibration.cc" "src/CMakeFiles/caesar.dir/optimizer/calibration.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/calibration.cc.o.d"
  "/root/repo/src/optimizer/cost_model.cc" "src/CMakeFiles/caesar.dir/optimizer/cost_model.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/cost_model.cc.o.d"
  "/root/repo/src/optimizer/mqo.cc" "src/CMakeFiles/caesar.dir/optimizer/mqo.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/mqo.cc.o.d"
  "/root/repo/src/optimizer/optimizer.cc" "src/CMakeFiles/caesar.dir/optimizer/optimizer.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/optimizer.cc.o.d"
  "/root/repo/src/optimizer/overlap_analysis.cc" "src/CMakeFiles/caesar.dir/optimizer/overlap_analysis.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/overlap_analysis.cc.o.d"
  "/root/repo/src/optimizer/window_grouping.cc" "src/CMakeFiles/caesar.dir/optimizer/window_grouping.cc.o" "gcc" "src/CMakeFiles/caesar.dir/optimizer/window_grouping.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/caesar.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/caesar.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/translator.cc" "src/CMakeFiles/caesar.dir/plan/translator.cc.o" "gcc" "src/CMakeFiles/caesar.dir/plan/translator.cc.o.d"
  "/root/repo/src/query/model.cc" "src/CMakeFiles/caesar.dir/query/model.cc.o" "gcc" "src/CMakeFiles/caesar.dir/query/model.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/caesar.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/caesar.dir/query/parser.cc.o.d"
  "/root/repo/src/runtime/context_vector.cc" "src/CMakeFiles/caesar.dir/runtime/context_vector.cc.o" "gcc" "src/CMakeFiles/caesar.dir/runtime/context_vector.cc.o.d"
  "/root/repo/src/runtime/distributor.cc" "src/CMakeFiles/caesar.dir/runtime/distributor.cc.o" "gcc" "src/CMakeFiles/caesar.dir/runtime/distributor.cc.o.d"
  "/root/repo/src/runtime/engine.cc" "src/CMakeFiles/caesar.dir/runtime/engine.cc.o" "gcc" "src/CMakeFiles/caesar.dir/runtime/engine.cc.o.d"
  "/root/repo/src/runtime/statistics.cc" "src/CMakeFiles/caesar.dir/runtime/statistics.cc.o" "gcc" "src/CMakeFiles/caesar.dir/runtime/statistics.cc.o.d"
  "/root/repo/src/workloads/linear_road.cc" "src/CMakeFiles/caesar.dir/workloads/linear_road.cc.o" "gcc" "src/CMakeFiles/caesar.dir/workloads/linear_road.cc.o.d"
  "/root/repo/src/workloads/pamap.cc" "src/CMakeFiles/caesar.dir/workloads/pamap.cc.o" "gcc" "src/CMakeFiles/caesar.dir/workloads/pamap.cc.o.d"
  "/root/repo/src/workloads/synthetic.cc" "src/CMakeFiles/caesar.dir/workloads/synthetic.cc.o" "gcc" "src/CMakeFiles/caesar.dir/workloads/synthetic.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
