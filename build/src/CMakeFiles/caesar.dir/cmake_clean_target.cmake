file(REMOVE_RECURSE
  "libcaesar.a"
)
