# Empty compiler generated dependencies file for caesar.
# This may be replaced when dependencies are built.
