# Empty compiler generated dependencies file for bench_fig11a_optimizer.
# This may be replaced when dependencies are built.
