file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_optimizer.dir/bench/bench_fig11a_optimizer.cc.o"
  "CMakeFiles/bench_fig11a_optimizer.dir/bench/bench_fig11a_optimizer.cc.o.d"
  "bench/bench_fig11a_optimizer"
  "bench/bench_fig11a_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
