file(REMOVE_RECURSE
  "CMakeFiles/traffic_monitoring.dir/examples/traffic_monitoring.cpp.o"
  "CMakeFiles/traffic_monitoring.dir/examples/traffic_monitoring.cpp.o.d"
  "examples/traffic_monitoring"
  "examples/traffic_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
