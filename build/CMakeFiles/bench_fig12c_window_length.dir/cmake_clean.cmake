file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12c_window_length.dir/bench/bench_fig12c_window_length.cc.o"
  "CMakeFiles/bench_fig12c_window_length.dir/bench/bench_fig12c_window_length.cc.o.d"
  "bench/bench_fig12c_window_length"
  "bench/bench_fig12c_window_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12c_window_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
