# Empty dependencies file for bench_fig12c_window_length.
# This may be replaced when dependencies are built.
