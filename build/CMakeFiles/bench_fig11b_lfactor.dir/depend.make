# Empty dependencies file for bench_fig11b_lfactor.
# This may be replaced when dependencies are built.
