file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_lfactor.dir/bench/bench_fig11b_lfactor.cc.o"
  "CMakeFiles/bench_fig11b_lfactor.dir/bench/bench_fig11b_lfactor.cc.o.d"
  "bench/bench_fig11b_lfactor"
  "bench/bench_fig11b_lfactor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_lfactor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
