# Empty dependencies file for bench_fig12b_rate.
# This may be replaced when dependencies are built.
