# Empty compiler generated dependencies file for bench_fig14b_overlap_length.
# This may be replaced when dependencies are built.
