file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14b_overlap_length.dir/bench/bench_fig14b_overlap_length.cc.o"
  "CMakeFiles/bench_fig14b_overlap_length.dir/bench/bench_fig14b_overlap_length.cc.o.d"
  "bench/bench_fig14b_overlap_length"
  "bench/bench_fig14b_overlap_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_overlap_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
