# Empty dependencies file for bench_fig12d_window_count.
# This may be replaced when dependencies are built.
