file(REMOVE_RECURSE
  "CMakeFiles/activity_monitoring.dir/examples/activity_monitoring.cpp.o"
  "CMakeFiles/activity_monitoring.dir/examples/activity_monitoring.cpp.o.d"
  "examples/activity_monitoring"
  "examples/activity_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
