# Empty compiler generated dependencies file for replay_from_csv.
# This may be replaced when dependencies are built.
