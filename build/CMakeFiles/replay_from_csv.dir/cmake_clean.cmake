file(REMOVE_RECURSE
  "CMakeFiles/replay_from_csv.dir/examples/replay_from_csv.cpp.o"
  "CMakeFiles/replay_from_csv.dir/examples/replay_from_csv.cpp.o.d"
  "examples/replay_from_csv"
  "examples/replay_from_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_from_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
