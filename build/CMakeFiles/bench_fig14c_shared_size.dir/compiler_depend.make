# Empty compiler generated dependencies file for bench_fig14c_shared_size.
# This may be replaced when dependencies are built.
