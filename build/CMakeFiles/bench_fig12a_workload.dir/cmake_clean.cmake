file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12a_workload.dir/bench/bench_fig12a_workload.cc.o"
  "CMakeFiles/bench_fig12a_workload.dir/bench/bench_fig12a_workload.cc.o.d"
  "bench/bench_fig12a_workload"
  "bench/bench_fig12a_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12a_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
