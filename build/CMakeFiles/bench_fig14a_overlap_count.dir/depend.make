# Empty dependencies file for bench_fig14a_overlap_count.
# This may be replaced when dependencies are built.
