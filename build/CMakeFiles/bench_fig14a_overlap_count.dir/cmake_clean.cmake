file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14a_overlap_count.dir/bench/bench_fig14a_overlap_count.cc.o"
  "CMakeFiles/bench_fig14a_overlap_count.dir/bench/bench_fig14a_overlap_count.cc.o.d"
  "bench/bench_fig14a_overlap_count"
  "bench/bench_fig14a_overlap_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_overlap_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
