// Events and event batches.
//
// Simple events carry a point occurrence time; complex events derived from a
// pattern carry the interval spanning all contributing events (Section 2 of
// the paper). Events are immutable after construction and shared between
// operators via EventPtr.

#ifndef CAESAR_EVENT_EVENT_H_
#define CAESAR_EVENT_EVENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "event/schema.h"
#include "event/value.h"

namespace caesar {

// Application time stamp (the paper's linearly ordered (T, <=)). CAESAR uses
// integer ticks; Linear Road uses one tick per second.
using Timestamp = int64_t;

// An immutable event instance.
class Event {
 public:
  // Simple event occurring at `time`.
  Event(TypeId type_id, Timestamp time, std::vector<Value> values)
      : type_id_(type_id),
        start_time_(time),
        end_time_(time),
        values_(std::move(values)) {}

  // Complex event spanning [start_time, end_time].
  Event(TypeId type_id, Timestamp start_time, Timestamp end_time,
        std::vector<Value> values)
      : type_id_(type_id),
        start_time_(start_time),
        end_time_(end_time),
        values_(std::move(values)) {}

  TypeId type_id() const { return type_id_; }

  // Occurrence time used for ordering and window membership: the end of the
  // occurrence interval (a complex event "happens" when it completes).
  Timestamp time() const { return end_time_; }
  Timestamp start_time() const { return start_time_; }
  Timestamp end_time() const { return end_time_; }

  int num_values() const { return static_cast<int>(values_.size()); }
  const Value& value(int i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  std::string ToString(const TypeRegistry& registry) const;

 private:
  TypeId type_id_;
  Timestamp start_time_;
  Timestamp end_time_;
  std::vector<Value> values_;
};

using EventPtr = std::shared_ptr<const Event>;

// Convenience constructors.
EventPtr MakeEvent(TypeId type_id, Timestamp time, std::vector<Value> values);
EventPtr MakeComplexEvent(TypeId type_id, Timestamp start_time,
                          Timestamp end_time, std::vector<Value> values);

// A batch of events sharing no particular property beyond arrival order;
// the unit of data flow between operators and of context-aware routing.
using EventBatch = std::vector<EventPtr>;

// Returns true if all events in `batch` are ordered by non-decreasing time().
bool IsTimeOrdered(const EventBatch& batch);

// Index of the first event that breaks non-decreasing time() order, or -1
// if the batch is time-ordered (used for descriptive ingest errors).
ptrdiff_t FirstOutOfOrderIndex(const EventBatch& batch);

}  // namespace caesar

#endif  // CAESAR_EVENT_EVENT_H_
