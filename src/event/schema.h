// Event schemas and the event type registry.
//
// Per the paper (Section 2): "An event type E is defined by a schema which
// specifies the set of event attributes and the domains of their values."
// Types are interned in a TypeRegistry and referenced by dense integer ids
// so the hot path never compares type names.

#ifndef CAESAR_EVENT_SCHEMA_H_
#define CAESAR_EVENT_SCHEMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "event/value.h"

namespace caesar {

// Dense id of an interned event type. kInvalidTypeId marks "unresolved".
using TypeId = int32_t;
inline constexpr TypeId kInvalidTypeId = -1;

// One named, typed attribute of an event schema.
struct Attribute {
  std::string name;
  ValueType type;
};

// Ordered attribute list with by-name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Index of the attribute named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
  std::unordered_map<std::string, int> index_;
};

// A named event type with its schema.
struct EventType {
  TypeId id = kInvalidTypeId;
  std::string name;
  Schema schema;
};

// Interns event types; shared by the model, plans, and the runtime.
class TypeRegistry {
 public:
  // Registers a new type. Fails with AlreadyExists if the name is taken.
  Result<TypeId> Register(const std::string& name,
                          std::vector<Attribute> attributes);

  // Registers if absent; returns the existing id when the name is known
  // (the existing schema wins).
  TypeId RegisterOrGet(const std::string& name,
                       std::vector<Attribute> attributes);

  // Id lookup by name; kInvalidTypeId if unknown.
  TypeId Lookup(const std::string& name) const;

  // Requires a valid id.
  const EventType& type(TypeId id) const;

  int num_types() const { return static_cast<int>(types_.size()); }

 private:
  std::vector<std::unique_ptr<EventType>> types_;
  std::unordered_map<std::string, TypeId> by_name_;
};

}  // namespace caesar

#endif  // CAESAR_EVENT_SCHEMA_H_
