#include "event/event.h"

#include <sstream>

namespace caesar {

std::string Event::ToString(const TypeRegistry& registry) const {
  std::ostringstream os;
  const EventType& type = registry.type(type_id_);
  os << type.name << "@";
  if (start_time_ == end_time_) {
    os << end_time_;
  } else {
    os << "[" << start_time_ << "," << end_time_ << "]";
  }
  os << "(";
  for (int i = 0; i < num_values(); ++i) {
    if (i > 0) os << ", ";
    if (i < type.schema.num_attributes()) {
      os << type.schema.attribute(i).name << "=";
    }
    os << values_[i];
  }
  os << ")";
  return os.str();
}

EventPtr MakeEvent(TypeId type_id, Timestamp time, std::vector<Value> values) {
  return std::make_shared<Event>(type_id, time, std::move(values));
}

EventPtr MakeComplexEvent(TypeId type_id, Timestamp start_time,
                          Timestamp end_time, std::vector<Value> values) {
  return std::make_shared<Event>(type_id, start_time, end_time,
                                 std::move(values));
}

bool IsTimeOrdered(const EventBatch& batch) {
  return FirstOutOfOrderIndex(batch) < 0;
}

ptrdiff_t FirstOutOfOrderIndex(const EventBatch& batch) {
  for (size_t i = 1; i < batch.size(); ++i) {
    if (batch[i - 1]->time() > batch[i]->time()) {
      return static_cast<ptrdiff_t>(i);
    }
  }
  return -1;
}

}  // namespace caesar
