#include "event/schema.h"

#include <sstream>

#include "common/logging.h"

namespace caesar {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {
  for (int i = 0; i < num_attributes(); ++i) {
    auto [it, inserted] = index_.emplace(attributes_[i].name, i);
    CAESAR_CHECK(inserted) << "duplicate attribute name: "
                           << attributes_[i].name;
  }
}

int Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : it->second;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (int i = 0; i < num_attributes(); ++i) {
    if (i > 0) os << ", ";
    os << attributes_[i].name << ":" << ValueTypeName(attributes_[i].type);
  }
  os << ")";
  return os.str();
}

Result<TypeId> TypeRegistry::Register(const std::string& name,
                                      std::vector<Attribute> attributes) {
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("event type already registered: " + name);
  }
  TypeId id = static_cast<TypeId>(types_.size());
  auto type = std::make_unique<EventType>();
  type->id = id;
  type->name = name;
  type->schema = Schema(std::move(attributes));
  types_.push_back(std::move(type));
  by_name_.emplace(name, id);
  return id;
}

TypeId TypeRegistry::RegisterOrGet(const std::string& name,
                                   std::vector<Attribute> attributes) {
  TypeId existing = Lookup(name);
  if (existing != kInvalidTypeId) return existing;
  Result<TypeId> result = Register(name, std::move(attributes));
  CAESAR_CHECK(result.ok());
  return result.value();
}

TypeId TypeRegistry::Lookup(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? kInvalidTypeId : it->second;
}

const EventType& TypeRegistry::type(TypeId id) const {
  CAESAR_CHECK_GE(id, 0);
  CAESAR_CHECK_LT(id, num_types());
  return *types_[id];
}

}  // namespace caesar
