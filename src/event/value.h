// Value: the dynamically typed attribute cell used by events and the
// expression evaluator. Supports int64, double, and string payloads plus a
// null state; numeric comparisons coerce int64 <-> double.

#ifndef CAESAR_EVENT_VALUE_H_
#define CAESAR_EVENT_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <variant>

namespace caesar {

// Attribute type tags; also used by schemas and the expression type checker.
enum class ValueType : int8_t { kNull = 0, kInt, kDouble, kString };

const char* ValueTypeName(ValueType type);

// A single attribute value.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    switch (data_.index()) {
      case 1:
        return ValueType::kInt;
      case 2:
        return ValueType::kDouble;
      case 3:
        return ValueType::kString;
      default:
        return ValueType::kNull;
    }
  }

  bool is_null() const { return data_.index() == 0; }
  bool is_numeric() const {
    return type() == ValueType::kInt || type() == ValueType::kDouble;
  }

  // Accessors abort (via std::get) if the type does not match.
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  // Numeric value as double regardless of int/double representation.
  // Requires is_numeric().
  double ToDouble() const {
    return type() == ValueType::kInt ? static_cast<double>(AsInt())
                                     : AsDouble();
  }

  // Equality: numeric values compare by value across int/double; other types
  // compare only within the same type (null == null).
  bool Equals(const Value& other) const;

  // Three-way comparison for ordered types. Requires comparable types
  // (both numeric or both string); callers type-check first.
  int Compare(const Value& other) const;

  // Hash suitable for grouping keys.
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

inline bool operator==(const Value& a, const Value& b) { return a.Equals(b); }
inline bool operator!=(const Value& a, const Value& b) { return !a.Equals(b); }

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace caesar

#endif  // CAESAR_EVENT_VALUE_H_
