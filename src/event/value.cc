#include "event/value.h"

#include <functional>
#include <sstream>

#include "common/logging.h"

namespace caesar {

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

bool Value::Equals(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      return AsInt() == other.AsInt();
    }
    return ToDouble() == other.ToDouble();
  }
  if (type() != other.type()) return false;
  switch (type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kString:
      return AsString() == other.AsString();
    default:
      return false;  // Unreachable: numeric handled above.
  }
}

int Value::Compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (type() == ValueType::kInt && other.type() == ValueType::kInt) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = ToDouble(), b = other.ToDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  CAESAR_CHECK(type() == ValueType::kString &&
               other.type() == ValueType::kString)
      << "incomparable value types: " << ValueTypeName(type()) << " vs "
      << ValueTypeName(other.type());
  return AsString().compare(other.AsString());
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt:
      return std::hash<int64_t>{}(AsInt());
    case ValueType::kDouble:
      return std::hash<double>{}(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>{}(AsString());
  }
  return 0;
}

std::string Value::ToString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return os << "null";
    case ValueType::kInt:
      return os << value.AsInt();
    case ValueType::kDouble:
      return os << value.AsDouble();
    case ValueType::kString:
      return os << '"' << value.AsString() << '"';
  }
  return os;
}

}  // namespace caesar
