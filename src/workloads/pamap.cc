#include "workloads/pamap.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "expr/parser.h"

namespace caesar {

namespace {

ExprPtr MustParseExpr(const std::string& text) {
  Result<ExprPtr> expr = ParseExpr(text);
  CAESAR_CHECK(expr.ok()) << expr.status() << " in " << text;
  return std::move(expr).value();
}

}  // namespace

TypeId RegisterPamapTypes(TypeRegistry* registry) {
  return registry->RegisterOrGet("ActivityReport",
                                 {{"subject", ValueType::kInt},
                                  {"hr", ValueType::kInt},
                                  {"intensity", ValueType::kInt},
                                  {"sec", ValueType::kInt}});
}

EventBatch GeneratePamapStream(const PamapConfig& config,
                               TypeRegistry* registry) {
  TypeId report = RegisterPamapTypes(registry);
  Rng rng(config.seed);
  EventBatch events;

  for (int subject = 0; subject < config.num_subjects; ++subject) {
    // Schedule exercise phases.
    struct Phase {
      Timestamp start;
      Timestamp end;
    };
    std::vector<Phase> phases;
    int count = static_cast<int>(rng.Poisson(config.exercise_phases_per_subject));
    for (int i = 0; i < count; ++i) {
      if (config.duration <= config.exercise_duration) break;
      Timestamp start =
          rng.Uniform(0, config.duration - config.exercise_duration);
      phases.push_back({start, start + config.exercise_duration});
    }
    auto exercising = [&](Timestamp t) {
      for (const Phase& phase : phases) {
        if (t >= phase.start && t < phase.end) return true;
      }
      return false;
    };

    // Reports, staggered per subject so time stamps interleave.
    for (Timestamp t = subject % config.report_interval; t < config.duration;
         t += config.report_interval) {
      bool active = exercising(t);
      int64_t intensity =
          active ? rng.Uniform(7, 9) : rng.Uniform(1, 3);
      int64_t hr = active ? rng.Uniform(110, 165) : rng.Uniform(58, 82);
      events.push_back(MakeEvent(
          report, t,
          {Value(int64_t{subject}), Value(hr), Value(intensity), Value(t)}));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return a->time() < b->time();
            });
  return events;
}

Result<CaesarModel> MakePamapModel(const PamapModelConfig& config,
                                   TypeRegistry* registry) {
  RegisterPamapTypes(registry);
  CaesarModel model(registry);
  CAESAR_RETURN_IF_ERROR(model.AddContext("rest"));
  CAESAR_RETURN_IF_ERROR(model.AddContext("active"));
  model.SetPartitionBy({"subject"});

  {
    Query query;
    query.name = "detect_activity";
    query.action = ContextAction::kSwitch;
    query.target_context = "active";
    PatternSpec pattern;
    pattern.items = {{"ActivityReport", "r", false}};
    query.pattern = std::move(pattern);
    query.where = MustParseExpr("r.intensity >= " +
                                std::to_string(config.active_intensity));
    query.contexts = {"rest"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }
  {
    Query query;
    query.name = "detect_rest";
    query.action = ContextAction::kSwitch;
    query.target_context = "rest";
    PatternSpec pattern;
    pattern.items = {{"ActivityReport", "r", false}};
    query.pattern = std::move(pattern);
    query.where = MustParseExpr("r.intensity <= " +
                                std::to_string(config.rest_intensity));
    query.contexts = {"active"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }

  // Scalable workload: heart-rate escalation patterns, only meaningful
  // while the subject is active.
  for (int q = 0; q < config.active_queries; ++q) {
    Query query;
    query.name = "hr_spike_" + std::to_string(q);
    DeriveSpec derive;
    derive.event_type = "HrSpike_" + std::to_string(q);
    derive.args = {MakeAttrRef("b", "subject"), MakeAttrRef("b", "hr"),
                   MakeAttrRef("b", "sec")};
    derive.attr_names = {"subject", "hr", "sec"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items = {{"ActivityReport", "a", false},
                     {"ActivityReport", "b", false}};
    pattern.within = 60;
    query.pattern = std::move(pattern);
    query.where = MustParseExpr(
        "b.hr > a.hr + 5 AND b.hr >= " + std::to_string(120 + 3 * q));
    query.contexts = {"active"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }

  // One light-weight recovery check during rest keeps the rest context
  // non-trivial.
  {
    Query query;
    query.name = "recovery_check";
    DeriveSpec derive;
    derive.event_type = "RecoveryAnomaly";
    derive.args = {MakeAttrRef("r", "subject"), MakeAttrRef("r", "hr"),
                   MakeAttrRef("r", "sec")};
    derive.attr_names = {"subject", "hr", "sec"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.items = {{"ActivityReport", "r", false}};
    query.pattern = std::move(pattern);
    query.where = MustParseExpr("r.hr > 95");
    query.contexts = {"rest"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }

  CAESAR_RETURN_IF_ERROR(model.Normalize());
  return model;
}

}  // namespace caesar
