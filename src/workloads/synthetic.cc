#include "workloads/synthetic.h"

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "common/rng.h"
#include "expr/parser.h"

namespace caesar {

std::vector<SyntheticConfig::Window> LayOutWindows(int count, Timestamp length,
                                                   Timestamp overlap,
                                                   Timestamp first_start) {
  std::vector<SyntheticConfig::Window> windows;
  Timestamp start = first_start;
  for (int i = 0; i < count; ++i) {
    windows.push_back({start, start + length});
    start += length - overlap;
  }
  return windows;
}

std::vector<SyntheticConfig::Window> PlaceWindows(int count, Timestamp length,
                                                  Timestamp duration,
                                                  int placement) {
  std::vector<SyntheticConfig::Window> windows;
  if (count <= 0) return windows;
  Timestamp usable = duration - length;
  for (int i = 0; i < count; ++i) {
    double fraction = count == 1 ? 0.5 : static_cast<double>(i) / (count - 1);
    if (placement > 0) {
      fraction = 0.6 + 0.4 * fraction;  // clustered towards the end
    } else if (placement < 0) {
      fraction = 0.4 * fraction;  // clustered towards the start
    }
    Timestamp start = static_cast<Timestamp>(fraction * usable);
    windows.push_back({start, start + length});
  }
  // Placement clustering may make neighbours touch; nudge overlapping
  // windows apart so they stay non-overlapping (this helper is for the
  // suspension experiments, not the sharing ones).
  std::sort(windows.begin(), windows.end(),
            [](const SyntheticConfig::Window& a,
               const SyntheticConfig::Window& b) { return a.start < b.start; });
  for (size_t i = 1; i < windows.size(); ++i) {
    if (windows[i].start < windows[i - 1].end) {
      Timestamp shift = windows[i - 1].end - windows[i].start;
      windows[i].start += shift;
      windows[i].end += shift;
    }
  }
  return windows;
}

TypeId RegisterSyntheticTypes(TypeRegistry* registry) {
  return registry->RegisterOrGet("Tick", {{"seg", ValueType::kInt},
                                          {"pos", ValueType::kInt},
                                          {"load", ValueType::kInt},
                                          {"sec", ValueType::kInt}});
}

EventBatch GenerateSyntheticStream(const SyntheticConfig& config,
                                   TypeRegistry* registry) {
  CAESAR_CHECK(config.hot_partition_share >= 0.0 &&
               config.hot_partition_share < 1.0);
  TypeId tick = RegisterSyntheticTypes(registry);
  Rng rng(config.seed);
  EventBatch events;
  events.reserve(config.duration * config.num_partitions *
                 config.events_per_tick);
  auto emit = [&](Timestamp t, int seg) {
    events.push_back(MakeEvent(
        tick, t,
        {Value(int64_t{seg}), Value(t),
         Value(rng.Uniform(0, config.load_cardinality - 1)), Value(t)}));
  };
  for (Timestamp t = 0; t < config.duration; ++t) {
    double fraction =
        config.ramp_start_fraction +
        (1.0 - config.ramp_start_fraction) *
            (static_cast<double>(t) / std::max<Timestamp>(1, config.duration));
    int per_tick = std::max(
        1, static_cast<int>(config.events_per_tick * fraction + 0.5));
    if (config.hot_partition_share <= 0.0) {
      // Uniform: the original emission order, byte-for-byte (the skew knob
      // must not perturb existing seeded streams).
      for (int seg = 0; seg < config.num_partitions; ++seg) {
        for (int e = 0; e < per_tick; ++e) emit(t, seg);
      }
    } else {
      // Skewed: same per-tick event total, redistributed so partition 0
      // carries `hot_partition_share` of it and the rest round-robins over
      // the remaining partitions (each still gets >= 1 event per tick so
      // every partition has a transaction — the skew is in work per task,
      // which is what a partition-level scheduler can balance).
      int total = per_tick * config.num_partitions;
      int cold_partitions = config.num_partitions - 1;
      int hot = cold_partitions == 0
                    ? total
                    : std::max(1, static_cast<int>(
                                      total * config.hot_partition_share + 0.5));
      hot = std::min(hot, total - cold_partitions);
      for (int e = 0; e < hot; ++e) emit(t, 0);
      for (int e = 0; e < total - hot; ++e) {
        emit(t, 1 + e % cold_partitions);
      }
    }
  }
  return events;
}

Result<CaesarModel> MakeSyntheticModel(const SyntheticConfig& config,
                                       TypeRegistry* registry) {
  RegisterSyntheticTypes(registry);
  CaesarModel model(registry);
  CAESAR_RETURN_IF_ERROR(model.AddContext("idle"));
  for (size_t w = 0; w < config.windows.size(); ++w) {
    CAESAR_RETURN_IF_ERROR(model.AddContext("w" + std::to_string(w)));
  }
  model.SetPartitionBy({"seg"});

  // Exact-crossing bound: `pos` is monotone and hits every tick value, so
  // equality fires exactly once per window bound (a `>` threshold would keep
  // re-initiating the window after its termination). Equality constraints
  // are single thresholds, so the windows stay groupable.
  auto threshold = [](Timestamp bound) {
    Result<ExprPtr> expr = ParseExpr("s.pos = " + std::to_string(bound));
    CAESAR_CHECK(expr.ok());
    return std::move(expr).value();
  };

  for (size_t w = 0; w < config.windows.size(); ++w) {
    std::string name = "w" + std::to_string(w);
    {
      Query query;
      query.name = "start_" + name;
      query.action = ContextAction::kInitiate;
      query.target_context = name;
      PatternSpec pattern;
      pattern.items = {{"Tick", "s", false}};
      query.pattern = std::move(pattern);
      query.where = threshold(config.windows[w].start);
      // Bound detection is always armed: it belongs to the default context
      // and every window (contexts may overlap arbitrarily, so the
      // initiator must see the signal regardless of the current context).
      query.contexts = {"idle"};
      for (size_t v = 0; v < config.windows.size(); ++v) {
        if (v != w) query.contexts.push_back("w" + std::to_string(v));
      }
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
    {
      Query query;
      query.name = "end_" + name;
      query.action = ContextAction::kTerminate;
      query.target_context = name;
      PatternSpec pattern;
      pattern.items = {{"Tick", "s", false}};
      query.pattern = std::move(pattern);
      query.where = threshold(config.windows[w].end);
      query.contexts = {name};
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
  }

  // Workload queries (see SyntheticConfig::QueryAssignment).
  auto make_query = [&](int q, const std::string& name_suffix,
                        const std::string& type_suffix,
                        std::vector<std::string> contexts) {
    Query query;
    query.name = "match_" + name_suffix;
    DeriveSpec derive;
    derive.event_type = "Match" + type_suffix;
    derive.args = {MakeAttrRef("a", "sec"), MakeAttrRef("b", "sec"),
                   MakeAttrRef("b", "load")};
    derive.attr_names = {"first_sec", "second_sec", "load"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items = {{"Tick", "a", false}, {"Tick", "b", false}};
    pattern.within = config.query_within;
    query.pattern = std::move(pattern);
    // Distinct join predicate per query index so queries differ in work.
    Result<ExprPtr> where = ParseExpr("a.load = b.load AND b.load >= " +
                                      std::to_string(q % 4));
    CAESAR_CHECK(where.ok());
    query.where = std::move(where).value();
    query.contexts = std::move(contexts);
    return query;
  };

  switch (config.assignment) {
    case SyntheticConfig::QueryAssignment::kAllWindows: {
      std::vector<std::string> all_windows;
      for (size_t w = 0; w < config.windows.size(); ++w) {
        all_windows.push_back("w" + std::to_string(w));
      }
      for (int q = 0; q < config.queries_per_window; ++q) {
        CAESAR_RETURN_IF_ERROR(
            model
                .AddQuery(make_query(q, std::to_string(q), std::to_string(q),
                                     all_windows))
                .status());
      }
      break;
    }
    case SyntheticConfig::QueryAssignment::kPerWindowCopies:
    case SyntheticConfig::QueryAssignment::kPerWindowDistinct: {
      bool copies = config.assignment ==
                    SyntheticConfig::QueryAssignment::kPerWindowCopies;
      for (size_t w = 0; w < config.windows.size(); ++w) {
        std::string window = "w" + std::to_string(w);
        for (int q = 0; q < config.queries_per_window; ++q) {
          std::string type_suffix =
              copies ? std::to_string(q)
                     : std::to_string(w) + "_" + std::to_string(q);
          CAESAR_RETURN_IF_ERROR(
              model
                  .AddQuery(make_query(q, window + "_" + std::to_string(q),
                                       type_suffix, {window}))
                  .status());
        }
      }
      break;
    }
  }
  CAESAR_RETURN_IF_ERROR(model.Normalize());
  return model;
}

double WindowCoverage(const SyntheticConfig& config) {
  if (config.duration <= 0) return 0.0;
  std::vector<SyntheticConfig::Window> sorted = config.windows;
  std::sort(sorted.begin(), sorted.end(),
            [](const SyntheticConfig::Window& a,
               const SyntheticConfig::Window& b) { return a.start < b.start; });
  Timestamp covered = 0;
  Timestamp cursor = 0;
  for (const auto& window : sorted) {
    Timestamp start = std::max(window.start, cursor);
    Timestamp end = std::min(window.end, config.duration);
    if (end > start) {
      covered += end - start;
      cursor = end;
    }
    cursor = std::max(cursor, std::min(window.end, config.duration));
  }
  return static_cast<double>(covered) / static_cast<double>(config.duration);
}

}  // namespace caesar
