// Synthetic context-window workload used by the evaluation experiments that
// require direct control over context-window placement (Section 7:
// "context window related parameters can be varied only through input data
// manipulation" — this module is that manipulation, made explicit).
//
// The stream carries Tick(seg, pos, load, sec) events where `pos` is a
// monotone signal (== sec). Context windows are intervals in `pos`:
// window i is initiated by "pos > start_i" and terminated by "pos > end_i",
// which makes the windows' bounds compile-time orderable (the requirement
// of the grouping algorithm) and their length/count/overlap freely
// configurable:
//   - Fig. 12(c): vary window length           (non-overlapping windows)
//   - Fig. 12(d): vary window count
//   - Fig. 13:    vary window placement (uniform / positive / negative skew)
//   - Fig. 14:    overlapping windows, shared vs non-shared execution
//
// Each window carries `queries_per_window` SEQ queries; with
// `shared_queries` the same query text is attached to every window
// (dedupable by the grouping transform), otherwise each window gets
// distinct queries.

#ifndef CAESAR_WORKLOADS_SYNTHETIC_H_
#define CAESAR_WORKLOADS_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "query/model.h"

namespace caesar {

struct SyntheticConfig {
  // Stream shape.
  Timestamp duration = 3600;
  int num_partitions = 1;
  int events_per_tick = 2;   // per partition, at full rate
  // Input rate ramp (Fig. 13 needs the stream rate to grow over the run):
  // the effective per-tick event count scales linearly from
  // ramp_start_fraction to 1.0. 1.0 = constant rate.
  double ramp_start_fraction = 1.0;
  int load_cardinality = 8;  // distinct `load` values (join selectivity)
  uint64_t seed = 1;

  // Partition skew (the deliberately skewed scheduler workload): fraction
  // [0, 1) of each tick's total events funneled to partition 0 (the hot
  // segment); the remainder spreads round-robin over the other partitions.
  // 0 = uniform — byte-identical streams to before this knob existed. With
  // e.g. 0.9 and 32 partitions, partition 0's transaction carries ~29x the
  // events (and far more SEQ pairing work) of any other, so a pinned
  // executor saturates one worker while the rest idle.
  double hot_partition_share = 0.0;

  // Context windows: explicit [start, end) intervals in ticks. Windows may
  // overlap. Use the helpers below to lay them out.
  struct Window {
    Timestamp start;
    Timestamp end;
  };
  std::vector<Window> windows;

  // Workload assignment:
  //  - kAllWindows: one workload of `queries_per_window` queries, each
  //    associated with *every* window (the Fig. 12(c)/(d)/13 setup — the
  //    workload runs during any window and is suspended outside);
  //  - kPerWindowCopies: every window carries its own copies of the same
  //    query texts (the Fig. 14 setup — structurally identical queries the
  //    grouping transform can share across overlapping windows);
  //  - kPerWindowDistinct: every window carries distinct queries (no
  //    sharing opportunity; control setup).
  enum class QueryAssignment {
    kAllWindows,
    kPerWindowCopies,
    kPerWindowDistinct,
  };
  QueryAssignment assignment = QueryAssignment::kPerWindowCopies;
  int queries_per_window = 4;
  Timestamp query_within = 60;
};

// Lays out `count` windows of `length` ticks each with `overlap` ticks of
// overlap between neighbours (overlap 0 = adjacent-but-disjoint; negative
// overlap = gaps), starting at `first_start`.
std::vector<SyntheticConfig::Window> LayOutWindows(int count,
                                                   Timestamp length,
                                                   Timestamp overlap,
                                                   Timestamp first_start);

// Lays out `count` non-overlapping windows of `length` ticks spread over
// [0, duration): placement 0 = uniform, +1 = clustered at the end
// (positive skew in the paper's Fig. 13 reading: the high-rate tail),
// -1 = clustered at the start.
std::vector<SyntheticConfig::Window> PlaceWindows(int count, Timestamp length,
                                                  Timestamp duration,
                                                  int placement);

// Registers the Tick input type (idempotent).
TypeId RegisterSyntheticTypes(TypeRegistry* registry);

// Generates the Tick stream (time-ordered).
EventBatch GenerateSyntheticStream(const SyntheticConfig& config,
                                   TypeRegistry* registry);

// Builds the normalized model: a default `idle` context plus one context
// per window with threshold deriving queries and the per-window workload.
Result<CaesarModel> MakeSyntheticModel(const SyntheticConfig& config,
                                       TypeRegistry* registry);

// Fraction of the stream duration covered by at least one window (the
// percentage annotated above the bars of Fig. 12(c)/(d)).
double WindowCoverage(const SyntheticConfig& config);

}  // namespace caesar

#endif  // CAESAR_WORKLOADS_SYNTHETIC_H_
