#include "workloads/linear_road.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "expr/parser.h"

namespace caesar {

namespace {

// One scheduled traffic episode in a segment.
struct Episode {
  Timestamp start;
  Timestamp end;
};

bool InEpisode(const std::vector<Episode>& episodes, Timestamp t) {
  for (const Episode& episode : episodes) {
    if (t >= episode.start && t < episode.end) return true;
  }
  return false;
}

std::vector<Episode> ScheduleEpisodes(double expected_count,
                                      Timestamp duration,
                                      Timestamp episode_duration, Rng* rng) {
  std::vector<Episode> episodes;
  int count = static_cast<int>(rng->Poisson(expected_count));
  for (int i = 0; i < count; ++i) {
    if (duration <= episode_duration) break;
    Timestamp start = rng->Uniform(0, duration - episode_duration);
    episodes.push_back({start, start + episode_duration});
  }
  std::sort(episodes.begin(), episodes.end(),
            [](const Episode& a, const Episode& b) { return a.start < b.start; });
  return episodes;
}

}  // namespace

TypeId RegisterLinearRoadTypes(TypeRegistry* registry) {
  return registry->RegisterOrGet("PositionReport",
                                 {{"vid", ValueType::kInt},
                                  {"speed", ValueType::kInt},
                                  {"xway", ValueType::kInt},
                                  {"lane", ValueType::kInt},
                                  {"dir", ValueType::kInt},
                                  {"seg", ValueType::kInt},
                                  {"pos", ValueType::kInt},
                                  {"sec", ValueType::kInt}});
}

EventBatch GenerateLinearRoadStream(const LinearRoadConfig& config,
                                    TypeRegistry* registry) {
  TypeId pr = RegisterLinearRoadTypes(registry);
  Rng rng(config.seed);
  EventBatch events;
  int64_t next_vid = 1;
  const Timestamp interval = config.report_interval;
  const int num_intervals =
      static_cast<int>(config.duration / interval) + 1;

  auto emit = [&](int64_t vid, int64_t speed, int xway, int64_t lane, int dir,
                  int seg, int64_t pos, Timestamp sec) {
    if (sec >= config.duration) return;
    events.push_back(MakeEvent(
        pr, sec,
        {Value(vid), Value(speed), Value(int64_t{xway}), Value(lane),
         Value(int64_t{dir}), Value(int64_t{seg}), Value(pos), Value(sec)}));
  };

  for (int xway = 0; xway < config.num_xways; ++xway) {
    for (int dir = 0; dir < 2; ++dir) {
      for (int seg = 0; seg < config.num_segments; ++seg) {
        // Per-segment density variability (Fig. 10a): some segments carry
        // more traffic than others.
        double density = rng.UniformReal(0.5, 1.5);
        int base_slots = std::max(
            1, static_cast<int>(config.cars_per_segment * density + 0.5));
        int extra_slots = static_cast<int>(
            base_slots * (config.congestion_multiplier - 1.0) + 0.5);

        std::vector<Episode> congestion = ScheduleEpisodes(
            config.congestion_episodes_per_segment, config.duration,
            config.congestion_duration, &rng);
        std::vector<Episode> accidents = ScheduleEpisodes(
            config.accident_episodes_per_segment, config.duration,
            config.accident_duration, &rng);

        // Regular traffic: base slots always populated (subject to the
        // ramp), extra slots only during congestion episodes.
        int total_slots = base_slots + extra_slots;
        struct Slot {
          int64_t vid = 0;
          int life_left = 0;  // report intervals until the car leaves
        };
        std::vector<Slot> slots(total_slots);

        for (int k = 0; k < num_intervals; ++k) {
          Timestamp window_start = static_cast<Timestamp>(k) * interval;
          double progress =
              static_cast<double>(window_start) / config.duration;
          double activity = config.ramp_start_fraction +
                            (1.0 - config.ramp_start_fraction) * progress;
          bool congested = InEpisode(congestion, window_start);
          for (int s = 0; s < total_slots; ++s) {
            bool is_extra = s >= base_slots;
            bool slot_enabled =
                is_extra ? congested
                         : (static_cast<double>(s) + 0.5) / base_slots <
                               activity;
            if (!slot_enabled) {
              // Car leaves when its lane closes; a fresh vid arrives later.
              slots[s].life_left = 0;
              continue;
            }
            if (slots[s].life_left <= 0) {
              slots[s].vid = next_vid++;
              slots[s].life_left = static_cast<int>(rng.Uniform(5, 30));
            }
            --slots[s].life_left;
            int64_t vid = slots[s].vid;
            Timestamp sec = window_start + (vid % interval);
            bool slow = congested;
            int64_t speed = slow ? 10 + vid % 25 : 45 + vid % 25;
            // Exit-lane reports (lane 4) are exempt from tolls.
            int64_t lane = (vid + k) % 10 == 0 ? 4 : vid % 4;
            int64_t pos = static_cast<int64_t>(seg) * 5280 + (vid * 37) % 5000;
            emit(vid, speed, xway, lane, dir, seg, pos, sec);
          }
        }

        // Accidents: two fresh cars stopped at the same position for the
        // episode; they move again (speed > 0) right after it ends, which
        // is the accident-clearance signal.
        for (const Episode& episode : accidents) {
          int64_t car1 = next_vid++;
          int64_t car2 = next_vid++;
          int64_t crash_pos = static_cast<int64_t>(seg) * 5280 + 1000;
          for (int64_t vid : {car1, car2}) {
            Timestamp first =
                (episode.start / interval) * interval + (vid % interval);
            while (first < episode.start) first += interval;
            Timestamp sec = first;
            for (; sec < episode.end; sec += interval) {
              emit(vid, 0, xway, vid % 4, dir, seg, crash_pos, sec);
            }
            // Clearance report, on the car's regular 30-second grid.
            emit(vid, 55, xway, vid % 4, dir, seg, crash_pos, sec);
          }
        }
      }
    }
  }

  std::sort(events.begin(), events.end(),
            [](const EventPtr& a, const EventPtr& b) {
              return a->time() < b->time();
            });
  return events;
}

namespace {

ExprPtr MustParseExpr(const std::string& text) {
  Result<ExprPtr> expr = ParseExpr(text);
  CAESAR_CHECK(expr.ok()) << expr.status() << " in " << text;
  return std::move(expr).value();
}

// Appends `index` to a base name for replicated queries; replica 0 keeps
// the plain benchmark name.
std::string ReplicaName(const std::string& base, int index) {
  return index == 0 ? base : base + "_" + std::to_string(index);
}

}  // namespace

Result<CaesarModel> MakeLinearRoadModel(const LinearRoadModelConfig& config,
                                        TypeRegistry* registry) {
  RegisterLinearRoadTypes(registry);
  CaesarModel model(registry);
  CAESAR_RETURN_IF_ERROR(model.AddContext("clear"));
  CAESAR_RETURN_IF_ERROR(model.AddContext("congestion"));
  CAESAR_RETURN_IF_ERROR(model.AddContext("accident"));
  model.SetPartitionBy({"xway", "dir", "seg"});

  // --- Context deriving queries (Fig. 1) ---

  {
    // switch clear -> congestion if many slow cars.
    Query query;
    query.name = "detect_congestion";
    query.action = ContextAction::kSwitch;
    query.target_context = "congestion";
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kAggregate;
    pattern.items.push_back({"PositionReport", "p", false});
    pattern.window_length = config.detection_window;
    pattern.aggregates = {{AggregateFunc::kCount, "", "cnt"},
                          {AggregateFunc::kAvg, "speed", "spd"}};
    pattern.having = MustParseExpr(
        "cnt >= " + std::to_string(config.congestion_min_reports) +
        " AND spd < " + std::to_string(config.congestion_speed));
    query.pattern = std::move(pattern);
    query.contexts = {"clear"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }
  {
    // switch congestion -> clear if traffic flows smoothly.
    Query query;
    query.name = "detect_clear";
    query.action = ContextAction::kSwitch;
    query.target_context = "clear";
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kAggregate;
    pattern.items.push_back({"PositionReport", "p", false});
    pattern.window_length = config.detection_window;
    pattern.aggregates = {{AggregateFunc::kCount, "", "cnt"},
                          {AggregateFunc::kAvg, "speed", "spd"}};
    pattern.having =
        MustParseExpr("spd >= " + std::to_string(config.clear_speed));
    query.pattern = std::move(pattern);
    query.contexts = {"congestion"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }
  {
    // Helper: a car reporting speed 0 twice in a row at the same position
    // is stopped.
    Query query;
    query.name = "detect_stopped_car";
    query.derivation_helper = true;
    DeriveSpec derive;
    derive.event_type = "StoppedCar";
    derive.args = {MakeAttrRef("b", "vid"), MakeAttrRef("b", "xway"),
                   MakeAttrRef("b", "dir"), MakeAttrRef("b", "seg"),
                   MakeAttrRef("b", "pos"), MakeAttrRef("b", "sec")};
    derive.attr_names = {"vid", "xway", "dir", "seg", "pos", "sec"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items = {{"PositionReport", "a", false},
                     {"PositionReport", "b", false}};
    pattern.within = 60;
    query.pattern = std::move(pattern);
    query.where = MustParseExpr(
        "a.vid = b.vid AND a.speed = 0 AND b.speed = 0 AND a.pos = b.pos "
        "AND a.sec + 30 = b.sec");
    query.contexts = {"clear", "congestion", "accident"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }
  {
    // initiate accident if two distinct cars are stopped at one position.
    Query query;
    query.name = "detect_accident";
    query.action = ContextAction::kInitiate;
    query.target_context = "accident";
    DeriveSpec derive;
    derive.event_type = "Accident";
    derive.args = {MakeAttrRef("s2", "xway"), MakeAttrRef("s2", "dir"),
                   MakeAttrRef("s2", "seg"), MakeAttrRef("s2", "pos"),
                   MakeAttrRef("s2", "sec")};
    derive.attr_names = {"xway", "dir", "seg", "pos", "sec"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items = {{"StoppedCar", "s1", false}, {"StoppedCar", "s2", false}};
    pattern.within = 90;
    query.pattern = std::move(pattern);
    query.where = MustParseExpr("s1.pos = s2.pos AND s1.vid != s2.vid");
    query.contexts = {"clear", "congestion"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }
  {
    // terminate accident once a stopped car moves again.
    Query query;
    query.name = "detect_clearance";
    query.action = ContextAction::kTerminate;
    query.target_context = "accident";
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items = {{"StoppedCar", "s", false},
                     {"PositionReport", "p", false}};
    pattern.within = 120;
    query.pattern = std::move(pattern);
    query.where = MustParseExpr("p.vid = s.vid AND p.speed > 0");
    query.contexts = {"accident"};
    CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
  }

  // --- Context processing queries (Fig. 3), replicated to scale ---

  for (int r = 0; r < config.processing_replicas; ++r) {
    {
      // Query 2 of Fig. 3: cars entering a congested segment.
      Query query;
      query.name = ReplicaName("new_traveling_car", r);
      DeriveSpec derive;
      derive.event_type = ReplicaName("NewTravelingCar", r);
      derive.args = {MakeAttrRef("p2", "vid"),  MakeAttrRef("p2", "xway"),
                     MakeAttrRef("p2", "dir"),  MakeAttrRef("p2", "seg"),
                     MakeAttrRef("p2", "lane"), MakeAttrRef("p2", "pos"),
                     MakeAttrRef("p2", "sec")};
      derive.attr_names = {"vid", "xway", "dir", "seg", "lane", "pos", "sec"};
      query.derive = std::move(derive);
      PatternSpec pattern;
      pattern.kind = PatternSpec::Kind::kSeq;
      pattern.items = {{"PositionReport", "p1", true},
                       {"PositionReport", "p2", false}};
      pattern.within = 60;
      query.pattern = std::move(pattern);
      query.where = MustParseExpr(
          "p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4");
      query.contexts = {"congestion"};
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
    {
      // Query 1 of Fig. 3: toll notifications for new traveling cars.
      Query query;
      query.name = ReplicaName("toll_notification", r);
      DeriveSpec derive;
      derive.event_type = ReplicaName("TollNotification", r);
      derive.args = {MakeAttrRef("p", "vid"), MakeAttrRef("p", "seg"),
                     MakeAttrRef("p", "sec"), MakeConstant(int64_t{5})};
      derive.attr_names = {"vid", "seg", "sec", "toll"};
      query.derive = std::move(derive);
      PatternSpec pattern;
      pattern.items = {{ReplicaName("NewTravelingCar", r), "p", false}};
      query.pattern = std::move(pattern);
      query.contexts = {"congestion"};
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
    {
      // Zero toll during clear roads and accidents (benchmark rule).
      Query query;
      query.name = ReplicaName("zero_toll", r);
      DeriveSpec derive;
      derive.event_type = ReplicaName("ZeroToll", r);
      derive.args = {MakeAttrRef("p2", "vid"), MakeAttrRef("p2", "seg"),
                     MakeAttrRef("p2", "sec"), MakeConstant(int64_t{0})};
      derive.attr_names = {"vid", "seg", "sec", "toll"};
      query.derive = std::move(derive);
      PatternSpec pattern;
      pattern.kind = PatternSpec::Kind::kSeq;
      pattern.items = {{"PositionReport", "p1", true},
                       {"PositionReport", "p2", false}};
      pattern.within = 60;
      query.pattern = std::move(pattern);
      query.where = MustParseExpr(
          "p1.sec + 30 = p2.sec AND p1.vid = p2.vid AND p2.lane != 4");
      query.contexts = {"clear", "accident"};
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
    {
      // Accident warnings for cars in the affected segment.
      Query query;
      query.name = ReplicaName("accident_warning", r);
      DeriveSpec derive;
      derive.event_type = ReplicaName("AccidentWarning", r);
      derive.args = {MakeAttrRef("p", "vid"), MakeAttrRef("p", "seg"),
                     MakeAttrRef("p", "sec")};
      derive.attr_names = {"vid", "seg", "sec"};
      query.derive = std::move(derive);
      PatternSpec pattern;
      pattern.items = {{"PositionReport", "p", false}};
      query.pattern = std::move(pattern);
      query.where = MustParseExpr("p.lane != 4");
      query.contexts = {"accident"};
      CAESAR_RETURN_IF_ERROR(model.AddQuery(std::move(query)).status());
    }
  }

  CAESAR_RETURN_IF_ERROR(model.Normalize());
  return model;
}

}  // namespace caesar
