// Physical Activity Monitoring workload (the paper's real-world data set,
// PAMAP [26]: activity reports of 14 people over 1h15).
//
// The 1.6 GB data set itself is not redistributable here; this module
// generates a synthetic equivalent with the structure the CAESAR
// experiments exercise: per-subject streams alternating between rest and
// exercise phases, with heart rate and movement intensity following the
// phase. Contexts (rest / active) are derived from the reports via
// hysteresis thresholds; the scalable workload is a family of heart-rate
// pattern queries appropriate only during activity, so they can be
// suspended during rest (Fig. 12(a)/14(c), PAM series).

#ifndef CAESAR_WORKLOADS_PAMAP_H_
#define CAESAR_WORKLOADS_PAMAP_H_

#include <cstdint>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "query/model.h"

namespace caesar {

struct PamapConfig {
  int num_subjects = 14;
  Timestamp duration = 4500;  // 1 h 15 min
  int report_interval = 5;    // seconds between activity reports
  // Expected number of exercise phases per subject over the run.
  double exercise_phases_per_subject = 3.0;
  Timestamp exercise_duration = 600;
  uint64_t seed = 77;
};

// Registers the ActivityReport input type (idempotent).
// Schema: subject, hr (heart rate), intensity, sec.
TypeId RegisterPamapTypes(TypeRegistry* registry);

// Generates the activity-report stream, time-ordered.
EventBatch GeneratePamapStream(const PamapConfig& config,
                               TypeRegistry* registry);

struct PamapModelConfig {
  // Hysteresis thresholds on `intensity` deriving the active context.
  int64_t active_intensity = 7;
  int64_t rest_intensity = 3;
  // Number of heart-rate queries attached to the active context.
  int active_queries = 2;
};

// Builds the normalized activity model: contexts rest (default) and active.
Result<CaesarModel> MakePamapModel(const PamapModelConfig& config,
                                   TypeRegistry* registry);

}  // namespace caesar

#endif  // CAESAR_WORKLOADS_PAMAP_H_
