// Linear Road benchmark substrate (Arasu et al., VLDB'04), scaled for the
// CAESAR evaluation (Section 7).
//
// The original benchmark ships MITSIM-generated traffic traces we do not
// have; this module provides a synthetic generator that reproduces the
// stream properties the CAESAR experiments rely on (see DESIGN.md):
//   - position reports every `report_interval` seconds per car, staggered
//     by vehicle id;
//   - variable car density across segments (Fig. 10a);
//   - input rate ramping up over the run (Fig. 10b);
//   - congestion episodes (many slow cars) and accident episodes (two cars
//     stopped at the same position until cleared), derivable from the data
//    alone — the context windows of the traffic model are *not* injected,
//    they emerge from the generated reports.
//
// MakeLinearRoadModel builds the CAESAR traffic model of Fig. 1/3: contexts
// clear (default), congestion and accident; context deriving queries for
// congestion detection / clearing and accident detection / clearance;
// context processing queries deriving toll notifications (congestion),
// zero-toll notifications (clear, accident) and accident warnings
// (accident). Processing queries can be replicated to scale the workload
// ("we simulate low, average and high query workloads by replicating the
// event queries of the benchmark").

#ifndef CAESAR_WORKLOADS_LINEAR_ROAD_H_
#define CAESAR_WORKLOADS_LINEAR_ROAD_H_

#include <cstdint>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "query/model.h"

namespace caesar {

// Generator parameters. Defaults give a laptop-scale run with the paper's
// qualitative shape; benchmarks scale them via flags.
struct LinearRoadConfig {
  int num_xways = 1;            // expressways ("roads")
  int num_segments = 20;        // segments per direction
  Timestamp duration = 3600;    // simulated seconds
  int report_interval = 30;     // seconds between reports of one car
  int cars_per_segment = 4;     // base car count, clear traffic
  double congestion_multiplier = 4.0;  // car multiplier in congested segments
  // Input rate ramp: activity grows linearly from ramp_start_fraction to
  // 1.0 over the run (Fig. 10b).
  double ramp_start_fraction = 0.3;
  // Expected number of congestion episodes per segment over the whole run.
  double congestion_episodes_per_segment = 1.0;
  Timestamp congestion_duration = 600;
  // Expected accident episodes per segment over the run.
  double accident_episodes_per_segment = 0.25;
  Timestamp accident_duration = 300;
  uint64_t seed = 42;
};

// Registers the PositionReport input type (idempotent) and returns its id.
// Schema: vid, speed, xway, lane, dir, seg, pos, sec (all int, as in the
// benchmark; lane 4 is the exit lane).
TypeId RegisterLinearRoadTypes(TypeRegistry* registry);

// Generates the position-report stream, time-ordered.
EventBatch GenerateLinearRoadStream(const LinearRoadConfig& config,
                                    TypeRegistry* registry);

// Thresholds tying the model's deriving queries to the generator's traffic
// regimes.
struct LinearRoadModelConfig {
  // Congestion: at least `congestion_min_reports` reports in the last
  // `detection_window` seconds with average speed below `congestion_speed`.
  int congestion_min_reports = 20;
  double congestion_speed = 40.0;
  // Clear: average speed at or above `clear_speed`.
  double clear_speed = 45.0;
  Timestamp detection_window = 60;
  // Number of replicas of each context processing query (workload scaling).
  int processing_replicas = 1;
};

// Builds the normalized CAESAR traffic model (Fig. 1/3). Requires the types
// from RegisterLinearRoadTypes in `registry`.
Result<CaesarModel> MakeLinearRoadModel(const LinearRoadModelConfig& config,
                                        TypeRegistry* registry);

}  // namespace caesar

#endif  // CAESAR_WORKLOADS_LINEAR_ROAD_H_
