// Seeded random generator of well-formed CAESAR models and matching event
// streams, for differential testing against the reference interpreter
// (oracle.h).
//
// Every generated model follows the repo's synthetic-workload shape (cf.
// workloads/synthetic.cc): a monotone integer signal `pos = t` drives 2-6
// context types — overlapping user windows with one-shot
// INITIATE/TERMINATE bounds on the signal, optionally a SWITCH pair and a
// helper-derived window — plus a workload of context processing queries:
// SEQ patterns (with join predicates and negation), sliding-window
// aggregates with HAVING, projections, and consumers of derived types.
//
// The generator deliberately stays inside the fragment where every engine
// plan shape is provably equivalent to the reference semantics:
//
//  - SEQ and aggregate patterns read raw input types only; derived types
//    are consumed through single-position event matches. (Multi-position
//    patterns over complex events make the plan shapes differ on events
//    whose occurrence interval starts before the window.)
//  - Window bounds are distinct values of the monotone signal, each
//    crossed exactly once and in sorted order — the soundness
//    precondition of the window-grouping transform (a cyclic signal would
//    re-trigger interior bounds out of order and legitimately diverge on
//    grouped plans). It also means no tick both terminates and
//    re-initiates the same context.
//  - Threshold-bounded (groupable) deriving queries carry no DERIVE
//    clause: grouping keeps one deriving query per bound value, so a
//    DERIVE on a deduplicated bound would be dropped. Derive-with-action
//    coverage rides on the non-groupable `hot` window instead.
//  - Attribute values are small integers, so incremental and naive
//    aggregation agree bit-for-bit.
//
// Streams: `clean` is the canonical time-ordered stream (it may contain
// duplicates — those are part of the semantics). DisorderStream applies a
// bounded per-event arrival delay (a reorder ingest with slack >= the
// bound restores the clean sequence up to equal-time arrival order, which
// the generated fragment is insensitive to), and InjectJunk adds malformed
// rows and beyond-slack stragglers that the ingest layer must quarantine
// without touching the derived stream.

#ifndef CAESAR_ORACLE_GENERATOR_H_
#define CAESAR_ORACLE_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "query/model.h"

namespace caesar {

struct GeneratorOptions {
  int min_segments = 1;
  int max_segments = 3;
  Timestamp min_duration = 60;
  Timestamp max_duration = 140;

  // Arrival-delay bound for DisorderStream (engine reorder slack must be
  // >= this for lossless re-sequencing).
  Timestamp max_delay = 3;

  double duplicate_rate = 0.04;   // clean-stream duplicate events
  double malformed_rate = 0.02;   // InjectJunk: malformed rows
  double late_rate = 0.01;        // InjectJunk: beyond-slack stragglers

  // Guarantee at least one negated SEQ query (for the planted-bug
  // sensitivity check).
  bool force_negation = false;
};

// One generated (model, stream) pair plus feature flags used for corpus
// selection and reporting.
struct GeneratedCase {
  explicit GeneratedCase(TypeRegistry* registry) : model(registry) {}

  CaesarModel model;
  EventBatch clean;        // canonical time-ordered stream
  Timestamp max_delay = 0; // the bound DisorderStream was parameterized with

  bool has_negation = false;
  bool has_leading_negation = false;
  bool has_aggregate = false;
  bool has_switch = false;
  bool has_consumer = false;
  bool has_helper = false;
  bool multi_window = false;
  bool has_shared_bound = false;

  std::string summary;  // one line, human-readable
};

// Generates the case for `seed`. The caller should pass a fresh
// TypeRegistry per case: query labels are seed-independent, so two cases
// sharing a registry could collide on derived-type schemas.
Result<GeneratedCase> GenerateCase(uint64_t seed, TypeRegistry* registry,
                                   const GeneratorOptions& options = {});

// Model with only the queries whose indices appear in `keep` (same
// relative order); contexts, default, and partitioning are preserved.
// Used by the shrinker; the result may fail to translate (e.g. a kept
// consumer lost its producer), which callers treat as an invalid
// shrink candidate.
Result<CaesarModel> RestrictQueries(const CaesarModel& model,
                                    const std::vector<int>& keep);

// Applies a bounded per-event arrival delay drawn from [0, max_delay] and
// stable-sorts by (time + delay, original index). Deterministic in
// (clean, seed).
EventBatch DisorderStream(const EventBatch& clean, uint64_t seed,
                          Timestamp max_delay);

// Named model mutations for the lint oracle (tools/caesar_lint
// --inject-bug, and the fuzz harness's lint leg): each breaks a
// well-formed model in a way the static analyzer must flag with the paired
// diagnostic code, while the unmutated model lints clean.
std::vector<std::string> ModelMutationNames();

// Applies the named mutation to a copy of `model` and sets *expected_code
// to the diagnostic code ("C001", "W204", ...) the linter must report.
// Fails on unknown mutation names, or with FailedPrecondition when the
// model lacks the shape the mutation needs (e.g. no groupable window to
// invert); callers treat that as "skip".
Result<CaesarModel> MutateModel(const CaesarModel& model,
                                const std::string& mutation,
                                std::string* expected_code);

// Inserts malformed rows (unknown type id, negative occurrence time,
// inverted interval) and beyond-slack stragglers into `stream`. None of
// the injected events can be admitted by a reorder ingest with the given
// slack, so the derived stream is unchanged. Deterministic in
// (stream, seed).
EventBatch InjectJunk(const EventBatch& stream, uint64_t seed,
                      const TypeRegistry& registry, TypeId clone_type,
                      Timestamp slack, double malformed_rate,
                      double late_rate);

}  // namespace caesar

#endif  // CAESAR_ORACLE_GENERATOR_H_
