#include "oracle/generator.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

#include "common/rng.h"
#include "event/value.h"
#include "expr/analysis.h"
#include "expr/expr.h"
#include "optimizer/overlap_analysis.h"

namespace caesar {
namespace {

// Processing-query shapes the generator draws from (weighted by repetition
// in the pool below).
enum class Shape { kSeq2, kSeq3, kNeg, kNegLead, kAgg, kConsumer };

// A derived type earlier queries produced whose schema is known exactly
// (explicit DERIVE attr names), so later queries can consume it.
struct Consumable {
  std::string type_name;
  std::vector<std::string> int_attrs;  // attributes safe for int predicates
};

ExprPtr Attr(std::string var, std::string attr) {
  return MakeAttrRef(std::move(var), std::move(attr));
}

ExprPtr IntConst(int64_t v) { return MakeConstant(v); }

std::vector<Value> SmallIntValues(int arity, Rng* rng) {
  std::vector<Value> values;
  values.reserve(arity);
  for (int i = 0; i < arity; ++i) {
    values.emplace_back(static_cast<int64_t>(rng->Uniform(0, 3)));
  }
  return values;
}

}  // namespace

Result<GeneratedCase> GenerateCase(uint64_t seed, TypeRegistry* registry,
                                   const GeneratorOptions& options) {
  Rng rng(seed);
  GeneratedCase out(registry);

  const TypeId sig_id = registry->RegisterOrGet(
      "Sig", {{"seg", ValueType::kInt},
              {"pos", ValueType::kInt},
              {"load", ValueType::kInt},
              {"val", ValueType::kInt}});
  registry->RegisterOrGet("Probe",
                          {{"seg", ValueType::kInt}, {"mark", ValueType::kInt}});

  const int64_t num_segments =
      rng.Uniform(options.min_segments, options.max_segments);
  const Timestamp duration =
      rng.Uniform(options.min_duration, options.max_duration);

  // Context budget: at most 6 context types including the default (the
  // paper's models are small; the ISSUE pins 2-6).
  const bool with_switch = rng.Bernoulli(0.4);
  const bool with_helper = rng.Bernoulli(0.35);
  int budget = 5 - (with_switch ? 2 : 0) - (with_helper ? 1 : 0);
  const int num_windows =
      static_cast<int>(std::min<int64_t>(rng.Uniform(1, 3), budget));

  CaesarModel& model = out.model;
  std::vector<std::string> all_ctx = {"idle"};
  for (int i = 0; i < num_windows; ++i) {
    all_ctx.push_back("w" + std::to_string(i));
  }
  if (with_switch) {
    all_ctx.push_back("swa");
    all_ctx.push_back("swb");
  }
  if (with_helper) all_ctx.push_back("hot");
  for (const std::string& name : all_ctx) {
    CAESAR_RETURN_IF_ERROR(model.AddContext(name));
  }
  CAESAR_RETURN_IF_ERROR(model.SetDefaultContext("idle"));
  model.SetPartitionBy({"seg"});

  // Every context except `name` (the synthetic-workload initiator gate:
  // a window may open while any other window — or idle — is active).
  auto others = [&](const std::string& name) {
    std::vector<std::string> ctxs;
    for (const std::string& c : all_ctx) {
      if (c != name) ctxs.push_back(c);
    }
    return ctxs;
  };

  auto add_query = [&](Query q) -> Status {
    auto added = model.AddQuery(std::move(q));
    if (!added.ok()) return added.status();
    return Status::Ok();
  };

  auto pos_eq = [&](int64_t v) {
    return MakeBinary(BinaryOp::kEq, Attr("s", "pos"), IntConst(v));
  };

  std::vector<Consumable> consumables;

  // ---- Deriving phase -------------------------------------------------

  // Helper-derived window: a derivation helper detects overload ticks and
  // its output initiates `hot`; the terminator's predicate is mutually
  // exclusive with the helper's, so no tick can both terminate and
  // re-initiate the context.
  int64_t hot_end = 0;
  if (with_helper) {
    hot_end = rng.Uniform(3, duration - 3);
    Query helper;
    helper.name = "hot_src";
    helper.derivation_helper = true;
    helper.contexts = all_ctx;  // always-active gate
    PatternSpec p;
    p.kind = PatternSpec::Kind::kEvent;
    p.items.push_back({"Sig", "s", false});
    helper.pattern = std::move(p);
    helper.where = MakeBinary(BinaryOp::kGe, Attr("s", "val"), IntConst(8));
    DeriveSpec d;
    d.event_type = "Hot";
    d.args = {Attr("s", "seg"), Attr("s", "val")};
    d.attr_names = {"seg", "v"};
    helper.derive = std::move(d);
    CAESAR_RETURN_IF_ERROR(add_query(std::move(helper)));
    consumables.push_back({"Hot", {"seg", "v"}});

    Query init;
    init.name = "init_hot";
    init.action = ContextAction::kInitiate;
    init.target_context = "hot";
    PatternSpec ip;
    ip.kind = PatternSpec::Kind::kEvent;
    ip.items.push_back({"Hot", "h", false});
    init.pattern = std::move(ip);
    init.contexts = others("hot");
    if (rng.Bernoulli(0.5)) {
      // Derive-with-action coverage lives here because `hot` is not
      // threshold-bounded, so window grouping never consumes this query
      // (grouping dedups threshold-bounded deriving queries per bound
      // value, which would silently drop a DERIVE clause).
      DeriveSpec d;
      d.event_type = "HotOpen";
      d.args = {Attr("h", "seg"), Attr("h", "v")};
      d.attr_names = {"seg", "p"};
      init.derive = std::move(d);
      consumables.push_back({"HotOpen", {"seg", "p"}});
    }
    CAESAR_RETURN_IF_ERROR(add_query(std::move(init)));

    Query term;
    term.name = "term_hot";
    term.action = ContextAction::kTerminate;
    term.target_context = "hot";
    PatternSpec tp;
    tp.kind = PatternSpec::Kind::kEvent;
    tp.items.push_back({"Sig", "s", false});
    term.pattern = std::move(tp);
    term.where = MakeConjunction(
        pos_eq(hot_end),
        MakeBinary(BinaryOp::kLt, Attr("s", "val"), IntConst(8)));
    term.contexts = {"hot"};
    CAESAR_RETURN_IF_ERROR(add_query(std::move(term)));
    out.has_helper = true;
  }

  // Plain user windows: INITIATE at pos == s_i, TERMINATE at pos == e_i
  // with s_i < e_i, laid out as absolute one-shot intervals inside the run
  // (the monotone signal crosses every bound exactly once, in sorted
  // order — the soundness precondition of window grouping). Bounds may
  // coincide *across* windows (shared bounds exercise zero-length grouped
  // windows in the optimizer).
  std::vector<int64_t> used_bounds;
  for (int i = 0; i < num_windows; ++i) {
    const std::string wname = "w" + std::to_string(i);
    int64_t start = 0;
    if (!used_bounds.empty() && rng.Bernoulli(0.3)) {
      const int64_t reused = used_bounds[rng.Uniform(
          0, static_cast<int64_t>(used_bounds.size()) - 1)];
      if (reused <= duration - 8) {
        start = reused;
        out.has_shared_bound = true;
      }
    }
    if (start == 0) start = rng.Uniform(3, duration - 20);
    int64_t end = 0;
    if (!used_bounds.empty() && rng.Bernoulli(0.25)) {
      std::vector<int64_t> above;
      for (int64_t b : used_bounds) {
        if (b > start && b <= duration - 3) above.push_back(b);
      }
      if (!above.empty()) {
        end = above[rng.Uniform(0, static_cast<int64_t>(above.size()) - 1)];
        out.has_shared_bound = true;
      }
    }
    if (end == 0) {
      end = std::min<int64_t>(start + rng.Uniform(5, 40), duration - 3);
      if (end <= start) end = start + 1;
    }
    used_bounds.push_back(start);
    used_bounds.push_back(end);

    Query init;
    init.name = "init_" + wname;
    init.action = ContextAction::kInitiate;
    init.target_context = wname;
    PatternSpec ip;
    ip.kind = PatternSpec::Kind::kEvent;
    ip.items.push_back({"Sig", "s", false});
    init.pattern = std::move(ip);
    init.where = pos_eq(start);
    init.contexts = others(wname);
    CAESAR_RETURN_IF_ERROR(add_query(std::move(init)));

    Query term;
    term.name = "term_" + wname;
    term.action = ContextAction::kTerminate;
    term.target_context = wname;
    PatternSpec tp;
    tp.kind = PatternSpec::Kind::kEvent;
    tp.items.push_back({"Sig", "s", false});
    term.pattern = std::move(tp);
    term.where = pos_eq(end);
    term.contexts = {wname};
    CAESAR_RETURN_IF_ERROR(add_query(std::move(term)));
  }

  // Switch pair: swa opens at pos == sw_start, SWITCHes to swb at
  // pos == sw_mid, swb closes at pos == sw_end. Under the monotone signal
  // the order is semantic: the bounds must be crossed start < mid < end.
  if (with_switch) {
    int64_t tri[3];
    tri[0] = rng.Uniform(3, duration - 4);
    do {
      tri[1] = rng.Uniform(3, duration - 4);
    } while (tri[1] == tri[0]);
    do {
      tri[2] = rng.Uniform(3, duration - 4);
    } while (tri[2] == tri[0] || tri[2] == tri[1]);
    std::sort(tri, tri + 3);
    const int64_t sw_start = tri[0], sw_mid = tri[1], sw_end = tri[2];

    Query init;
    init.name = "init_swa";
    init.action = ContextAction::kInitiate;
    init.target_context = "swa";
    PatternSpec ip;
    ip.kind = PatternSpec::Kind::kEvent;
    ip.items.push_back({"Sig", "s", false});
    init.pattern = std::move(ip);
    init.where = pos_eq(sw_start);
    init.contexts = others("swa");
    CAESAR_RETURN_IF_ERROR(add_query(std::move(init)));

    Query sw;
    sw.name = "switch_ab";
    sw.action = ContextAction::kSwitch;
    sw.target_context = "swb";
    PatternSpec sp;
    sp.kind = PatternSpec::Kind::kEvent;
    sp.items.push_back({"Sig", "s", false});
    sw.pattern = std::move(sp);
    sw.where = pos_eq(sw_mid);
    sw.contexts = {"swa"};
    CAESAR_RETURN_IF_ERROR(add_query(std::move(sw)));

    Query term;
    term.name = "term_swb";
    term.action = ContextAction::kTerminate;
    term.target_context = "swb";
    PatternSpec tp;
    tp.kind = PatternSpec::Kind::kEvent;
    tp.items.push_back({"Sig", "s", false});
    term.pattern = std::move(tp);
    term.where = pos_eq(sw_end);
    term.contexts = {"swb"};
    CAESAR_RETURN_IF_ERROR(add_query(std::move(term)));
    out.has_switch = true;
  }

  // ---- Processing phase -----------------------------------------------

  auto pick_contexts = [&]() -> std::vector<std::string> {
    std::vector<std::string> nonidle(all_ctx.begin() + 1, all_ctx.end());
    const int64_t r = rng.Uniform(0, 99);
    if (nonidle.empty() || r < 15) return {"idle"};
    auto pick = [&]() {
      return nonidle[rng.Uniform(0, static_cast<int64_t>(nonidle.size()) - 1)];
    };
    if (r < 60) return {pick()};
    if (r < 85) {
      std::string a = pick();
      if (nonidle.size() < 2) return {a};
      std::string b;
      do {
        b = pick();
      } while (b == a);
      return {a, b};
    }
    return {"idle", pick()};
  };

  const int num_processing = static_cast<int>(rng.Uniform(2, 5));
  const std::vector<Shape> pool = {Shape::kSeq2, Shape::kSeq2, Shape::kSeq2,
                                   Shape::kSeq3, Shape::kNeg,  Shape::kNeg,
                                   Shape::kNegLead, Shape::kAgg, Shape::kAgg,
                                   Shape::kConsumer, Shape::kConsumer};
  std::vector<Shape> shapes;
  for (int i = 0; i < num_processing; ++i) {
    shapes.push_back(
        pool[rng.Uniform(0, static_cast<int64_t>(pool.size()) - 1)]);
  }
  if (options.force_negation) {
    bool any = false;
    for (Shape s : shapes) {
      if (s == Shape::kNeg || s == Shape::kNegLead) any = true;
    }
    if (!any) shapes.back() = Shape::kNeg;
  }

  // SEQ `within` bound: 0 (10% of the time) exercises the plan-default
  // path, which both sides must agree on.
  auto draw_within = [&](int64_t lo, int64_t hi) -> Timestamp {
    if (rng.Bernoulli(0.1)) return 0;
    return rng.Uniform(lo, hi);
  };

  for (int i = 0; i < num_processing; ++i) {
    Shape shape = shapes[i];
    if (shape == Shape::kConsumer && consumables.empty()) shape = Shape::kSeq2;
    const std::string dname = "D" + std::to_string(i);

    Query q;
    q.name = "p" + std::to_string(i);
    q.contexts = pick_contexts();

    switch (shape) {
      case Shape::kSeq2: {
        PatternSpec p;
        p.kind = PatternSpec::Kind::kSeq;
        p.items = {{"Sig", "a", false}, {"Sig", "b", false}};
        p.within = draw_within(3, 10);
        q.pattern = std::move(p);
        ExprPtr w = MakeBinary(BinaryOp::kEq, Attr("a", "load"),
                               Attr("b", "load"));
        if (rng.Bernoulli(0.5)) {
          w = MakeConjunction(w, MakeBinary(BinaryOp::kGe, Attr("b", "val"),
                                            IntConst(rng.Uniform(0, 6))));
        }
        if (rng.Bernoulli(0.4)) {
          w = MakeConjunction(w, MakeBinary(BinaryOp::kLe, Attr("a", "val"),
                                            IntConst(rng.Uniform(4, 9))));
        }
        q.where = std::move(w);
        DeriveSpec d;
        d.event_type = dname;
        if (rng.Bernoulli(0.3)) {
          // Inferred output names with a collision ("load", "load_1") plus
          // an expression arg ("a2") — exercises name inference/dedup.
          d.args = {Attr("a", "load"), Attr("b", "load"),
                    MakeBinary(BinaryOp::kAdd, Attr("a", "val"),
                               Attr("b", "val"))};
        } else {
          d.args = {Attr("a", "pos"), Attr("b", "val"), Attr("b", "load")};
          d.attr_names = {"x0", "x1", "x2"};
          consumables.push_back({dname, {"x0", "x1", "x2"}});
        }
        q.derive = std::move(d);
        break;
      }
      case Shape::kSeq3: {
        PatternSpec p;
        p.kind = PatternSpec::Kind::kSeq;
        p.items = {{"Sig", "a", false},
                   {"Sig", "b", false},
                   {"Sig", "c", false}};
        p.within = draw_within(4, 12);
        q.pattern = std::move(p);
        q.where = MakeConjunction(
            MakeBinary(BinaryOp::kEq, Attr("a", "load"), Attr("c", "load")),
            MakeBinary(BinaryOp::kGe, Attr("b", "val"), IntConst(5)));
        DeriveSpec d;
        d.event_type = dname;
        d.args = {Attr("a", "pos"), Attr("c", "val")};
        d.attr_names = {"x0", "x1"};
        q.derive = std::move(d);
        consumables.push_back({dname, {"x0", "x1"}});
        break;
      }
      case Shape::kNeg: {
        PatternSpec p;
        p.kind = PatternSpec::Kind::kSeq;
        p.items = {{"Sig", "a", false},
                   {"Probe", "n", true},
                   {"Sig", "b", false}};
        p.within = rng.Uniform(3, 10);
        q.pattern = std::move(p);
        ExprPtr w = MakeBinary(BinaryOp::kEq, Attr("a", "load"),
                               Attr("b", "load"));
        if (rng.Bernoulli(0.5)) {
          w = MakeConjunction(w, MakeBinary(BinaryOp::kEq, Attr("n", "mark"),
                                            Attr("a", "load")));
        } else {
          w = MakeConjunction(w, MakeBinary(BinaryOp::kLe, Attr("n", "mark"),
                                            IntConst(rng.Uniform(1, 3))));
        }
        q.where = std::move(w);
        DeriveSpec d;
        d.event_type = dname;
        d.args = {Attr("a", "pos"), Attr("b", "val")};
        d.attr_names = {"x0", "x1"};
        q.derive = std::move(d);
        consumables.push_back({dname, {"x0", "x1"}});
        out.has_negation = true;
        break;
      }
      case Shape::kNegLead: {
        PatternSpec p;
        p.kind = PatternSpec::Kind::kSeq;
        p.items = {{"Probe", "n", true}, {"Sig", "b", false}};
        p.within = rng.Uniform(3, 8);
        q.pattern = std::move(p);
        q.where = MakeBinary(BinaryOp::kEq, Attr("n", "mark"),
                             Attr("b", "load"));
        DeriveSpec d;
        d.event_type = dname;
        d.args = {Attr("b", "pos"), Attr("b", "val")};
        d.attr_names = {"x0", "x1"};
        q.derive = std::move(d);
        consumables.push_back({dname, {"x0", "x1"}});
        out.has_negation = true;
        out.has_leading_negation = true;
        break;
      }
      case Shape::kAgg: {
        PatternSpec p;
        p.kind = PatternSpec::Kind::kAggregate;
        p.items = {{"Sig", "s", false}};
        p.window_length = rng.Uniform(2, 6);
        const bool grouped = rng.Bernoulli(0.5);
        if (grouped) p.group_by = {"load"};
        p.aggregates.push_back({AggregateFunc::kCount, "", "cnt"});
        bool second_agg = rng.Bernoulli(0.7);
        if (second_agg) {
          const AggregateFunc funcs[] = {AggregateFunc::kSum,
                                         AggregateFunc::kAvg,
                                         AggregateFunc::kMin,
                                         AggregateFunc::kMax};
          p.aggregates.push_back({funcs[rng.Uniform(0, 3)], "val", "v"});
        }
        if (rng.Bernoulli(0.6)) {
          p.having = MakeBinary(BinaryOp::kGe, MakeAttrRef("cnt"),
                                IntConst(rng.Uniform(1, 3)));
        }
        q.pattern = std::move(p);
        if (rng.Bernoulli(0.3)) {
          q.where = MakeBinary(BinaryOp::kLe, Attr("s", "cnt"),
                               IntConst(rng.Uniform(3, 8)));
        }
        DeriveSpec d;
        d.event_type = dname;
        d.args = {Attr("s", "cnt")};
        d.attr_names = {"x0"};
        std::vector<std::string> int_attrs = {"x0"};
        if (grouped && rng.Bernoulli(0.5)) {
          d.args.push_back(Attr("s", "load"));
          d.attr_names.push_back("x1");
          int_attrs.push_back("x1");
        }
        if (second_agg && rng.Bernoulli(0.5)) {
          d.args.push_back(Attr("s", "v"));
          d.attr_names.push_back("xv");  // double-typed; not for predicates
        }
        q.derive = std::move(d);
        consumables.push_back({dname, std::move(int_attrs)});
        out.has_aggregate = true;
        break;
      }
      case Shape::kConsumer: {
        const Consumable& src = consumables[rng.Uniform(
            0, static_cast<int64_t>(consumables.size()) - 1)];
        PatternSpec p;
        p.kind = PatternSpec::Kind::kEvent;
        p.items = {{src.type_name, "d", false}};
        q.pattern = std::move(p);
        const std::string& a0 = src.int_attrs[rng.Uniform(
            0, static_cast<int64_t>(src.int_attrs.size()) - 1)];
        q.where = MakeBinary(BinaryOp::kGe, Attr("d", a0),
                             IntConst(rng.Uniform(0, 5)));
        DeriveSpec d;
        d.event_type = dname;
        d.args = {Attr("d", a0)};
        d.attr_names = {"y0"};
        q.derive = std::move(d);
        consumables.push_back({dname, {"y0"}});
        out.has_consumer = true;
        break;
      }
    }
    CAESAR_RETURN_IF_ERROR(add_query(std::move(q)));
  }

  CAESAR_RETURN_IF_ERROR(model.Normalize());

  // ---- Canonical clean stream ----------------------------------------

  const TypeId probe_id = registry->Lookup("Probe");
  for (Timestamp t = 0; t < duration; ++t) {
    for (int64_t seg = 0; seg < num_segments; ++seg) {
      std::vector<Value> sig = {Value(seg), Value(t),
                                Value(rng.Uniform(0, 3)),
                                Value(rng.Uniform(0, 9))};
      out.clean.push_back(MakeEvent(sig_id, t, sig));
      if (rng.Bernoulli(options.duplicate_rate)) {
        out.clean.push_back(MakeEvent(sig_id, t, sig));
      }
      if (rng.Bernoulli(0.25)) {
        std::vector<Value> probe = {Value(seg), Value(rng.Uniform(0, 3))};
        out.clean.push_back(MakeEvent(probe_id, t, probe));
        if (rng.Bernoulli(options.duplicate_rate)) {
          out.clean.push_back(MakeEvent(probe_id, t, probe));
        }
      }
    }
  }

  out.max_delay = options.max_delay;
  out.multi_window = static_cast<int>(all_ctx.size()) > 2;

  std::ostringstream summary;
  summary << "seed=" << seed << " segments=" << num_segments
          << " duration=" << duration << " windows=" << num_windows
          << (with_switch ? " +switch" : "") << (with_helper ? " +helper" : "")
          << " processing=" << num_processing << " events="
          << out.clean.size();
  if (out.has_negation) summary << " neg";
  if (out.has_aggregate) summary << " agg";
  if (out.has_consumer) summary << " consumer";
  if (out.has_shared_bound) summary << " shared-bound";
  out.summary = summary.str();
  return out;
}

Result<CaesarModel> RestrictQueries(const CaesarModel& model,
                                    const std::vector<int>& keep) {
  CaesarModel restricted(model.registry());
  for (const ContextType& c : model.contexts()) {
    CAESAR_RETURN_IF_ERROR(restricted.AddContext(c.name));
  }
  CAESAR_RETURN_IF_ERROR(restricted.SetDefaultContext(model.default_context()));
  restricted.SetPartitionBy(model.partition_by());
  for (int qi : keep) {
    if (qi < 0 || qi >= model.num_queries()) {
      return Status::InvalidArgument("RestrictQueries: index out of range");
    }
    auto added = restricted.AddQuery(model.query(qi));
    if (!added.ok()) return added.status();
  }
  CAESAR_RETURN_IF_ERROR(restricted.Normalize());
  return restricted;
}

namespace {

// A raw input type some query already reads (for synthesizing pattern
// clauses in mutations); empty if the model has no positive pattern items.
std::string AnyInputType(const CaesarModel& model) {
  for (const Query& query : model.queries()) {
    if (!query.pattern.has_value()) continue;
    for (const PatternItem& item : query.pattern->items) {
      if (!item.negated) return item.event_type;
    }
  }
  return "";
}

Query EventMatchQuery(std::string name, const std::string& input_type) {
  Query query;
  query.name = std::move(name);
  PatternSpec pattern;
  pattern.kind = PatternSpec::Kind::kEvent;
  pattern.items.push_back(PatternItem{input_type, "m", false});
  query.pattern = std::move(pattern);
  return query;
}

}  // namespace

std::vector<std::string> ModelMutationNames() {
  return {"unreachable_context", "self_loop_switch", "dead_query",
          "unknown_attribute",   "type_error",       "contradiction",
          "trailing_negation",   "inverted_window"};
}

Result<CaesarModel> MutateModel(const CaesarModel& model,
                                const std::string& mutation,
                                std::string* expected_code) {
  CaesarModel mutated = model;
  const std::string input_type = AnyInputType(model);
  if (input_type.empty()) {
    return Status::FailedPrecondition("model has no pattern inputs to mutate");
  }

  if (mutation == "unreachable_context") {
    // A declared context nobody INITIATEs or SWITCHes to.
    CAESAR_RETURN_IF_ERROR(mutated.AddContext("mut_ghost"));
    *expected_code = "C001";
    return mutated;
  }

  if (mutation == "self_loop_switch") {
    // SWITCH gated on its own target context.
    Query query = EventMatchQuery("mut_selfloop", input_type);
    query.action = ContextAction::kSwitch;
    query.target_context = model.default_context();
    query.contexts = {model.default_context()};
    CAESAR_RETURN_IF_ERROR(mutated.AddQuery(std::move(query)).status());
    *expected_code = "C002";
    return mutated;
  }

  if (mutation == "dead_query") {
    // Two contexts that only initiate each other: both are targeted by
    // some query (so C001 stays quiet) but neither can ever become active.
    CAESAR_RETURN_IF_ERROR(mutated.AddContext("mut_isle_a"));
    CAESAR_RETURN_IF_ERROR(mutated.AddContext("mut_isle_b"));
    Query qa = EventMatchQuery("mut_dead_a", input_type);
    qa.action = ContextAction::kInitiate;
    qa.target_context = "mut_isle_a";
    qa.contexts = {"mut_isle_b"};
    Query qb = EventMatchQuery("mut_dead_b", input_type);
    qb.action = ContextAction::kInitiate;
    qb.target_context = "mut_isle_b";
    qb.contexts = {"mut_isle_a"};
    CAESAR_RETURN_IF_ERROR(mutated.AddQuery(std::move(qa)).status());
    CAESAR_RETURN_IF_ERROR(mutated.AddQuery(std::move(qb)).status());
    *expected_code = "C004";
    return mutated;
  }

  if (mutation == "unknown_attribute") {
    // Reference an attribute no schema in scope defines.
    for (int qi = 0; qi < mutated.num_queries(); ++qi) {
      Query* query = mutated.mutable_query(qi);
      if (!query->pattern.has_value() || query->where == nullptr) continue;
      query->where = MakeConjunction(
          query->where, MakeBinary(BinaryOp::kGe,
                                   MakeAttrRef("mut_no_such_attr"),
                                   MakeConstant(int64_t{0})));
      *expected_code = "E102";
      return mutated;
    }
    return Status::FailedPrecondition("no query with a WHERE to mutate");
  }

  if (mutation == "type_error" || mutation == "contradiction") {
    // Both need a threshold conjunct to anchor on; `contradiction`
    // additionally needs the whole conjunction to be interval-exact so the
    // empty intersection is provable.
    for (int qi = 0; qi < mutated.num_queries(); ++qi) {
      Query* query = mutated.mutable_query(qi);
      if (!query->pattern.has_value() || query->where == nullptr) continue;
      std::vector<ExprPtr> conjuncts = SplitConjuncts(query->where);
      std::optional<AttrConstraint> anchor;
      bool all_exact = true;
      for (const ExprPtr& conjunct : conjuncts) {
        std::optional<AttrConstraint> constraint =
            ExtractConstraint(conjunct);
        if (!constraint.has_value()) {
          all_exact = false;
          continue;
        }
        if (!anchor.has_value()) anchor = constraint;
      }
      if (!anchor.has_value()) continue;
      if (mutation == "type_error") {
        // Compare the (numeric) anchored attribute against a string.
        query->where = MakeConjunction(
            query->where,
            MakeBinary(BinaryOp::kEq,
                       MakeAttrRef(anchor->variable, anchor->attribute),
                       MakeConstant("mut_oops")));
        *expected_code = "E103";
        return mutated;
      }
      if (!all_exact) continue;
      // Contradiction: force the anchored attribute into an empty interval.
      query->where = MakeConjunction(
          query->where,
          MakeConjunction(
              MakeBinary(BinaryOp::kGt,
                         MakeAttrRef(anchor->variable, anchor->attribute),
                         MakeConstant(int64_t{1} << 40)),
              MakeBinary(BinaryOp::kLt,
                         MakeAttrRef(anchor->variable, anchor->attribute),
                         MakeConstant(-(int64_t{1} << 40)))));
      *expected_code = "W201";
      return mutated;
    }
    return Status::FailedPrecondition("no threshold conjunct to mutate");
  }

  if (mutation == "trailing_negation") {
    // Self-contained SEQ ending in NOT (the translator rejects this; the
    // linter reports it as a coded error before translation).
    Query query;
    query.name = "mut_trailing";
    DeriveSpec derive;
    derive.event_type = "MutTrailingOut";
    derive.args.push_back(MakeConstant(int64_t{1}));
    derive.attr_names = {"one"};
    query.derive = std::move(derive);
    PatternSpec pattern;
    pattern.kind = PatternSpec::Kind::kSeq;
    pattern.items.push_back(PatternItem{input_type, "a", false});
    pattern.items.push_back(PatternItem{input_type, "b", true});
    query.pattern = std::move(pattern);
    query.contexts = {model.default_context()};
    CAESAR_RETURN_IF_ERROR(mutated.AddQuery(std::move(query)).status());
    *expected_code = "P302";
    return mutated;
  }

  if (mutation == "inverted_window") {
    // Swap the threshold predicates of a groupable window's initiator and
    // terminator, so the window would close before it opens.
    std::vector<WindowBounds> bounds = ExtractWindowBounds(model);
    if (bounds.empty()) {
      return Status::FailedPrecondition("no groupable window to invert");
    }
    Query* init = mutated.mutable_query(bounds[0].initiator_query);
    Query* term = mutated.mutable_query(bounds[0].terminator_query);
    std::swap(init->where, term->where);
    *expected_code = "W204";
    return mutated;
  }

  return Status::InvalidArgument("unknown model mutation: " + mutation);
}

EventBatch DisorderStream(const EventBatch& clean, uint64_t seed,
                          Timestamp max_delay) {
  if (max_delay <= 0) return clean;
  Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<std::pair<Timestamp, size_t>> keys;
  keys.reserve(clean.size());
  for (size_t i = 0; i < clean.size(); ++i) {
    keys.emplace_back(clean[i]->time() + rng.Uniform(0, max_delay), i);
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EventBatch out;
  out.reserve(clean.size());
  for (const auto& [key, index] : keys) out.push_back(clean[index]);
  return out;
}

EventBatch InjectJunk(const EventBatch& stream, uint64_t seed,
                      const TypeRegistry& registry, TypeId clone_type,
                      Timestamp slack, double malformed_rate,
                      double late_rate) {
  Rng rng(seed ^ 0xD1FF5EEDCAFEF00DULL);
  const int arity = registry.type(clone_type).schema.num_attributes();
  EventBatch out;
  out.reserve(stream.size());
  Timestamp max_seen = 0;
  bool any_seen = false;
  for (const EventPtr& event : stream) {
    out.push_back(event);
    if (!any_seen || event->time() > max_seen) {
      max_seen = event->time();
      any_seen = true;
    }
    if (rng.Bernoulli(malformed_rate)) {
      switch (rng.Uniform(0, 2)) {
        case 0:
          // Unknown type id, far above anything the registry will ever
          // intern during this run.
          out.push_back(MakeEvent(1000000 + static_cast<TypeId>(
                                      rng.Uniform(0, 7)),
                                  event->time(), {}));
          break;
        case 1:
          out.push_back(MakeEvent(clone_type, -1 - rng.Uniform(0, 50),
                                  SmallIntValues(arity, &rng)));
          break;
        default:
          // Inverted interval: end < start with end >= 0.
          out.push_back(MakeComplexEvent(clone_type, event->time() + 2,
                                         event->time(),
                                         SmallIntValues(arity, &rng)));
          break;
      }
    }
    if (any_seen && rng.Bernoulli(late_rate)) {
      const Timestamp late = max_seen - slack - 1 - rng.Uniform(0, 3);
      if (late >= 0) {
        out.push_back(MakeEvent(clone_type, late, SmallIntValues(arity, &rng)));
      }
    }
  }
  return out;
}

}  // namespace caesar
