#include "oracle/oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "event/schema.h"
#include "event/value.h"
#include "expr/analysis.h"
#include "expr/compiled.h"
#include "runtime/context_vector.h"

namespace caesar {
namespace {

// ---------------------------------------------------------------------------
// Static per-query description, resolved once per model.

struct OracleConjunct {
  std::unique_ptr<CompiledExpr> expr;
  // Pattern position of the (single) negated variable the conjunct
  // references, or -1 for an ordinary match condition. Mirrors the
  // translator's conjunct classification: negation conditions are evaluated
  // against negation candidates, everything else against the completed
  // match (push-down only changes *when* the engine evaluates them, never
  // the final match set).
  int negated_pos = -1;
};

struct OracleAgg {
  AggregateFunc func = AggregateFunc::kCount;
  int attr_index = -1;  // -1 for COUNT
};

struct OracleQuery {
  int model_index = -1;
  std::string label;
  bool deriving = false;

  // Context gate (OR semantics) with history anchors.
  std::vector<int> contexts;
  std::vector<int> anchors;
  uint64_t mask = 0;

  PatternSpec::Kind kind = PatternSpec::Kind::kEvent;
  std::vector<TypeId> item_types;  // one per pattern item
  std::vector<bool> negated;       // parallel to item_types
  std::vector<int> positives;     // item indices of the positive positions
  Timestamp within = 0;            // kSeq: resolved WITHIN bound
  TypeId match_type = kInvalidTypeId;  // kSeq: "$match_<label>" composite

  // kEvent / kSeq, compiled against the per-item bindings.
  std::vector<OracleConjunct> conjuncts;

  // kAggregate.
  std::vector<int> group_by;  // input attribute indices
  std::vector<OracleAgg> aggs;
  Timestamp window_length = 0;
  TypeId agg_type = kInvalidTypeId;               // "$agg_<label>"
  std::unique_ptr<CompiledExpr> having;           // vs the output binding
  std::unique_ptr<CompiledExpr> post_where;       // vs the output binding

  // DERIVE. For kEvent/kSeq the args are compiled against the item
  // bindings (equivalent to the translator's composite rewrite); for
  // kAggregate against the aggregate output binding.
  TypeId output_type = kInvalidTypeId;
  std::vector<std::unique_ptr<CompiledExpr>> derive_args;

  ContextAction action = ContextAction::kNone;
  int target_context = -1;
};

// ---------------------------------------------------------------------------
// Per-(partition, query) dynamic state.

struct AggSample {
  Timestamp time = 0;
  EventPtr event;  // the admitted input event (values re-read naively)
};

struct AggGroup {
  std::vector<Value> key;  // values of the first event that formed the group
  std::vector<AggSample> samples;
};

struct QueryState {
  bool was_active = false;
  uint64_t last_active_bits = 0;
  // kSeq / kEvent: admitted events of the query's item types (time order).
  std::vector<EventPtr> log;
  // kAggregate.
  std::vector<AggGroup> groups;

  void Reset() {
    log.clear();
    groups.clear();
  }
  // The single retention rule: drop everything older than `horizon`.
  // Reproduces partial-match expiry (the first component of any match
  // carries the strictly minimal time), negation-buffer expiry, aggregate
  // eviction, and GC.
  void ExpireBefore(Timestamp horizon) {
    log.erase(std::remove_if(log.begin(), log.end(),
                             [horizon](const EventPtr& e) {
                               return e->time() < horizon;
                             }),
              log.end());
    for (AggGroup& group : groups) {
      group.samples.erase(
          std::remove_if(group.samples.begin(), group.samples.end(),
                         [horizon](const AggSample& s) {
                           return s.time < horizon;
                         }),
          group.samples.end());
    }
  }
};

struct PartitionState {
  ContextBitVector contexts;
  std::vector<QueryState> deriving;    // parallel to Oracle::deriving_
  std::vector<QueryState> processing;  // parallel to Oracle::processing_

  PartitionState(int num_contexts, int default_context, size_t num_deriving,
                 size_t num_processing)
      : contexts(num_contexts, default_context),
        deriving(num_deriving),
        processing(num_processing) {}
};

// ---------------------------------------------------------------------------

// Same mixing as Engine::PartitionKeyOf (runtime/engine.cc); the oracle
// never shards, but it must group events into the same partitions so
// per-partition context state matches.
uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

std::string InferAttrName(const ExprPtr& arg, const std::string& given,
                          int index) {
  if (!given.empty()) return given;
  if (arg->kind() == Expr::Kind::kAttrRef) {
    return static_cast<const AttrRefExpr&>(*arg).attribute();
  }
  return "a" + std::to_string(index);
}

Result<TypeId> RegisterDerivedType(TypeRegistry* registry,
                                   const std::string& name,
                                   std::vector<Attribute> attributes,
                                   const std::string& query_label) {
  TypeId existing = registry->Lookup(name);
  if (existing != kInvalidTypeId) {
    const Schema& schema = registry->type(existing).schema;
    if (schema.num_attributes() != static_cast<int>(attributes.size())) {
      return Status::FailedPrecondition(
          query_label + ": derived type " + name +
          " already registered with a different schema");
    }
    return existing;
  }
  return registry->Register(name, std::move(attributes));
}

// ---------------------------------------------------------------------------
// The interpreter.

class Oracle {
 public:
  Oracle(const CaesarModel& model, OracleOptions options)
      : model_(model), options_(options), registry_(model.registry()) {}

  Status Prepare();
  Result<EventBatch> Run(const EventBatch& input);

 private:
  Result<OracleQuery> ResolveQuery(int qi);
  Status OrderPhase(std::vector<OracleQuery> phase,
                    std::vector<OracleQuery>* sorted, const char* name);

  uint64_t PartitionKeyOf(const Event& event) const;
  PartitionState* GetOrCreatePartition(uint64_t key);

  void ProcessTransaction(PartitionState* partition, Timestamp t,
                          const EventBatch& events, EventBatch* derived);
  void RunQuery(PartitionState* partition, const OracleQuery& oq,
                QueryState* qs, const EventBatch& pool, Timestamp t,
                EventBatch* out);
  void HandleTransitions(PartitionState* partition, const OracleQuery& oq,
                         QueryState* qs);

  // ContextWindowOp semantics: some active gate context admits the event.
  bool WindowAdmits(const PartitionState& partition, const OracleQuery& oq,
                    const Event& event) const;

  void MatchSeq(const PartitionState& partition, const OracleQuery& oq,
                QueryState* qs, Timestamp t, EventBatch* matched);
  bool NegationsClear(const OracleQuery& oq, const QueryState& qs,
                      std::vector<EventPtr>* bound) const;
  void RunAggregate(const PartitionState& partition, const OracleQuery& oq,
                    QueryState* qs, const EventBatch& pool, Timestamp t,
                    EventBatch* matched);

  const CaesarModel& model_;
  OracleOptions options_;
  TypeRegistry* registry_;

  std::vector<OracleQuery> deriving_;
  std::vector<OracleQuery> processing_;
  // partition_by attribute index per type id; -1 = absent.
  std::vector<std::vector<int>> partition_attrs_;

  std::map<uint64_t, std::unique_ptr<PartitionState>> partitions_;
  Timestamp last_gc_ = 0;
};

Status Oracle::Prepare() {
  // Resolve queries in model order — the same order in which the
  // translator's first pass registers derived types — then split into
  // phases and order each phase by type dependencies exactly like
  // plan/translator.cc::TopoSort. (The oracle does not replicate the
  // translator's forward-reference retry: the differential harness always
  // presents models whose producers precede their consumers.)
  std::vector<OracleQuery> deriving;
  std::vector<OracleQuery> processing;
  for (int qi = 0; qi < model_.num_queries(); ++qi) {
    CAESAR_ASSIGN_OR_RETURN(OracleQuery oq, ResolveQuery(qi));
    if (oq.deriving) {
      deriving.push_back(std::move(oq));
    } else {
      processing.push_back(std::move(oq));
    }
  }
  CAESAR_RETURN_IF_ERROR(
      OrderPhase(std::move(deriving), &deriving_, "deriving"));
  CAESAR_RETURN_IF_ERROR(
      OrderPhase(std::move(processing), &processing_, "processing"));
  return Status::Ok();
}

Result<OracleQuery> Oracle::ResolveQuery(int qi) {
  const Query& query = model_.query(qi);
  OracleQuery oq;
  oq.model_index = qi;
  oq.label = query.name.empty() ? "query #" + std::to_string(qi) : query.name;
  oq.deriving = query.IsContextDeriving();
  oq.action = query.action;
  if (query.action != ContextAction::kNone) {
    oq.target_context = model_.ContextIndex(query.target_context);
    if (oq.target_context < 0) {
      return Status::InvalidArgument(oq.label + ": unknown target context " +
                                     query.target_context);
    }
  }
  for (const std::string& context : query.contexts) {
    int id = model_.ContextIndex(context);
    if (id < 0) {
      return Status::InvalidArgument(oq.label + ": unknown context " +
                                     context);
    }
    oq.contexts.push_back(id);
    oq.mask |= uint64_t{1} << id;
  }
  if (query.context_anchors.empty()) {
    oq.anchors = oq.contexts;
  } else {
    for (const std::string& anchor : query.context_anchors) {
      int id = model_.ContextIndex(anchor);
      if (id < 0) {
        return Status::InvalidArgument(oq.label + ": unknown anchor context " +
                                       anchor);
      }
      oq.anchors.push_back(id);
    }
  }

  if (!query.pattern.has_value()) {
    return Status::InvalidArgument(oq.label + ": query without a pattern");
  }
  const PatternSpec& pattern = *query.pattern;
  oq.kind = pattern.kind;

  // Resolve the pattern items into a binding set (anonymous variables get
  // the translator's "_<i>" names so bare-attribute resolution agrees).
  BindingSet bindings;
  std::vector<std::string> var_names;
  for (size_t i = 0; i < pattern.items.size(); ++i) {
    const PatternItem& item = pattern.items[i];
    TypeId type_id = registry_->Lookup(item.event_type);
    if (type_id == kInvalidTypeId) {
      return Status::NotFound(oq.label + ": unknown event type " +
                              item.event_type);
    }
    oq.item_types.push_back(type_id);
    oq.negated.push_back(item.negated);
    if (!item.negated) oq.positives.push_back(static_cast<int>(i));
    std::string var =
        item.variable.empty() ? "_" + std::to_string(i) : item.variable;
    var_names.push_back(var);
    bindings.Add({var, type_id, &registry_->type(type_id).schema});
  }

  switch (pattern.kind) {
    case PatternSpec::Kind::kEvent: {
      // Whole WHERE as one match condition over the single binding.
      if (query.where != nullptr) {
        CAESAR_ASSIGN_OR_RETURN(std::unique_ptr<CompiledExpr> compiled,
                                Compile(query.where, bindings));
        OracleConjunct conjunct;
        conjunct.expr = std::move(compiled);
        oq.conjuncts.push_back(std::move(conjunct));
      }
      break;
    }
    case PatternSpec::Kind::kSeq: {
      if (pattern.items.back().negated) {
        return Status::Unimplemented(oq.label +
                                     ": trailing NOT is not supported");
      }
      oq.within =
          pattern.within > 0 ? pattern.within : options_.default_within;
      // Register the composite type exactly like the translator so the
      // shared registry ends up with identical ids either way.
      std::vector<Attribute> attributes;
      for (int item : oq.positives) {
        const Schema& schema = registry_->type(oq.item_types[item]).schema;
        for (const Attribute& attr : schema.attributes()) {
          attributes.push_back({var_names[item] + "." + attr.name, attr.type});
        }
      }
      CAESAR_ASSIGN_OR_RETURN(
          oq.match_type,
          RegisterDerivedType(registry_, "$match_" + oq.label,
                              std::move(attributes), oq.label));
      // Classify conjuncts: negation conditions vs match conditions.
      for (const ExprPtr& conjunct : SplitConjuncts(query.where)) {
        CAESAR_ASSIGN_OR_RETURN(std::unique_ptr<CompiledExpr> compiled,
                                Compile(conjunct, bindings));
        int negated_ref = -1;
        for (int var : compiled->referenced_vars()) {
          if (oq.negated[var]) {
            if (negated_ref >= 0 && negated_ref != var) {
              return Status::Unimplemented(
                  oq.label + ": predicate spans multiple negated variables: " +
                  conjunct->ToString());
            }
            negated_ref = var;
          }
        }
        OracleConjunct oc;
        oc.expr = std::move(compiled);
        oc.negated_pos = negated_ref;
        oq.conjuncts.push_back(std::move(oc));
      }
      break;
    }
    case PatternSpec::Kind::kAggregate: {
      const Schema& input_schema =
          registry_->type(oq.item_types[0]).schema;
      oq.window_length = pattern.window_length > 0 ? pattern.window_length : 1;
      std::vector<Attribute> out_attrs;
      for (const std::string& attr_name : pattern.group_by) {
        int index = input_schema.IndexOf(attr_name);
        if (index < 0) {
          return Status::InvalidArgument(
              oq.label + ": unknown group-by attribute " + attr_name);
        }
        oq.group_by.push_back(index);
        out_attrs.push_back({attr_name, input_schema.attribute(index).type});
      }
      for (const AggregateSpec& agg : pattern.aggregates) {
        OracleAgg oa;
        oa.func = agg.func;
        if (!agg.attribute.empty()) {
          oa.attr_index = input_schema.IndexOf(agg.attribute);
          if (oa.attr_index < 0) {
            return Status::InvalidArgument(
                oq.label + ": unknown aggregate attribute " + agg.attribute);
          }
        } else if (agg.func != AggregateFunc::kCount) {
          return Status::InvalidArgument(
              oq.label + ": only COUNT may omit its attribute");
        }
        oq.aggs.push_back(oa);
        out_attrs.push_back({agg.name, agg.func == AggregateFunc::kCount
                                           ? ValueType::kInt
                                           : ValueType::kDouble});
      }
      CAESAR_ASSIGN_OR_RETURN(
          oq.agg_type, RegisterDerivedType(registry_, "$agg_" + oq.label,
                                           std::move(out_attrs), oq.label));
      BindingSet post_bindings;
      post_bindings.Add({var_names[0], oq.agg_type,
                         &registry_->type(oq.agg_type).schema});
      if (pattern.having != nullptr) {
        CAESAR_ASSIGN_OR_RETURN(oq.having,
                                Compile(pattern.having, post_bindings));
      }
      if (query.where != nullptr) {
        CAESAR_ASSIGN_OR_RETURN(oq.post_where,
                                Compile(query.where, post_bindings));
      }
      break;
    }
  }

  // DERIVE clause: infer the output schema with the translator's rules and
  // compile the argument expressions.
  if (query.derive.has_value()) {
    const DeriveSpec& derive = *query.derive;
    const BindingSet* arg_bindings = &bindings;
    BindingSet post_bindings;
    if (pattern.kind == PatternSpec::Kind::kAggregate) {
      post_bindings.Add({var_names[0], oq.agg_type,
                         &registry_->type(oq.agg_type).schema});
      arg_bindings = &post_bindings;
    }
    std::vector<Attribute> attributes;
    for (size_t i = 0; i < derive.args.size(); ++i) {
      CAESAR_ASSIGN_OR_RETURN(std::unique_ptr<CompiledExpr> compiled,
                              Compile(derive.args[i], *arg_bindings));
      if (pattern.kind == PatternSpec::Kind::kSeq) {
        for (int var : compiled->referenced_vars()) {
          if (oq.negated[var]) {
            return Status::InvalidArgument(
                oq.label + ": DERIVE references negated variable " +
                var_names[var]);
          }
        }
      }
      std::string name = InferAttrName(
          derive.args[i],
          i < derive.attr_names.size() ? derive.attr_names[i] : "",
          static_cast<int>(i));
      attributes.push_back({name, compiled->result_type()});
      oq.derive_args.push_back(std::move(compiled));
    }
    std::set<std::string> seen;
    for (size_t i = 0; i < attributes.size(); ++i) {
      while (seen.count(attributes[i].name) > 0) {
        attributes[i].name += "_" + std::to_string(i);
      }
      seen.insert(attributes[i].name);
    }
    CAESAR_ASSIGN_OR_RETURN(
        oq.output_type, RegisterDerivedType(registry_, derive.event_type,
                                            std::move(attributes), oq.label));
  }
  return oq;
}

Status Oracle::OrderPhase(std::vector<OracleQuery> phase,
                          std::vector<OracleQuery>* sorted,
                          const char* name) {
  // Kahn's algorithm with the exact tie-breaks of plan/translator.cc.
  std::map<TypeId, std::vector<size_t>> producers;
  for (size_t i = 0; i < phase.size(); ++i) {
    if (phase[i].output_type != kInvalidTypeId) {
      producers[phase[i].output_type].push_back(i);
    }
  }
  std::vector<std::set<size_t>> deps(phase.size());
  std::vector<std::vector<size_t>> dependents(phase.size());
  for (size_t i = 0; i < phase.size(); ++i) {
    for (TypeId input : phase[i].item_types) {
      auto it = producers.find(input);
      if (it == producers.end()) continue;
      for (size_t p : it->second) {
        if (p == i) continue;
        if (deps[i].insert(p).second) dependents[p].push_back(i);
      }
    }
  }
  std::vector<size_t> ready;
  for (size_t i = 0; i < phase.size(); ++i) {
    if (deps[i].empty()) ready.push_back(i);
  }
  std::vector<bool> done(phase.size(), false);
  size_t cursor = 0;
  while (cursor < ready.size()) {
    size_t i = ready[cursor++];
    done[i] = true;
    sorted->push_back(std::move(phase[i]));
    for (size_t dependent : dependents[i]) {
      deps[dependent].erase(i);
      if (deps[dependent].empty() && !done[dependent]) {
        ready.push_back(dependent);
      }
    }
  }
  if (sorted->size() != phase.size()) {
    return Status::FailedPrecondition(
        std::string("cyclic type dependency among ") + name + " queries");
  }
  return Status::Ok();
}

uint64_t Oracle::PartitionKeyOf(const Event& event) const {
  if (model_.partition_by().empty()) return 0;
  TypeId type_id = event.type_id();
  if (type_id >= static_cast<TypeId>(partition_attrs_.size())) return 0;
  uint64_t key = 0x12345678;
  for (int index : partition_attrs_[type_id]) {
    if (index < 0) continue;
    key = HashCombine(key, event.value(index).Hash());
  }
  return key;
}

PartitionState* Oracle::GetOrCreatePartition(uint64_t key) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return it->second.get();
  auto partition = std::make_unique<PartitionState>(
      model_.num_contexts(), model_.ContextIndex(model_.default_context()),
      deriving_.size(), processing_.size());
  PartitionState* raw = partition.get();
  partitions_.emplace(key, std::move(partition));
  return raw;
}

bool Oracle::WindowAdmits(const PartitionState& partition,
                          const OracleQuery& oq, const Event& event) const {
  for (size_t i = 0; i < oq.contexts.size(); ++i) {
    if (!partition.contexts.IsActive(oq.contexts[i])) continue;
    if (options_.bug_ignore_window_start) return true;
    if (event.start_time() >=
        partition.contexts.ActiveSince(oq.anchors[i])) {
      return true;
    }
  }
  return false;
}

void Oracle::HandleTransitions(PartitionState* partition,
                               const OracleQuery& oq, QueryState* qs) {
  uint64_t active_bits = partition->contexts.bits() & oq.mask;
  bool active_now = active_bits != 0;
  if (qs->was_active && !active_now) {
    qs->Reset();
  } else if (qs->was_active && active_now &&
             active_bits != qs->last_active_bits) {
    // Composition change while active: state survives back to the oldest
    // still-active window's (anchor's) activation.
    Timestamp horizon = partition->contexts.time();
    for (size_t i = 0; i < oq.contexts.size(); ++i) {
      if (partition->contexts.IsActive(oq.contexts[i])) {
        horizon = std::min(horizon,
                           partition->contexts.ActiveSince(oq.anchors[i]));
      }
    }
    qs->ExpireBefore(horizon);
  } else if (!qs->was_active && active_now) {
    qs->Reset();
  }
  qs->was_active = active_now;
  qs->last_active_bits = active_bits;
}

bool Oracle::NegationsClear(const OracleQuery& oq, const QueryState& qs,
                            std::vector<EventPtr>* bound) const {
  if (options_.bug_skip_negation) return true;
  int num_items = static_cast<int>(oq.item_types.size());
  for (int n = 0; n < num_items; ++n) {
    if (!oq.negated[n]) continue;
    int prev = -1, next = -1;
    for (int i = n - 1; i >= 0; --i) {
      if (!oq.negated[i]) {
        prev = i;
        break;
      }
    }
    for (int i = n + 1; i < num_items; ++i) {
      if (!oq.negated[i]) {
        next = i;
        break;
      }
    }
    CAESAR_CHECK_GE(next, 0);  // trailing NOT rejected at resolve time
    Timestamp hi = (*bound)[next]->time();
    bool closed_lo = prev < 0;
    Timestamp lo = prev >= 0 ? (*bound)[prev]->time() : hi - oq.within;
    bool blocked = false;
    for (const EventPtr& candidate : qs.log) {
      if (candidate->time() >= hi) break;  // log is time-ordered
      if (candidate->type_id() != oq.item_types[n]) continue;
      if (closed_lo ? candidate->time() < lo : candidate->time() <= lo) {
        continue;
      }
      (*bound)[n] = candidate;
      bool all_pass = true;
      for (const OracleConjunct& conjunct : oq.conjuncts) {
        if (conjunct.negated_pos != n) continue;
        if (!conjunct.expr->EvalBool(bound->data())) {
          all_pass = false;
          break;
        }
      }
      if (all_pass) {
        blocked = true;
        break;
      }
    }
    (*bound)[n] = nullptr;
    if (blocked) return false;
  }
  return true;
}

void Oracle::MatchSeq(const PartitionState& partition, const OracleQuery& oq,
                      QueryState* qs, Timestamp t, EventBatch* matched) {
  (void)partition;
  // Brute-force subsequence enumeration over the admitted-event log:
  // strictly increasing times, the final component at the current tick,
  // total span bounded by WITHIN, all match conditions evaluated on the
  // complete assignment, then the negation check.
  int k = static_cast<int>(oq.positives.size());
  std::vector<EventPtr> bound(oq.item_types.size());
  std::vector<int> choice(k, -1);  // index into qs->log per positive
  int depth = 0;
  int cursor = 0;
  while (depth >= 0) {
    if (depth == k) {
      // Complete assignment: evaluate match conditions, then negations.
      bool ok = true;
      for (const OracleConjunct& conjunct : oq.conjuncts) {
        if (conjunct.negated_pos >= 0) continue;
        if (!conjunct.expr->EvalBool(bound.data())) {
          ok = false;
          break;
        }
      }
      if (ok && NegationsClear(oq, *qs, &bound)) {
        const EventPtr& first = bound[oq.positives[0]];
        const EventPtr& last = bound[oq.positives[k - 1]];
        if (oq.output_type != kInvalidTypeId) {
          // DERIVE straight off the bound components (equivalent to the
          // engine's composite event + rewritten projection).
          std::vector<Value> values;
          values.reserve(oq.derive_args.size());
          for (const auto& arg : oq.derive_args) {
            values.push_back(arg->Eval(bound.data()));
          }
          matched->push_back(MakeComplexEvent(oq.output_type,
                                              first->start_time(),
                                              last->end_time(),
                                              std::move(values)));
        } else {
          std::vector<Value> values;
          for (int item : oq.positives) {
            for (const Value& v : bound[item]->values()) values.push_back(v);
          }
          matched->push_back(MakeComplexEvent(oq.match_type,
                                              first->start_time(),
                                              last->end_time(),
                                              std::move(values)));
        }
      }
      --depth;
      cursor = choice[depth] + 1;
      continue;
    }
    int item = oq.positives[depth];
    bool advanced = false;
    for (int i = cursor; i < static_cast<int>(qs->log.size()); ++i) {
      const EventPtr& e = qs->log[i];
      if (e->type_id() != oq.item_types[item]) continue;
      if (depth > 0) {
        const EventPtr& prev = bound[oq.positives[depth - 1]];
        if (e->time() <= prev->time()) continue;  // strict sequence order
        const EventPtr& first = bound[oq.positives[0]];
        if (e->time() - first->time() > oq.within) break;  // span bound
      }
      if (depth == k - 1 && e->time() != t) continue;  // fresh matches only
      bound[item] = e;
      choice[depth] = i;
      ++depth;
      cursor = 0;
      advanced = true;
      break;
    }
    if (!advanced) {
      bound[item] = nullptr;
      --depth;
      if (depth >= 0) cursor = choice[depth] + 1;
    }
  }
}

void Oracle::RunAggregate(const PartitionState& partition,
                          const OracleQuery& oq, QueryState* qs,
                          const EventBatch& pool, Timestamp t,
                          EventBatch* matched) {
  (void)t;
  for (const EventPtr& event : pool) {
    if (event->type_id() != oq.item_types[0]) continue;
    if (!WindowAdmits(partition, oq, *event)) continue;
    // Group lookup/creation by key equality (first key representation
    // wins, like AggregateOp).
    std::vector<Value> key;
    key.reserve(oq.group_by.size());
    for (int index : oq.group_by) key.push_back(event->value(index));
    AggGroup* group = nullptr;
    for (AggGroup& g : qs->groups) {
      if (g.key.size() != key.size()) continue;
      bool equal = true;
      for (size_t i = 0; i < key.size(); ++i) {
        if (!g.key[i].Equals(key[i])) {
          equal = false;
          break;
        }
      }
      if (equal) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      qs->groups.push_back(AggGroup{key, {}});
      group = &qs->groups.back();
    }
    group->samples.push_back(AggSample{event->time(), event});

    // Naive recomputation over the live window (> t - W], equivalent to
    // AggregateOp's incremental sums + per-event eviction on integer data.
    Timestamp horizon = event->time() - oq.window_length;
    std::vector<Value> outputs = group->key;
    for (const OracleAgg& agg : oq.aggs) {
      int64_t count = 0;
      double sum = 0.0;
      double min_v = 0.0, max_v = 0.0;
      bool any = false;
      for (const AggSample& sample : group->samples) {
        if (sample.time <= horizon) continue;
        double v = 0.0;
        if (agg.attr_index >= 0) {
          const Value& cell = sample.event->value(agg.attr_index);
          v = cell.is_numeric() ? cell.ToDouble() : 0.0;
        }
        ++count;
        sum += v;
        if (!any || v < min_v) min_v = v;
        if (!any || v > max_v) max_v = v;
        any = true;
      }
      switch (agg.func) {
        case AggregateFunc::kCount:
          outputs.push_back(Value(count));
          break;
        case AggregateFunc::kSum:
          outputs.push_back(Value(sum));
          break;
        case AggregateFunc::kAvg:
          outputs.push_back(Value(count == 0 ? 0.0 : sum / count));
          break;
        case AggregateFunc::kMin:
          outputs.push_back(Value(any ? min_v : 0.0));
          break;
        case AggregateFunc::kMax:
          outputs.push_back(Value(any ? max_v : 0.0));
          break;
      }
    }
    EventPtr result =
        MakeEvent(oq.agg_type, event->time(), std::move(outputs));
    if (oq.having != nullptr && !options_.bug_drop_having &&
        !oq.having->EvalBool(&result)) {
      continue;
    }
    if (oq.post_where != nullptr && !oq.post_where->EvalBool(&result)) {
      continue;
    }
    matched->push_back(std::move(result));
  }
}

void Oracle::RunQuery(PartitionState* partition, const OracleQuery& oq,
                      QueryState* qs, const EventBatch& pool, Timestamp t,
                      EventBatch* out) {
  HandleTransitions(partition, oq, qs);
  bool active = partition->contexts.AnyActive(oq.mask);

  EventBatch matched;  // post-pattern, post-filter, pre-projection
  if (active) {
    switch (oq.kind) {
      case PatternSpec::Kind::kEvent: {
        for (const EventPtr& event : pool) {
          if (event->type_id() != oq.item_types[0]) continue;
          if (!WindowAdmits(*partition, oq, *event)) continue;
          bool ok = true;
          for (const OracleConjunct& conjunct : oq.conjuncts) {
            if (!conjunct.expr->EvalBool(&event)) {
              ok = false;
              break;
            }
          }
          if (ok) matched.push_back(event);
        }
        break;
      }
      case PatternSpec::Kind::kSeq: {
        // The matcher expires state `within` behind every transaction it
        // participates in, then admits this tick's events, then matches.
        qs->ExpireBefore(t - oq.within);
        for (const EventPtr& event : pool) {
          bool relevant = false;
          for (TypeId type : oq.item_types) {
            if (event->type_id() == type) {
              relevant = true;
              break;
            }
          }
          if (relevant && WindowAdmits(*partition, oq, *event)) {
            qs->log.push_back(event);
          }
        }
        MatchSeq(*partition, oq, qs, t, &matched);
        break;
      }
      case PatternSpec::Kind::kAggregate: {
        RunAggregate(*partition, oq, qs, pool, t, &matched);
        break;
      }
    }
  }

  // Projection (DERIVE). SEQ matches already derived inside MatchSeq
  // (the argument expressions bind pattern components directly); for the
  // other kinds the args evaluate against the single matched event.
  EventBatch emitted;
  if (oq.output_type != kInvalidTypeId &&
      oq.kind != PatternSpec::Kind::kSeq) {
    for (const EventPtr& event : matched) {
      std::vector<Value> values;
      values.reserve(oq.derive_args.size());
      for (const auto& arg : oq.derive_args) {
        values.push_back(arg->Eval(&event));
      }
      emitted.push_back(MakeComplexEvent(oq.output_type, event->start_time(),
                                         event->end_time(),
                                         std::move(values)));
    }
  } else {
    emitted = std::move(matched);
  }

  // Context action: CI/CT per emitted event (idempotent; SWITCH expands to
  // CI target then CT of the other gate contexts, in clause order).
  if (oq.action != ContextAction::kNone && !emitted.empty()) {
    for (const EventPtr& event : emitted) {
      Timestamp now = event->time();
      switch (oq.action) {
        case ContextAction::kInitiate:
          partition->contexts.Initiate(oq.target_context, now);
          break;
        case ContextAction::kTerminate:
          partition->contexts.Terminate(oq.target_context, now);
          break;
        case ContextAction::kSwitch:
          partition->contexts.Initiate(oq.target_context, now);
          for (int context : oq.contexts) {
            if (context != oq.target_context) {
              partition->contexts.Terminate(context, now);
            }
          }
          break;
        case ContextAction::kNone:
          break;
      }
    }
  }

  if (oq.output_type != kInvalidTypeId) {
    for (EventPtr& event : emitted) out->push_back(std::move(event));
  }
}

void Oracle::ProcessTransaction(PartitionState* partition, Timestamp t,
                                const EventBatch& events,
                                EventBatch* derived) {
  EventBatch pool = events;
  for (size_t qi = 0; qi < deriving_.size(); ++qi) {
    EventBatch out;
    RunQuery(partition, deriving_[qi], &partition->deriving[qi], pool, t,
             &out);
    for (EventPtr& event : out) {
      pool.push_back(event);
      derived->push_back(std::move(event));
    }
  }
  for (size_t qi = 0; qi < processing_.size(); ++qi) {
    EventBatch out;
    RunQuery(partition, processing_[qi], &partition->processing[qi], pool, t,
             &out);
    for (EventPtr& event : out) {
      pool.push_back(event);
      derived->push_back(std::move(event));
    }
  }
}

Result<EventBatch> Oracle::Run(const EventBatch& input) {
  ptrdiff_t disorder = FirstOutOfOrderIndex(input);
  if (disorder >= 0) {
    return Status::InvalidArgument(
        "oracle input is not time-ordered at index " +
        std::to_string(disorder));
  }

  // Resolve partition attribute indices for every known type.
  partition_attrs_.clear();
  partition_attrs_.resize(registry_->num_types());
  for (TypeId id = 0; id < registry_->num_types(); ++id) {
    const Schema& schema = registry_->type(id).schema;
    for (const std::string& attr : model_.partition_by()) {
      partition_attrs_[id].push_back(schema.IndexOf(attr));
    }
  }

  EventBatch derived;
  size_t i = 0;
  while (i < input.size()) {
    Timestamp t = input[i]->time();
    size_t j = i;
    while (j < input.size() && input[j]->time() == t) ++j;

    // Partition this tick's events; std::map gives ascending key order,
    // the engine's deterministic transaction order.
    std::map<uint64_t, EventBatch> by_partition;
    for (size_t k = i; k < j; ++k) {
      by_partition[PartitionKeyOf(*input[k])].push_back(input[k]);
    }
    for (auto& [key, events] : by_partition) {
      ProcessTransaction(GetOrCreatePartition(key), t, events, &derived);
    }

    // Periodic GC, over every partition and query (engine cadence).
    if (t - last_gc_ >= options_.gc_interval) {
      last_gc_ = t;
      Timestamp horizon =
          t >= options_.gc_horizon ? t - options_.gc_horizon : 0;
      for (auto& [key, partition] : partitions_) {
        (void)key;
        for (QueryState& qs : partition->deriving) qs.ExpireBefore(horizon);
        for (QueryState& qs : partition->processing) {
          qs.ExpireBefore(horizon);
        }
      }
    }
    i = j;
  }
  return derived;
}

}  // namespace

Result<EventBatch> RunReferenceModel(const CaesarModel& model,
                                     const EventBatch& input,
                                     const OracleOptions& options) {
  Oracle oracle(model, options);
  CAESAR_RETURN_IF_ERROR(oracle.Prepare());
  return oracle.Run(input);
}

}  // namespace caesar
