// Differential-testing reference interpreter ("the oracle").
//
// Executes a CaesarModel directly from its definition, with none of the
// engine's machinery: no operator plans, no window grouping, no predicate
// push-down, no batching, no partition sharding, single thread. One pass
// over the time-ordered input stream; per (partition, query) the oracle
// keeps a plain log of admitted events and answers SEQ patterns by
// brute-force subsequence enumeration, aggregates by naive recomputation
// over the logged samples, and contexts by scanning every deriving query in
// the same phase order as the engine.
//
// The oracle is an *executable statement of the semantics*: simple enough
// to audit by eye against Definitions 1-4 and Section 4.1 of the paper,
// independent enough from plan/, optimizer/, and runtime/ that a bug has to
// be introduced twice to go unnoticed. tests/differential_test.cc and
// tools/fuzz_differential assert that the engine derives a byte-identical
// event stream (canonicalized per tick) under every plan shape, thread
// count, ingest policy, and metrics setting.
//
// Fidelity notes (where "naive" still has to mirror deliberate engine
// behavior rather than ideal textbook semantics):
//
//  - State retention is the engine's, not an unbounded history: partial
//    SEQ state expires `within` ticks behind the current transaction,
//    composition changes of a query's context gate expire state older than
//    the oldest surviving window's activation, and the periodic GC drops
//    state older than `gc_horizon`. The oracle reproduces all three with a
//    single rule — drop logged events older than a horizon — which is
//    exact because in any brute-force combination the first component
//    carries the strictly minimal time stamp.
//  - Context transitions reset (activation/deactivation) or expire
//    (composition change while active) per-query state exactly like
//    runtime/engine.cc::ApplyWindowTransitions.
//  - A query whose gate is inactive admits nothing, exactly like the
//    push-down plan shape; the non-pushed shape differs only in internal
//    state that a reactivation reset wipes before it can become visible.
//
// The oracle assumes a clean input stream (time-ordered, well-formed); the
// harness feeds disordered/malformed variants only to engine legs whose
// ingest policy repairs them back to the clean sequence.

#ifndef CAESAR_ORACLE_ORACLE_H_
#define CAESAR_ORACLE_ORACLE_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "query/model.h"

namespace caesar {

// Oracle configuration. The state-retention knobs default to the engine's
// EngineOptions defaults; differential runs must keep them equal on both
// sides. The bug_* switches deliberately corrupt the oracle's semantics so
// the harness can prove the differential gate actually fires (a fuzzer
// that cannot catch a planted bug proves nothing).
struct OracleOptions {
  // Default WITHIN bound for SEQ patterns that do not specify one; must
  // match PlanOptions::default_within on the engine side.
  Timestamp default_within = 300;

  // GC cadence and horizon; must match EngineOptions.
  Timestamp gc_interval = 120;
  Timestamp gc_horizon = 900;

  // Fault injection (for harness self-tests only).
  bool bug_skip_negation = false;     // ignore NOT positions in SEQ
  bool bug_ignore_window_start = false;  // admit events from before the
                                         // context window's activation
  bool bug_drop_having = false;       // ignore HAVING on aggregates
};

// Runs `model` over the time-ordered `input` and returns every derived
// event in deterministic order (ticks in order; within a tick: partitions
// by ascending partition key, queries in engine phase order, matches in
// enumeration order). Fails with InvalidArgument/Unimplemented on model
// shapes the engine's translator also rejects, and with InvalidArgument on
// disordered input.
Result<EventBatch> RunReferenceModel(const CaesarModel& model,
                                     const EventBatch& input,
                                     const OracleOptions& options = {});

}  // namespace caesar

#endif  // CAESAR_ORACLE_ORACLE_H_
