// Differential-testing harness: runs a generated (model, stream) pair
// through the reference interpreter (oracle.h) and through the engine under
// every configuration leg — plan shape (plain / push-down / optimizer
// without and with window grouping) × worker threads (1/2/4/8) × ingest
// policy (strict on the clean stream, reorder on the disordered one) ×
// metrics granularity (off / operator) — and compares the derived streams
// tick by tick.
//
// Canonicalization: within one tick the engine's output order is a plan
// property (per-query plans emit in chain order, grouped plans in grouped
// order), so equality is per-tick *multiset* equality of rendered events.
// Everything else — tick set, event payloads, counts — must match exactly.
//
// The context-independent BaselinePlan is deliberately not a leg: its
// private context guards re-derive contexts per query and diverge by design
// on models whose deriving queries are themselves context-gated (that
// divergence is the paper's Fig. 9 point, not a bug).
//
// Repro files: every divergence can be written as a small line-based file
// (seed + generator knobs + leg + query/event masks) that regenerates the
// failing case deterministically; ShrinkRepro greedily drops queries and
// event ranges while the divergence persists. tests/corpus/ checks in
// minimized specs that are replayed on every ctest run.

#ifndef CAESAR_ORACLE_DIFFERENTIAL_H_
#define CAESAR_ORACLE_DIFFERENTIAL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "oracle/generator.h"
#include "oracle/oracle.h"
#include "query/model.h"

namespace caesar {

// One engine configuration to compare against the oracle.
struct EngineLeg {
  int plan_shape = 0;  // 0 plain, 1 push-down, 2 optimizer, 3 opt+grouping
  int threads = 1;
  bool reorder = false;          // strict/clean vs reorder/disordered
  bool operator_metrics = false;
  // Run with EngineOptions::pattern_engine = compiled. Compiled legs are
  // additionally held byte-identical (not just tick-multiset equal) to
  // their interpreted twin — the 3-way check: oracle vs interpreted vs
  // compiled.
  bool compiled = false;

  std::string Name() const;  // e.g. "shared/t4/reorder/m1", "/cmp" suffix
                             // for compiled legs
};

// All 128 legs: 4 plan shapes x {1,2,4,8} threads x {strict, reorder} x
// {metrics off, operator metrics} x {interpreted, compiled}. Interpreted
// legs come first so compiled legs always find their twin's output cached.
std::vector<EngineLeg> FullMatrix();
// 12 representative legs covering every value of every dimension at least
// once (for the in-tree quick tests).
std::vector<EngineLeg> QuickMatrix();

// Derived stream canonical form: per tick, the multiset of rendered events.
using TickCanon = std::map<Timestamp, std::multiset<std::string>>;
TickCanon CanonicalByTick(const EventBatch& events,
                          const TypeRegistry& registry);

struct DivergenceReport {
  bool diverged = false;
  std::string leg;     // first diverging leg
  std::string detail;  // first differing tick, counts, sample events
};

struct DifferentialOptions {
  OracleOptions oracle;
  bool full_matrix = true;    // FullMatrix vs QuickMatrix
  std::string only_leg;       // non-empty: compare just this leg
  // "" = all legs; "interpreted" / "compiled" restricts to that pattern
  // engine (compiled legs still run their interpreted twin on demand for
  // the byte-identity check).
  std::string engines;
};

// Compares the oracle's derived stream (over `clean`) against every engine
// leg. Strict legs consume `clean`; reorder legs consume `disordered` with
// `reorder_slack`. An engine-side Run error counts as a divergence on that
// leg. A non-ok Status means the harness itself could not set the case up
// (e.g. the model does not translate).
Result<DivergenceReport> CompareCase(const CaesarModel& model,
                                     const EventBatch& clean,
                                     const EventBatch& disordered,
                                     Timestamp reorder_slack,
                                     const DifferentialOptions& options = {});

// Crash-recovery leg: runs the optimizer plan over `clean` in tick-aligned
// batches with durability on, kills the engine at a seed-chosen crash point
// (WAL append, group commit, checkpoint write, or checkpoint publication),
// rebuilds it with Engine::Recover, re-submits the batches after
// durable_batch_seq(), and requires the remaining derived stream to be
// byte-identical to an uninterrupted durability-off run — plus equal ingest
// degradation counters — for both pattern engines (options.engines filters
// as usual). Divergences report as leg "recovery/interp" / "recovery/cmp".
// Scratch WAL/checkpoint directories live under the system temp dir and are
// removed on success.
Result<DivergenceReport> CompareCrashRecovery(
    const CaesarModel& model, const EventBatch& clean, uint64_t seed,
    const DifferentialOptions& options = {});

// ---- Replayable repro files ------------------------------------------

// A divergence repro: everything needed to regenerate the failing case.
// `queries`/`events` are masks over the generated model/clean stream
// (empty = keep all); `events` holds inclusive index ranges.
struct ReproSpec {
  uint64_t seed = 0;
  GeneratorOptions generator;
  std::string leg;                                   // empty = all legs
  std::vector<int> queries;                          // kept query indices
  std::vector<std::pair<int64_t, int64_t>> events;   // kept clean ranges
  std::string expect = "diverge";                    // or "match"
  std::string bug;   // oracle fault injection: skip_negation,
                     // ignore_window_start, drop_having; empty = none
  std::string note;
};

std::string FormatRepro(const ReproSpec& spec);
Result<ReproSpec> ParseRepro(const std::string& text);
Status WriteRepro(const ReproSpec& spec, const std::string& path);
Result<ReproSpec> ReadRepro(const std::string& path);

// The case a ReproSpec denotes, regenerated and masked.
struct MaterializedCase {
  explicit MaterializedCase(TypeRegistry* registry) : model(registry) {}
  CaesarModel model;
  EventBatch clean;
  EventBatch disordered;
  Timestamp reorder_slack = 0;
  int num_queries = 0;  // after masking
  int num_events = 0;   // clean events after masking
  std::string summary;
};

Result<MaterializedCase> Materialize(const ReproSpec& spec,
                                     TypeRegistry* registry);

// Regenerates the case and compares (honoring spec.leg and spec.bug).
// `engines` filters legs like DifferentialOptions::engines.
Result<DivergenceReport> ReplayRepro(const ReproSpec& spec,
                                     bool full_matrix = true,
                                     const std::string& engines = "");

// Greedy shrink: drop queries to a fixpoint, then remove event ranges in
// halving chunk sizes, keeping every candidate that still diverges.
// Candidates that fail to materialize or translate are skipped.
Result<ReproSpec> ShrinkRepro(const ReproSpec& spec, bool full_matrix = true);

// ---- Fuzz loop --------------------------------------------------------

struct FuzzOptions {
  uint64_t seed = 1;
  int iters = 100;
  double budget_seconds = 0;  // stop after this much wall time (0 = off)
  bool full_matrix = true;
  std::string bug;            // oracle fault injection for sensitivity runs
  std::string engines;        // leg filter, see DifferentialOptions
  GeneratorOptions generator;

  // Lint leg (analysis/analyzer.h): every generated model must analyze
  // clean — no error- or warning-severity diagnostics (notes are
  // expected; e.g. the non-groupable helper window). A lint hit counts as
  // a divergence on leg "lint".
  bool lint = true;

  // Sensitivity variant of the lint leg: apply this named model mutation
  // (generator.h ModelMutationNames) to each generated model and require
  // the analyzer to report the mutation's paired diagnostic code. Skips
  // the engine/oracle comparison (the mutated model is not meant to run).
  std::string model_mutation;

  // Adds the CompareCrashRecovery leg to every iteration that survives the
  // matrix comparison (kill at a seed-chosen crash point, recover, demand
  // byte-identical remaining output).
  bool crash_recovery = false;
};

struct FuzzResult {
  int iterations_run = 0;
  bool diverged = false;
  DivergenceReport report;  // first divergence
  ReproSpec repro;          // shrunken repro for it
};

// Runs GenerateCase(seed + i) for i in [0, iters), comparing each across
// the matrix; stops at the first divergence and shrinks it.
Result<FuzzResult> RunFuzz(const FuzzOptions& options);

}  // namespace caesar

#endif  // CAESAR_ORACLE_DIFFERENTIAL_H_
