#include "oracle/differential.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <utility>

#include "analysis/analyzer.h"
#include "optimizer/optimizer.h"
#include "plan/translator.h"
#include "runtime/engine.h"

namespace caesar {
namespace {

constexpr const char* kShapeNames[] = {"plain", "push", "opt", "shared"};

std::string DescribeDiff(const TickCanon& expected, const TickCanon& actual) {
  std::set<Timestamp> ticks;
  for (const auto& [t, lines] : expected) ticks.insert(t);
  for (const auto& [t, lines] : actual) ticks.insert(t);
  const std::multiset<std::string> empty;
  for (Timestamp t : ticks) {
    auto ei = expected.find(t);
    auto ai = actual.find(t);
    const auto& e = ei == expected.end() ? empty : ei->second;
    const auto& a = ai == actual.end() ? empty : ai->second;
    if (e == a) continue;
    std::ostringstream os;
    os << "first differing tick " << t << ": oracle derives " << e.size()
       << " event(s), engine derives " << a.size();
    std::vector<std::string> only_oracle, only_engine;
    std::set_difference(e.begin(), e.end(), a.begin(), a.end(),
                        std::back_inserter(only_oracle));
    std::set_difference(a.begin(), a.end(), e.begin(), e.end(),
                        std::back_inserter(only_engine));
    int shown = 0;
    for (const std::string& line : only_oracle) {
      if (shown++ >= 3) {
        os << "\n  oracle-only: ... (" << only_oracle.size() << " total)";
        break;
      }
      os << "\n  oracle-only: " << line;
    }
    shown = 0;
    for (const std::string& line : only_engine) {
      if (shown++ >= 3) {
        os << "\n  engine-only: ... (" << only_engine.size() << " total)";
        break;
      }
      os << "\n  engine-only: " << line;
    }
    return os.str();
  }
  return "derived streams differ";
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = Trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::vector<std::pair<int64_t, int64_t>> CompressRanges(
    const std::vector<int64_t>& sorted) {
  std::vector<std::pair<int64_t, int64_t>> out;
  for (int64_t v : sorted) {
    if (!out.empty() && v == out.back().second + 1) {
      out.back().second = v;
    } else {
      out.emplace_back(v, v);
    }
  }
  return out;
}

// Byte-exact rendering for the interpreted-vs-compiled identity check
// (stronger than the per-tick multiset canon used against the oracle: the
// two engines must agree on emission *order* too).
std::string RenderDerived(const EventBatch& events,
                          const TypeRegistry& registry) {
  std::ostringstream os;
  for (const EventPtr& event : events) {
    os << event->time() << " " << event->ToString(registry) << "\n";
  }
  return os.str();
}

std::string DescribeByteDiff(const std::string& interpreted,
                             const std::string& compiled) {
  std::istringstream a(interpreted), b(compiled);
  std::string line_a, line_b;
  int line = 0;
  while (true) {
    const bool has_a = static_cast<bool>(std::getline(a, line_a));
    const bool has_b = static_cast<bool>(std::getline(b, line_b));
    ++line;
    if (!has_a && !has_b) break;
    if (has_a != has_b || line_a != line_b) {
      std::ostringstream os;
      os << "compiled output is not byte-identical to interpreted at line "
         << line << ":\n  interpreted: " << (has_a ? line_a : "<end>")
         << "\n  compiled:    " << (has_b ? line_b : "<end>");
      return os.str();
    }
  }
  return "compiled output is not byte-identical to interpreted";
}

Status ApplyBug(const std::string& bug, OracleOptions* oracle) {
  if (bug.empty()) return Status::Ok();
  if (bug == "skip_negation") {
    oracle->bug_skip_negation = true;
  } else if (bug == "ignore_window_start") {
    oracle->bug_ignore_window_start = true;
  } else if (bug == "drop_having") {
    oracle->bug_drop_having = true;
  } else {
    return Status::InvalidArgument("unknown oracle bug: " + bug);
  }
  return Status::Ok();
}

}  // namespace

std::string EngineLeg::Name() const {
  std::ostringstream os;
  os << kShapeNames[plan_shape] << "/t" << threads << "/"
     << (reorder ? "reorder" : "strict") << "/"
     << (operator_metrics ? "m1" : "m0");
  // Interpreted names are unchanged from before the pattern compiler
  // existed: the checked-in corpus repro files pin legs by name.
  if (compiled) os << "/cmp";
  return os.str();
}

std::vector<EngineLeg> FullMatrix() {
  std::vector<EngineLeg> legs;
  for (bool compiled : {false, true}) {
    for (int shape = 0; shape < 4; ++shape) {
      for (int threads : {1, 2, 4, 8}) {
        for (bool reorder : {false, true}) {
          for (bool metrics : {false, true}) {
            legs.push_back({shape, threads, reorder, metrics, compiled});
          }
        }
      }
    }
  }
  return legs;
}

std::vector<EngineLeg> QuickMatrix() {
  return {
      {0, 1, false, false},
      {1, 2, false, false},
      {2, 4, true, false},
      {3, 8, true, true},
      {1, 4, true, false},
      {3, 1, false, true},
      {2, 2, false, false},
      {0, 8, true, false},
      // Compiled legs (after their interpreted twins, see FullMatrix).
      {0, 1, false, false, true},
      {3, 8, true, true, true},
      {2, 4, false, false, true},
      {1, 2, true, false, true},
  };
}

TickCanon CanonicalByTick(const EventBatch& events,
                          const TypeRegistry& registry) {
  TickCanon canon;
  for (const EventPtr& event : events) {
    canon[event->time()].insert(event->ToString(registry));
  }
  return canon;
}

Result<DivergenceReport> CompareCase(const CaesarModel& model,
                                     const EventBatch& clean,
                                     const EventBatch& disordered,
                                     Timestamp reorder_slack,
                                     const DifferentialOptions& options) {
  // The oracle runs first so derived/composite types are interned in its
  // registration order; the translations below then find them already
  // present (identical schemas) and resolve single-pass.
  CAESAR_ASSIGN_OR_RETURN(
      EventBatch expected, RunReferenceModel(model, clean, options.oracle));
  const TickCanon expected_canon =
      CanonicalByTick(expected, *model.registry());

  PlanOptions plain;
  plain.push_down_context_windows = false;
  plain.push_predicates_into_pattern = false;
  plain.default_within = options.oracle.default_within;
  PlanOptions pushed;
  pushed.default_within = options.oracle.default_within;
  OptimizerOptions opt;
  opt.share_overlapping = false;
  opt.default_within = options.oracle.default_within;
  OptimizerOptions shared;
  shared.default_within = options.oracle.default_within;

  std::vector<ExecutablePlan> plans;
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan p0, TranslateModel(model, plain));
  plans.push_back(std::move(p0));
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan p1, TranslateModel(model, pushed));
  plans.push_back(std::move(p1));
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan p2, OptimizeModel(model, opt));
  plans.push_back(std::move(p2));
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan p3, OptimizeModel(model, shared));
  plans.push_back(std::move(p3));

  DivergenceReport report;
  const std::vector<EngineLeg> legs =
      options.full_matrix ? FullMatrix() : QuickMatrix();
  // Byte renderings of interpreted legs, keyed by twin (compiled) name.
  std::map<std::string, std::string> interpreted_bytes;

  auto run_leg = [&](const EngineLeg& leg, EventBatch* derived,
                     bool absint = true) -> Result<bool> {
    EngineOptions eo;
    eo.num_threads = leg.threads;
    eo.gc_interval = options.oracle.gc_interval;
    eo.gc_horizon = options.oracle.gc_horizon;
    eo.metrics = leg.operator_metrics ? MetricsGranularity::kOperator
                                      : MetricsGranularity::kOff;
    eo.ingest_policy =
        leg.reorder ? IngestPolicy::kReorder : IngestPolicy::kStrict;
    eo.reorder_slack = leg.reorder ? reorder_slack : 0;
    eo.pattern_engine =
        leg.compiled ? PatternEngine::kCompiled : PatternEngine::kInterpreted;
    eo.absint = absint;
    CAESAR_ASSIGN_OR_RETURN(
        std::unique_ptr<Engine> engine,
        Engine::Create(plans[leg.plan_shape].Clone(), eo));
    auto run = engine->Run(leg.reorder ? disordered : clean, derived);
    if (!run.ok()) {
      report.diverged = true;
      report.leg = leg.Name();
      report.detail = "engine Run failed: " + run.status().ToString();
      return false;
    }
    return true;
  };

  for (const EngineLeg& leg : legs) {
    if (!options.only_leg.empty() && leg.Name() != options.only_leg) continue;
    if (!options.engines.empty()) {
      if (options.engines == "interpreted" && leg.compiled) continue;
      if (options.engines == "compiled" && !leg.compiled) continue;
    }
    EventBatch derived;
    CAESAR_ASSIGN_OR_RETURN(bool ok, run_leg(leg, &derived));
    if (!ok) return report;
    const TickCanon actual_canon = CanonicalByTick(derived, *model.registry());
    if (actual_canon != expected_canon) {
      report.diverged = true;
      report.leg = leg.Name();
      report.detail = DescribeDiff(expected_canon, actual_canon);
      return report;
    }
    if (!leg.compiled) {
      EngineLeg twin = leg;
      twin.compiled = true;
      interpreted_bytes[twin.Name()] = RenderDerived(derived, *model.registry());
      continue;
    }
    // Third side of the 3-way: the compiled leg's derived stream must be
    // byte-identical to its interpreted twin's, emission order included.
    // In the full matrix the twin already ran (interpreted legs first);
    // otherwise run it on demand.
    auto cached = interpreted_bytes.find(leg.Name());
    if (cached == interpreted_bytes.end()) {
      EngineLeg twin = leg;
      twin.compiled = false;
      EventBatch twin_derived;
      CAESAR_ASSIGN_OR_RETURN(bool twin_ok, run_leg(twin, &twin_derived));
      if (!twin_ok) return report;
      cached = interpreted_bytes
                   .emplace(leg.Name(),
                            RenderDerived(twin_derived, *model.registry()))
                   .first;
    }
    const std::string compiled_bytes =
        RenderDerived(derived, *model.registry());
    if (compiled_bytes != cached->second) {
      report.diverged = true;
      report.leg = leg.Name();
      report.detail = DescribeByteDiff(cached->second, compiled_bytes);
      return report;
    }
    // Fourth side: the absint pass (pruning + re-ranking) must be a pure
    // optimization — the same compiled leg with absint disabled has to
    // produce the identical byte stream.
    EventBatch noabsint_derived;
    CAESAR_ASSIGN_OR_RETURN(
        bool noabsint_ok,
        run_leg(leg, &noabsint_derived, /*absint=*/false));
    if (!noabsint_ok) return report;
    const std::string noabsint_bytes =
        RenderDerived(noabsint_derived, *model.registry());
    if (noabsint_bytes != compiled_bytes) {
      report.diverged = true;
      report.leg = leg.Name() + "/noabsint";
      report.detail = DescribeByteDiff(compiled_bytes, noabsint_bytes);
      return report;
    }
  }
  return report;
}

Result<DivergenceReport> CompareCrashRecovery(
    const CaesarModel& model, const EventBatch& clean, uint64_t seed,
    const DifferentialOptions& options) {
  DivergenceReport report;
  if (clean.empty()) return report;

  OptimizerOptions opt;
  opt.default_within = options.oracle.default_within;
  CAESAR_ASSIGN_OR_RETURN(ExecutablePlan plan, OptimizeModel(model, opt));

  // Tick-aligned batches: one Run = one WAL batch, and events of one time
  // stamp never straddle a commit.
  std::vector<EventBatch> batches;
  {
    int distinct = 0;
    Timestamp prev = 0;
    bool counted_any = false;
    for (const EventPtr& event : clean) {
      if (!counted_any || event->time() != prev) {
        ++distinct;
        prev = event->time();
        counted_any = true;
      }
    }
    const int per_batch = std::max(1, distinct / 6);
    EventBatch current;
    int in_batch = 0;
    bool any = false;
    for (const EventPtr& event : clean) {
      if (!any || event->time() != prev) {
        if (in_batch == per_batch) {
          batches.push_back(std::move(current));
          current.clear();
          in_batch = 0;
        }
        ++in_batch;
        prev = event->time();
        any = true;
      }
      current.push_back(event);
    }
    if (!current.empty()) batches.push_back(std::move(current));
  }

  constexpr const char* kPoints[] = {"wal_append", "wal_commit",
                                     "checkpoint_write", "checkpoint_publish"};
  const std::string point = kPoints[seed % 4];

  for (const bool compiled : {false, true}) {
    if (options.engines == "interpreted" && compiled) continue;
    if (options.engines == "compiled" && !compiled) continue;
    const std::string leg = compiled ? "recovery/cmp" : "recovery/interp";

    EngineOptions base;
    base.gc_interval = options.oracle.gc_interval;
    base.gc_horizon = options.oracle.gc_horizon;
    base.pattern_engine =
        compiled ? PatternEngine::kCompiled : PatternEngine::kInterpreted;

    // Uninterrupted reference, durability off.
    std::vector<std::string> expected;
    Engine reference(plan.Clone(), base);
    for (const EventBatch& batch : batches) {
      EventBatch derived;
      auto run = reference.Run(batch, &derived);
      if (!run.ok()) {
        report.diverged = true;
        report.leg = leg;
        report.detail = "reference Run failed: " + run.status().ToString();
        return report;
      }
      expected.push_back(RenderDerived(derived, *model.registry()));
    }

    const std::filesystem::path scratch =
        std::filesystem::temp_directory_path() /
        ("caesar_diff_recovery_" + std::to_string(::getpid()) + "_" +
         std::to_string(seed) + (compiled ? "_cmp" : "_interp"));
    std::filesystem::remove_all(scratch);
    auto durable = [&](const std::string& suffix) {
      EngineOptions eo = base;
      eo.durability.mode = DurabilityMode::kWalCheckpoint;
      eo.durability.dir = (scratch / suffix).string();
      eo.durability.fsync = FsyncPolicy::kNone;
      eo.durability.checkpoint_interval_ticks = 8;
      return eo;
    };

    // Probe pass: count how often the crash point is reachable (and check
    // that logging alone does not perturb the output).
    int64_t occurrences = 0;
    {
      EngineOptions eo = durable("probe");
      eo.durability.crash_hook = [&occurrences, &point](std::string_view p) {
        if (p == point) ++occurrences;
        return false;
      };
      Engine probe(plan.Clone(), eo);
      for (size_t b = 0; b < batches.size(); ++b) {
        EventBatch derived;
        auto run = probe.Run(batches[b], &derived);
        if (!run.ok()) {
          report.diverged = true;
          report.leg = leg;
          report.detail = "durable Run failed: " + run.status().ToString();
          return report;
        }
        const std::string bytes = RenderDerived(derived, *model.registry());
        if (bytes != expected[b]) {
          report.diverged = true;
          report.leg = leg;
          report.detail = "WAL-on output differs from durability-off, batch " +
                          std::to_string(b) + ": " +
                          DescribeByteDiff(expected[b], bytes);
          return report;
        }
      }
    }
    if (occurrences == 0) {
      // Stream too short for this crash point (e.g. no checkpoint cadence
      // hit); nothing to kill.
      std::filesystem::remove_all(scratch);
      continue;
    }

    // Crash pass: kill at a seed-chosen occurrence.
    const int64_t nth = static_cast<int64_t>((seed / 4) % occurrences);
    bool crashed = false;
    {
      EngineOptions eo = durable("crash");
      int64_t seen = 0;
      eo.durability.crash_hook = [&seen, &point, nth](std::string_view p) {
        return p == point && seen++ == nth;
      };
      Engine victim(plan.Clone(), eo);
      for (const EventBatch& batch : batches) {
        if (!victim.Run(batch, nullptr).ok()) {
          crashed = true;
          break;
        }
      }
    }
    if (!crashed) {
      report.diverged = true;
      report.leg = leg;
      report.detail = "crash hook at " + point + " occurrence " +
                      std::to_string(nth) + " never fired";
      return report;
    }

    // Recovery pass: rebuild, re-submit the non-durable suffix, compare.
    auto recovered = Engine::Recover(plan.Clone(), durable("crash"));
    if (!recovered.ok()) {
      report.diverged = true;
      report.leg = leg;
      report.detail = "Engine::Recover failed: " +
                      recovered.status().ToString();
      return report;
    }
    Engine& engine = *recovered.value();
    const uint64_t resume = engine.durable_batch_seq();
    if (resume > batches.size()) {
      report.diverged = true;
      report.leg = leg;
      report.detail = "durable_batch_seq " + std::to_string(resume) +
                      " beyond the " + std::to_string(batches.size()) +
                      " submitted batches";
      return report;
    }
    for (size_t b = resume; b < batches.size(); ++b) {
      EventBatch derived;
      auto run = engine.Run(batches[b], &derived);
      if (!run.ok()) {
        report.diverged = true;
        report.leg = leg;
        report.detail = "post-recovery Run failed on batch " +
                        std::to_string(b) + ": " + run.status().ToString();
        return report;
      }
      const std::string bytes = RenderDerived(derived, *model.registry());
      if (bytes != expected[b]) {
        report.diverged = true;
        report.leg = leg;
        report.detail = "recovered output differs on batch " +
                        std::to_string(b) + " (crash at " + point +
                        " occurrence " + std::to_string(nth) + "): " +
                        DescribeByteDiff(expected[b], bytes);
        return report;
      }
    }
    const IngestMetrics& want = reference.ingest_metrics();
    const IngestMetrics& got = engine.ingest_metrics();
    if (want.admitted != got.admitted || want.reordered != got.reordered ||
        want.dropped_late != got.dropped_late ||
        want.quarantined != got.quarantined ||
        want.max_observed_lateness != got.max_observed_lateness ||
        reference.quarantine().total() != engine.quarantine().total()) {
      report.diverged = true;
      report.leg = leg;
      report.detail = "recovered degradation counters differ (crash at " +
                      point + " occurrence " + std::to_string(nth) + ")";
      return report;
    }
    std::filesystem::remove_all(scratch);
  }
  return report;
}

std::string FormatRepro(const ReproSpec& spec) {
  std::ostringstream os;
  os << "# caesar differential repro; replay with"
     << " tools/fuzz_differential --replay <this file>\n";
  if (!spec.note.empty()) os << "# " << spec.note << "\n";
  os << "seed = " << spec.seed << "\n";
  os << "min_segments = " << spec.generator.min_segments << "\n";
  os << "max_segments = " << spec.generator.max_segments << "\n";
  os << "min_duration = " << spec.generator.min_duration << "\n";
  os << "max_duration = " << spec.generator.max_duration << "\n";
  os << "max_delay = " << spec.generator.max_delay << "\n";
  os << "duplicate_rate = " << spec.generator.duplicate_rate << "\n";
  os << "malformed_rate = " << spec.generator.malformed_rate << "\n";
  os << "late_rate = " << spec.generator.late_rate << "\n";
  os << "force_negation = " << (spec.generator.force_negation ? 1 : 0)
     << "\n";
  os << "leg = " << (spec.leg.empty() ? "*" : spec.leg) << "\n";
  if (spec.queries.empty()) {
    os << "queries = *\n";
  } else {
    os << "queries = ";
    for (size_t i = 0; i < spec.queries.size(); ++i) {
      if (i) os << ",";
      os << spec.queries[i];
    }
    os << "\n";
  }
  if (spec.events.empty()) {
    os << "events = *\n";
  } else {
    os << "events = ";
    for (size_t i = 0; i < spec.events.size(); ++i) {
      if (i) os << ",";
      os << spec.events[i].first << "-" << spec.events[i].second;
    }
    os << "\n";
  }
  os << "expect = " << spec.expect << "\n";
  if (!spec.bug.empty()) os << "bug = " << spec.bug << "\n";
  return os.str();
}

Result<ReproSpec> ParseRepro(const std::string& text) {
  ReproSpec spec;
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    line = Trim(line);
    if (line.empty() || line[0] == '#') continue;
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::ParseError("repro line " + std::to_string(lineno) +
                                ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    try {
      if (key == "seed") {
        spec.seed = std::stoull(value);
      } else if (key == "min_segments") {
        spec.generator.min_segments = static_cast<int>(std::stoll(value));
      } else if (key == "max_segments") {
        spec.generator.max_segments = static_cast<int>(std::stoll(value));
      } else if (key == "min_duration") {
        spec.generator.min_duration = std::stoll(value);
      } else if (key == "max_duration") {
        spec.generator.max_duration = std::stoll(value);
      } else if (key == "max_delay") {
        spec.generator.max_delay = std::stoll(value);
      } else if (key == "duplicate_rate") {
        spec.generator.duplicate_rate = std::stod(value);
      } else if (key == "malformed_rate") {
        spec.generator.malformed_rate = std::stod(value);
      } else if (key == "late_rate") {
        spec.generator.late_rate = std::stod(value);
      } else if (key == "force_negation") {
        spec.generator.force_negation = std::stoll(value) != 0;
      } else if (key == "leg") {
        spec.leg = value == "*" ? "" : value;
      } else if (key == "queries") {
        if (value != "*") {
          for (const std::string& item : SplitCommas(value)) {
            // Accept the same "lo-hi" range syntax as events; a bare
            // std::stoll would silently read "0-1" as 0 and drop queries.
            size_t dash = item.find('-', 1);
            if (dash == std::string::npos) {
              spec.queries.push_back(static_cast<int>(std::stoll(item)));
            } else {
              const int lo = static_cast<int>(std::stoll(item.substr(0, dash)));
              const int hi =
                  static_cast<int>(std::stoll(item.substr(dash + 1)));
              if (lo > hi) {
                return Status::ParseError("repro: inverted query range '" +
                                          item + "'");
              }
              for (int q = lo; q <= hi; ++q) spec.queries.push_back(q);
            }
          }
        }
      } else if (key == "events") {
        if (value != "*") {
          for (const std::string& item : SplitCommas(value)) {
            size_t dash = item.find('-');
            if (dash == std::string::npos) {
              int64_t v = std::stoll(item);
              spec.events.emplace_back(v, v);
            } else {
              const int64_t lo = std::stoll(item.substr(0, dash));
              const int64_t hi = std::stoll(item.substr(dash + 1));
              if (lo > hi) {
                return Status::ParseError("repro: inverted event range '" +
                                          item + "'");
              }
              spec.events.emplace_back(lo, hi);
            }
          }
        }
      } else if (key == "expect") {
        if (value != "match" && value != "diverge") {
          return Status::ParseError("repro: expect must be match or diverge");
        }
        spec.expect = value;
      } else if (key == "bug") {
        spec.bug = value;
      } else {
        return Status::ParseError("repro line " + std::to_string(lineno) +
                                  ": unknown key '" + key + "'");
      }
    } catch (const std::exception&) {
      return Status::ParseError("repro line " + std::to_string(lineno) +
                                ": bad value '" + value + "' for '" + key +
                                "'");
    }
  }
  return spec;
}

Status WriteRepro(const ReproSpec& spec, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write repro file: " + path);
  out << FormatRepro(spec);
  return out.good() ? Status::Ok()
                    : Status::Internal("short write: " + path);
}

Result<ReproSpec> ReadRepro(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot read repro file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParseRepro(buffer.str());
}

Result<MaterializedCase> Materialize(const ReproSpec& spec,
                                     TypeRegistry* registry) {
  CAESAR_ASSIGN_OR_RETURN(GeneratedCase gen,
                          GenerateCase(spec.seed, registry, spec.generator));
  MaterializedCase out(registry);
  if (spec.queries.empty()) {
    out.model = gen.model;
  } else {
    CAESAR_ASSIGN_OR_RETURN(out.model,
                            RestrictQueries(gen.model, spec.queries));
  }
  if (spec.events.empty()) {
    out.clean = gen.clean;
  } else {
    const int64_t n = static_cast<int64_t>(gen.clean.size());
    for (const auto& [lo, hi] : spec.events) {
      for (int64_t i = std::max<int64_t>(lo, 0);
           i <= std::min<int64_t>(hi, n - 1); ++i) {
        out.clean.push_back(gen.clean[i]);
      }
    }
  }
  out.reorder_slack = spec.generator.max_delay;
  out.disordered = InjectJunk(
      DisorderStream(out.clean, spec.seed, spec.generator.max_delay),
      spec.seed, *registry, registry->Lookup("Sig"), out.reorder_slack,
      spec.generator.malformed_rate, spec.generator.late_rate);
  out.num_queries = out.model.num_queries();
  out.num_events = static_cast<int>(out.clean.size());
  out.summary = gen.summary;
  return out;
}

Result<DivergenceReport> ReplayRepro(const ReproSpec& spec, bool full_matrix,
                                     const std::string& engines) {
  TypeRegistry registry;
  CAESAR_ASSIGN_OR_RETURN(MaterializedCase m, Materialize(spec, &registry));
  DifferentialOptions options;
  options.full_matrix = full_matrix;
  options.only_leg = spec.leg;
  options.engines = engines;
  CAESAR_RETURN_IF_ERROR(ApplyBug(spec.bug, &options.oracle));
  return CompareCase(m.model, m.clean, m.disordered, m.reorder_slack,
                     options);
}

Result<ReproSpec> ShrinkRepro(const ReproSpec& spec, bool full_matrix) {
  auto diverges = [&](const ReproSpec& candidate) {
    auto report = ReplayRepro(candidate, full_matrix);
    return report.ok() && report.value().diverged;
  };

  TypeRegistry registry;
  CAESAR_ASSIGN_OR_RETURN(MaterializedCase base, Materialize(spec, &registry));

  ReproSpec cur = spec;
  if (cur.queries.empty()) {
    for (int i = 0; i < base.num_queries; ++i) cur.queries.push_back(i);
  }

  // Phase 1: drop queries to a fixpoint. Candidates that orphan a consumer
  // fail to translate and are simply rejected by `diverges`.
  bool progress = true;
  while (progress && cur.queries.size() > 1) {
    progress = false;
    for (size_t i = 0; i < cur.queries.size() && cur.queries.size() > 1;) {
      ReproSpec candidate = cur;
      candidate.queries.erase(candidate.queries.begin() + i);
      if (diverges(candidate)) {
        cur = std::move(candidate);
        progress = true;
      } else {
        ++i;
      }
    }
  }

  // Phase 2: remove events. On legs without window grouping any subset of
  // the stream is a valid case, so ddmin-style chunk removal applies. On
  // grouping legs ("shared" plan shape, or no pinned leg) the grouped plan
  // is only equivalent to the base model when the monotone signal crosses
  // every window bound (see generator.h) — dropping an interior bound tick
  // manufactures a divergence that is a precondition violation, not a bug.
  // There the shrink is restricted to drops that preserve bound coverage:
  // whole partitions, suffix ticks, non-signal events, and duplicates.
  std::vector<int64_t> kept;
  if (cur.events.empty()) {
    for (int64_t i = 0; i < base.num_events; ++i) kept.push_back(i);
  } else {
    for (const auto& [lo, hi] : cur.events) {
      for (int64_t i = lo; i <= hi; ++i) kept.push_back(i);
    }
  }
  const bool grouping_leg = cur.leg.empty() || cur.leg.rfind("shared", 0) == 0;
  if (!grouping_leg) {
    size_t chunk = kept.size() / 2;
    if (chunk == 0) chunk = 1;
    while (true) {
      size_t i = 0;
      while (i < kept.size() && kept.size() > 1) {
        const size_t len = std::min(chunk, kept.size() - i);
        if (len >= kept.size()) break;
        std::vector<int64_t> candidate_kept;
        candidate_kept.reserve(kept.size() - len);
        candidate_kept.insert(candidate_kept.end(), kept.begin(),
                              kept.begin() + i);
        candidate_kept.insert(candidate_kept.end(), kept.begin() + i + len,
                              kept.end());
        ReproSpec candidate = cur;
        candidate.events = CompressRanges(candidate_kept);
        if (diverges(candidate)) {
          kept = std::move(candidate_kept);
          cur.events = std::move(candidate.events);
        } else {
          i += len;
        }
      }
      if (chunk == 1) break;
      chunk /= 2;
    }
  } else {
    TypeRegistry shrink_registry;
    CAESAR_ASSIGN_OR_RETURN(
        GeneratedCase gen,
        GenerateCase(spec.seed, &shrink_registry, spec.generator));
    const TypeId sig_id = shrink_registry.Lookup("Sig");
    auto try_kept = [&](std::vector<int64_t> candidate_kept) {
      if (candidate_kept.empty() || candidate_kept.size() == kept.size()) {
        return false;
      }
      ReproSpec candidate = cur;
      candidate.events = CompressRanges(candidate_kept);
      if (!diverges(candidate)) return false;
      kept = std::move(candidate_kept);
      cur.events = CompressRanges(kept);
      return true;
    };
    // (a) Whole partitions (per-partition execution is independent).
    std::set<int64_t> segments;
    for (int64_t i : kept) segments.insert(gen.clean[i]->value(0).AsInt());
    for (int64_t seg : segments) {
      std::vector<int64_t> candidate;
      for (int64_t i : kept) {
        if (gen.clean[i]->value(0).AsInt() != seg) candidate.push_back(i);
      }
      try_kept(std::move(candidate));
    }
    // (b) Suffix ticks: every bound <= the new maximum stays covered.
    for (bool progress = true; progress;) {
      progress = false;
      std::set<Timestamp> ticks;
      for (int64_t i : kept) ticks.insert(gen.clean[i]->time());
      std::vector<Timestamp> ordered(ticks.begin(), ticks.end());
      size_t chunk = ordered.size() / 2;
      if (chunk == 0) break;
      while (chunk >= 1) {
        if (ordered.size() > chunk) {
          const Timestamp cutoff = ordered[ordered.size() - chunk - 1];
          std::vector<int64_t> candidate;
          for (int64_t i : kept) {
            if (gen.clean[i]->time() <= cutoff) candidate.push_back(i);
          }
          if (try_kept(std::move(candidate))) {
            ordered.resize(ordered.size() - chunk);
            progress = true;
            continue;
          }
        }
        if (chunk == 1) break;
        chunk /= 2;
      }
    }
    // (c) Non-signal events (bounds are thresholds on the signal type) —
    // all at once, then individually.
    {
      std::vector<int64_t> sig_only, probes;
      for (int64_t i : kept) {
        (gen.clean[i]->type_id() == sig_id ? sig_only : probes).push_back(i);
      }
      if (!probes.empty() && !try_kept(std::move(sig_only))) {
        for (int64_t p : probes) {
          std::vector<int64_t> candidate;
          for (int64_t i : kept) {
            if (i != p) candidate.push_back(i);
          }
          try_kept(std::move(candidate));
        }
      }
    }
    // (d) Duplicates (identical payload at the same tick; the first copy
    // keeps the tick covered).
    {
      std::set<std::string> seen;
      std::vector<int64_t> dups, firsts;
      for (int64_t i : kept) {
        const std::string line = gen.clean[i]->ToString(shrink_registry);
        (seen.insert(line).second ? firsts : dups).push_back(i);
      }
      if (!dups.empty()) try_kept(std::move(firsts));
    }
  }
  if (cur.events.empty()) cur.events = CompressRanges(kept);
  return cur;
}

namespace {

// The fuzz harness's lint leg: a clean generated model must produce no
// error/warning diagnostics; a mutated one must produce the mutation's
// paired code. Returns a "diverged" report on leg "lint" when the analyzer
// misbehaves either way.
Result<DivergenceReport> RunLintLeg(const ReproSpec& spec,
                                    const std::string& model_mutation) {
  DivergenceReport report;
  TypeRegistry registry;
  CAESAR_ASSIGN_OR_RETURN(MaterializedCase c, Materialize(spec, &registry));
  AnalyzerOptions analyzer_options;
  analyzer_options.source_name = "<generated>";
  analyzer_options.include_notes = false;
  if (model_mutation.empty()) {
    std::vector<Diagnostic> diags = AnalyzeModel(c.model, analyzer_options);
    if (HasErrorsOrWarnings(diags)) {
      report.diverged = true;
      report.leg = "lint";
      report.detail = "generated model does not lint clean: " +
                      FormatDiagnostic(diags.front());
    }
    return report;
  }
  std::string expected_code;
  Result<CaesarModel> mutated =
      MutateModel(c.model, model_mutation, &expected_code);
  if (!mutated.ok()) {
    // The case lacks the shape this mutation needs; nothing to check.
    if (mutated.status().code() == StatusCode::kFailedPrecondition) {
      return report;
    }
    return mutated.status();
  }
  std::vector<Diagnostic> diags =
      AnalyzeModel(mutated.value(), analyzer_options);
  bool flagged = false;
  for (const Diagnostic& diag : diags) {
    if (DiagCodeName(diag.code) == expected_code) flagged = true;
  }
  if (!flagged) {
    report.diverged = true;
    report.leg = "lint";
    report.detail = "mutation '" + model_mutation +
                    "' not flagged with expected diagnostic " + expected_code +
                    " (got " + std::to_string(diags.size()) +
                    " diagnostics)";
  }
  return report;
}

}  // namespace

Result<FuzzResult> RunFuzz(const FuzzOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  FuzzResult result;
  for (int i = 0; i < options.iters; ++i) {
    ReproSpec spec;
    spec.seed = options.seed + static_cast<uint64_t>(i);
    spec.generator = options.generator;
    spec.bug = options.bug;
    if (options.lint || !options.model_mutation.empty()) {
      CAESAR_ASSIGN_OR_RETURN(DivergenceReport lint_report,
                              RunLintLeg(spec, options.model_mutation));
      if (lint_report.diverged) {
        result.iterations_run = i + 1;
        result.diverged = true;
        result.report = lint_report;
        result.repro = spec;
        result.repro.expect = "diverge";
        result.repro.note = "leg lint";
        return result;
      }
      if (!options.model_mutation.empty()) {
        // Sensitivity-only run: the mutated model is not meant to execute.
        result.iterations_run = i + 1;
        continue;
      }
    }
    CAESAR_ASSIGN_OR_RETURN(
        DivergenceReport report,
        ReplayRepro(spec, options.full_matrix, options.engines));
    result.iterations_run = i + 1;
    if (report.diverged) {
      result.diverged = true;
      result.report = report;
      // Pin the diverging leg before shrinking: one engine run per
      // candidate instead of a whole matrix sweep.
      spec.leg = report.leg;
      auto shrunk = ShrinkRepro(spec, options.full_matrix);
      result.repro = shrunk.ok() ? std::move(shrunk).value() : spec;
      result.repro.expect = "diverge";
      result.repro.note = "leg " + report.leg;
      return result;
    }
    if (options.crash_recovery) {
      TypeRegistry recovery_registry;
      CAESAR_ASSIGN_OR_RETURN(MaterializedCase c,
                              Materialize(spec, &recovery_registry));
      DifferentialOptions diff;
      diff.engines = options.engines;
      CAESAR_ASSIGN_OR_RETURN(
          DivergenceReport recovery,
          CompareCrashRecovery(c.model, c.clean, spec.seed, diff));
      if (recovery.diverged) {
        result.diverged = true;
        result.report = recovery;
        // Recovery legs are not matrix legs, so ShrinkRepro cannot pin
        // them; record the unshrunken case.
        result.repro = spec;
        result.repro.expect = "diverge";
        result.repro.note = "leg " + recovery.leg;
        return result;
      }
    }
    if (options.budget_seconds > 0) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (elapsed >= options.budget_seconds) break;
    }
  }
  return result;
}

}  // namespace caesar
