// Cost-model calibration from gathered runtime statistics — the feedback
// edge between the statistics gatherer and the optimizer in Fig. 8.
//
// A run with EngineOptions::gather_statistics produces a StatisticsReport;
// calibration turns it into cost-model parameters (observed context
// activity) and into per-operator observed selectivities/unit costs, which
// replace the static defaults when estimating plan costs. This lets an
// application re-evaluate its plan shape against the actual workload
// ("would push-down still win if contexts were active 95% of the time?").

#ifndef CAESAR_OPTIMIZER_CALIBRATION_H_
#define CAESAR_OPTIMIZER_CALIBRATION_H_

#include "optimizer/cost_model.h"
#include "plan/plan.h"
#include "runtime/statistics.h"

namespace caesar {

// Cost-model parameters implied by a run's statistics.
CostModelParams CalibrateCostParams(const StatisticsReport& report);

// Expected plan cost per input event using observed per-operator
// selectivities and unit costs where the report has them (rows are matched
// by query name and operator index; unmatched operators fall back to their
// static estimates).
double EstimatePlanCostCalibrated(const ExecutablePlan& plan,
                                  const StatisticsReport& report,
                                  const CostModelParams& params);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_CALIBRATION_H_
