// Context window grouping (Section 5.3, Listing 1, Fig. 7).
//
// Overlapping user-defined context windows are split at their
// compile-time-orderable bounds into finer, non-overlapping *grouped*
// windows; windows covering the same interval are merged and their query
// workloads deduplicated. The context deriving queries are adjusted so the
// grouped windows chain via SWITCH transitions (Fig. 7 bottom).
//
// Two interfaces are provided:
//   - GroupContextWindows: the literal Listing-1 algorithm over abstract
//     window descriptions with orderable bounds (used directly by the unit
//     tests and the MQO search-space reduction);
//   - ApplyWindowGrouping: the model-level transform that rewrites a
//     CaesarModel, replacing each set of groupable overlapping contexts by
//     grouped contexts and reassigning every processing query to the
//     grouped windows covering its original window.
//
// Windows whose bounds cannot be ordered at compile time (predicates not
// reducible to single-attribute thresholds) are conservatively left
// unchanged.

#ifndef CAESAR_OPTIMIZER_WINDOW_GROUPING_H_
#define CAESAR_OPTIMIZER_WINDOW_GROUPING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "query/model.h"

namespace caesar {

// Input to the Listing-1 algorithm: one user-defined context window with
// orderable bounds. `start_key`/`end_key` are the bound thresholds (see
// expr/analysis.h: under the monotone-signal reading, bounds fire in
// threshold order). `queries` identifies the window's workload.
struct WindowSpec {
  std::string context;
  double start_key = 0.0;
  double end_key = 0.0;
  std::vector<std::string> queries;
};

// Output: a grouped (non-overlapping) context window.
struct GroupedWindow {
  std::string name;                     // synthesized context name
  double start_key = 0.0;
  double end_key = 0.0;
  std::vector<std::string> queries;     // duplicates dropped
  std::vector<std::string> originals;   // original contexts covered
};

// Listing 1. Windows that overlap no other window pass through unchanged;
// identical windows are merged; overlapping windows are split at every
// bound and grouped. Requires start_key < end_key for every window.
Result<std::vector<GroupedWindow>> GroupContextWindows(
    std::vector<WindowSpec> windows);

// Model-level transform. Contexts are groupable when each has exactly one
// initiating and one terminating deriving query whose predicates reduce to
// thresholds on one shared attribute. Non-groupable or non-overlapping
// contexts are kept as-is. Returns the rewritten model (sharing-enabled);
// the default context is preserved.
Result<CaesarModel> ApplyWindowGrouping(const CaesarModel& model);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_WINDOW_GROUPING_H_
