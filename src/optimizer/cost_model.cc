#include "optimizer/cost_model.h"

#include <algorithm>

#include "expr/compiled.h"

namespace caesar {

double EstimateChainCost(const OpChain& chain, const CostModelParams& params) {
  double cost = 0.0;
  double rate = 1.0;
  for (size_t i = 0; i < chain.ops.size(); ++i) {
    const Operator& op = *chain.ops[i];
    if (op.kind() == Operator::Kind::kContextWindow) {
      // Constant probe; everything above it only sees events while the
      // context is active.
      cost += params.cw_probe_cost;
      rate *= params.context_activity;
      continue;
    }
    cost += rate * op.UnitCost();
    rate *= op.Selectivity();
  }
  return cost;
}

double EstimatePlanCost(const ExecutablePlan& plan,
                        const CostModelParams& params) {
  double cost = 0.0;
  for (const auto* queries : {&plan.deriving, &plan.processing}) {
    for (const CompiledQuery& query : *queries) {
      cost += EstimateChainCost(query.chain, params);
      for (const OpChain& guard : query.guards) {
        cost += EstimateChainCost(guard, params);
      }
    }
  }
  return cost;
}

double EstimatePredicateCost(const CompiledExpr& expr) {
  return std::max<double>(1.0, static_cast<double>(expr.nodes().size()));
}

namespace {

double NodeSelectivity(const std::vector<CompiledExpr::Node>& nodes,
                       int index) {
  if (index < 0 || index >= static_cast<int>(nodes.size())) return 0.5;
  const CompiledExpr::Node& node = nodes[index];
  if (node.kind != Expr::Kind::kBinary) return 0.5;
  switch (node.op) {
    case BinaryOp::kEq:
      return 0.1;
    case BinaryOp::kNe:
      return 0.9;
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return 0.5;
    case BinaryOp::kAnd:
      return NodeSelectivity(nodes, node.left) *
             NodeSelectivity(nodes, node.right);
    case BinaryOp::kOr: {
      const double l = NodeSelectivity(nodes, node.left);
      const double r = NodeSelectivity(nodes, node.right);
      return l + r - l * r;  // independent union
    }
    default:
      return 0.5;  // arithmetic root: not a filter
  }
}

}  // namespace

double EstimatePredicateSelectivity(const CompiledExpr& expr) {
  if (expr.nodes().empty()) return 0.5;
  return NodeSelectivity(expr.nodes(),
                         static_cast<int>(expr.nodes().size()) - 1);
}

double RefineSelectivityFromFacts(double fraction) {
  return std::clamp(fraction, 0.01, 0.99);
}

}  // namespace caesar
