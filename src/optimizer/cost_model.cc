#include "optimizer/cost_model.h"

namespace caesar {

double EstimateChainCost(const OpChain& chain, const CostModelParams& params) {
  double cost = 0.0;
  double rate = 1.0;
  for (size_t i = 0; i < chain.ops.size(); ++i) {
    const Operator& op = *chain.ops[i];
    if (op.kind() == Operator::Kind::kContextWindow) {
      // Constant probe; everything above it only sees events while the
      // context is active.
      cost += params.cw_probe_cost;
      rate *= params.context_activity;
      continue;
    }
    cost += rate * op.UnitCost();
    rate *= op.Selectivity();
  }
  return cost;
}

double EstimatePlanCost(const ExecutablePlan& plan,
                        const CostModelParams& params) {
  double cost = 0.0;
  for (const auto* queries : {&plan.deriving, &plan.processing}) {
    for (const CompiledQuery& query : *queries) {
      cost += EstimateChainCost(query.chain, params);
      for (const OpChain& guard : query.guards) {
        cost += EstimateChainCost(guard, params);
      }
    }
  }
  return cost;
}

}  // namespace caesar
