#include "optimizer/overlap_analysis.h"

#include <algorithm>
#include <optional>

#include "expr/analysis.h"

namespace caesar {

namespace {

// Extracts the single threshold of a WHERE clause ("var.attr" + constant).
bool SingleThreshold(const ExprPtr& where, std::string* attr, double* key) {
  if (where == nullptr) return false;
  std::vector<ExprPtr> conjuncts = SplitConjuncts(where);
  if (conjuncts.size() != 1) return false;
  std::optional<AttrConstraint> constraint = ExtractConstraint(conjuncts[0]);
  if (!constraint.has_value()) return false;
  *attr = constraint->variable + "." + constraint->attribute;
  *key = constraint->value;
  return true;
}

}  // namespace

std::vector<WindowBounds> ExtractWindowBounds(const CaesarModel& model) {
  std::vector<WindowBounds> result;
  for (int ci = 0; ci < model.num_contexts(); ++ci) {
    const std::string& name = model.context(ci).name;
    if (name == model.default_context()) continue;
    WindowBounds bounds;
    bounds.context = name;
    bool ok = true;
    for (int qi = 0; qi < model.num_queries() && ok; ++qi) {
      const Query& query = model.query(qi);
      bool starts = (query.action == ContextAction::kInitiate ||
                     query.action == ContextAction::kSwitch) &&
                    query.target_context == name;
      bool ends =
          (query.action == ContextAction::kTerminate &&
           query.target_context == name) ||
          (query.action == ContextAction::kSwitch &&
           query.target_context != name &&
           std::find(query.contexts.begin(), query.contexts.end(), name) !=
               query.contexts.end());
      if (starts && ends) ok = false;  // self-loop
      if (starts) {
        if (bounds.initiator_query >= 0) ok = false;
        bounds.initiator_query = qi;
      }
      if (ends) {
        if (bounds.terminator_query >= 0) ok = false;
        bounds.terminator_query = qi;
      }
    }
    if (!ok || bounds.initiator_query < 0 || bounds.terminator_query < 0) {
      continue;
    }
    std::string start_attr, end_attr;
    if (!SingleThreshold(model.query(bounds.initiator_query).where,
                         &start_attr, &bounds.start_key) ||
        !SingleThreshold(model.query(bounds.terminator_query).where,
                         &end_attr, &bounds.end_key)) {
      continue;
    }
    if (start_attr != end_attr || !(bounds.start_key < bounds.end_key)) {
      continue;
    }
    bounds.bound_attr = start_attr;
    result.push_back(std::move(bounds));
  }
  return result;
}

const char* WindowRelationName(WindowRelation relation) {
  switch (relation) {
    case WindowRelation::kUnknown:
      return "unknown";
    case WindowRelation::kDisjoint:
      return "disjoint";
    case WindowRelation::kOverlaps:
      return "overlaps";
    case WindowRelation::kContains:
      return "contains";
    case WindowRelation::kContainedIn:
      return "contained-in";
    case WindowRelation::kEqual:
      return "equal";
  }
  return "?";
}

WindowRelation Relate(const WindowBounds& a, const WindowBounds& b) {
  if (a.bound_attr != b.bound_attr) return WindowRelation::kUnknown;
  if (a.start_key == b.start_key && a.end_key == b.end_key) {
    return WindowRelation::kEqual;
  }
  bool overlap = a.start_key < b.end_key && b.start_key < a.end_key;
  if (!overlap) return WindowRelation::kDisjoint;
  if (b.start_key <= a.start_key && a.end_key <= b.end_key) {
    return WindowRelation::kContainedIn;
  }
  if (a.start_key <= b.start_key && b.end_key <= a.end_key) {
    return WindowRelation::kContains;
  }
  return WindowRelation::kOverlaps;
}

bool GuaranteedOverlap(const CaesarModel& model, const WindowBounds& inner,
                       const WindowBounds& outer) {
  if (inner.bound_attr != outer.bound_attr) return false;
  // The condition region of `outer` is [start_key, end_key] on the shared
  // attribute; `inner`'s start lies within `outer` iff the initiating
  // predicate of `inner` implies that region. Build both summaries and use
  // predicate implication (the Section 3.3 subsumption check).
  const Query& initiator = model.query(inner.initiator_query);
  PredicateSummary start_summary = PredicateSummary::FromExpr(initiator.where);

  // outer region: attr >= start AND attr <= end. Reconstruct from the keys
  // (the extraction guarantees a single constraint per bound).
  std::vector<ExprPtr> conjuncts =
      SplitConjuncts(model.query(outer.initiator_query).where);
  std::optional<AttrConstraint> start_constraint =
      ExtractConstraint(conjuncts[0]);
  if (!start_constraint.has_value()) return false;
  ExprPtr attr_ref = MakeAttrRef(start_constraint->variable,
                                 start_constraint->attribute);
  ExprPtr region = MakeConjunction(
      MakeBinary(BinaryOp::kGe, attr_ref, MakeConstant(outer.start_key)),
      MakeBinary(BinaryOp::kLe, attr_ref, MakeConstant(outer.end_key)));
  PredicateSummary region_summary = PredicateSummary::FromExpr(region);
  return Implies(start_summary, region_summary);
}

}  // namespace caesar
