// Multi-query optimization search (Section 5.3, evaluated in Fig. 11a).
//
// The search space of shared multi-query plans is doubly exponential: the
// number of ways to group n queries is the Bell number B_n, and finding the
// optimal operator ordering inside one group is itself exponential. The
// context-independent *exhaustive* search enumerates every set partition of
// the query workload and, per group, finds the cost-optimal ordering of the
// group's distinct commuting operators by dynamic programming over subsets.
// CAESAR's *context-aware greedy* search instead takes the grouping for free
// from the (non-overlapping, grouped) context windows and orders each small
// group's operators greedily by rank (selectivity ordering) — constant-ish
// cost regardless of workload size.
//
// The workload here is the logical abstraction both searches operate on:
// queries as bags of commuting operators with per-operator cost and
// selectivity, plus the context labels the greedy search groups by.

#ifndef CAESAR_OPTIMIZER_MQO_H_
#define CAESAR_OPTIMIZER_MQO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace caesar {

// One commuting operator of a logical query.
struct LogicalOp {
  int id = 0;           // shared operators across queries share ids
  double cost = 1.0;
  double selectivity = 0.5;
};

// A logical query: a bag of operators plus the context it belongs to.
struct LogicalQuery {
  std::vector<LogicalOp> ops;
  int context = 0;
};

// A workload of logical queries.
struct MqoWorkload {
  std::vector<LogicalQuery> queries;

  int total_operators() const;
};

// Generates a synthetic workload with `num_operators` operators spread over
// queries of `ops_per_query` operators each, with `sharing` fraction of
// operators shared between adjacent queries, assigned round-robin to
// `num_contexts` contexts.
MqoWorkload MakeSyntheticWorkload(int num_operators, int ops_per_query,
                                  int num_contexts, double sharing, Rng* rng);

// Result of one plan search.
struct MqoSearchResult {
  double plan_cost = 0.0;
  double seconds = 0.0;        // CPU time spent searching
  uint64_t candidates = 0;     // plans/orderings examined
  int num_groups = 0;          // groups in the chosen plan
};

// Context-independent exhaustive search over all set partitions, with
// subset-DP optimal ordering per group. Cost blows up around 24+ operators /
// 6+ queries; callers cap the input size.
MqoSearchResult ExhaustiveSearch(const MqoWorkload& workload);

// Context-aware greedy search: groups by context (the grouped context
// windows), greedy rank ordering within each group.
MqoSearchResult GreedySearch(const MqoWorkload& workload);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_MQO_H_
