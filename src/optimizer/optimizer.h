// The CAESAR optimizer facade (Section 5): applies the context-aware
// optimization strategies — context window push-down, predicate push-down,
// and workload sharing across overlapping context windows — and produces an
// executable plan.

#ifndef CAESAR_OPTIMIZER_OPTIMIZER_H_
#define CAESAR_OPTIMIZER_OPTIMIZER_H_

#include "common/status.h"
#include "plan/plan.h"
#include "plan/translator.h"
#include "query/model.h"

namespace caesar {

// Which optimizations to apply.
struct OptimizerOptions {
  // Context window push-down (Theorem 1).
  bool push_down = true;
  // Share workloads of overlapping context windows via window grouping
  // (Listing 1).
  bool share_overlapping = true;
  // Push WHERE conjuncts into the sequence matcher.
  bool push_predicates = true;
  // Default WITHIN bound for SEQ patterns (ticks).
  Timestamp default_within = 300;
};

// Optimizes `model` and translates it. With share_overlapping the model is
// first rewritten by ApplyWindowGrouping; push-down and predicate push-down
// shape the chains. The model's TypeRegistry is extended with derived types.
Result<ExecutablePlan> OptimizeModel(const CaesarModel& model,
                                     const OptimizerOptions& options);

// Convenience: the state-of-the-art context-independent baseline plan
// (every query always active, private context guards, no push-down).
Result<ExecutablePlan> BaselinePlan(const CaesarModel& model,
                                    Timestamp default_within = 300);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_OPTIMIZER_H_
