#include "optimizer/optimizer.h"

#include "optimizer/window_grouping.h"

namespace caesar {

Result<ExecutablePlan> OptimizeModel(const CaesarModel& model,
                                     const OptimizerOptions& options) {
  PlanOptions plan_options;
  plan_options.push_down_context_windows = options.push_down;
  plan_options.push_predicates_into_pattern = options.push_predicates;
  plan_options.default_within = options.default_within;

  if (options.share_overlapping) {
    CAESAR_ASSIGN_OR_RETURN(CaesarModel grouped, ApplyWindowGrouping(model));
    return TranslateModel(grouped, plan_options);
  }
  return TranslateModel(model, plan_options);
}

Result<ExecutablePlan> BaselinePlan(const CaesarModel& model,
                                    Timestamp default_within) {
  PlanOptions plan_options;
  plan_options.push_down_context_windows = false;
  plan_options.push_predicates_into_pattern = false;
  plan_options.context_independent = true;
  plan_options.default_within = default_within;
  return TranslateModel(model, plan_options);
}

}  // namespace caesar
