#include "optimizer/calibration.h"

#include <map>
#include <string>
#include <utility>

namespace caesar {

CostModelParams CalibrateCostParams(const StatisticsReport& report) {
  CostModelParams params;
  params.context_activity = report.observed_context_activity;
  return params;
}

double EstimatePlanCostCalibrated(const ExecutablePlan& plan,
                                  const StatisticsReport& report,
                                  const CostModelParams& params) {
  // Index the report by (query, op index).
  std::map<std::pair<std::string, int>, const OperatorStats*> observed;
  for (const QueryOperatorStats& row : report.operators) {
    observed[{row.query, row.op_index}] = &row.stats;
  }

  double total = 0.0;
  for (const auto* queries : {&plan.deriving, &plan.processing}) {
    for (const CompiledQuery& query : *queries) {
      double cost = 0.0;
      double rate = 1.0;
      for (size_t o = 0; o < query.chain.ops.size(); ++o) {
        const Operator& op = *query.chain.ops[o];
        if (op.kind() == Operator::Kind::kContextWindow) {
          cost += params.cw_probe_cost;
          rate *= params.context_activity;
          continue;
        }
        auto it = observed.find({query.name, static_cast<int>(o)});
        double unit_cost = op.UnitCost();
        double selectivity = op.Selectivity();
        // A row without data (operator never saw input — e.g. its context
        // never activated) has no observed selectivity; keep the static
        // estimate instead of mistaking "never ran" for "pass-through".
        if (it != observed.end() && it->second->has_data()) {
          unit_cost = *it->second->ObservedUnitCost();
          selectivity = *it->second->ObservedSelectivity();
        }
        cost += rate * unit_cost;
        rate *= selectivity;
      }
      total += cost;
      for (const OpChain& guard : query.guards) {
        total += EstimateChainCost(guard, params);
      }
    }
  }
  return total;
}

}  // namespace caesar
