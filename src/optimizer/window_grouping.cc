#include "optimizer/window_grouping.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "common/logging.h"
#include "expr/analysis.h"
#include "optimizer/overlap_analysis.h"

namespace caesar {

namespace {

bool Overlaps(const WindowSpec& a, const WindowSpec& b) {
  return a.start_key < b.end_key && b.start_key < a.end_key;
}

std::vector<std::string> DropDuplicates(std::vector<std::string> queries) {
  std::vector<std::string> result;
  std::set<std::string> seen;
  for (std::string& query : queries) {
    if (seen.insert(query).second) result.push_back(std::move(query));
  }
  return result;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) joined += "+";
    joined += names[i];
  }
  return joined;
}

}  // namespace

Result<std::vector<GroupedWindow>> GroupContextWindows(
    std::vector<WindowSpec> windows) {
  for (const WindowSpec& window : windows) {
    if (!(window.start_key < window.end_key)) {
      return Status::InvalidArgument("window " + window.context +
                                     " has start >= end");
    }
  }
  std::vector<GroupedWindow> grouped;

  // Line 4: windows that overlap no other window remain unchanged.
  std::vector<WindowSpec> overlapping;
  for (size_t i = 0; i < windows.size(); ++i) {
    bool any = false;
    for (size_t j = 0; j < windows.size(); ++j) {
      if (i != j && Overlaps(windows[i], windows[j])) {
        any = true;
        break;
      }
    }
    if (any) {
      overlapping.push_back(windows[i]);
    } else {
      GroupedWindow unchanged;
      unchanged.name = windows[i].context;
      unchanged.start_key = windows[i].start_key;
      unchanged.end_key = windows[i].end_key;
      unchanged.queries = DropDuplicates(windows[i].queries);
      unchanged.originals = {windows[i].context};
      grouped.push_back(std::move(unchanged));
    }
  }

  // Line 5: sort by start.
  std::sort(overlapping.begin(), overlapping.end(),
            [](const WindowSpec& a, const WindowSpec& b) {
              if (a.start_key != b.start_key) return a.start_key < b.start_key;
              return a.end_key < b.end_key;
            });

  // Line 6: merge identical windows (same bounds), unioning workloads.
  std::vector<WindowSpec> merged;
  std::vector<std::vector<std::string>> merged_originals;
  for (WindowSpec& window : overlapping) {
    if (!merged.empty() && merged.back().start_key == window.start_key &&
        merged.back().end_key == window.end_key) {
      merged.back().queries.insert(merged.back().queries.end(),
                                   window.queries.begin(),
                                   window.queries.end());
      merged_originals.back().push_back(window.context);
    } else {
      merged_originals.push_back({window.context});
      merged.push_back(std::move(window));
    }
  }

  // Lines 8-19: sweep the window bounds; each interval between subsequent
  // bounds with a non-empty active workload becomes a grouped window.
  std::set<double> bounds;
  for (const WindowSpec& window : merged) {
    bounds.insert(window.start_key);
    bounds.insert(window.end_key);
  }
  bool have_previous = false;
  double previous = 0.0;
  std::vector<size_t> active;  // indices into `merged`
  int counter = 0;
  for (double next : bounds) {
    if (have_previous && !active.empty()) {
      GroupedWindow window;
      window.start_key = previous;
      window.end_key = next;
      std::vector<std::string> originals;
      for (size_t w : active) {
        window.queries.insert(window.queries.end(),
                              merged[w].queries.begin(),
                              merged[w].queries.end());
        originals.insert(originals.end(), merged_originals[w].begin(),
                         merged_originals[w].end());
      }
      window.originals = DropDuplicates(std::move(originals));
      // Lines 20-22: drop duplicate queries.
      window.queries = DropDuplicates(std::move(window.queries));
      window.name = JoinNames(window.originals) + "#" + std::to_string(++counter);
      grouped.push_back(std::move(window));
    }
    // Update the active set: windows ending here leave, starting here enter.
    std::erase_if(active,
                  [&](size_t w) { return merged[w].end_key == next; });
    for (size_t w = 0; w < merged.size(); ++w) {
      if (merged[w].start_key == next) active.push_back(w);
    }
    previous = next;
    have_previous = true;
  }
  CAESAR_CHECK(active.empty());
  return grouped;
}

namespace {

// Signature identifying structurally identical queries for workload
// deduplication (name and CONTEXT clause excluded).
std::string QuerySignature(const Query& query) {
  std::ostringstream os;
  os << ContextActionName(query.action) << "|" << query.target_context << "|"
     << (query.derivation_helper ? "helper|" : "|");
  if (query.derive.has_value()) os << query.derive->ToString();
  os << "|";
  if (query.pattern.has_value()) os << query.pattern->ToString();
  os << "|";
  if (query.where != nullptr) os << query.where->ToString();
  return os.str();
}

}  // namespace

Result<CaesarModel> ApplyWindowGrouping(const CaesarModel& model) {
  // 1. Analyzable contexts (single-threshold bounds; see overlap_analysis).
  std::map<std::string, WindowBounds> groupable;
  for (WindowBounds& bounds : ExtractWindowBounds(model)) {
    // A SWITCH-initiated context is not groupable: its initiating query is
    // simultaneously the terminator of the switch's *source* context, which
    // lies outside any overlap cluster (a switch chain makes the windows
    // adjacent, not overlapping). Consuming that query into a synthesized
    // group entry would silently drop the source's termination. The exit
    // side is fine — a terminating SWITCH is re-emitted with its target
    // kept — so switch sources remain groupable.
    if (model.query(bounds.initiator_query).action == ContextAction::kSwitch) {
      continue;
    }
    std::string name = bounds.context;
    groupable.emplace(std::move(name), std::move(bounds));
  }

  // 2. Overlap clusters among groupable contexts sharing a bound attribute.
  std::vector<std::string> names;
  for (const auto& [name, bounds] : groupable) names.push_back(name);
  std::map<std::string, int> cluster_of;
  {
    // Union-find over pairwise overlaps.
    std::vector<int> parent(names.size());
    for (size_t i = 0; i < names.size(); ++i) parent[i] = static_cast<int>(i);
    std::function<int(int)> find = [&](int x) {
      while (parent[x] != x) x = parent[x] = parent[parent[x]];
      return x;
    };
    for (size_t i = 0; i < names.size(); ++i) {
      for (size_t j = i + 1; j < names.size(); ++j) {
        const WindowBounds& a = groupable[names[i]];
        const WindowBounds& b = groupable[names[j]];
        if (a.bound_attr != b.bound_attr) continue;
        if (a.start_key < b.end_key && b.start_key < a.end_key) {
          parent[find(static_cast<int>(i))] = find(static_cast<int>(j));
        }
      }
    }
    for (size_t i = 0; i < names.size(); ++i) {
      cluster_of[names[i]] = find(static_cast<int>(i));
    }
  }
  std::map<int, std::vector<std::string>> clusters;
  for (const auto& [name, root] : cluster_of) clusters[root].push_back(name);

  // Contexts being replaced (members of clusters of size >= 2).
  std::set<std::string> replaced;
  for (const auto& [root, members] : clusters) {
    if (members.size() >= 2) {
      replaced.insert(members.begin(), members.end());
    }
  }
  if (replaced.empty()) return model;  // nothing to share

  // 3. Run Listing 1 per cluster and build the rewritten model.
  CaesarModel rewritten(model.registry());
  rewritten.SetPartitionBy(model.partition_by());
  // Keep all untouched contexts (default first so it stays default).
  CAESAR_RETURN_IF_ERROR(rewritten.AddContext(model.default_context()));
  for (const ContextType& context : model.contexts()) {
    if (context.name == model.default_context() ||
        replaced.count(context.name) > 0) {
      continue;
    }
    CAESAR_RETURN_IF_ERROR(rewritten.AddContext(context.name));
  }

  // original context -> grouped windows covering it.
  std::map<std::string, std::vector<std::string>> covering;
  // Queries to skip (bound-defining queries of replaced contexts are
  // re-synthesized).
  std::set<int> consumed_queries;

  // Pass 1: group every cluster and register the grouped contexts, so that
  // `covering` is complete before any query is synthesized (a cluster's
  // entry gate may reference contexts replaced by *another* cluster).
  struct ClusterPlan {
    std::vector<GroupedWindow> grouped;
    std::map<double, int> bound_query;  // bound -> bound-defining query
    std::map<double, std::vector<int>> switch_exits;
  };
  std::vector<ClusterPlan> plans;
  for (const auto& [root, members] : clusters) {
    if (members.size() < 2) continue;
    ClusterPlan plan;
    std::vector<WindowSpec> specs;
    for (const std::string& member : members) {
      WindowSpec spec;
      spec.context = member;
      spec.start_key = groupable[member].start_key;
      spec.end_key = groupable[member].end_key;
      specs.push_back(std::move(spec));
    }
    CAESAR_ASSIGN_OR_RETURN(plan.grouped,
                            GroupContextWindows(std::move(specs)));
    std::sort(plan.grouped.begin(), plan.grouped.end(),
              [](const GroupedWindow& a, const GroupedWindow& b) {
                return a.start_key < b.start_key;
              });
    for (const GroupedWindow& window : plan.grouped) {
      CAESAR_RETURN_IF_ERROR(rewritten.AddContext(window.name));
      for (const std::string& original : window.originals) {
        covering[original].push_back(window.name);
      }
    }

    for (const std::string& member : members) {
      const WindowBounds& bounds = groupable[member];
      plan.bound_query[bounds.start_key] = bounds.initiator_query;
      plan.bound_query[bounds.end_key] = bounds.terminator_query;
      consumed_queries.insert(bounds.initiator_query);
      consumed_queries.insert(bounds.terminator_query);
    }

    // Terminating SWITCH queries by end bound. Beyond deactivating its
    // member, such a query initiates a context *outside* the cluster — a
    // side effect the synthesized chain must preserve. The exit path below
    // keeps the target only when the switch lands on the cluster's last
    // bound; everywhere else a carry INITIATE is synthesized.
    for (const std::string& member : members) {
      const WindowBounds& bounds = groupable[member];
      if (model.query(bounds.terminator_query).action ==
          ContextAction::kSwitch) {
        std::vector<int>& at = plan.switch_exits[bounds.end_key];
        if (std::find(at.begin(), at.end(), bounds.terminator_query) ==
            at.end()) {
          at.push_back(bounds.terminator_query);
        }
      }
    }
    plans.push_back(std::move(plan));
  }

  // Pass 2: synthesize the chain queries per cluster.
  for (ClusterPlan& plan : plans) {
    const std::vector<GroupedWindow>& grouped = plan.grouped;
    std::map<double, int>& bound_query = plan.bound_query;
    std::map<double, std::vector<int>>& switch_exits = plan.switch_exits;

    // Carry INITIATEs for consumed terminating SWITCHes whose target
    // activation the chain rewrite would otherwise drop. `gates` must
    // contain a context that is active at the bound regardless of whether
    // the chain transition for this bound was already applied to the
    // current event (queries run in model order within a tick).
    auto add_switch_carries =
        [&](double bound, int copied_query,
            std::vector<std::string> gates) -> Status {
      auto it = switch_exits.find(bound);
      if (it == switch_exits.end()) return Status::Ok();
      for (int qi : it->second) {
        const Query& sw = model.query(qi);
        if (qi == copied_query) continue;  // target kept by the exit copy
        if (covering.count(sw.target_context) > 0) continue;  // in-cluster
        Query carry = sw;
        carry.name = sw.name + "_carry";
        carry.action = ContextAction::kInitiate;
        carry.contexts = gates;
        // The bound-defining copy at this bound already re-emits the
        // query's DERIVE clause (if that copy is this very query).
        if (qi == bound_query[bound]) carry.derive.reset();
        CAESAR_RETURN_IF_ERROR(rewritten.AddQuery(std::move(carry)).status());
      }
      return Status::Ok();
    };

    // Synthesize the new context deriving queries (Fig. 7 bottom).
    for (size_t w = 0; w < grouped.size(); ++w) {
      const GroupedWindow& window = grouped[w];
      // Entry bound.
      {
        const Query& original = model.query(bound_query[window.start_key]);
        Query entry = original;
        entry.name = "enter_" + window.name;
        entry.target_context = window.name;
        if (w == 0) {
          // First window: enters from the initiator's own contexts. Those
          // may themselves have been replaced by grouped windows of another
          // (or this) cluster; remap them.
          std::vector<std::string> contexts;
          for (const std::string& context : entry.contexts) {
            auto it = covering.find(context);
            if (it == covering.end()) {
              contexts.push_back(context);
            } else {
              contexts.insert(contexts.end(), it->second.begin(),
                              it->second.end());
            }
          }
          entry.contexts = DropDuplicates(std::move(contexts));
        } else {
          // Interior bound: switch from the previous grouped window.
          entry.action = ContextAction::kSwitch;
          entry.contexts = {grouped[w - 1].name};
        }
        CAESAR_RETURN_IF_ERROR(rewritten.AddQuery(std::move(entry)).status());
        if (w > 0) {
          // A consumed SWITCH landing on this interior bound lost its
          // target (the entry copy above was re-targeted at the chain), so
          // every switch at this bound needs a carry. Gate on both chain
          // neighbors: whichever side of the entry transition the current
          // event sees, one of them is active.
          CAESAR_RETURN_IF_ERROR(add_switch_carries(
              window.start_key, /*copied_query=*/-1,
              {grouped[w - 1].name, window.name}));
        }
      }
      // Exit bound of the last window (interior exits are the next
      // window's entry switch).
      if (w + 1 == grouped.size()) {
        const Query& original = model.query(bound_query[window.end_key]);
        // Carries first, while the window is still active for their gate.
        CAESAR_RETURN_IF_ERROR(add_switch_carries(
            window.end_key,
            original.action == ContextAction::kSwitch
                ? bound_query[window.end_key]
                : -1,
            {window.name}));
        Query exit = original;
        exit.name = "exit_" + window.name;
        exit.contexts = {window.name};
        if (original.action == ContextAction::kSwitch) {
          // e.g. switch back to clear; keep the target.
        } else {
          exit.action = ContextAction::kTerminate;
          exit.target_context = window.name;
        }
        CAESAR_RETURN_IF_ERROR(rewritten.AddQuery(std::move(exit)).status());
      }
    }
  }

  // 4. Re-home the remaining queries; share structurally identical ones
  // (the dropDuplicates step of Listing 1 applied across windows). Each
  // rehomed query tracks which *original* windows it served so its
  // context-history anchors can be computed after merging.
  struct Rehomed {
    Query query;
    std::vector<std::string> kept;          // non-replaced contexts
    std::set<std::string> originals;        // replaced original contexts
  };
  std::map<std::string, int> by_signature;  // signature -> rehomed index
  std::vector<Rehomed> rehomed;
  for (int qi = 0; qi < model.num_queries(); ++qi) {
    if (consumed_queries.count(qi) > 0) continue;
    Rehomed entry;
    entry.query = model.query(qi);
    for (const std::string& context : entry.query.contexts) {
      if (covering.count(context) > 0) {
        entry.originals.insert(context);
      } else {
        entry.kept.push_back(context);
      }
    }
    std::string signature = QuerySignature(entry.query);
    auto it = by_signature.find(signature);
    if (it != by_signature.end()) {
      Rehomed& existing = rehomed[it->second];
      existing.kept.insert(existing.kept.end(), entry.kept.begin(),
                           entry.kept.end());
      existing.originals.insert(entry.originals.begin(),
                                entry.originals.end());
      continue;
    }
    by_signature.emplace(signature, static_cast<int>(rehomed.size()));
    rehomed.push_back(std::move(entry));
  }

  for (Rehomed& entry : rehomed) {
    Query query = std::move(entry.query);
    query.contexts.clear();
    query.context_anchors.clear();
    for (const std::string& context : DropDuplicates(std::move(entry.kept))) {
      query.contexts.push_back(context);
      query.context_anchors.push_back(context);  // identity anchor
    }
    // Originals ordered by their start bound: the anchor of a grouped
    // window g is the first grouped window of the *oldest* original (of
    // this query) covering g — partial matches and complex events may span
    // back to that original's start, and no further.
    std::vector<std::string> ordered(entry.originals.begin(),
                                     entry.originals.end());
    std::sort(ordered.begin(), ordered.end(),
              [&](const std::string& a, const std::string& b) {
                return groupable[a].start_key < groupable[b].start_key;
              });
    std::set<std::string> added;
    for (const std::string& original : ordered) {
      for (const std::string& group : covering[original]) {
        if (!added.insert(group).second) continue;
        std::string anchor = group;
        for (const std::string& candidate : ordered) {
          const std::vector<std::string>& groups = covering[candidate];
          if (std::find(groups.begin(), groups.end(), group) != groups.end()) {
            anchor = groups.front();
            break;
          }
        }
        query.contexts.push_back(group);
        query.context_anchors.push_back(anchor);
      }
    }
    CAESAR_RETURN_IF_ERROR(rewritten.AddQuery(std::move(query)).status());
  }
  CAESAR_RETURN_IF_ERROR(rewritten.Normalize());
  return rewritten;
}

}  // namespace caesar
