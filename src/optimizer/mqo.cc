#include "optimizer/mqo.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "common/logging.h"
#include "common/stopwatch.h"

namespace caesar {

namespace {

// Expected fraction of time a single context is active (independent
// contexts). A group spanning several contexts must run whenever any of
// them is active — the term that makes one all-encompassing group
// suboptimal ("this would forfeit the purpose of being context-aware").
constexpr double kContextActivity = 0.3;

double UnionActivity(const std::set<int>& contexts) {
  double inactive = 1.0;
  for (size_t i = 0; i < contexts.size(); ++i) {
    inactive *= (1.0 - kContextActivity);
  }
  return 1.0 - inactive;
}

// Distinct operators of a set of queries (shared ids merged — the sharing
// benefit), plus the contexts the group spans.
void CollectGroup(const MqoWorkload& workload, uint64_t query_mask,
                  std::vector<LogicalOp>* ops, std::set<int>* contexts) {
  std::set<int> seen;
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    if (((query_mask >> q) & 1) == 0) continue;
    contexts->insert(workload.queries[q].context);
    for (const LogicalOp& op : workload.queries[q].ops) {
      if (seen.insert(op.id).second) ops->push_back(op);
    }
  }
}

// Cost of executing `ops` in the given order: sum of cost_i scaled by the
// product of upstream selectivities.
double OrderingCost(const std::vector<LogicalOp>& ops) {
  double cost = 0.0;
  double rate = 1.0;
  for (const LogicalOp& op : ops) {
    cost += rate * op.cost;
    rate *= op.selectivity;
  }
  return cost;
}

// Subset-DP optimal ordering cost over commuting operators. O(2^k * k).
double OptimalOrderingCost(std::vector<LogicalOp> ops, uint64_t* candidates) {
  int k = static_cast<int>(ops.size());
  CAESAR_CHECK_LE(k, 26) << "operator set too large for subset DP";
  size_t states = size_t{1} << k;
  // rate[S] = product of selectivities of ops in S.
  std::vector<double> rate(states, 1.0);
  for (size_t s = 1; s < states; ++s) {
    int lowest = __builtin_ctzll(s);
    rate[s] = rate[s & (s - 1)] * ops[lowest].selectivity;
  }
  std::vector<double> best(states, 0.0);
  for (size_t s = 1; s < states; ++s) {
    double value = 1e300;
    for (int o = 0; o < k; ++o) {
      if (((s >> o) & 1) == 0) continue;
      size_t prev = s & ~(size_t{1} << o);
      // Op o runs last within S: it sees the output of prev.
      double candidate = best[prev] + rate[prev] * ops[o].cost;
      value = std::min(value, candidate);
      ++*candidates;
    }
    best[s] = value;
  }
  return best[states - 1];
}

// Greedy rank ordering (optimal for independent commuting filters):
// ascending cost / (1 - selectivity).
double GreedyOrderingCost(std::vector<LogicalOp> ops, uint64_t* candidates) {
  std::sort(ops.begin(), ops.end(), [](const LogicalOp& a, const LogicalOp& b) {
    double ra = a.cost / std::max(1e-9, 1.0 - a.selectivity);
    double rb = b.cost / std::max(1e-9, 1.0 - b.selectivity);
    return ra < rb;
  });
  *candidates += ops.size();
  return OrderingCost(ops);
}

}  // namespace

int MqoWorkload::total_operators() const {
  int total = 0;
  for (const LogicalQuery& query : queries) {
    total += static_cast<int>(query.ops.size());
  }
  return total;
}

MqoWorkload MakeSyntheticWorkload(int num_operators, int ops_per_query,
                                  int num_contexts, double sharing, Rng* rng) {
  CAESAR_CHECK_GT(ops_per_query, 0);
  MqoWorkload workload;
  int num_queries = (num_operators + ops_per_query - 1) / ops_per_query;
  int next_id = 0;
  int emitted = 0;
  for (int q = 0; q < num_queries; ++q) {
    LogicalQuery query;
    query.context = q % std::max(1, num_contexts);
    for (int o = 0; o < ops_per_query && emitted < num_operators; ++o) {
      LogicalOp op;
      // Share an operator with the previous query with probability
      // `sharing` (same id => merged when grouped together).
      if (q > 0 && o < static_cast<int>(workload.queries[q - 1].ops.size()) &&
          rng->Bernoulli(sharing)) {
        op = workload.queries[q - 1].ops[o];
      } else {
        op.id = next_id++;
        op.cost = rng->UniformReal(0.5, 2.0);
        op.selectivity = rng->UniformReal(0.2, 0.9);
      }
      query.ops.push_back(op);
      ++emitted;
    }
    workload.queries.push_back(std::move(query));
  }
  return workload;
}

MqoSearchResult ExhaustiveSearch(const MqoWorkload& workload) {
  MqoSearchResult result;
  Stopwatch watch;
  int n = static_cast<int>(workload.queries.size());
  CAESAR_CHECK_LE(n, 16) << "exhaustive search capped at 16 queries";

  // Group cost memo by query-subset mask.
  std::map<uint64_t, double> group_cost;
  auto cost_of_group = [&](uint64_t mask) {
    auto it = group_cost.find(mask);
    if (it != group_cost.end()) return it->second;
    std::vector<LogicalOp> ops;
    std::set<int> contexts;
    CollectGroup(workload, mask, &ops, &contexts);
    double cost = UnionActivity(contexts) *
                  OptimalOrderingCost(std::move(ops), &result.candidates);
    group_cost.emplace(mask, cost);
    return cost;
  };

  // Enumerate set partitions via restricted-growth assignment.
  double best_cost = 1e300;
  int best_groups = 0;
  std::vector<uint64_t> groups;  // masks of current groups
  std::function<void(int)> recurse = [&](int q) {
    if (q == n) {
      ++result.candidates;
      double total = 0.0;
      for (uint64_t mask : groups) total += cost_of_group(mask);
      if (total < best_cost) {
        best_cost = total;
        best_groups = static_cast<int>(groups.size());
      }
      return;
    }
    for (size_t g = 0; g < groups.size(); ++g) {
      groups[g] |= uint64_t{1} << q;
      recurse(q + 1);
      groups[g] &= ~(uint64_t{1} << q);
    }
    groups.push_back(uint64_t{1} << q);
    recurse(q + 1);
    groups.pop_back();
  };
  recurse(0);

  result.plan_cost = best_cost;
  result.num_groups = best_groups;
  result.seconds = watch.ElapsedSeconds();
  return result;
}

MqoSearchResult GreedySearch(const MqoWorkload& workload) {
  MqoSearchResult result;
  Stopwatch watch;

  // Groups are given by the (grouped, non-overlapping) context windows.
  std::map<int, uint64_t> by_context;
  for (size_t q = 0; q < workload.queries.size(); ++q) {
    by_context[workload.queries[q].context] |= uint64_t{1} << q;
  }
  double total = 0.0;
  for (const auto& [context, mask] : by_context) {
    std::vector<LogicalOp> ops;
    std::set<int> contexts;
    CollectGroup(workload, mask, &ops, &contexts);
    total += UnionActivity(contexts) *
             GreedyOrderingCost(std::move(ops), &result.candidates);
  }
  result.plan_cost = total;
  result.num_groups = static_cast<int>(by_context.size());
  result.seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace caesar
