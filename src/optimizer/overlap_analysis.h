// Compile-time context-window relationship analysis (Definition 2):
// "context windows of type c1 and c2 are *guaranteed to overlap* if, based
// on the predicates of the respective context deriving queries, it can be
// determined that for each window of type c1 there is a window of type c2
// with w_c1.start within w_c2; if in addition w_c1.end within w_c2 can be
// determined, a window of type c1 is *contained* in a window of type c2."
//
// The analysis extracts, per context, its single initiating and terminating
// deriving query and their threshold predicates (the setting of Fig. 7);
// under the monotone-signal reading the thresholds order the window bounds,
// giving each context an interval in bound space. Contexts whose bounds are
// not analyzable are omitted (callers treat them as unrelated).
//
// This module is the "established approaches for predicate subsumption"
// hook of Section 3.3; the window grouping transform (window_grouping.h)
// builds on the same extraction.

#ifndef CAESAR_OPTIMIZER_OVERLAP_ANALYSIS_H_
#define CAESAR_OPTIMIZER_OVERLAP_ANALYSIS_H_

#include <string>
#include <vector>

#include "query/model.h"

namespace caesar {

// Analyzable bounds of one context's windows.
struct WindowBounds {
  std::string context;
  int initiator_query = -1;   // INITIATE/SWITCH targeting the context
  int terminator_query = -1;  // TERMINATE, or SWITCH away from it
  double start_key = 0.0;     // threshold of the initiating predicate
  double end_key = 0.0;       // threshold of the terminating predicate
  std::string bound_attr;     // "var.attr" the thresholds share
};

// Extracts analyzable bounds for every non-default context that has exactly
// one initiator and one terminator with single-threshold predicates on a
// shared attribute and start < end. Non-analyzable contexts are skipped.
std::vector<WindowBounds> ExtractWindowBounds(const CaesarModel& model);

// Relationship between two analyzable windows (Definition 2).
enum class WindowRelation {
  kUnknown,      // different bound attributes: not comparable
  kDisjoint,     // the windows never coexist
  kOverlaps,     // guaranteed overlap, neither contains the other
  kContains,     // every window of `b` lies within a window of `a`
  kContainedIn,  // every window of `a` lies within a window of `b`
  kEqual,        // identical bounds
};

const char* WindowRelationName(WindowRelation relation);

WindowRelation Relate(const WindowBounds& a, const WindowBounds& b);

// Definition 2 stated directly on the deriving predicates: true if
// `inner`'s activation provably implies that `outer` is active (the
// initiating condition of `inner` implies the condition region of `outer`).
// Uses PredicateSummary implication; conservative (false on doubt).
bool GuaranteedOverlap(const CaesarModel& model, const WindowBounds& inner,
                       const WindowBounds& outer);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_OVERLAP_ANALYSIS_H_
