// CPU cost estimation for query chains (Section 5.1).
//
// Chain cost accumulates bottom-up: each operator contributes
// (incoming rate) * (unit cost), and scales the rate by its selectivity.
// The context window operator costs a constant probe; crucially, when it
// sits at the *bottom* of a chain the executor skips the whole chain while
// the context is inactive, so everything above it is weighted by the
// expected fraction of time the context is active. This asymmetry is
// exactly Theorem 1: the bottom position minimizes expected cost.

#ifndef CAESAR_OPTIMIZER_COST_MODEL_H_
#define CAESAR_OPTIMIZER_COST_MODEL_H_

#include "plan/plan.h"

namespace caesar {

// Cost-model parameters.
struct CostModelParams {
  // Expected fraction of time the chain's context windows are active.
  double context_activity = 0.5;
  // Constant cost of the context-window probe.
  double cw_probe_cost = 0.01;
};

// Expected cost of one chain per input event.
double EstimateChainCost(const OpChain& chain, const CostModelParams& params);

// Expected cost of a whole plan per input event (guards included).
double EstimatePlanCost(const ExecutablePlan& plan,
                        const CostModelParams& params);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_COST_MODEL_H_
