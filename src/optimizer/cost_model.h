// CPU cost estimation for query chains (Section 5.1).
//
// Chain cost accumulates bottom-up: each operator contributes
// (incoming rate) * (unit cost), and scales the rate by its selectivity.
// The context window operator costs a constant probe; crucially, when it
// sits at the *bottom* of a chain the executor skips the whole chain while
// the context is inactive, so everything above it is weighted by the
// expected fraction of time the context is active. This asymmetry is
// exactly Theorem 1: the bottom position minimizes expected cost.

#ifndef CAESAR_OPTIMIZER_COST_MODEL_H_
#define CAESAR_OPTIMIZER_COST_MODEL_H_

#include "plan/plan.h"

namespace caesar {

class CompiledExpr;

// Cost-model parameters.
struct CostModelParams {
  // Expected fraction of time the chain's context windows are active.
  double context_activity = 0.5;
  // Constant cost of the context-window probe.
  double cw_probe_cost = 0.01;
};

// Expected cost of one chain per input event.
double EstimateChainCost(const OpChain& chain, const CostModelParams& params);

// Expected cost of a whole plan per input event (guards included).
double EstimatePlanCost(const ExecutablePlan& plan,
                        const CostModelParams& params);

// ---- Per-predicate estimates (pattern compiler, compile/) -------------
//
// The compiler orders a transition's predicate closures by estimated cost
// per unit of rejection; these are the static estimates behind that rank
// (calibration.h supplies observed values once a plan has run).

// Evaluation cost in evaluator nodes.
double EstimatePredicateCost(const CompiledExpr& expr);

// Pass-probability heuristic from the expression shape: equality is
// selective (0.1), inequality barely filters (0.9), orderings are even
// odds; AND multiplies, OR unions.
double EstimatePredicateSelectivity(const CompiledExpr& expr);

// Replaces the shape heuristic with the abstract interpreter's
// satisfiable-fraction bound (analysis/absint.h): the fraction of the
// incoming fact region a guard's thresholds keep. Clamped away from 0 and
// 1 — a provably-false guard kills the transition and a provably-true one
// is pruned before ranking, so an estimate at the extremes is stale
// information, and rank() needs a nonzero rejection probability.
double RefineSelectivityFromFacts(double fraction);

}  // namespace caesar

#endif  // CAESAR_OPTIMIZER_COST_MODEL_H_
