// Status and Result<T>: error handling without exceptions.
//
// Library code in CAESAR never throws. Fallible operations return a Status
// (or a Result<T> when they also produce a value). Programming errors are
// caught with CAESAR_CHECK (common/logging.h) which aborts.

#ifndef CAESAR_COMMON_STATUS_H_
#define CAESAR_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace caesar {

// Canonical error space, loosely modeled on absl::StatusCode.
enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kDataLoss,  // durable artifact unreadable or failed its checksum
};

// Returns a human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

// A Status holds either success (ok) or an error code plus message.
class Status {
 public:
  // Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Result<T> holds either a value of type T or a non-ok Status.
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}   // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  // Requires ok(). The value accessors abort on misuse (programming error).
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  // Returns the error if !ok(), otherwise an OK status.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

}  // namespace caesar

// Propagates a non-ok Status from an expression.
#define CAESAR_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::caesar::Status caesar_status_ = (expr);       \
    if (!caesar_status_.ok()) return caesar_status_; \
  } while (false)

// Evaluates a Result<T> expression; on error propagates the Status,
// otherwise assigns the value to `lhs`.
#define CAESAR_INTERNAL_CONCAT_IMPL(a, b) a##b
#define CAESAR_INTERNAL_CONCAT(a, b) CAESAR_INTERNAL_CONCAT_IMPL(a, b)
#define CAESAR_ASSIGN_OR_RETURN(lhs, expr) \
  CAESAR_ASSIGN_OR_RETURN_IMPL(CAESAR_INTERNAL_CONCAT(caesar_result_, __LINE__), lhs, expr)
#define CAESAR_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // CAESAR_COMMON_STATUS_H_
