#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"

namespace caesar {

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::string RunningStats::ToString() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " min=" << min()
     << " max=" << max();
  return os.str();
}

Histogram::Histogram(double lo, double hi, int num_buckets)
    : lo_(lo), hi_(hi) {
  // Validate before the width division: a zero bucket count must hit the
  // CHECK, not a divide-by-zero.
  CAESAR_CHECK_GT(num_buckets, 0);
  CAESAR_CHECK_LT(lo, hi);
  width_ = (hi - lo) / num_buckets;
  buckets_.resize(num_buckets);
}

void Histogram::Add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    int i = static_cast<int>((x - lo_) / width_);
    i = std::min(i, num_buckets() - 1);
    ++buckets_[i];
  }
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return 0.0;
  int64_t target = static_cast<int64_t>(std::ceil(q * total_));
  target = std::max<int64_t>(target, 1);
  int64_t seen = underflow_;
  if (seen >= target) return lo_;
  for (int i = 0; i < num_buckets(); ++i) {
    seen += buckets_[i];
    if (seen >= target) return lo_ + (i + 0.5) * width_;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  os << "Histogram[" << lo_ << ", " << hi_ << ") total=" << total_
     << " under=" << underflow_ << " over=" << overflow_ << "\n";
  for (int i = 0; i < num_buckets(); ++i) {
    os << "  [" << lo_ + i * width_ << ", " << lo_ + (i + 1) * width_
       << "): " << buckets_[i] << "\n";
  }
  return os.str();
}

}  // namespace caesar
