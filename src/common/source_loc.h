// A 1-based line:column position in model/query source text. Default
// constructed (line 0) means "no location" — models built programmatically
// carry no spans, and diagnostics render without a position prefix.

#ifndef CAESAR_COMMON_SOURCE_LOC_H_
#define CAESAR_COMMON_SOURCE_LOC_H_

#include <string>

namespace caesar {

struct SourceLoc {
  int line = 0;  // 1-based; 0 = unknown
  int col = 0;   // 1-based; 0 = unknown

  bool valid() const { return line > 0; }

  // "3:14", or "" when unknown.
  std::string ToString() const {
    if (!valid()) return std::string();
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

inline bool operator==(const SourceLoc& a, const SourceLoc& b) {
  return a.line == b.line && a.col == b.col;
}

}  // namespace caesar

#endif  // CAESAR_COMMON_SOURCE_LOC_H_
