// Wall-clock stopwatch used by the runtime to measure per-batch processing
// cost and by the benchmark harness.

#ifndef CAESAR_COMMON_STOPWATCH_H_
#define CAESAR_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace caesar {

// Measures elapsed wall time with steady_clock. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace caesar

#endif  // CAESAR_COMMON_STOPWATCH_H_
