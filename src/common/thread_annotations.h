// Clang thread-safety analysis macros (abseil style). Under clang with
// -Wthread-safety these expand to the analysis attributes; under any
// other compiler they expand to nothing, so annotated headers stay
// portable. CI builds the tree once with clang and -Werror=thread-safety
// to enforce the contracts.
//
// Usage:
//   std::mutex mu_;
//   int count_ CAESAR_GUARDED_BY(mu_);           // reads/writes need mu_
//   void Drain() CAESAR_REQUIRES(mu_);           // caller must hold mu_
//   void Stop() CAESAR_LOCKS_EXCLUDED(mu_);      // caller must NOT hold mu_
#ifndef CAESAR_COMMON_THREAD_ANNOTATIONS_H_
#define CAESAR_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define CAESAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define CAESAR_THREAD_ANNOTATION(x)
#endif

// On a mutex-like class: participates in capability analysis.
#define CAESAR_CAPABILITY(x) CAESAR_THREAD_ANNOTATION(capability(x))

// On an RAII guard class: acquires its capability on construction and
// releases it on destruction.
#define CAESAR_SCOPED_CAPABILITY CAESAR_THREAD_ANNOTATION(scoped_lockable)

// On a data member: may only be accessed while holding the given mutex.
#define CAESAR_GUARDED_BY(x) CAESAR_THREAD_ANNOTATION(guarded_by(x))

// On a pointer member: the pointee (not the pointer) is guarded.
#define CAESAR_PT_GUARDED_BY(x) CAESAR_THREAD_ANNOTATION(pt_guarded_by(x))

// On a function: the caller must hold the given mutex(es).
#define CAESAR_REQUIRES(...) \
  CAESAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

// On a function: acquires / releases the given mutex(es).
#define CAESAR_ACQUIRE(...) \
  CAESAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define CAESAR_RELEASE(...) \
  CAESAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a function: the caller must NOT hold the given mutex(es).
#define CAESAR_LOCKS_EXCLUDED(...) \
  CAESAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Escape hatch for code the analysis cannot model (e.g. the executor's
// epoch-barrier handoff). Use sparingly and justify at each site.
#define CAESAR_NO_THREAD_SAFETY_ANALYSIS \
  CAESAR_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // CAESAR_COMMON_THREAD_ANNOTATIONS_H_
