// Streaming statistics utilities: running moments, fixed-bucket histograms,
// and the latency tracker the experiments report from.

#ifndef CAESAR_COMMON_STATS_H_
#define CAESAR_COMMON_STATS_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace caesar {

// Count / mean / min / max over a stream of doubles in O(1) space.
class RunningStats {
 public:
  void Add(double x) {
    ++count_;
    sum_ += x;
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void Merge(const RunningStats& other);

  // "count=N mean=M min=L max=H" one-liner for reports.
  std::string ToString() const;

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

 private:
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Histogram over [lo, hi) with `num_buckets` equal-width buckets plus
// underflow/overflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, int num_buckets);

  void Add(double x);

  int64_t bucket_count(int i) const { return buckets_[i]; }
  int num_buckets() const { return static_cast<int>(buckets_.size()); }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return total_; }

  // Approximate quantile (q in [0, 1]) from bucket midpoints.
  double Quantile(double q) const;

  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_ = 0.0;
  std::vector<int64_t> buckets_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  int64_t total_ = 0;
};

// Tracks end-to-end latencies (seconds) of derived complex events; the
// paper's headline metric is the maximum.
class LatencyTracker {
 public:
  void Record(double latency_seconds) { stats_.Add(latency_seconds); }

  double max_latency() const { return stats_.max(); }
  double mean_latency() const { return stats_.mean(); }
  int64_t count() const { return stats_.count(); }

 private:
  RunningStats stats_;
};

}  // namespace caesar

#endif  // CAESAR_COMMON_STATS_H_
