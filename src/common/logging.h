// Minimal logging and assertion macros used throughout CAESAR.
//
// CAESAR_CHECK* abort the process on violated invariants (programming
// errors); recoverable failures are reported via Status (common/status.h).

#ifndef CAESAR_COMMON_LOGGING_H_
#define CAESAR_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace caesar {
namespace internal {

enum class LogSeverity { kInfo, kWarning, kError, kFatal };

// Accumulates a message and emits it to stderr on destruction; aborts the
// process for kFatal messages.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line)
      : severity_(severity) {
    stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
            << "] ";
  }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (severity_ == LogSeverity::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* SeverityName(LogSeverity severity) {
    switch (severity) {
      case LogSeverity::kInfo:
        return "INFO";
      case LogSeverity::kWarning:
        return "WARN";
      case LogSeverity::kError:
        return "ERROR";
      case LogSeverity::kFatal:
        return "FATAL";
    }
    return "?";
  }

  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace caesar

#define CAESAR_LOG_INFO                                             \
  ::caesar::internal::LogMessage(::caesar::internal::LogSeverity::kInfo, \
                                 __FILE__, __LINE__)                \
      .stream()
#define CAESAR_LOG_WARNING                                             \
  ::caesar::internal::LogMessage(::caesar::internal::LogSeverity::kWarning, \
                                 __FILE__, __LINE__)                   \
      .stream()
#define CAESAR_LOG_ERROR                                             \
  ::caesar::internal::LogMessage(::caesar::internal::LogSeverity::kError, \
                                 __FILE__, __LINE__)                 \
      .stream()
#define CAESAR_LOG_FATAL                                             \
  ::caesar::internal::LogMessage(::caesar::internal::LogSeverity::kFatal, \
                                 __FILE__, __LINE__)                 \
      .stream()

// Aborts with a message when `condition` is false.
#define CAESAR_CHECK(condition)                                  \
  if (!(condition)) CAESAR_LOG_FATAL << "Check failed: " #condition " "

#define CAESAR_CHECK_EQ(a, b) CAESAR_CHECK((a) == (b))
#define CAESAR_CHECK_NE(a, b) CAESAR_CHECK((a) != (b))
#define CAESAR_CHECK_LT(a, b) CAESAR_CHECK((a) < (b))
#define CAESAR_CHECK_LE(a, b) CAESAR_CHECK((a) <= (b))
#define CAESAR_CHECK_GT(a, b) CAESAR_CHECK((a) > (b))
#define CAESAR_CHECK_GE(a, b) CAESAR_CHECK((a) >= (b))

// Aborts when a Status-returning expression fails.
#define CAESAR_CHECK_OK(expr)                                   \
  do {                                                          \
    ::caesar::Status caesar_check_status_ = (expr);             \
    if (!caesar_check_status_.ok())                             \
      CAESAR_LOG_FATAL << "Status not OK: "                     \
                       << caesar_check_status_.ToString();      \
  } while (false)

#endif  // CAESAR_COMMON_LOGGING_H_
