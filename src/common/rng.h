// Deterministic pseudo-random number generation for workload generators and
// property tests. All CAESAR generators are seeded so experiments reproduce
// bit-identically across runs.

#ifndef CAESAR_COMMON_RNG_H_
#define CAESAR_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace caesar {

// Thin wrapper around std::mt19937_64 with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Uniform double in [lo, hi).
  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(engine_);
  }

  // Poisson draw with the given mean.
  int64_t Poisson(double mean) {
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  // Normal draw.
  double Normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace caesar

#endif  // CAESAR_COMMON_RNG_H_
