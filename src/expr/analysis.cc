#include "expr/analysis.h"

#include <cmath>
#include <sstream>

namespace caesar {

namespace {

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind() == Expr::Kind::kBinary) {
    const auto& binary = static_cast<const BinaryExpr&>(*expr);
    if (binary.op() == BinaryOp::kAnd) {
      CollectConjuncts(binary.left(), out);
      CollectConjuncts(binary.right(), out);
      return;
    }
  }
  out->push_back(expr);
}

// Returns the numeric value of a constant expression, if it is one.
std::optional<double> NumericConstant(const ExprPtr& expr) {
  if (expr->kind() != Expr::Kind::kConstant) return std::nullopt;
  const Value& value = static_cast<const ConstantExpr&>(*expr).value();
  if (!value.is_numeric()) return std::nullopt;
  return value.ToDouble();
}

}  // namespace

std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr) {
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(expr, &conjuncts);
  return conjuncts;
}

bool Interval::IsEmpty() const {
  if (lo > hi) return true;
  if (lo == hi && (lo_open || hi_open)) return true;
  return false;
}

bool Interval::ContainedIn(const Interval& other) const {
  if (IsEmpty()) return true;
  bool lo_ok =
      lo > other.lo || (lo == other.lo && (other.lo_open ? lo_open : true));
  bool hi_ok =
      hi < other.hi || (hi == other.hi && (other.hi_open ? hi_open : true));
  return lo_ok && hi_ok;
}

void Interval::IntersectWith(const Interval& other) {
  if (other.lo > lo || (other.lo == lo && other.lo_open)) {
    lo = other.lo;
    lo_open = other.lo_open;
  }
  if (other.hi < hi || (other.hi == hi && other.hi_open)) {
    hi = other.hi;
    hi_open = other.hi_open;
  }
}

std::string Interval::ToString() const {
  std::ostringstream os;
  os << (lo_open ? "(" : "[") << lo << ", " << hi << (hi_open ? ")" : "]");
  return os.str();
}

Interval AttrConstraint::ToInterval() const {
  Interval interval;
  switch (op) {
    case BinaryOp::kEq:
      interval.lo = interval.hi = value;
      break;
    case BinaryOp::kLt:
      interval.hi = value;
      interval.hi_open = true;
      break;
    case BinaryOp::kLe:
      interval.hi = value;
      break;
    case BinaryOp::kGt:
      interval.lo = value;
      interval.lo_open = true;
      break;
    case BinaryOp::kGe:
      interval.lo = value;
      break;
    default:
      break;  // kNe and others map to the unbounded interval.
  }
  return interval;
}

std::optional<AttrConstraint> ExtractConstraint(const ExprPtr& conjunct) {
  if (conjunct == nullptr || conjunct->kind() != Expr::Kind::kBinary) {
    return std::nullopt;
  }
  const auto& binary = static_cast<const BinaryExpr&>(*conjunct);
  if (!IsComparison(binary.op()) || binary.op() == BinaryOp::kNe) {
    return std::nullopt;
  }

  const ExprPtr* attr_side = nullptr;
  const ExprPtr* const_side = nullptr;
  BinaryOp op = binary.op();
  if (binary.left()->kind() == Expr::Kind::kAttrRef) {
    attr_side = &binary.left();
    const_side = &binary.right();
  } else if (binary.right()->kind() == Expr::Kind::kAttrRef) {
    attr_side = &binary.right();
    const_side = &binary.left();
    op = MirrorComparison(op);
  } else {
    return std::nullopt;
  }
  std::optional<double> constant = NumericConstant(*const_side);
  if (!constant.has_value()) return std::nullopt;

  const auto& attr = static_cast<const AttrRefExpr&>(**attr_side);
  AttrConstraint constraint;
  constraint.variable = attr.variable();
  constraint.attribute = attr.attribute();
  constraint.op = op;
  constraint.value = *constant;
  return constraint;
}

PredicateSummary PredicateSummary::FromExpr(const ExprPtr& expr) {
  PredicateSummary summary;
  if (expr == nullptr) return summary;  // empty == always true
  for (const ExprPtr& conjunct : SplitConjuncts(expr)) {
    std::optional<AttrConstraint> constraint = ExtractConstraint(conjunct);
    if (!constraint.has_value()) {
      summary.exact_ = false;
      continue;
    }
    auto key = std::make_pair(constraint->variable, constraint->attribute);
    auto [it, inserted] =
        summary.intervals_.emplace(key, constraint->ToInterval());
    if (!inserted) it->second.IntersectWith(constraint->ToInterval());
  }
  return summary;
}

Interval PredicateSummary::GetInterval(const std::string& variable,
                                       const std::string& attribute) const {
  auto it = intervals_.find(std::make_pair(variable, attribute));
  if (it == intervals_.end()) return Interval();
  return it->second;
}

bool Implies(const PredicateSummary& p, const PredicateSummary& q) {
  // p => q iff the satisfying set of p is contained in that of q. We can
  // only prove this when p's summary captures p exactly; q's summary being
  // inexact only makes q's true satisfying set *smaller* than its summary,
  // so q must also be exact.
  if (!p.exact() || !q.exact()) return false;
  for (const auto& [key, q_interval] : q.intervals()) {
    Interval p_interval = p.GetInterval(key.first, key.second);
    if (!p_interval.ContainedIn(q_interval)) return false;
  }
  return true;
}

BoundOrder CompareBoundOrder(const ExprPtr& a, const ExprPtr& b) {
  std::vector<ExprPtr> a_conjuncts = SplitConjuncts(a);
  std::vector<ExprPtr> b_conjuncts = SplitConjuncts(b);
  if (a_conjuncts.size() != 1 || b_conjuncts.size() != 1) {
    return BoundOrder::kUnknown;
  }
  std::optional<AttrConstraint> ca = ExtractConstraint(a_conjuncts[0]);
  std::optional<AttrConstraint> cb = ExtractConstraint(b_conjuncts[0]);
  if (!ca.has_value() || !cb.has_value()) return BoundOrder::kUnknown;
  if (ca->variable != cb->variable || ca->attribute != cb->attribute) {
    return BoundOrder::kUnknown;
  }
  if (ca->value < cb->value) return BoundOrder::kBefore;
  if (ca->value > cb->value) return BoundOrder::kAfter;
  return BoundOrder::kEqual;
}

}  // namespace caesar
