// Tokenizer shared by the expression parser and the CAESAR query language
// parser. The token set covers the full grammar of Fig. 4 in the paper.

#ifndef CAESAR_EXPR_LEXER_H_
#define CAESAR_EXPR_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/source_loc.h"
#include "common/status.h"

namespace caesar {

enum class TokenKind : int8_t {
  kEnd,
  kIdentifier,  // names, keywords (keyword detection is case-insensitive)
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,  // single- or double-quoted
  kLParen,
  kRParen,
  kComma,
  kDot,
  kSemicolon,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kEq,    // =
  kNe,    // != or <> or ≠ (UTF-8)
  kLt,    // <
  kLe,    // <= or ≤
  kGt,    // >
  kGe,    // >= or ≥
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     // identifier / literal spelling (unquoted for strings)
  int64_t int_value = 0;
  double double_value = 0.0;
  int position = 0;     // byte offset in the input
  SourceLoc loc;        // 1-based line:col of the token start

  // Case-insensitive keyword match for identifier tokens.
  bool IsKeyword(std::string_view keyword) const;
};

// Tokenizes `input`; returns a vector terminated by a kEnd token, or a
// ParseError for malformed input (unterminated string, stray character).
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace caesar

#endif  // CAESAR_EXPR_LEXER_H_
