#include "expr/lexer.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace caesar {

namespace {

// Maps byte offsets to 1-based line:col against a precomputed table of
// line-start offsets. The table is sorted, so a linear scan kept in step
// with the (monotonically advancing) lexer cursor would do; binary search
// keeps the helper usable for arbitrary offsets.
SourceLoc LocAt(const std::vector<size_t>& line_starts, size_t offset) {
  size_t lo = 0, hi = line_starts.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (line_starts[mid] <= offset) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  SourceLoc loc;
  loc.line = static_cast<int>(lo + 1);
  loc.col = static_cast<int>(offset - line_starts[lo] + 1);
  return loc;
}

std::vector<size_t> BuildLineStarts(std::string_view input) {
  std::vector<size_t> starts = {0};
  for (size_t i = 0; i < input.size(); ++i) {
    if (input[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Matches a UTF-8 encoded comparison glyph (≠ ≤ ≥) at input[i]; the paper's
// example queries use them. Returns the matched token kind or kEnd.
TokenKind MatchUtf8Comparison(std::string_view input, size_t i,
                              size_t* length) {
  // ≠ = E2 89 A0, ≤ = E2 89 A4, ≥ = E2 89 A5.
  if (i + 2 < input.size() && static_cast<unsigned char>(input[i]) == 0xE2 &&
      static_cast<unsigned char>(input[i + 1]) == 0x89) {
    unsigned char third = static_cast<unsigned char>(input[i + 2]);
    *length = 3;
    if (third == 0xA0) return TokenKind::kNe;
    if (third == 0xA4) return TokenKind::kLe;
    if (third == 0xA5) return TokenKind::kGe;
  }
  *length = 0;
  return TokenKind::kEnd;
}

}  // namespace

bool Token::IsKeyword(std::string_view keyword) const {
  if (kind != TokenKind::kIdentifier) return false;
  if (text.size() != keyword.size()) return false;
  for (size_t i = 0; i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(keyword[i]))) {
      return false;
    }
  }
  return true;
}

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  const std::vector<size_t> line_starts = BuildLineStarts(input);
  size_t i = 0;
  auto push = [&](TokenKind kind, size_t position, std::string text = "") {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.position = static_cast<int>(position);
    token.loc = LocAt(line_starts, position);
    tokens.push_back(std::move(token));
  };
  auto error = [&](const std::string& message, size_t position) {
    return Status::ParseError(message + " at " +
                              LocAt(line_starts, position).ToString());
  };

  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: "--" or "//" to end of line.
    if (i + 1 < input.size() &&
        ((c == '-' && input[i + 1] == '-') ||
         (c == '/' && input[i + 1] == '/'))) {
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (IsIdentStart(c)) {
      while (i < input.size() && IsIdentChar(input[i])) ++i;
      push(TokenKind::kIdentifier, start,
           std::string(input.substr(start, i - start)));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (i < input.size() &&
             std::isdigit(static_cast<unsigned char>(input[i]))) {
        ++i;
      }
      bool is_double = false;
      if (i + 1 < input.size() && input[i] == '.' &&
          std::isdigit(static_cast<unsigned char>(input[i + 1]))) {
        is_double = true;
        ++i;
        while (i < input.size() &&
               std::isdigit(static_cast<unsigned char>(input[i]))) {
          ++i;
        }
      }
      std::string text(input.substr(start, i - start));
      Token token;
      token.position = static_cast<int>(start);
      token.loc = LocAt(line_starts, start);
      token.text = text;
      // strtoll/strtod instead of std::stoll/stod: the library reports
      // malformed input through Status, never by throwing, and out-of-range
      // literals must follow suit.
      errno = 0;
      if (is_double) {
        token.kind = TokenKind::kDoubleLiteral;
        token.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        token.kind = TokenKind::kIntLiteral;
        token.int_value = std::strtoll(text.c_str(), nullptr, 10);
      }
      if (errno == ERANGE) {
        return error("numeric literal out of range", start);
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string text;
      while (i < input.size() && input[i] != quote) {
        text += input[i];
        ++i;
      }
      if (i >= input.size()) {
        return error("unterminated string literal", start);
      }
      ++i;  // closing quote
      Token token;
      token.kind = TokenKind::kStringLiteral;
      token.text = std::move(text);
      token.position = static_cast<int>(start);
      token.loc = LocAt(line_starts, start);
      tokens.push_back(std::move(token));
      continue;
    }
    size_t utf8_len = 0;
    TokenKind utf8_kind = MatchUtf8Comparison(input, i, &utf8_len);
    if (utf8_len > 0) {
      push(utf8_kind, start);
      i += utf8_len;
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < input.size() && input[i + 1] == second;
    };
    switch (c) {
      case '(': push(TokenKind::kLParen, start); ++i; break;
      case ')': push(TokenKind::kRParen, start); ++i; break;
      case ',': push(TokenKind::kComma, start); ++i; break;
      case '.': push(TokenKind::kDot, start); ++i; break;
      case ';': push(TokenKind::kSemicolon, start); ++i; break;
      case '+': push(TokenKind::kPlus, start); ++i; break;
      case '-': push(TokenKind::kMinus, start); ++i; break;
      case '*': push(TokenKind::kStar, start); ++i; break;
      case '/': push(TokenKind::kSlash, start); ++i; break;
      case '=':
        if (two('=')) { push(TokenKind::kEq, start); i += 2; }
        else { push(TokenKind::kEq, start); ++i; }
        break;
      case '!':
        if (two('=')) { push(TokenKind::kNe, start); i += 2; }
        else {
          return error("unexpected '!'", start);
        }
        break;
      case '<':
        if (two('=')) { push(TokenKind::kLe, start); i += 2; }
        else if (two('>')) { push(TokenKind::kNe, start); i += 2; }
        else { push(TokenKind::kLt, start); ++i; }
        break;
      case '>':
        if (two('=')) { push(TokenKind::kGe, start); i += 2; }
        else { push(TokenKind::kGt, start); ++i; }
        break;
      default:
        return error(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(TokenKind::kEnd, input.size());
  return tokens;
}

}  // namespace caesar
