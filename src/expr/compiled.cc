#include "expr/compiled.h"

#include <algorithm>

#include "common/logging.h"

namespace caesar {

int BindingSet::IndexOfVar(const std::string& name) const {
  for (int i = 0; i < size(); ++i) {
    if (vars_[i].name == name) return i;
  }
  return -1;
}

int BindingSet::ResolveBareAttr(const std::string& attribute) const {
  int found = -1;
  for (int i = 0; i < size(); ++i) {
    if (vars_[i].schema != nullptr && vars_[i].schema->IndexOf(attribute) >= 0) {
      if (found >= 0) return -2;
      found = i;
    }
  }
  return found;
}

Result<std::unique_ptr<CompiledExpr>> Compile(const ExprPtr& expr,
                                              const BindingSet& bindings) {
  if (expr == nullptr) {
    return Status::InvalidArgument("cannot compile null expression");
  }
  auto compiled = std::make_unique<CompiledExpr>();
  compiled->source_ = expr;

  // Recursive compiler appending nodes in postorder.
  struct Compiler {
    const BindingSet& bindings;
    std::vector<CompiledExpr::Node>& nodes;
    std::vector<int>& referenced;

    Result<int> Visit(const Expr& e) {
      switch (e.kind()) {
        case Expr::Kind::kConstant: {
          const auto& c = static_cast<const ConstantExpr&>(e);
          CompiledExpr::Node node;
          node.kind = Expr::Kind::kConstant;
          node.constant = c.value();
          node.type = c.value().type();
          nodes.push_back(std::move(node));
          return static_cast<int>(nodes.size()) - 1;
        }
        case Expr::Kind::kAttrRef: {
          const auto& a = static_cast<const AttrRefExpr&>(e);
          int var_index;
          if (a.variable().empty()) {
            var_index = bindings.ResolveBareAttr(a.attribute());
            if (var_index == -1) {
              return Status::InvalidArgument("unknown attribute: " +
                                             a.attribute());
            }
            if (var_index == -2) {
              return Status::InvalidArgument("ambiguous attribute: " +
                                             a.attribute());
            }
          } else {
            var_index = bindings.IndexOfVar(a.variable());
            if (var_index < 0) {
              return Status::InvalidArgument("unknown pattern variable: " +
                                             a.variable());
            }
          }
          const Schema* schema = bindings.var(var_index).schema;
          if (schema == nullptr) {
            return Status::InvalidArgument("variable has no schema: " +
                                           a.variable());
          }
          int attr_index = schema->IndexOf(a.attribute());
          if (attr_index < 0) {
            return Status::InvalidArgument(
                "unknown attribute '" + a.attribute() + "' of variable '" +
                bindings.var(var_index).name + "'");
          }
          CompiledExpr::Node node;
          node.kind = Expr::Kind::kAttrRef;
          node.var_index = var_index;
          node.attr_index = attr_index;
          node.type = schema->attribute(attr_index).type;
          nodes.push_back(std::move(node));
          if (std::find(referenced.begin(), referenced.end(), var_index) ==
              referenced.end()) {
            referenced.push_back(var_index);
          }
          return static_cast<int>(nodes.size()) - 1;
        }
        case Expr::Kind::kBinary: {
          const auto& b = static_cast<const BinaryExpr&>(e);
          CAESAR_ASSIGN_OR_RETURN(int left, Visit(*b.left()));
          CAESAR_ASSIGN_OR_RETURN(int right, Visit(*b.right()));
          ValueType lt = nodes[left].type;
          ValueType rt = nodes[right].type;
          CompiledExpr::Node node;
          node.kind = Expr::Kind::kBinary;
          node.op = b.op();
          node.left = left;
          node.right = right;
          if (IsArithmetic(b.op())) {
            bool numeric = (lt == ValueType::kInt || lt == ValueType::kDouble) &&
                           (rt == ValueType::kInt || rt == ValueType::kDouble);
            if (!numeric) {
              return Status::InvalidArgument(
                  "arithmetic on non-numeric operands in: " + e.ToString());
            }
            node.type = (lt == ValueType::kDouble || rt == ValueType::kDouble)
                            ? ValueType::kDouble
                            : ValueType::kInt;
          } else if (IsComparison(b.op())) {
            bool both_numeric =
                (lt == ValueType::kInt || lt == ValueType::kDouble) &&
                (rt == ValueType::kInt || rt == ValueType::kDouble);
            bool both_string =
                lt == ValueType::kString && rt == ValueType::kString;
            if (!both_numeric && !both_string) {
              return Status::InvalidArgument(
                  "incomparable operand types in: " + e.ToString());
            }
            node.type = ValueType::kInt;  // boolean
          } else {  // logical
            if (lt != ValueType::kInt || rt != ValueType::kInt) {
              return Status::InvalidArgument(
                  "logical operator on non-boolean operands in: " +
                  e.ToString());
            }
            node.type = ValueType::kInt;
          }
          nodes.push_back(std::move(node));
          return static_cast<int>(nodes.size()) - 1;
        }
      }
      return Status::Internal("unreachable expression kind");
    }
  };

  Compiler compiler{bindings, compiled->nodes_, compiled->referenced_vars_};
  CAESAR_ASSIGN_OR_RETURN(int root, compiler.Visit(*expr));
  CAESAR_CHECK_EQ(root, static_cast<int>(compiled->nodes_.size()) - 1);
  compiled->result_type_ = compiled->nodes_.back().type;
  return compiled;
}

Value CompiledExpr::EvalNode(int index, const EventPtr* events) const {
  const Node& node = nodes_[index];
  switch (node.kind) {
    case Expr::Kind::kConstant:
      return node.constant;
    case Expr::Kind::kAttrRef: {
      const Event* event = events[node.var_index].get();
      CAESAR_CHECK(event != nullptr) << "unbound variable in Eval";
      return event->value(node.attr_index);
    }
    case Expr::Kind::kBinary: {
      if (node.op == BinaryOp::kAnd) {
        Value left = EvalNode(node.left, events);
        if (left.type() != ValueType::kInt || left.AsInt() == 0) {
          return Value(int64_t{0});
        }
        return EvalNode(node.right, events);
      }
      if (node.op == BinaryOp::kOr) {
        Value left = EvalNode(node.left, events);
        if (left.type() == ValueType::kInt && left.AsInt() != 0) {
          return Value(int64_t{1});
        }
        return EvalNode(node.right, events);
      }
      Value left = EvalNode(node.left, events);
      Value right = EvalNode(node.right, events);
      if (left.is_null() || right.is_null()) return Value();
      if (IsArithmetic(node.op)) {
        if (node.type == ValueType::kInt) {
          int64_t a = left.AsInt(), b = right.AsInt();
          switch (node.op) {
            case BinaryOp::kAdd: return Value(a + b);
            case BinaryOp::kSub: return Value(a - b);
            case BinaryOp::kMul: return Value(a * b);
            case BinaryOp::kDiv:
              if (b == 0) return Value();
              return Value(a / b);
            default: break;
          }
        } else {
          double a = left.ToDouble(), b = right.ToDouble();
          switch (node.op) {
            case BinaryOp::kAdd: return Value(a + b);
            case BinaryOp::kSub: return Value(a - b);
            case BinaryOp::kMul: return Value(a * b);
            case BinaryOp::kDiv: return Value(a / b);
            default: break;
          }
        }
        return Value();
      }
      // Comparison.
      bool result;
      switch (node.op) {
        case BinaryOp::kEq: result = left.Equals(right); break;
        case BinaryOp::kNe: result = !left.Equals(right); break;
        case BinaryOp::kLt: result = left.Compare(right) < 0; break;
        case BinaryOp::kLe: result = left.Compare(right) <= 0; break;
        case BinaryOp::kGt: result = left.Compare(right) > 0; break;
        case BinaryOp::kGe: result = left.Compare(right) >= 0; break;
        default:
          CAESAR_LOG_FATAL << "unexpected op";
          result = false;
      }
      return Value(int64_t{result ? 1 : 0});
    }
  }
  return Value();
}

Value CompiledExpr::Eval(const EventPtr* events) const {
  return EvalNode(static_cast<int>(nodes_.size()) - 1, events);
}

bool CompiledExpr::EvalBool(const EventPtr* events) const {
  Value v = Eval(events);
  return v.type() == ValueType::kInt && v.AsInt() != 0;
}

bool CompiledExpr::CanEvaluate(const std::vector<bool>& bound) const {
  for (int var : referenced_vars_) {
    if (var >= static_cast<int>(bound.size()) || !bound[var]) return false;
  }
  return true;
}

}  // namespace caesar
