// Recursive-descent (precedence-climbing) parser for WHERE-clause
// expressions. Precedence, loosest first: OR < AND < comparisons <
// additive < multiplicative. Comparison operators are non-associative.

#ifndef CAESAR_EXPR_PARSER_H_
#define CAESAR_EXPR_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "expr/expr.h"
#include "expr/lexer.h"

namespace caesar {

// Parses a complete expression from `input`; trailing tokens are an error.
Result<ExprPtr> ParseExpr(std::string_view input);

// Incremental interface used by the query-language parser: parses one
// expression starting at token index *pos within `tokens`, advancing *pos
// past the expression.
Result<ExprPtr> ParseExprAt(const std::vector<Token>& tokens, size_t* pos);

}  // namespace caesar

#endif  // CAESAR_EXPR_PARSER_H_
