// Compilation of expression ASTs against pattern-variable bindings, and the
// runtime evaluator.
//
// A BindingSet lists the pattern variables in scope (one per PATTERN
// position). Compile() resolves every attribute reference to a
// (variable index, attribute index) pair and type-checks the tree; the
// resulting CompiledExpr evaluates against an array of event pointers, one
// per binding (entries may be null for not-yet-bound variables — see
// CanEvaluate).

#ifndef CAESAR_EXPR_COMPILED_H_
#define CAESAR_EXPR_COMPILED_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "event/event.h"
#include "event/schema.h"
#include "expr/expr.h"

namespace caesar {

// One pattern variable in scope for expression compilation.
struct BindingVar {
  std::string name;     // variable name ("p2"); may be empty for anonymous
  TypeId type_id = kInvalidTypeId;
  const Schema* schema = nullptr;  // not owned; outlives the compiled expr
};

// Ordered set of pattern variables.
class BindingSet {
 public:
  BindingSet() = default;
  explicit BindingSet(std::vector<BindingVar> vars) : vars_(std::move(vars)) {}

  void Add(BindingVar var) { vars_.push_back(std::move(var)); }

  int size() const { return static_cast<int>(vars_.size()); }
  const BindingVar& var(int i) const { return vars_[i]; }

  // Index of the variable named `name`, or -1.
  int IndexOfVar(const std::string& name) const;

  // Resolves a bare attribute name: the unique variable whose schema has the
  // attribute. Returns -1 if none, -2 if ambiguous.
  int ResolveBareAttr(const std::string& attribute) const;

 private:
  std::vector<BindingVar> vars_;
};

// An expression with all attribute references resolved; evaluation needs no
// name lookups. Immutable and thread-compatible.
class CompiledExpr {
 public:
  // Implementation detail exposed for the compiler; not part of the API.
  // Flattened node; children precede parents (postorder), root is the last.
  struct Node {
    Expr::Kind kind;
    BinaryOp op = BinaryOp::kAdd;  // for kBinary
    int left = -1, right = -1;     // child node indices for kBinary
    int var_index = -1;            // for kAttrRef
    int attr_index = -1;           // for kAttrRef
    Value constant;                // for kConstant
    ValueType type = ValueType::kNull;
  };

  // Evaluates against `events` (size == number of binding variables).
  // Entries referenced by the expression must be non-null.
  Value Eval(const EventPtr* events) const;

  // Boolean evaluation (for predicates): non-zero int / true comparisons.
  // Null operands make comparisons false.
  bool EvalBool(const EventPtr* events) const;

  // True if every variable the expression references has a non-null entry in
  // `bound` (size == number of binding variables). Used by the pattern
  // matcher to push predicates down to partially assembled matches.
  bool CanEvaluate(const std::vector<bool>& bound) const;

  // The inferred result type.
  ValueType result_type() const { return result_type_; }

  // Indices of variables referenced anywhere in this expression.
  const std::vector<int>& referenced_vars() const { return referenced_vars_; }

  // Flattened evaluator nodes (see Node); exposed for the cost model's
  // per-predicate estimates.
  const std::vector<Node>& nodes() const { return nodes_; }

  std::string ToString() const { return source_ ? source_->ToString() : "?"; }

 private:
  friend Result<std::unique_ptr<CompiledExpr>> Compile(
      const ExprPtr& expr, const BindingSet& bindings);

  Value EvalNode(int index, const EventPtr* events) const;

  std::vector<Node> nodes_;
  ValueType result_type_ = ValueType::kNull;
  std::vector<int> referenced_vars_;
  ExprPtr source_;
};

// Compiles `expr` against `bindings`; fails with InvalidArgument on unknown
// variables/attributes or type errors.
Result<std::unique_ptr<CompiledExpr>> Compile(const ExprPtr& expr,
                                              const BindingSet& bindings);

}  // namespace caesar

#endif  // CAESAR_EXPR_COMPILED_H_
