// Static predicate analysis.
//
// The optimizer needs two compile-time facts about context deriving
// predicates (Section 3.3 / Definition 2 and the grouping algorithm of
// Listing 1):
//   1. subsumption/implication between predicates ("CAESAR employs
//      established approaches for predicate subsumption"), and
//   2. a partial order on context-window bounds: e.g. with a signal X that
//      rises and later falls (Fig. 7), a window initiated by X>10 starts no
//      later than one initiated by X>20, and one terminated by X<30 ends no
//      later than one terminated by X<40.
//
// The analysis handles conjunctions of single-attribute threshold
// comparisons (attr op numeric-constant); anything else degrades safely to
// "unknown" and the optimizer then treats the windows as unordered.

#ifndef CAESAR_EXPR_ANALYSIS_H_
#define CAESAR_EXPR_ANALYSIS_H_

#include <limits>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "expr/expr.h"

namespace caesar {

// Splits nested ANDs into a flat list of conjuncts.
std::vector<ExprPtr> SplitConjuncts(const ExprPtr& expr);

// A numeric interval with open/closed endpoints; +-infinity for unbounded.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  bool lo_open = false;
  double hi = std::numeric_limits<double>::infinity();
  bool hi_open = false;

  bool IsEmpty() const;
  // True if this interval is contained in `other`.
  bool ContainedIn(const Interval& other) const;
  // Intersects in place.
  void IntersectWith(const Interval& other);
  std::string ToString() const;
};

// A single threshold constraint `var.attr op value`.
struct AttrConstraint {
  std::string variable;
  std::string attribute;
  BinaryOp op;  // comparison
  double value;

  Interval ToInterval() const;
};

// Extracts a threshold constraint from a conjunct of the form
// `attr op const` or `const op attr` (numeric constants only);
// std::nullopt otherwise.
std::optional<AttrConstraint> ExtractConstraint(const ExprPtr& conjunct);

// Per-attribute interval summary of a conjunction of threshold constraints.
class PredicateSummary {
 public:
  // Builds the summary. `exact` is set to false when some conjunct could not
  // be converted (the summary is then an over-approximation of the
  // predicate's satisfying set).
  static PredicateSummary FromExpr(const ExprPtr& expr);

  bool exact() const { return exact_; }
  bool empty() const { return intervals_.empty(); }

  // Interval for (variable, attribute), or the unbounded interval.
  Interval GetInterval(const std::string& variable,
                       const std::string& attribute) const;

  const std::map<std::pair<std::string, std::string>, Interval>& intervals()
      const {
    return intervals_;
  }

 private:
  std::map<std::pair<std::string, std::string>, Interval> intervals_;
  bool exact_ = true;
};

// True if predicate `p` provably implies predicate `q` (every tuple
// satisfying p satisfies q). Requires p exact; conservative otherwise.
bool Implies(const PredicateSummary& p, const PredicateSummary& q);

// Compile-time partial order between two window bounds.
enum class BoundOrder : int8_t { kBefore, kEqual, kAfter, kUnknown };

// Orders two bound predicates under the paper's monotone-signal reading of
// Fig. 7: the bound thresholds 10 < 20 < 30 < 40 map monotonically to time,
// so the predicate whose (single, same-attribute) threshold constant is
// smaller fires first. Returns kUnknown when the predicates do not both
// reduce to a single constraint on the same attribute.
BoundOrder CompareBoundOrder(const ExprPtr& a, const ExprPtr& b);

// Intent-revealing aliases for window start and end bounds.
inline BoundOrder CompareActivationOrder(const ExprPtr& a, const ExprPtr& b) {
  return CompareBoundOrder(a, b);
}
inline BoundOrder CompareTerminationOrder(const ExprPtr& a, const ExprPtr& b) {
  return CompareBoundOrder(a, b);
}

}  // namespace caesar

#endif  // CAESAR_EXPR_ANALYSIS_H_
