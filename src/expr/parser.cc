#include "expr/parser.h"

#include <string>

namespace caesar {

namespace {

// Expression parser over a token vector. All methods return ParseError
// through Result on malformed input.
class ExprParser {
 public:
  ExprParser(const std::vector<Token>& tokens, size_t pos)
      : tokens_(tokens), pos_(pos) {}

  size_t pos() const { return pos_; }

  Result<ExprPtr> ParseOr() {
    CAESAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (Peek().IsKeyword("OR")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

 private:
  Result<ExprPtr> ParseAnd() {
    CAESAR_ASSIGN_OR_RETURN(ExprPtr left, ParseComparison());
    while (Peek().IsKeyword("AND")) {
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(ExprPtr right, ParseComparison());
      left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseComparison() {
    CAESAR_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
    BinaryOp op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = BinaryOp::kEq; break;
      case TokenKind::kNe: op = BinaryOp::kNe; break;
      case TokenKind::kLt: op = BinaryOp::kLt; break;
      case TokenKind::kLe: op = BinaryOp::kLe; break;
      case TokenKind::kGt: op = BinaryOp::kGt; break;
      case TokenKind::kGe: op = BinaryOp::kGe; break;
      default:
        return left;
    }
    ++pos_;
    CAESAR_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
    return MakeBinary(op, std::move(left), std::move(right));
  }

  Result<ExprPtr> ParseAdditive() {
    CAESAR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kPlus) {
        op = BinaryOp::kAdd;
      } else if (Peek().kind == TokenKind::kMinus) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    CAESAR_ASSIGN_OR_RETURN(ExprPtr left, ParsePrimary());
    while (true) {
      BinaryOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = BinaryOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = BinaryOp::kDiv;
      } else {
        return left;
      }
      ++pos_;
      CAESAR_ASSIGN_OR_RETURN(ExprPtr right, ParsePrimary());
      left = MakeBinary(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kIntLiteral:
        ++pos_;
        return MakeConstant(token.int_value);
      case TokenKind::kDoubleLiteral:
        ++pos_;
        return MakeConstant(token.double_value);
      case TokenKind::kStringLiteral:
        ++pos_;
        return MakeConstant(Value(token.text));
      case TokenKind::kMinus: {
        // Unary minus: parse as 0 - primary.
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(ExprPtr operand, ParsePrimary());
        return MakeBinary(BinaryOp::kSub, MakeConstant(int64_t{0}),
                          std::move(operand));
      }
      case TokenKind::kLParen: {
        ++pos_;
        CAESAR_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
        if (Peek().kind != TokenKind::kRParen) {
          return Error("expected ')'");
        }
        ++pos_;
        return inner;
      }
      case TokenKind::kIdentifier: {
        std::string first = token.text;
        ++pos_;
        if (Peek().kind == TokenKind::kDot) {
          ++pos_;
          if (Peek().kind != TokenKind::kIdentifier) {
            return Error("expected attribute name after '.'");
          }
          std::string attr = Peek().text;
          ++pos_;
          return MakeAttrRef(std::move(first), std::move(attr));
        }
        return MakeAttrRef(std::move(first));
      }
      default:
        return Error("unexpected token in expression");
    }
  }

  const Token& Peek() const { return tokens_[pos_]; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at " + Peek().loc.ToString());
  }

  const std::vector<Token>& tokens_;
  size_t pos_;
};

}  // namespace

Result<ExprPtr> ParseExpr(std::string_view input) {
  CAESAR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  size_t pos = 0;
  CAESAR_ASSIGN_OR_RETURN(ExprPtr expr, ParseExprAt(tokens, &pos));
  if (tokens[pos].kind != TokenKind::kEnd) {
    return Status::ParseError("trailing input after expression at " +
                              tokens[pos].loc.ToString());
  }
  return expr;
}

Result<ExprPtr> ParseExprAt(const std::vector<Token>& tokens, size_t* pos) {
  ExprParser parser(tokens, *pos);
  Result<ExprPtr> result = parser.ParseOr();
  if (result.ok()) *pos = parser.pos();
  return result;
}

}  // namespace caesar
