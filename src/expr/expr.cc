#include "expr/expr.h"

#include "common/logging.h"

namespace caesar {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

bool IsComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsLogical(BinaryOp op) {
  return op == BinaryOp::kAnd || op == BinaryOp::kOr;
}

bool IsArithmetic(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
      return true;
    default:
      return false;
  }
}

BinaryOp MirrorComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    case BinaryOp::kEq:
    case BinaryOp::kNe:
      return op;
    default:
      CAESAR_LOG_FATAL << "MirrorComparison on non-comparison op";
      return op;
  }
}

std::string ConstantExpr::ToString() const { return value_.ToString(); }

std::string AttrRefExpr::ToString() const {
  if (variable_.empty()) return attribute_;
  return variable_ + "." + attribute_;
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpName(op_) + " " +
         right_->ToString() + ")";
}

ExprPtr MakeConstant(Value value) {
  return std::make_shared<ConstantExpr>(std::move(value));
}
ExprPtr MakeConstant(int64_t value) { return MakeConstant(Value(value)); }
ExprPtr MakeConstant(double value) { return MakeConstant(Value(value)); }
ExprPtr MakeConstant(const char* value) { return MakeConstant(Value(value)); }

ExprPtr MakeAttrRef(std::string variable, std::string attribute) {
  return std::make_shared<AttrRefExpr>(std::move(variable),
                                       std::move(attribute));
}
ExprPtr MakeAttrRef(std::string attribute) {
  return std::make_shared<AttrRefExpr>("", std::move(attribute));
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right) {
  return std::make_shared<BinaryExpr>(op, std::move(left), std::move(right));
}

ExprPtr MakeConjunction(ExprPtr a, ExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

}  // namespace caesar
