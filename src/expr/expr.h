// Expression AST for the CAESAR event query language (Fig. 4 of the paper):
//
//   Expr := Constant | Attr | (Expr) (Op) (Expr)
//   Op   := + | - | * | / | = | != | > | >= | < | <= | AND | OR
//
// Attribute references are either qualified ("p2.vid": variable bound by the
// PATTERN clause, then attribute) or bare ("vid": resolved against the single
// pattern variable in scope). The AST is immutable and shared via ExprPtr;
// the evaluator compiles it against concrete schemas before execution.

#ifndef CAESAR_EXPR_EXPR_H_
#define CAESAR_EXPR_EXPR_H_

#include <memory>
#include <string>

#include "event/value.h"

namespace caesar {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// Binary operators of the query language.
enum class BinaryOp : int8_t {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

const char* BinaryOpName(BinaryOp op);

// True for =, !=, <, <=, >, >=.
bool IsComparison(BinaryOp op);
// True for AND, OR.
bool IsLogical(BinaryOp op);
// True for +, -, *, /.
bool IsArithmetic(BinaryOp op);

// Flips a comparison across the operands: a < b  <=>  b > a.
BinaryOp MirrorComparison(BinaryOp op);

// One node of the expression tree.
class Expr {
 public:
  enum class Kind : int8_t { kConstant, kAttrRef, kBinary };

  virtual ~Expr() = default;
  Kind kind() const { return kind_; }
  virtual std::string ToString() const = 0;

 protected:
  explicit Expr(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

// Literal constant.
class ConstantExpr : public Expr {
 public:
  explicit ConstantExpr(Value value)
      : Expr(Kind::kConstant), value_(std::move(value)) {}

  const Value& value() const { return value_; }
  std::string ToString() const override;

 private:
  Value value_;
};

// Reference to an event attribute, optionally qualified by a pattern
// variable ("p2.vid" => variable "p2", attribute "vid"; bare "vid" has an
// empty variable).
class AttrRefExpr : public Expr {
 public:
  AttrRefExpr(std::string variable, std::string attribute)
      : Expr(Kind::kAttrRef),
        variable_(std::move(variable)),
        attribute_(std::move(attribute)) {}

  const std::string& variable() const { return variable_; }
  const std::string& attribute() const { return attribute_; }
  std::string ToString() const override;

 private:
  std::string variable_;
  std::string attribute_;
};

// Binary operation.
class BinaryExpr : public Expr {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expr(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}

  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }
  std::string ToString() const override;

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

// Construction helpers.
ExprPtr MakeConstant(Value value);
ExprPtr MakeConstant(int64_t value);
ExprPtr MakeConstant(double value);
ExprPtr MakeConstant(const char* value);
ExprPtr MakeAttrRef(std::string variable, std::string attribute);
ExprPtr MakeAttrRef(std::string attribute);
ExprPtr MakeBinary(BinaryOp op, ExprPtr left, ExprPtr right);

// AND of two optional conjuncts; returns the other when one is null.
ExprPtr MakeConjunction(ExprPtr a, ExprPtr b);

}  // namespace caesar

#endif  // CAESAR_EXPR_EXPR_H_
