#include "runtime/observability.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "runtime/statistics.h"

namespace caesar {

const char* MetricsGranularityName(MetricsGranularity granularity) {
  switch (granularity) {
    case MetricsGranularity::kOff:
      return "off";
    case MetricsGranularity::kEngine:
      return "engine";
    case MetricsGranularity::kOperator:
      return "operator";
  }
  return "?";
}

bool ParseMetricsGranularity(const std::string& name,
                             MetricsGranularity* granularity) {
  if (name == "off") {
    *granularity = MetricsGranularity::kOff;
  } else if (name == "engine") {
    *granularity = MetricsGranularity::kEngine;
  } else if (name == "operator") {
    *granularity = MetricsGranularity::kOperator;
  } else {
    return false;
  }
  return true;
}

uint64_t Pow2Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count_ - 1));
  int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen > rank) {
      // Clamp to the observed maximum: the top bucket's upper bound can be
      // far above anything actually recorded.
      uint64_t bound = BucketUpperBound(i);
      return bound < max_ ? bound : max_;
    }
  }
  return max_;
}

std::string Pow2Histogram::ToString() const {
  std::ostringstream os;
  os << "count=" << count_ << " mean=" << mean() << " max=" << max_;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (i <= 1) {
      os << " " << BucketLowerBound(i) << "=" << buckets_[i];
    } else {
      os << " [" << BucketLowerBound(i) << "," << (BucketUpperBound(i) + 1)
         << ")=" << buckets_[i];
    }
  }
  return os.str();
}

ShardedCounter::ShardedCounter(int num_shards)
    : num_shards_(num_shards), slots_(new Slot[num_shards]) {
  CAESAR_CHECK_GE(num_shards, 1);
}

int64_t ShardedCounter::Total() const {
  int64_t total = 0;
  for (int i = 0; i < num_shards_; ++i) {
    total += slots_[i].value.load(std::memory_order_relaxed);
  }
  return total;
}

ShardedHistogram::ShardedHistogram(int num_shards)
    : num_shards_(num_shards), shards_(new Shard[num_shards]) {
  CAESAR_CHECK_GE(num_shards, 1);
}

Pow2Histogram ShardedHistogram::Merged() const {
  Pow2Histogram merged;
  for (int i = 0; i < num_shards_; ++i) merged.Merge(shards_[i].histogram);
  return merged;
}

MetricsRegistry::MetricsRegistry(int num_shards) : num_shards_(num_shards) {
  CAESAR_CHECK_GE(num_shards, 1);
}

ShardedCounter* MetricsRegistry::AddCounter(const std::string& name,
                                            const std::string& help) {
  auto& entry = counters_[name];
  if (entry.instrument == nullptr) {
    entry.help = help;
    entry.instrument = std::make_unique<ShardedCounter>(num_shards_);
  }
  return entry.instrument.get();
}

ShardedHistogram* MetricsRegistry::AddHistogram(const std::string& name,
                                                const std::string& help) {
  auto& entry = histograms_[name];
  if (entry.instrument == nullptr) {
    entry.help = help;
    entry.instrument = std::make_unique<ShardedHistogram>(num_shards_);
  }
  return entry.instrument.get();
}

std::vector<CounterSnapshot> MetricsRegistry::SnapshotCounters() const {
  std::vector<CounterSnapshot> snapshots;
  snapshots.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    CounterSnapshot snapshot;
    snapshot.name = name;
    snapshot.help = entry.help;
    snapshot.per_shard.reserve(num_shards_);
    for (int i = 0; i < num_shards_; ++i) {
      snapshot.per_shard.push_back(entry.instrument->shard_value(i));
      snapshot.total += snapshot.per_shard.back();
    }
    snapshots.push_back(std::move(snapshot));
  }
  return snapshots;
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistograms() const {
  std::vector<HistogramSnapshot> snapshots;
  snapshots.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    snapshots.push_back({name, entry.help, entry.instrument->Merged()});
  }
  return snapshots;
}

void TickMetrics::Merge(const TickMetrics& other) {
  ticks += other.ticks;
  gc_runs += other.gc_runs;
  if (other.gc_horizon_min < gc_horizon_min) {
    gc_horizon_min = other.gc_horizon_min;
  }
  events_per_tick.Merge(other.events_per_tick);
  partitions_per_tick.Merge(other.partitions_per_tick);
  derived_per_tick.Merge(other.derived_per_tick);
  context_switches_per_tick.Merge(other.context_switches_per_tick);
  scheduler_seconds.Merge(other.scheduler_seconds);
  ingest_seconds.Merge(other.ingest_seconds);
  gc_pause_seconds.Merge(other.gc_pause_seconds);
  barrier_wait_seconds.Merge(other.barrier_wait_seconds);
}

Timeline::Timeline(size_t capacity) : capacity_(capacity) {
  CAESAR_CHECK_GE(capacity, 1u);
}

void Timeline::Push(const TimelinePoint& point) {
  if (points_.size() < capacity_) {
    points_.push_back(point);
  } else {
    points_[next_] = point;
  }
  next_ = (next_ + 1) % capacity_;
  ++total_pushed_;
}

size_t Timeline::size() const { return points_.size(); }

std::vector<TimelinePoint> Timeline::Snapshot() const {
  std::vector<TimelinePoint> snapshot;
  snapshot.reserve(points_.size());
  // Once the ring wrapped, next_ is the oldest retained point.
  size_t start = points_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < points_.size(); ++i) {
    snapshot.push_back(points_[(start + i) % points_.size()]);
  }
  return snapshot;
}

// --------------------------------------------------------------------------
// Trace spans
// --------------------------------------------------------------------------

namespace {

thread_local TraceRecorder* g_current_trace = nullptr;

// Small process-unique thread ids so trace viewers render one lane per
// thread instead of raw pthread handles.
uint32_t CurrentTraceTid() {
  static std::atomic<uint32_t> next_tid{0};
  thread_local uint32_t tid = next_tid.fetch_add(1) + 1;
  return tid;
}

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(SteadyNowNanos()) {}

int64_t TraceRecorder::NowMicros() const {
  return (SteadyNowNanos() - epoch_ns_) / 1000;
}

void TraceRecorder::Record(const char* name, int64_t start_us,
                           int64_t duration_us) {
  uint32_t tid = CurrentTraceTid();
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back({name, start_us, duration_us, tid});
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceRecorder::Span> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

namespace {

// RFC 8259 string escaping shared by the trace and statistics exporters.
void AppendJsonString(std::ostream& os, const char* s) {
  os << '"';
  for (const char* p = s; *p != '\0'; ++p) {
    unsigned char c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      case '\r':
        os << "\\r";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          os << buffer;
        } else {
          os << *p;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string TraceRecorder::ToJson() const {
  std::vector<Span> spans = Snapshot();
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& span : spans) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    AppendJsonString(os, span.name);
    os << ",\"cat\":\"caesar\",\"ph\":\"X\",\"ts\":" << span.start_us
       << ",\"dur\":" << span.duration_us << ",\"pid\":0,\"tid\":" << span.tid
       << "}";
  }
  os << "]}";
  return os.str();
}

Status TraceRecorder::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open trace file: " + path);
  }
  out << ToJson();
  out.close();
  if (!out) {
    return Status::Internal("failed writing trace file: " + path);
  }
  return Status::Ok();
}

TraceRecorder* TraceRecorder::Current() { return g_current_trace; }

void TraceRecorder::SetCurrent(TraceRecorder* recorder) {
  g_current_trace = recorder;
}

TraceScope::TraceScope(TraceRecorder* recorder)
    : previous_(TraceRecorder::Current()) {
  TraceRecorder::SetCurrent(recorder);
}

TraceScope::~TraceScope() { TraceRecorder::SetCurrent(previous_); }

// --------------------------------------------------------------------------
// Exporters
// --------------------------------------------------------------------------

namespace {

// Minimal JSON writer. Key order is fixed by call order, numbers use "%.9g"
// for doubles (same double -> same text, so deterministic inputs stay
// byte-identical), and strings are escaped per RFC 8259.
class JsonWriter {
 public:
  std::string Take() { return std::move(os_).str(); }

  void BeginObject() { Punctuate("{"); }
  void EndObject() {
    os_ << "}";
    pending_comma_ = true;
  }
  void BeginArray() { Punctuate("["); }
  void EndArray() {
    os_ << "]";
    pending_comma_ = true;
  }

  void Key(const char* name) {
    Punctuate("");
    AppendString(name);
    os_ << ":";
  }

  void Value(int64_t v) {
    Punctuate("");
    os_ << v;
    pending_comma_ = true;
  }
  void Value(uint64_t v) {
    Punctuate("");
    os_ << v;
    pending_comma_ = true;
  }
  void Value(int v) { Value(static_cast<int64_t>(v)); }
  void Value(double v) {
    Punctuate("");
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", v);
    os_ << buffer;
    pending_comma_ = true;
  }
  void Value(const std::string& v) {
    Punctuate("");
    AppendString(v.c_str());
    pending_comma_ = true;
  }
  void Value(const char* v) {
    Punctuate("");
    AppendString(v);
    pending_comma_ = true;
  }
  void Null() {
    Punctuate("");
    os_ << "null";
    pending_comma_ = true;
  }

  template <typename T>
  void Field(const char* name, T v) {
    Key(name);
    Value(v);
  }

 private:
  void Punctuate(const char* open) {
    if (pending_comma_) os_ << ",";
    os_ << open;
    pending_comma_ = false;
  }

  void AppendString(const char* s) { AppendJsonString(os_, s); }

  std::ostringstream os_;
  bool pending_comma_ = false;
};

void WriteHistogramJson(JsonWriter* json, const char* name,
                        const Pow2Histogram& histogram) {
  json->Key(name);
  json->BeginObject();
  json->Field("count", histogram.count());
  json->Field("sum", histogram.sum());
  json->Field("max", histogram.max());
  json->Key("buckets");
  json->BeginArray();
  for (int i = 0; i < Pow2Histogram::kNumBuckets; ++i) {
    if (histogram.bucket(i) == 0) continue;
    json->BeginArray();
    json->Value(Pow2Histogram::BucketLowerBound(i));
    json->Value(histogram.bucket(i));
    json->EndArray();
  }
  json->EndArray();
  json->EndObject();
}

void WriteRunningStatsJson(JsonWriter* json, const char* name,
                           const RunningStats& stats) {
  json->Key(name);
  json->BeginObject();
  json->Field("count", stats.count());
  json->Field("sum", stats.sum());
  json->Field("mean", stats.mean());
  json->Field("min", stats.min());
  json->Field("max", stats.max());
  json->EndObject();
}

// Prometheus label-value escaping (backslash, quote, newline).
std::string PromEscape(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Emits a Prometheus histogram: cumulative `le` buckets (upper bounds
// inclusive, only non-empty buckets plus +Inf), _sum, and _count.
void WritePromHistogram(std::ostringstream& os, const std::string& metric,
                        const std::string& labels,
                        const Pow2Histogram& histogram) {
  std::string label_prefix = labels.empty() ? "" : labels + ",";
  os << "# TYPE " << metric << " histogram\n";
  int64_t cumulative = 0;
  for (int i = 0; i < Pow2Histogram::kNumBuckets; ++i) {
    if (histogram.bucket(i) == 0) continue;
    cumulative += histogram.bucket(i);
    os << metric << "_bucket{" << label_prefix << "le=\""
       << Pow2Histogram::BucketUpperBound(i) << "\"} " << cumulative << "\n";
  }
  os << metric << "_bucket{" << label_prefix << "le=\"+Inf\"} "
     << histogram.count() << "\n";
  os << metric << "_sum" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << histogram.sum() << "\n";
  os << metric << "_count" << (labels.empty() ? "" : "{" + labels + "}") << " "
     << histogram.count() << "\n";
}

std::string FmtDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", v);
  return buffer;
}

}  // namespace

std::string StatisticsToJson(const StatisticsReport& report,
                             const ExportOptions& options) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", int64_t{1});
  // Only a named tenant emits the field: tenant-less reports must stay
  // byte-identical to before the tenant dimension existed (goldens).
  if (!report.tenant.empty()) json.Field("tenant", report.tenant);
  json.Field("granularity", MetricsGranularityName(report.granularity));
  json.Field("deterministic", options.deterministic ? "true" : "false");
  json.Field("observed_context_activity", report.observed_context_activity);

  json.Key("ingest");
  json.BeginObject();
  json.Field("admitted", report.ingest.admitted);
  json.Field("reordered", report.ingest.reordered);
  json.Field("dropped_late", report.ingest.dropped_late);
  json.Field("quarantined", report.ingest.quarantined);
  json.Field("max_observed_lateness", report.ingest.max_observed_lateness);
  json.Field("quarantine_rate", report.quarantine_rate());
  json.Field("reorder_rate", report.reorder_rate());
  json.Key("quarantine_by_reason");
  json.BeginObject();
  for (int r = 0; r < kNumQuarantineReasons; ++r) {
    json.Field(QuarantineReasonName(static_cast<QuarantineReason>(r)),
               report.quarantine_by_reason[r]);
  }
  json.EndObject();
  json.Key("quarantine_by_partition");
  json.BeginArray();
  for (const auto& [key, count] : report.quarantine_by_partition) {
    json.BeginArray();
    json.Value(key);
    json.Value(count);
    json.EndArray();
  }
  json.EndArray();
  json.EndObject();

  // Emitted only when durability is configured, so durability-off exports
  // stay byte-identical to what they were before durability existed.
  if (report.durability_mode != DurabilityMode::kOff) {
    json.Key("durability");
    json.BeginObject();
    json.Field("mode", DurabilityModeName(report.durability_mode));
    json.Field("wal_records", report.durability.wal_records);
    json.Field("wal_bytes", report.durability.wal_bytes);
    json.Field("fsyncs", report.durability.fsyncs);
    json.Field("checkpoints_written", report.durability.checkpoints_written);
    json.Field("recovered", report.recovered ? "true" : "false");
    json.Field("recovery_replayed_events",
               report.durability.recovery_replayed_events);
    json.Field("torn_tail_truncations",
               report.durability.torn_tail_truncations);
    json.Key("recovery_diagnostics");
    json.BeginArray();
    for (const std::string& diag : report.recovery_diagnostics) {
      json.Value(diag);
    }
    json.EndArray();
    json.EndObject();
  }

  if (report.granularity >= MetricsGranularity::kEngine) {
    json.Key("ticks");
    json.BeginObject();
    json.Field("ticks", report.ticks.ticks);
    json.Field("gc_runs", report.ticks.gc_runs);
    json.Key("gc_horizon_min");
    if (report.ticks.gc_runs > 0) {
      json.Value(report.ticks.gc_horizon_min);
    } else {
      json.Null();
    }
    WriteHistogramJson(&json, "events_per_tick", report.ticks.events_per_tick);
    WriteHistogramJson(&json, "partitions_per_tick",
                       report.ticks.partitions_per_tick);
    WriteHistogramJson(&json, "derived_per_tick",
                       report.ticks.derived_per_tick);
    WriteHistogramJson(&json, "context_switches_per_tick",
                       report.ticks.context_switches_per_tick);
    if (!options.deterministic) {
      WriteRunningStatsJson(&json, "scheduler_seconds",
                            report.ticks.scheduler_seconds);
      WriteRunningStatsJson(&json, "ingest_seconds",
                            report.ticks.ingest_seconds);
      WriteRunningStatsJson(&json, "gc_pause_seconds",
                            report.ticks.gc_pause_seconds);
      WriteRunningStatsJson(&json, "barrier_wait_seconds",
                            report.ticks.barrier_wait_seconds);
    }
    json.EndObject();

    json.Key("timeline");
    json.BeginObject();
    json.Field("dropped", report.timeline_dropped);
    json.Key("points");
    json.BeginArray();
    for (const TimelinePoint& point : report.timeline) {
      json.BeginObject();
      json.Field("t", point.time);
      json.Field("events", point.input_events);
      json.Field("derived", point.derived_events);
      json.Field("partitions", point.partitions);
      json.Field("executed_chains", point.executed_chains);
      json.Field("suspended_chains", point.suspended_chains);
      json.Field("context_switches", point.context_switches);
      json.Field("activity", point.activity());
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();

    json.Key("counters");
    json.BeginArray();
    for (const CounterSnapshot& counter : report.counters) {
      json.BeginObject();
      json.Field("name", counter.name);
      json.Field("help", counter.help);
      json.Field("total", counter.total);
      if (!options.deterministic) {
        json.Key("per_shard");
        json.BeginArray();
        for (int64_t v : counter.per_shard) json.Value(v);
        json.EndArray();
      }
      json.EndObject();
    }
    json.EndArray();

    json.Key("histograms");
    json.BeginArray();
    for (const HistogramSnapshot& histogram : report.histograms) {
      json.BeginObject();
      json.Field("name", histogram.name);
      json.Field("help", histogram.help);
      WriteHistogramJson(&json, "histogram", histogram.merged);
      json.EndObject();
    }
    json.EndArray();
  }

  json.Key("operators");
  json.BeginArray();
  for (const QueryOperatorStats& row : report.operators) {
    json.BeginObject();
    json.Field("query", row.query);
    json.Field("op", row.op_index);
    json.Field("kind", OperatorKindName(row.kind));
    json.Field("description", row.description);
    json.Field("invocations", row.stats.invocations);
    json.Field("input_events", row.stats.input_events);
    json.Field("output_events", row.stats.output_events);
    json.Field("work_units", row.stats.work_units);
    json.Key("selectivity");
    if (auto selectivity = row.stats.ObservedSelectivity()) {
      json.Value(*selectivity);
    } else {
      json.Null();
    }
    json.Key("unit_cost");
    if (auto unit_cost = row.stats.ObservedUnitCost()) {
      json.Value(*unit_cost);
    } else {
      json.Null();
    }
    if (row.stats.work_per_invocation.count() > 0) {
      WriteHistogramJson(&json, "input_batch", row.stats.input_batch);
      WriteHistogramJson(&json, "output_batch", row.stats.output_batch);
      WriteHistogramJson(&json, "work_per_invocation",
                         row.stats.work_per_invocation);
    }
    json.EndObject();
  }
  json.EndArray();

  if (!options.deterministic && report.executor_workers > 0) {
    json.Key("executor");
    json.BeginObject();
    json.Field("workers", report.executor_workers);
    json.Field("ticks", static_cast<int64_t>(report.executor.ticks));
    json.Field("tasks", static_cast<int64_t>(report.executor.tasks));
    json.Field("imbalance", static_cast<int64_t>(report.executor.imbalance));
    json.Field("steals", static_cast<int64_t>(report.executor.steals));
    WriteRunningStatsJson(&json, "barrier_wait", report.executor.barrier_wait);
    WriteHistogramJson(&json, "tasks_per_tick", report.executor.tasks_per_tick);
    WriteHistogramJson(&json, "imbalance_per_tick",
                       report.executor.imbalance_per_tick);
    json.EndObject();
  }

  json.EndObject();
  return json.Take();
}

std::string StatisticsToPrometheus(const StatisticsReport& report,
                                   const ExportOptions& options) {
  std::ostringstream os;
  // Stable tenant dimension: a named tenant labels every series
  // (tenant="..."); the empty library default emits exactly the
  // pre-tenant byte stream.
  const std::string tenant_label =
      report.tenant.empty()
          ? std::string()
          : "tenant=\"" + PromEscape(report.tenant) + "\"";
  // `bare(name)` renders an unlabeled series, `with(labels)` prepends the
  // tenant to an existing label list.
  auto bare = [&](const char* name) {
    return tenant_label.empty() ? std::string(name)
                                : std::string(name) + "{" + tenant_label + "}";
  };
  auto with = [&](const std::string& labels) {
    return tenant_label.empty() ? labels : tenant_label + "," + labels;
  };

  os << "# TYPE caesar_context_activity gauge\n";
  os << bare("caesar_context_activity") << " "
     << FmtDouble(report.observed_context_activity) << "\n";

  os << "# TYPE caesar_ingest_events_total counter\n";
  os << "caesar_ingest_events_total{" << with("state=\"admitted\"") << "} "
     << report.ingest.admitted << "\n";
  os << "caesar_ingest_events_total{" << with("state=\"reordered\"") << "} "
     << report.ingest.reordered << "\n";
  os << "caesar_ingest_events_total{" << with("state=\"dropped_late\"")
     << "} " << report.ingest.dropped_late << "\n";
  os << "caesar_ingest_events_total{" << with("state=\"quarantined\"")
     << "} " << report.ingest.quarantined << "\n";
  os << "# TYPE caesar_ingest_max_lateness_ticks gauge\n";
  os << bare("caesar_ingest_max_lateness_ticks") << " "
     << report.ingest.max_observed_lateness << "\n";
  os << "# TYPE caesar_quarantine_rate gauge\n";
  os << bare("caesar_quarantine_rate") << " "
     << FmtDouble(report.quarantine_rate()) << "\n";
  os << "# TYPE caesar_reorder_rate gauge\n";
  os << bare("caesar_reorder_rate") << " " << FmtDouble(report.reorder_rate())
     << "\n";
  os << "# TYPE caesar_quarantine_total counter\n";
  for (int r = 0; r < kNumQuarantineReasons; ++r) {
    os << "caesar_quarantine_total{"
       << with("reason=\"" +
               std::string(QuarantineReasonName(
                   static_cast<QuarantineReason>(r))) +
               "\"")
       << "} " << report.quarantine_by_reason[r] << "\n";
  }

  // Emitted only when durability is configured (see the JSON exporter).
  if (report.durability_mode != DurabilityMode::kOff) {
    os << "# TYPE caesar_wal_records_total counter\n";
    os << bare("caesar_wal_records_total") << " "
       << report.durability.wal_records << "\n";
    os << "# TYPE caesar_wal_bytes_total counter\n";
    os << bare("caesar_wal_bytes_total") << " " << report.durability.wal_bytes
       << "\n";
    os << "# TYPE caesar_wal_fsyncs_total counter\n";
    os << bare("caesar_wal_fsyncs_total") << " " << report.durability.fsyncs
       << "\n";
    os << "# TYPE caesar_checkpoints_total counter\n";
    os << bare("caesar_checkpoints_total") << " "
       << report.durability.checkpoints_written << "\n";
    os << "# TYPE caesar_recovered gauge\n";
    os << bare("caesar_recovered") << " " << (report.recovered ? 1 : 0)
       << "\n";
    os << "# TYPE caesar_recovery_replayed_events_total counter\n";
    os << bare("caesar_recovery_replayed_events_total") << " "
       << report.durability.recovery_replayed_events << "\n";
    os << "# TYPE caesar_wal_torn_tail_truncations_total counter\n";
    os << bare("caesar_wal_torn_tail_truncations_total") << " "
       << report.durability.torn_tail_truncations << "\n";
  }

  if (report.granularity >= MetricsGranularity::kEngine) {
    os << "# TYPE caesar_ticks_total counter\n";
    os << bare("caesar_ticks_total") << " " << report.ticks.ticks << "\n";
    os << "# TYPE caesar_gc_runs_total counter\n";
    os << bare("caesar_gc_runs_total") << " " << report.ticks.gc_runs << "\n";
    WritePromHistogram(os, "caesar_tick_events", tenant_label,
                       report.ticks.events_per_tick);
    WritePromHistogram(os, "caesar_tick_partitions", tenant_label,
                       report.ticks.partitions_per_tick);
    WritePromHistogram(os, "caesar_tick_derived", tenant_label,
                       report.ticks.derived_per_tick);
    WritePromHistogram(os, "caesar_tick_context_switches", tenant_label,
                       report.ticks.context_switches_per_tick);
    if (!options.deterministic) {
      os << "# TYPE caesar_scheduler_seconds_sum counter\n";
      os << bare("caesar_scheduler_seconds_sum") << " "
         << FmtDouble(report.ticks.scheduler_seconds.sum()) << "\n";
      os << "# TYPE caesar_ingest_seconds_sum counter\n";
      os << bare("caesar_ingest_seconds_sum") << " "
         << FmtDouble(report.ticks.ingest_seconds.sum()) << "\n";
      os << "# TYPE caesar_gc_pause_seconds_sum counter\n";
      os << bare("caesar_gc_pause_seconds_sum") << " "
         << FmtDouble(report.ticks.gc_pause_seconds.sum()) << "\n";
    }
    for (const CounterSnapshot& counter : report.counters) {
      os << "# HELP caesar_" << counter.name << "_total "
         << PromEscape(counter.help) << "\n";
      os << "# TYPE caesar_" << counter.name << "_total counter\n";
      os << bare(("caesar_" + counter.name + "_total").c_str()) << " "
         << counter.total << "\n";
      if (!options.deterministic) {
        for (size_t shard = 0; shard < counter.per_shard.size(); ++shard) {
          os << "caesar_" << counter.name << "_per_worker_total{"
             << with("worker=\"" + std::to_string(shard) + "\"") << "} "
             << counter.per_shard[shard] << "\n";
        }
      }
    }
    for (const HistogramSnapshot& histogram : report.histograms) {
      os << "# HELP caesar_" << histogram.name << " "
         << PromEscape(histogram.help) << "\n";
      WritePromHistogram(os, "caesar_" + histogram.name, tenant_label,
                         histogram.merged);
    }
  }

  bool first_op_row = true;
  for (const QueryOperatorStats& row : report.operators) {
    if (first_op_row) {
      os << "# TYPE caesar_op_input_events_total counter\n"
         << "# TYPE caesar_op_output_events_total counter\n"
         << "# TYPE caesar_op_work_units_total counter\n"
         << "# TYPE caesar_op_invocations_total counter\n";
      first_op_row = false;
    }
    std::string labels = with("query=\"" + PromEscape(row.query) +
                              "\",op=\"" + std::to_string(row.op_index) +
                              "\",kind=\"" + OperatorKindName(row.kind) +
                              "\"");
    os << "caesar_op_invocations_total{" << labels << "} "
       << row.stats.invocations << "\n";
    os << "caesar_op_input_events_total{" << labels << "} "
       << row.stats.input_events << "\n";
    os << "caesar_op_output_events_total{" << labels << "} "
       << row.stats.output_events << "\n";
    os << "caesar_op_work_units_total{" << labels << "} "
       << row.stats.work_units << "\n";
    if (auto selectivity = row.stats.ObservedSelectivity()) {
      os << "caesar_op_selectivity{" << labels << "} "
         << FmtDouble(*selectivity) << "\n";
    }
    if (row.stats.work_per_invocation.count() > 0) {
      WritePromHistogram(os, "caesar_op_work_per_invocation", labels,
                         row.stats.work_per_invocation);
      WritePromHistogram(os, "caesar_op_input_batch", labels,
                         row.stats.input_batch);
      WritePromHistogram(os, "caesar_op_output_batch", labels,
                         row.stats.output_batch);
    }
  }

  if (!options.deterministic && report.executor_workers > 0) {
    os << "# TYPE caesar_executor_workers gauge\n";
    os << bare("caesar_executor_workers") << " " << report.executor_workers
       << "\n";
    os << "# TYPE caesar_executor_ticks_total counter\n";
    os << bare("caesar_executor_ticks_total") << " " << report.executor.ticks
       << "\n";
    os << "# TYPE caesar_executor_tasks_total counter\n";
    os << bare("caesar_executor_tasks_total") << " " << report.executor.tasks
       << "\n";
    os << "# TYPE caesar_executor_imbalance_total counter\n";
    os << bare("caesar_executor_imbalance_total") << " "
       << report.executor.imbalance << "\n";
    os << "# TYPE caesar_executor_steals_total counter\n";
    os << bare("caesar_executor_steals_total") << " "
       << report.executor.steals << "\n";
    WritePromHistogram(os, "caesar_executor_imbalance_per_tick", tenant_label,
                       report.executor.imbalance_per_tick);
    os << "# TYPE caesar_executor_barrier_wait_seconds_sum counter\n";
    os << bare("caesar_executor_barrier_wait_seconds_sum") << " "
       << FmtDouble(report.executor.barrier_wait.sum()) << "\n";
  }

  return os.str();
}

}  // namespace caesar
