#include "runtime/statistics.h"

#include <sstream>

namespace caesar {

std::string StatisticsReport::ToString() const {
  std::ostringstream os;
  os << "observed context activity: " << observed_context_activity << "\n";
  if (executor_workers > 0) {
    os << "executor: workers=" << executor_workers
       << " ticks=" << executor.ticks << " tasks=" << executor.tasks
       << " imbalance=" << executor.imbalance << " barrier_wait["
       << executor.barrier_wait.ToString() << "]\n";
  }
  for (const QueryOperatorStats& row : operators) {
    os << "  " << row.query << " #" << row.op_index << " "
       << OperatorKindName(row.kind) << " [" << row.description
       << "]: in=" << row.stats.input_events
       << " out=" << row.stats.output_events
       << " sel=" << row.stats.ObservedSelectivity()
       << " cost/event=" << row.stats.ObservedUnitCost() << "\n";
  }
  return os.str();
}

}  // namespace caesar
