#include "runtime/statistics.h"

#include <sstream>

namespace caesar {

double StatisticsReport::quarantine_rate() const {
  int64_t offered = ingest.admitted + ingest.quarantined;
  return offered == 0 ? 0.0
                      : static_cast<double>(ingest.quarantined) /
                            static_cast<double>(offered);
}

double StatisticsReport::reorder_rate() const {
  int64_t offered = ingest.admitted + ingest.quarantined;
  return offered == 0 ? 0.0
                      : static_cast<double>(ingest.reordered) /
                            static_cast<double>(offered);
}

std::string StatisticsReport::ToString() const {
  std::ostringstream os;
  if (!tenant.empty()) os << "tenant: " << tenant << "\n";
  os << "observed context activity: " << observed_context_activity << "\n";
  if (!analysis_diagnostics.empty()) {
    os << "analysis diagnostics:\n";
    for (const std::string& diag : analysis_diagnostics) {
      os << "  " << diag << "\n";
    }
  }
  if (executor_workers > 0) {
    os << "executor: workers=" << executor_workers
       << " ticks=" << executor.ticks << " tasks=" << executor.tasks
       << " imbalance=" << executor.imbalance
       << " imbalance_per_tick[mean=" << executor.imbalance_per_tick.mean()
       << " max=" << executor.imbalance_per_tick.max()
       << "] steals=" << executor.steals << " barrier_wait["
       << executor.barrier_wait.ToString() << "]\n";
  }
  if (ingest.reordered > 0 || ingest.quarantined > 0 ||
      ingest.max_observed_lateness > 0) {
    os << "ingest: admitted=" << ingest.admitted
       << " reordered=" << ingest.reordered
       << " dropped_late=" << ingest.dropped_late
       << " quarantined=" << ingest.quarantined
       << " max_lateness=" << ingest.max_observed_lateness
       << " quarantine_rate=" << quarantine_rate()
       << " reorder_rate=" << reorder_rate() << "\n";
    if (ingest.quarantined > 0) {
      os << "quarantine:";
      for (int r = 0; r < kNumQuarantineReasons; ++r) {
        if (quarantine_by_reason[r] == 0) continue;
        os << " " << QuarantineReasonName(static_cast<QuarantineReason>(r))
           << "=" << quarantine_by_reason[r];
      }
      os << " partitions=" << quarantine_by_partition.size() << "\n";
    }
  }
  if (durability_mode != DurabilityMode::kOff) {
    os << "durability: mode=" << DurabilityModeName(durability_mode)
       << " wal_records=" << durability.wal_records
       << " wal_bytes=" << durability.wal_bytes
       << " fsyncs=" << durability.fsyncs
       << " checkpoints=" << durability.checkpoints_written;
    if (recovered) {
      os << " recovered=1 replayed_events="
         << durability.recovery_replayed_events
         << " torn_tail_truncations=" << durability.torn_tail_truncations;
    }
    os << "\n";
    for (const std::string& diag : recovery_diagnostics) {
      os << "  " << diag << "\n";
    }
  }
  if (granularity >= MetricsGranularity::kEngine) {
    os << "ticks: n=" << ticks.ticks << " gc_runs=" << ticks.gc_runs;
    if (ticks.gc_runs > 0) os << " gc_horizon_min=" << ticks.gc_horizon_min;
    os << "\n";
    os << "  events/tick [" << ticks.events_per_tick.ToString() << "]\n";
    os << "  partitions/tick [" << ticks.partitions_per_tick.ToString()
       << "]\n";
    os << "  derived/tick [" << ticks.derived_per_tick.ToString() << "]\n";
    os << "  context_switches/tick ["
       << ticks.context_switches_per_tick.ToString() << "]\n";
    os << "  scheduler_s [" << ticks.scheduler_seconds.ToString()
       << "] ingest_s [" << ticks.ingest_seconds.ToString() << "] gc_pause_s ["
       << ticks.gc_pause_seconds.ToString() << "]\n";
    os << "timeline: points=" << timeline.size()
       << " dropped=" << timeline_dropped << "\n";
    for (const CounterSnapshot& counter : counters) {
      os << "counter " << counter.name << ": " << counter.total << "\n";
    }
    for (const HistogramSnapshot& histogram : histograms) {
      os << "histogram " << histogram.name << ": ["
         << histogram.merged.ToString() << "]\n";
    }
  }
  for (const QueryOperatorStats& row : operators) {
    os << "  " << row.query << " #" << row.op_index << " "
       << OperatorKindName(row.kind) << " [" << row.description
       << "]: in=" << row.stats.input_events
       << " out=" << row.stats.output_events;
    if (row.stats.has_data()) {
      os << " sel=" << *row.stats.ObservedSelectivity()
         << " cost/event=" << *row.stats.ObservedUnitCost();
    } else {
      os << " sel=n/a cost/event=n/a";
    }
    os << "\n";
    if (row.stats.work_per_invocation.count() > 0) {
      os << "    work/invocation [" << row.stats.work_per_invocation.ToString()
         << "]\n";
    }
  }
  return os.str();
}

}  // namespace caesar
