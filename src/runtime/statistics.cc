#include "runtime/statistics.h"

#include <sstream>

namespace caesar {

std::string StatisticsReport::ToString() const {
  std::ostringstream os;
  os << "observed context activity: " << observed_context_activity << "\n";
  if (executor_workers > 0) {
    os << "executor: workers=" << executor_workers
       << " ticks=" << executor.ticks << " tasks=" << executor.tasks
       << " imbalance=" << executor.imbalance << " barrier_wait["
       << executor.barrier_wait.ToString() << "]\n";
  }
  if (ingest.reordered > 0 || ingest.quarantined > 0 ||
      ingest.max_observed_lateness > 0) {
    os << "ingest: admitted=" << ingest.admitted
       << " reordered=" << ingest.reordered
       << " dropped_late=" << ingest.dropped_late
       << " quarantined=" << ingest.quarantined
       << " max_lateness=" << ingest.max_observed_lateness << "\n";
    if (ingest.quarantined > 0) {
      os << "quarantine:";
      for (int r = 0; r < kNumQuarantineReasons; ++r) {
        if (quarantine_by_reason[r] == 0) continue;
        os << " " << QuarantineReasonName(static_cast<QuarantineReason>(r))
           << "=" << quarantine_by_reason[r];
      }
      os << " partitions=" << quarantine_by_partition.size() << "\n";
    }
  }
  for (const QueryOperatorStats& row : operators) {
    os << "  " << row.query << " #" << row.op_index << " "
       << OperatorKindName(row.kind) << " [" << row.description
       << "]: in=" << row.stats.input_events
       << " out=" << row.stats.output_events
       << " sel=" << row.stats.ObservedSelectivity()
       << " cost/event=" << row.stats.ObservedUnitCost() << "\n";
  }
  return os.str();
}

}  // namespace caesar
