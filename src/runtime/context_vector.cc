#include "runtime/context_vector.h"

#include <sstream>

#include "durability/serde.h"

namespace caesar {

ContextBitVector::ContextBitVector(int num_contexts, int default_context)
    : num_contexts_(num_contexts),
      default_context_(default_context),
      since_(num_contexts, 0) {
  CAESAR_CHECK_GT(num_contexts, 0);
  CAESAR_CHECK_LE(num_contexts, kMaxContexts);
  CAESAR_CHECK_GE(default_context, 0);
  CAESAR_CHECK_LT(default_context, num_contexts);
  bits_ = uint64_t{1} << default_context;
}

bool ContextBitVector::Initiate(int c, Timestamp now) {
  time_ = now;
  if (IsActive(c)) return false;  // Only one window of a type at a time.
  bits_ |= uint64_t{1} << c;
  since_[c] = now;
  if (c != default_context_ && IsActive(default_context_)) {
    bits_ &= ~(uint64_t{1} << default_context_);
  }
  ++version_;
  return true;
}

bool ContextBitVector::Terminate(int c, Timestamp now) {
  time_ = now;
  if (!IsActive(c)) return false;
  bits_ &= ~(uint64_t{1} << c);
  if (bits_ == 0) {
    bits_ = uint64_t{1} << default_context_;
    since_[default_context_] = now;
  }
  ++version_;
  return true;
}

void ContextBitVector::Save(StateWriter* w) const {
  w->U64(bits_);
  w->I64(time_);
  w->U64(version_);
  w->U32(static_cast<uint32_t>(since_.size()));
  for (Timestamp t : since_) w->I64(t);
}

Status ContextBitVector::Load(StateReader* r) {
  bits_ = r->U64();
  time_ = r->I64();
  version_ = r->U64();
  uint32_t n = r->U32();
  if (!r->ok() || n != since_.size()) {
    return Status::DataLoss("context vector does not match the model");
  }
  for (Timestamp& t : since_) t = r->I64();
  return r->ok() ? Status::Ok()
                 : Status::DataLoss("truncated context vector state");
}

std::string ContextBitVector::ToString() const {
  std::ostringstream os;
  os << "W@" << time_ << "{";
  bool first = true;
  for (int c = 0; c < num_contexts_; ++c) {
    if (IsActive(c)) {
      if (!first) os << ",";
      os << c << "(since " << since_[c] << ")";
      first = false;
    }
  }
  os << "}";
  return os.str();
}

}  // namespace caesar
