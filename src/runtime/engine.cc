#include "runtime/engine.h"

#include <algorithm>
#include <sstream>

#include "algebra/context_ops.h"
#include "common/logging.h"
#include "common/stopwatch.h"

namespace caesar {

namespace {

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace

std::string RunStats::ToString() const {
  std::ostringstream os;
  os << "input=" << input_events << " derived=" << derived_events
     << " max_latency=" << max_latency << "s mean_latency=" << mean_latency
     << "s cpu=" << cpu_seconds << "s ops=" << ops_executed
     << " suspended=" << suspended_chains << "/"
     << suspended_chains + executed_chains << " txns=" << transactions;
  if (parallel_ticks > 0) {
    os << " pool_ticks=" << parallel_ticks << " pool_tasks=" << parallel_tasks
       << " imbalance=" << shard_imbalance
       << " barrier_wait=" << barrier_wait_seconds << "s";
  }
  if (events_reordered > 0 || events_quarantined > 0 ||
      max_observed_lateness > 0) {
    os << " reordered=" << events_reordered
       << " dropped_late=" << events_dropped_late
       << " quarantined=" << events_quarantined
       << " max_lateness=" << max_observed_lateness;
  }
  for (const auto& [type, count] : derived_by_type) {
    os << "\n  " << type << ": " << count;
  }
  return os.str();
}

// Window-transition bookkeeping of one operator chain.
struct TransitionState {
  bool was_active = false;
  uint64_t last_active_bits = 0;  // gate bits active at last execution
};

namespace {

// The gate of a chain: its context ids with their history anchors (see
// plan/plan.h). Empty = always active.
struct Gate {
  std::vector<int> contexts;
  std::vector<int> anchors;
  uint64_t mask = 0;
};

Gate GateOf(const std::vector<int>& contexts, const std::vector<int>& anchors) {
  Gate gate;
  gate.contexts = contexts;
  gate.anchors = anchors.empty() ? contexts : anchors;
  for (int c : contexts) gate.mask |= uint64_t{1} << c;
  return gate;
}

// Gate of a chain, extracted from its context-window operator (used for the
// private guards of the context-independent baseline).
Gate GateOfChain(const OpChain& chain) {
  for (const auto& op : chain.ops) {
    if (op->kind() == Operator::Kind::kContextWindow) {
      const auto* window = static_cast<const ContextWindowOp*>(op.get());
      return GateOf(window->context_ids(), window->anchors());
    }
  }
  return Gate{};
}

// Applies window-transition side effects to `ops` before an execution at
// the current `contexts` state:
//  - window ended: context history discarded (Reset; Section 6.2);
//  - window (re)started: state accumulated while inactive discarded
//    (Reset), so all plan shapes stay semantically identical;
//  - gate composition changed while staying active (e.g. a grouped-window
//    boundary): partial matches survive exactly as far back as some
//    currently-active window's *anchor* — the start of the oldest original
//    window covering the current grouped window ("when the third window
//    begins, the partial results within the first window expire").
void ApplyWindowTransitions(const std::vector<std::unique_ptr<Operator>>& ops,
                            const Gate& gate,
                            const ContextBitVector& contexts,
                            TransitionState* state) {
  uint64_t active_bits = contexts.bits() & gate.mask;
  bool active_now = active_bits != 0;

  if (state->was_active && !active_now) {
    for (const auto& op : ops) op->Reset();
  } else if (state->was_active && active_now &&
             active_bits != state->last_active_bits) {
    Timestamp horizon = contexts.time();
    for (size_t i = 0; i < gate.contexts.size(); ++i) {
      if (contexts.IsActive(gate.contexts[i])) {
        horizon = std::min(horizon, contexts.ActiveSince(gate.anchors[i]));
      }
    }
    for (const auto& op : ops) op->ExpireBefore(horizon);
  } else if (!state->was_active && active_now) {
    for (const auto& op : ops) op->Reset();
  }
  state->was_active = active_now;
  state->last_active_bits = active_bits;
}

}  // namespace

// Per-partition instance of one compiled query.
struct Engine::QueryState {
  // A private guard chain of the context-independent baseline, with its own
  // transition bookkeeping against the query-private context vector.
  struct GuardInstance {
    OpChain chain;
    Gate gate;
    TransitionState transition;
  };

  const CompiledQuery* spec = nullptr;  // shape reference (not executed)
  Gate gate;                            // precomputed from the spec
  OpChain chain;                        // private operator instances
  std::vector<OperatorStats> op_stats;  // per chain op (when gathering)
  std::vector<GuardInstance> guards;
  // Query-private context vector (context-independent baseline only).
  std::unique_ptr<ContextBitVector> private_contexts;

  TransitionState transition;
};

struct Engine::PartitionState {
  uint64_t key = 0;
  std::unique_ptr<ContextBitVector> contexts;
  std::vector<QueryState> deriving;
  std::vector<QueryState> processing;
  uint64_t ops_counter = 0;
  int64_t suspended_chains = 0;
  int64_t executed_chains = 0;
  // Cumulative counterparts, never reset (for CollectStatistics).
  int64_t total_suspended = 0;
  int64_t total_executed = 0;
  int64_t transactions = 0;
  EventBatch pool;  // scratch, reused across transactions
};

Status EngineOptions::Validate() const {
  if (num_threads < 1) {
    return Status::InvalidArgument(
        "EngineOptions::num_threads must be >= 1, got " +
        std::to_string(num_threads));
  }
  if (reorder_slack < 0) {
    return Status::InvalidArgument(
        "EngineOptions::reorder_slack must be >= 0, got " +
        std::to_string(reorder_slack));
  }
  if (!(accel > 0.0)) {
    return Status::InvalidArgument(
        "EngineOptions::accel must be positive, got " +
        std::to_string(accel));
  }
  if (!(seconds_per_tick > 0.0)) {
    return Status::InvalidArgument(
        "EngineOptions::seconds_per_tick must be positive, got " +
        std::to_string(seconds_per_tick));
  }
  if (gc_interval < 1) {
    return Status::InvalidArgument(
        "EngineOptions::gc_interval must be >= 1, got " +
        std::to_string(gc_interval));
  }
  if (gc_horizon < 0) {
    return Status::InvalidArgument(
        "EngineOptions::gc_horizon must be >= 0, got " +
        std::to_string(gc_horizon));
  }
  return Status::Ok();
}

Result<std::unique_ptr<Engine>> Engine::Create(ExecutablePlan plan,
                                               EngineOptions options) {
  CAESAR_RETURN_IF_ERROR(options.Validate());
  return std::make_unique<Engine>(std::move(plan), std::move(options));
}

Engine::Engine(ExecutablePlan plan, EngineOptions options)
    : plan_(std::move(plan)),
      options_(std::move(options)),
      quarantine_(options_.quarantine_capacity) {
  CAESAR_CHECK_OK(options_.Validate());
  if (options_.ingest_policy == IngestPolicy::kReorder) {
    reorder_ = std::make_unique<ReorderBuffer>(options_.reorder_slack);
  }
  // Resolve partition attribute indices for every type known now, so the
  // cache is read-only on the hot path (see header comment).
  if (!plan_.partition_by.empty()) {
    partition_attr_cache_.resize(plan_.registry->num_types());
    for (TypeId id = 0; id < plan_.registry->num_types(); ++id) {
      ResolvePartitionAttrs(id);
    }
  }
  if (options_.num_threads > 1) {
    executor_ = std::make_unique<ShardedExecutor>(options_.num_threads);
  }
}

Engine::~Engine() = default;

int Engine::num_partitions() const {
  return static_cast<int>(partitions_.size());
}

const ContextBitVector* Engine::partition_contexts(uint64_t key) const {
  auto it = partitions_.find(key);
  return it == partitions_.end() ? nullptr : it->second->contexts.get();
}

Engine::PartitionState* Engine::GetOrCreatePartition(uint64_t key) {
  auto it = partitions_.find(key);
  if (it != partitions_.end()) return it->second.get();

  auto partition = std::make_unique<PartitionState>();
  partition->key = key;
  partition->contexts = std::make_unique<ContextBitVector>(
      std::max(plan_.num_contexts, 1), std::max(plan_.default_context, 0));
  auto instantiate = [&](const std::vector<CompiledQuery>& specs,
                         std::vector<QueryState>* states) {
    states->reserve(specs.size());
    for (const CompiledQuery& spec : specs) {
      QueryState state;
      state.spec = &spec;
      state.gate = GateOf(spec.contexts, spec.anchors);
      state.chain = spec.chain.Clone();
      if (options_.gather_statistics) {
        state.op_stats.resize(state.chain.ops.size());
      }
      for (const OpChain& guard : spec.guards) {
        QueryState::GuardInstance instance;
        instance.chain = guard.Clone();
        instance.gate = GateOfChain(instance.chain);
        state.guards.push_back(std::move(instance));
      }
      if (!state.guards.empty()) {
        state.private_contexts = std::make_unique<ContextBitVector>(
            std::max(plan_.num_contexts, 1),
            std::max(plan_.default_context, 0));
      }
      states->push_back(std::move(state));
    }
  };
  instantiate(plan_.deriving, &partition->deriving);
  instantiate(plan_.processing, &partition->processing);
  PartitionState* result = partition.get();
  partitions_.emplace(key, std::move(partition));
  return result;
}

void Engine::ResolvePartitionAttrs(TypeId type_id) {
  const Schema& schema = plan_.registry->type(type_id).schema;
  std::vector<int>& indices = partition_attr_cache_[type_id];
  indices.clear();
  indices.reserve(plan_.partition_by.size());
  for (const std::string& attr : plan_.partition_by) {
    indices.push_back(schema.IndexOf(attr));
  }
}

uint64_t Engine::PartitionKeyOf(const Event& event) {
  if (plan_.partition_by.empty()) return 0;
  TypeId type_id = event.type_id();
  if (type_id >= static_cast<TypeId>(partition_attr_cache_.size()) ||
      partition_attr_cache_[type_id].empty()) {
    // Type registered after construction: lazy fallback, scheduler thread
    // only (distribution precedes worker dispatch within a tick).
    if (type_id >= static_cast<TypeId>(partition_attr_cache_.size())) {
      partition_attr_cache_.resize(type_id + 1);
    }
    ResolvePartitionAttrs(type_id);
  }
  const std::vector<int>& indices = partition_attr_cache_[type_id];
  uint64_t key = 0x12345678;
  for (int index : indices) {
    if (index < 0) continue;
    key = HashCombine(key, event.value(index).Hash());
  }
  return key;
}

bool Engine::ClassifyMalformed(const Event& event,
                               QuarantineReason* reason) const {
  if (event.type_id() < 0 ||
      event.type_id() >= static_cast<TypeId>(plan_.registry->num_types())) {
    *reason = QuarantineReason::kUnknownType;
    return true;
  }
  if (event.time() < 0) {
    *reason = QuarantineReason::kNegativeTime;
    return true;
  }
  if (event.end_time() < event.start_time()) {
    *reason = QuarantineReason::kInvertedInterval;
    return true;
  }
  return false;
}

void Engine::QuarantineEvent(EventPtr event, QuarantineReason reason) {
  // Partition attribution needs a registered type; unknown types land in
  // partition 0 (unpartitionable).
  uint64_t key = reason == QuarantineReason::kUnknownType
                     ? 0
                     : PartitionKeyOf(*event);
  if (reason == QuarantineReason::kOutOfOrder ||
      reason == QuarantineReason::kLateBeyondSlack) {
    ++ingest_metrics_.dropped_late;
  }
  ++ingest_metrics_.quarantined;
  quarantine_.Add(std::move(event), reason, key);
}

Status Engine::IngestBatch(const EventBatch& input, EventBatch* admitted,
                           const EventBatch** effective, RunStats* stats) {
  *effective = &input;
  if (options_.ingest_policy == IngestPolicy::kStrict) {
    // Validate without mutating anything; the batch is either processed in
    // full or rejected in full.
    for (size_t i = 0; i < input.size(); ++i) {
      QuarantineReason reason;
      if (ClassifyMalformed(*input[i], &reason)) {
        return Status::InvalidArgument(
            "strict ingest: malformed event at index " + std::to_string(i) +
            " (" + QuarantineReasonName(reason) +
            "); use IngestPolicy::kDrop or kReorder to quarantine instead");
      }
    }
    ptrdiff_t unordered = FirstOutOfOrderIndex(input);
    if (unordered >= 0) {
      return Status::FailedPrecondition(
          "strict ingest: input not time-ordered at index " +
          std::to_string(unordered) + ": time " +
          std::to_string(input[unordered]->time()) + " after " +
          std::to_string(input[unordered - 1]->time()) +
          "; use IngestPolicy::kReorder with a lateness slack to "
          "re-sequence bounded disorder");
    }
    ingest_metrics_.admitted += static_cast<int64_t>(input.size());
    return Status::Ok();
  }

  admitted->reserve(input.size());
  Timestamp run_max_lateness = 0;
  auto note_lateness = [&](Timestamp high_water, Timestamp t) {
    Timestamp lateness = high_water - t;
    run_max_lateness = std::max(run_max_lateness, lateness);
    ingest_metrics_.max_observed_lateness =
        std::max(ingest_metrics_.max_observed_lateness, lateness);
  };
  for (const EventPtr& event : input) {
    QuarantineReason reason;
    if (ClassifyMalformed(*event, &reason)) {
      QuarantineEvent(event, reason);
      continue;
    }
    Timestamp t = event->time();
    if (options_.ingest_policy == IngestPolicy::kDrop) {
      if (drop_any_admitted_ && t < drop_max_admitted_) {
        note_lateness(drop_max_admitted_, t);
        QuarantineEvent(event, QuarantineReason::kOutOfOrder);
        continue;
      }
      drop_any_admitted_ = true;
      drop_max_admitted_ = t;
      admitted->push_back(event);
    } else {  // kReorder
      bool late = reorder_->any_seen() && t < reorder_->max_seen();
      if (late) note_lateness(reorder_->max_seen(), t);
      if (!reorder_->Push(event, admitted)) {
        QuarantineEvent(event, QuarantineReason::kLateBeyondSlack);
        continue;
      }
      if (late) ++ingest_metrics_.reordered;
    }
  }
  if (reorder_ != nullptr) {
    // Run processes its batch to completion: end of batch is end of stream
    // for everything still buffered. The high-water mark persists, so a
    // later Run cannot sneak events underneath what was already emitted.
    reorder_->Flush(admitted);
  }
  ingest_metrics_.admitted += static_cast<int64_t>(admitted->size());
  stats->max_observed_lateness = run_max_lateness;
  *effective = admitted;
  return Status::Ok();
}

Result<RunStats> Engine::Run(const EventBatch& raw_input,
                             EventBatch* outputs) {
  RunStats stats;
  stats.input_events = static_cast<int64_t>(raw_input.size());
  const IngestMetrics ingest_before = ingest_metrics_;
  EventBatch admitted;
  const EventBatch* effective = nullptr;
  CAESAR_RETURN_IF_ERROR(
      IngestBatch(raw_input, &admitted, &effective, &stats));
  const EventBatch& input = *effective;

  RunningStats latency;
  uint64_t ops_before = 0;
  for (const auto& [key, partition] : partitions_) {
    ops_before += partition->ops_counter;
  }
  const ExecutorMetrics exec_before =
      executor_ != nullptr ? executor_->metrics() : ExecutorMetrics{};

  size_t i = 0;
  const double tick_wall = options_.seconds_per_tick / options_.accel;
  while (i < input.size()) {
    Timestamp t = input[i]->time();
    size_t j = i;
    while (j < input.size() && input[j]->time() == t) ++j;

    // Distribute this time stamp's events to partitions (the event
    // distributor + event queues of Fig. 8). std::map gives deterministic
    // partition order.
    std::map<uint64_t, EventBatch> by_partition;
    for (size_t k = i; k < j; ++k) {
      by_partition[PartitionKeyOf(*input[k])].push_back(input[k]);
    }

    // Execute one transaction per partition; measure processing cost.
    // Partitions are created here, on the scheduler thread, so workers only
    // ever touch existing partition state.
    Stopwatch watch;
    std::vector<std::pair<PartitionState*, const EventBatch*>> work;
    work.reserve(by_partition.size());
    shard_scratch_.clear();
    for (auto& [key, events] : by_partition) {
      work.emplace_back(GetOrCreatePartition(key), &events);
      shard_scratch_.push_back(key);
    }
    std::vector<EventBatch> derived(work.size());
    if (executor_ == nullptr) {
      for (size_t w = 0; w < work.size(); ++w) {
        ProcessTransaction(work[w].first, t, *work[w].second, &derived[w]);
      }
    } else {
      // Every tick goes through the pool: a partition is always processed
      // by the worker owning its shard (key % num_workers), so partition
      // state is single-writer without locks.
      executor_->ExecuteTick(work.size(), shard_scratch_.data(),
                             [&](size_t w) {
                               ProcessTransaction(work[w].first, t,
                                                  *work[w].second,
                                                  &derived[w]);
                             });
    }
    double dt = watch.ElapsedSeconds();
    stats.cpu_seconds += dt;

    // Virtual clock: queueing latency under the modeled arrival schedule.
    double arrival = static_cast<double>(t) * tick_wall;
    vclock_completion_ = std::max(vclock_completion_, arrival) + dt;
    double lat = (vclock_completion_ - arrival) * options_.accel;
    latency.Add(lat);

    // Collect derived events (deterministic partition order).
    EventBatch tick_derived;
    for (EventBatch& batch : derived) {
      for (EventPtr& event : batch) {
        ++stats.derived_events;
        ++stats.derived_by_type[plan_.registry->type(event->type_id()).name];
        if (options_.collect_outputs && outputs != nullptr) {
          outputs->push_back(event);
        }
        if (observer_) tick_derived.push_back(std::move(event));
      }
    }
    if (observer_) observer_(t, tick_derived);

    // Periodic garbage collection of stale operator state.
    if (t - last_gc_ >= options_.gc_interval) {
      last_gc_ = t;
      Timestamp horizon = t - options_.gc_horizon;
      for (auto& [key, partition] : partitions_) {
        for (auto* states : {&partition->deriving, &partition->processing}) {
          for (QueryState& query : *states) {
            for (auto& op : query.chain.ops) op->ExpireBefore(horizon);
            for (auto& guard : query.guards) {
              for (auto& op : guard.chain.ops) op->ExpireBefore(horizon);
            }
          }
        }
      }
    }

    i = j;
  }

  stats.max_latency = latency.max();
  stats.mean_latency = latency.mean();
  uint64_t ops_after = 0;
  for (const auto& [key, partition] : partitions_) {
    ops_after += partition->ops_counter;
    stats.suspended_chains += partition->suspended_chains;
    stats.executed_chains += partition->executed_chains;
    stats.transactions += partition->transactions;
    partition->suspended_chains = 0;
    partition->executed_chains = 0;
    partition->transactions = 0;
  }
  stats.ops_executed = ops_after - ops_before;
  stats.partitions = static_cast<int64_t>(partitions_.size());
  if (executor_ != nullptr) {
    const ExecutorMetrics& exec = executor_->metrics();
    stats.parallel_ticks =
        static_cast<int64_t>(exec.ticks - exec_before.ticks);
    stats.parallel_tasks =
        static_cast<int64_t>(exec.tasks - exec_before.tasks);
    stats.shard_imbalance =
        static_cast<int64_t>(exec.imbalance - exec_before.imbalance);
    stats.barrier_wait_seconds =
        exec.barrier_wait.sum() - exec_before.barrier_wait.sum();
  }
  stats.events_reordered = ingest_metrics_.reordered - ingest_before.reordered;
  stats.events_dropped_late =
      ingest_metrics_.dropped_late - ingest_before.dropped_late;
  stats.events_quarantined =
      ingest_metrics_.quarantined - ingest_before.quarantined;
  return stats;
}

void Engine::ProcessTransaction(PartitionState* partition, Timestamp t,
                                const EventBatch& events,
                                EventBatch* derived) {
  ++partition->transactions;
  EventBatch& pool = partition->pool;
  pool.clear();
  pool.insert(pool.end(), events.begin(), events.end());

  // Phase A: context derivation. Phase B: context processing. Queries see
  // the pool slice that exists when their turn comes (topological order
  // guarantees producers run first).
  for (auto* states : {&partition->deriving, &partition->processing}) {
    for (QueryState& query : *states) {
      EventBatch out;
      RunQuery(partition, &query, pool, t, &out);
      if (query.spec->output_type != kInvalidTypeId) {
        for (EventPtr& event : out) {
          pool.push_back(event);
          derived->push_back(std::move(event));
        }
      }
    }
  }
}

void Engine::RunQuery(PartitionState* partition, QueryState* query,
                      const EventBatch& pool, Timestamp t, EventBatch* out) {
  OpExecContext ctx;
  ctx.registry = plan_.registry;
  ctx.now = t;
  ctx.ops_counter = &partition->ops_counter;

  // Context-independent baseline: private guards re-derive the contexts.
  if (query->private_contexts != nullptr) {
    ctx.contexts = query->private_contexts.get();
    EventBatch scratch_in, scratch_out;
    for (QueryState::GuardInstance& guard : query->guards) {
      // Guards mirror the shared deriving queries, including their window
      // transition bookkeeping against the private vector.
      ApplyWindowTransitions(guard.chain.ops, guard.gate,
                             *query->private_contexts, &guard.transition);
      const EventBatch* current = &pool;
      for (auto& op : guard.chain.ops) {
        scratch_out.clear();
        op->Process(*current, &scratch_out, &ctx);
        std::swap(scratch_in, scratch_out);
        current = &scratch_in;
        if (current->empty()) break;
      }
    }
  } else {
    ctx.contexts = partition->contexts.get();
  }

  // Window-transition bookkeeping runs after the guards so the private
  // vector (context-independent mode) is already up to date for this time
  // stamp, mirroring the shared derivation-before-processing order.
  HandleWindowTransitions(partition, query, t);

  // Main chain; an empty intermediate batch skips the rest of the chain —
  // with the context window pushed down this is the suspension of the whole
  // query during foreign contexts.
  EventBatch ping, pong;
  const EventBatch* current = &pool;
  bool suspended_at_bottom = false;
  for (size_t o = 0; o < query->chain.ops.size(); ++o) {
    pong.clear();
    uint64_t work_before = partition->ops_counter;
    query->chain.ops[o]->Process(*current, &pong, &ctx);
    if (!query->op_stats.empty()) {
      OperatorStats& op_stats = query->op_stats[o];
      ++op_stats.invocations;
      op_stats.input_events += current->size();
      op_stats.output_events += pong.size();
      op_stats.work_units += partition->ops_counter - work_before;
    }
    std::swap(ping, pong);
    current = &ping;
    if (current->empty()) {
      suspended_at_bottom =
          (o == 0 &&
           query->chain.ops[0]->kind() == Operator::Kind::kContextWindow &&
           !pool.empty());
      break;
    }
  }
  if (suspended_at_bottom) {
    ++partition->suspended_chains;
    ++partition->total_suspended;
  } else {
    ++partition->executed_chains;
    ++partition->total_executed;
  }
  if (current == &ping) {
    *out = std::move(ping);
  } else {
    *out = *current;  // pool passed through an empty chain (not expected)
  }
}

StatisticsReport Engine::CollectStatistics() const {
  StatisticsReport report;
  if (executor_ != nullptr) {
    report.executor_workers = executor_->num_workers();
    report.executor = executor_->metrics();
  }
  report.ingest = ingest_metrics_;
  for (int r = 0; r < kNumQuarantineReasons; ++r) {
    report.quarantine_by_reason[r] =
        quarantine_.count(static_cast<QuarantineReason>(r));
  }
  report.quarantine_by_partition = quarantine_.by_partition();
  // Aggregate by (phase position, op index) across partitions; the plan's
  // query order is identical in every partition.
  int64_t suspended = 0;
  int64_t executed = 0;
  bool first_partition = true;
  for (const auto& [key, partition] : partitions_) {
    suspended += partition->total_suspended;
    executed += partition->total_executed;
    size_t row = 0;
    for (const auto* states : {&partition->deriving, &partition->processing}) {
      for (const QueryState& query : *states) {
        for (size_t o = 0; o < query.op_stats.size(); ++o) {
          if (first_partition) {
            QueryOperatorStats entry;
            entry.query = query.spec->name;
            entry.op_index = static_cast<int>(o);
            entry.kind = query.chain.ops[o]->kind();
            entry.description = query.chain.ops[o]->DebugString();
            report.operators.push_back(std::move(entry));
          }
          report.operators[row].stats.Merge(query.op_stats[o]);
          ++row;
        }
      }
    }
    first_partition = false;
  }
  if (suspended + executed > 0) {
    report.observed_context_activity =
        static_cast<double>(executed) / static_cast<double>(suspended + executed);
  }
  return report;
}

void Engine::HandleWindowTransitions(PartitionState* partition,
                                     QueryState* query, Timestamp t) {
  (void)t;
  const ContextBitVector& contexts = query->private_contexts != nullptr
                                         ? *query->private_contexts
                                         : *partition->contexts;
  ApplyWindowTransitions(query->chain.ops, query->gate, contexts,
                         &query->transition);
}

}  // namespace caesar
